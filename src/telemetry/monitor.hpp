// Live progress + stall watchdog (DESIGN.md §14).
//
// Two pieces:
//
//  * ProgressBoard — a seqlock-style snapshot (current round, cumulative
//    delivered messages, active-set size, last-heartbeat ns) the engine
//    publishes once per round. The write path is advisory and never
//    blocks: a try-exchange writer flag skips the publish when another
//    writer holds the board, and all fields are relaxed atomics so the
//    seqlock is data-race-free under TSan. Readers retry on a torn or
//    in-progress sequence. Gated by publishing() with the same
//    kill-switch contract as telemetry::enabled().
//
//  * Monitor — a background sampler thread that reads the board every
//    interval, renders a one-line status to stderr (msgs/sec derived
//    from delivered deltas), and optionally arms a stall watchdog: when
//    neither the round nor the delivered count advances within the
//    deadline, it dumps the event-log tail, the per-shard and
//    per-worker engine counters, and the board state — then either
//    aborts the process with kWatchdogExitCode or latches stalled().
//
// Compiled out (-DLPS_TELEMETRY=0) the board's publishing() is
// constexpr false (engine sites are dead code) and Monitor is inert:
// the constructor starts no thread, so --monitor flags stay accepted
// but do nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/telemetry.hpp"

namespace lps::telemetry {

/// Exit code used when the watchdog aborts a stalled run. Distinct from
/// the tools' 0/1/2 contract so CI can tell "hung" from "failed".
inline constexpr int kWatchdogExitCode = 86;

struct ProgressSnapshot {
  std::uint64_t round = 0;
  std::uint64_t delivered_total = 0;  // cumulative messages delivered
  std::uint64_t active_nodes = 0;     // nodes stepped last round
  std::uint64_t heartbeat_ns = 0;     // now_ns at publish
};

class ProgressBoard {
 public:
  static ProgressBoard& global();

#if LPS_TELEMETRY
  bool publishing() const noexcept {
    return publishing_.load(std::memory_order_relaxed);
  }
#else
  constexpr bool publishing() const noexcept { return false; }
#endif
  /// Arm/disarm the board (no-op when compiled out). Monitor arms it on
  /// construction; publish() callers gate on publishing() once per round.
  void set_publishing(bool on) noexcept;

  /// Publish a snapshot. Never blocks: if another writer is mid-publish
  /// the call is dropped (the next round's publish supersedes it).
  void publish(std::uint64_t round, std::uint64_t delivered_total,
               std::uint64_t active_nodes, std::uint64_t heartbeat_ns) noexcept;

  /// Read a consistent snapshot. Returns false when nothing has been
  /// published yet or a consistent read could not be obtained.
  bool read(ProgressSnapshot& out) const noexcept;

 private:
  ProgressBoard() = default;

  // Seqlock: seq_ is odd while a write is in flight; readers accept a
  // snapshot only when seq_ is even and unchanged across the field
  // reads. writer_busy_ serializes writers without ever blocking them.
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<bool> writer_busy_{false};
  std::atomic<std::uint64_t> round_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> heartbeat_{0};
#if LPS_TELEMETRY
  std::atomic<bool> publishing_{false};
#endif
};

struct MonitorOptions {
  /// Status-line period. Also the sampler tick upper bound.
  int interval_ms = 1000;
  /// Watchdog deadline: if no snapshot field advances for this long the
  /// stall dump fires. 0 disables the watchdog.
  int stall_timeout_ms = 0;
  /// After the stall dump, _Exit(kWatchdogExitCode) instead of latching
  /// stalled().
  bool abort_on_stall = false;
  /// Status-line sink; nullptr samples silently (watchdog still armed,
  /// dump goes to stderr). Defaults to stderr.
  std::ostream* out = nullptr;
  /// Prefix for status lines ("monitor[label]: ...").
  std::string label;
};

class Monitor {
 public:
  explicit Monitor(MonitorOptions opts = {});
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Stop the sampler thread (idempotent; the destructor calls it).
  void stop();

  /// True once the watchdog observed a stall (abort_on_stall=false).
  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void emit_status(const ProgressSnapshot& snap, bool have_snap,
                   double msgs_per_sec);
  void dump_stall(const ProgressSnapshot& snap, bool have_snap,
                  std::uint64_t quiet_ns);

  MonitorOptions opts_;
  std::atomic<bool> stalled_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace lps::telemetry
