#include "telemetry/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "telemetry/event_log.hpp"

namespace lps::telemetry {

ProgressBoard& ProgressBoard::global() {
  static ProgressBoard board;
  return board;
}

void ProgressBoard::set_publishing(bool on) noexcept {
#if LPS_TELEMETRY
  publishing_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void ProgressBoard::publish(std::uint64_t round, std::uint64_t delivered_total,
                            std::uint64_t active_nodes,
                            std::uint64_t heartbeat_ns) noexcept {
  bool expected = false;
  if (!writer_busy_.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed))
    return;  // another publish in flight; this one is superseded anyway
  seq_.fetch_add(1, std::memory_order_release);  // -> odd
  round_.store(round, std::memory_order_relaxed);
  delivered_.store(delivered_total, std::memory_order_relaxed);
  active_.store(active_nodes, std::memory_order_relaxed);
  heartbeat_.store(heartbeat_ns, std::memory_order_relaxed);
  seq_.fetch_add(1, std::memory_order_release);  // -> even
  writer_busy_.store(false, std::memory_order_release);
}

bool ProgressBoard::read(ProgressSnapshot& out) const noexcept {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t s0 = seq_.load(std::memory_order_acquire);
    if (s0 == 0) return false;  // never published
    if (s0 & 1) continue;       // write in flight
    ProgressSnapshot snap;
    snap.round = round_.load(std::memory_order_relaxed);
    snap.delivered_total = delivered_.load(std::memory_order_relaxed);
    snap.active_nodes = active_.load(std::memory_order_relaxed);
    snap.heartbeat_ns = heartbeat_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == s0) {
      out = snap;
      return true;
    }
  }
  return false;
}

Monitor::Monitor(MonitorOptions opts) : opts_(std::move(opts)) {
#if LPS_TELEMETRY
  if (opts_.interval_ms < 10) opts_.interval_ms = 10;
  ProgressBoard::global().set_publishing(true);
  started_ = true;
  thread_ = std::thread([this] { run(); });
#endif
}

Monitor::~Monitor() { stop(); }

void Monitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stop_requested_) {
      stop_requested_ = true;
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  ProgressBoard::global().set_publishing(false);
}

void Monitor::emit_status(const ProgressSnapshot& snap, bool have_snap,
                          double msgs_per_sec) {
  if (opts_.out == nullptr) return;
  std::ostringstream line;
  line << "monitor";
  if (!opts_.label.empty()) line << "[" << opts_.label << "]";
  if (have_snap) {
    line << ": round=" << snap.round << " msgs/s=";
    const auto old_flags = line.flags();
    line.precision(3);
    line << std::fixed << (msgs_per_sec >= 0 ? msgs_per_sec : 0.0);
    line.flags(old_flags);
    line << " active=" << snap.active_nodes
         << " delivered=" << snap.delivered_total;
  } else {
    line << ": waiting for first round";
  }
  (*opts_.out) << line.str() << "\n";
  opts_.out->flush();
}

void Monitor::dump_stall(const ProgressSnapshot& snap, bool have_snap,
                         std::uint64_t quiet_ns) {
  std::ostream& os = opts_.out != nullptr ? *opts_.out : std::cerr;
  os << "watchdog: stall detected: no progress for " << quiet_ns / 1000000
     << " ms (deadline " << opts_.stall_timeout_ms << " ms)\n";
  if (have_snap) {
    os << "watchdog: state: round=" << snap.round
       << " delivered=" << snap.delivered_total
       << " active=" << snap.active_nodes
       << " heartbeat_age_ms=" << (now_ns() - snap.heartbeat_ns) / 1000000
       << "\n";
  } else {
    os << "watchdog: state: no round has completed since the monitor "
          "started\n";
  }

  auto& elog = EventLog::global();
  if (elog.recording()) {
    elog.emit(EventKind::kWatchdog, have_snap ? snap.round : 0,
              have_snap ? snap.round : 0,
              have_snap ? snap.delivered_total : 0);
  }
  const auto tail = elog.tail(32);
  os << "watchdog: event-log tail (" << tail.size() << " of " << elog.events()
     << " events):\n";
  for (const auto& e : tail) os << "  " << EventLog::to_json_line(e) << "\n";

  auto& em = EngineMetrics::get();
  const auto dump_indexed = [&os](const char* name,
                                  const std::vector<std::uint64_t>& v) {
    os << "watchdog: " << name << ":";
    if (v.empty()) os << " (empty)";
    for (std::size_t i = 0; i < v.size(); ++i) os << " [" << i << "]=" << v[i];
    os << "\n";
  };
  dump_indexed("shard_exchange_ns", em.shard_exchange_ns.values());
  dump_indexed("worker_busy_ns", em.worker_busy_ns.values());
  os << "watchdog: engine totals: rounds=" << em.rounds.value()
     << " messages_delivered=" << em.messages_delivered.value() << "\n";
  os.flush();
}

void Monitor::run() {
  auto& board = ProgressBoard::global();

  // Tick fast enough to honor the watchdog deadline with slack even
  // when the status interval is long.
  int tick_ms = opts_.interval_ms;
  if (opts_.stall_timeout_ms > 0)
    tick_ms = std::min(tick_ms, std::max(10, opts_.stall_timeout_ms / 4));

  ProgressSnapshot last{};
  bool have_last = false;
  std::uint64_t last_progress_ns = now_ns();
  std::uint64_t last_status_ns = 0;
  std::uint64_t last_status_delivered = 0;
  bool dumped = false;

  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;

    ProgressSnapshot snap;
    const bool have_snap = board.read(snap);
    const std::uint64_t now = now_ns();

    if (have_snap &&
        (!have_last || snap.round != last.round ||
         snap.delivered_total != last.delivered_total)) {
      last_progress_ns = now;
      last = snap;
      have_last = true;
      dumped = false;  // progress re-arms the watchdog
    }

    if (now - last_status_ns >=
        static_cast<std::uint64_t>(opts_.interval_ms) * 1000000ull) {
      double rate = -1.0;
      if (have_snap && last_status_ns != 0 && now > last_status_ns)
        rate = static_cast<double>(snap.delivered_total -
                                   last_status_delivered) *
               1e9 / static_cast<double>(now - last_status_ns);
      emit_status(snap, have_snap, rate);
      last_status_ns = now;
      last_status_delivered = have_snap ? snap.delivered_total : 0;
    }

    if (opts_.stall_timeout_ms > 0 && !dumped) {
      const std::uint64_t quiet = now - last_progress_ns;
      if (quiet >=
          static_cast<std::uint64_t>(opts_.stall_timeout_ms) * 1000000ull) {
        dump_stall(last, have_last, quiet);
        dumped = true;
        stalled_.store(true, std::memory_order_relaxed);
        if (opts_.abort_on_stall) std::_Exit(kWatchdogExitCode);
      }
    }
  }
}

}  // namespace lps::telemetry
