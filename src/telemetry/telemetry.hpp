// Telemetry: low-overhead metrics + tracing for every execution layer
// (DESIGN.md §12).
//
// Two cooperating pieces behind two independent runtime switches:
//
//  * MetricsRegistry — named counters, per-index counters, bounded
//    series, and fixed-bucket log-scale latency histograms. All hot-path
//    mutation goes through cache-line-separated per-slot relaxed
//    atomics (the same pattern as the engine's per-worker stat slots);
//    merging happens only on read, so recording is lock-free and
//    wait-free. Gated by telemetry::enabled().
//  * Tracer — Chrome-trace/Perfetto span recorder. Spans carry a static
//    name/category, nanosecond start + duration, the recording thread's
//    stable id, and up to three numeric args. Events land in per-thread
//    buffers (registered once, under a mutex, on each thread's first
//    span) and are folded into one Chrome JSON document on write.
//    Gated by Tracer::recording().
//
// Kill switch contract: compiled out (-DLPS_TELEMETRY=0) both switches
// are constexpr false, so every `if (telemetry::enabled())` block is
// dead code and the hot loops carry zero branches. Compiled in but off
// (the default state), each instrumentation site costs one predictable
// relaxed-load branch and no clock reads.
//
// Naming scheme: `<layer>.<quantity>[_<unit>]` — e.g. engine.round_ns,
// engine.shard_exchange_ns, lca.query_ns, dynamic.update_ns. Span names
// reuse the layer prefix as the Chrome `cat` ("engine", "lca",
// "dynamic", "api").
//
// Threading: recording is safe from any thread. snapshot()/write are
// meant for quiescent moments (between rounds / after a run); they
// tolerate concurrent recording but may observe a torn in-progress
// event count. Tracer::reset() must only run while no other thread is
// emitting.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef LPS_TELEMETRY
#define LPS_TELEMETRY 1
#endif

namespace lps::telemetry {

// ------------------------------------------------------- kill switches --

#if LPS_TELEMETRY
namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}
/// Master switch for metric recording and phase timing. One relaxed
/// load; hot paths branch on it once per phase.
inline bool enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
#else
inline constexpr bool enabled() noexcept { return false; }
#endif

/// Turn metric recording on/off (no-op when compiled out).
void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds (steady_clock). Only meaningful as a
/// difference or a span anchor; the tracer rebases on export.
std::uint64_t now_ns() noexcept;

// ------------------------------------------------------------ histogram --

/// Log-scale bucket layout: values 0..3 get exact buckets, then every
/// octave [2^k, 2^{k+1}) splits into 4 sub-buckets, so the relative
/// quantization error is at most 25% of the bucket's lower bound. 252
/// buckets cover the full uint64 range.
inline constexpr unsigned kSubBits = 2;
inline constexpr unsigned kHistBuckets = 252;
/// Per-slot arrays: threads hash onto slots so concurrent recording
/// never contends on one cache line; sums are order-independent, so
/// merged snapshots are deterministic for a fixed set of recordings.
inline constexpr unsigned kSlots = 32;

constexpr unsigned bucket_of(std::uint64_t v) noexcept {
  if (v < (std::uint64_t{1} << kSubBits)) return static_cast<unsigned>(v);
  const unsigned msb = std::bit_width(v) - 1;  // >= kSubBits
  const unsigned sub = static_cast<unsigned>(
      (v >> (msb - kSubBits)) & ((std::uint64_t{1} << kSubBits) - 1));
  return ((msb - 1) << kSubBits) | sub;
}

/// Inclusive lower bound of bucket b.
constexpr std::uint64_t bucket_lo(unsigned b) noexcept {
  if (b < (1u << kSubBits)) return b;
  const unsigned msb = (b >> kSubBits) + 1;
  const unsigned sub = b & ((1u << kSubBits) - 1);
  return (std::uint64_t{1} << msb) +
         (std::uint64_t{sub} << (msb - kSubBits));
}

/// Exclusive upper bound of bucket b.
constexpr std::uint64_t bucket_hi(unsigned b) noexcept {
  if (b + 1 >= kHistBuckets) return ~std::uint64_t{0};
  return bucket_lo(b + 1);
}

/// A merged, immutable view of a Histogram (also the unit of delta
/// arithmetic: runner snapshots before/after a phase and subtracts).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Percentile in [0, 100], linearly interpolated inside the bucket
  /// containing the rank and clamped to the observed max.
  double percentile(double p) const noexcept;

  HistogramSnapshot& operator-=(const HistogramSnapshot& o) noexcept;
};

class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one value on the calling thread's slot. Lock-free.
  void record(std::uint64_t value) noexcept;
  /// Record on an explicit slot (workers with stable indices).
  void record(std::uint64_t value, unsigned slot) noexcept;

  HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };
  std::unique_ptr<Slot[]> slots_;
};

// ------------------------------------------------------------- counters --

class Counter {
 public:
  Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::unique_ptr<Slot[]> slots_;
};

/// A dense array of counters addressed by small index (shard id, worker
/// id). Capacity matches the engine's shard clamp.
inline constexpr std::size_t kIndexedCapacity = 4096;

class IndexedCounter {
 public:
  IndexedCounter();
  IndexedCounter(const IndexedCounter&) = delete;
  IndexedCounter& operator=(const IndexedCounter&) = delete;

  /// Indices >= kIndexedCapacity are dropped (counted in dropped()).
  void add(std::size_t index, std::uint64_t delta) noexcept;
  /// Values [0, watermark): watermark = highest index ever added + 1.
  std::vector<std::uint64_t> values() const;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::atomic<std::size_t> watermark_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// An append-only bounded series (one value per engine round). Pushes
/// take a mutex — callers push at round granularity, never per message.
class Series {
 public:
  explicit Series(std::size_t capacity = 1 << 16) : capacity_(capacity) {}
  Series(const Series&) = delete;
  Series& operator=(const Series&) = delete;

  void push(std::uint64_t v);
  std::size_t size() const;
  /// Copy of entries [from, size()).
  std::vector<std::uint64_t> values_from(std::size_t from) const;
  std::uint64_t dropped() const;
  void reset();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> values_;
  std::uint64_t dropped_ = 0;
};

// ------------------------------------------------------------- registry --

/// Process-global name -> instrument table. Lookup takes a mutex;
/// instruments are created on first use and never destroyed, so the
/// returned references are stable — hot paths resolve names once (see
/// EngineMetrics) and record lock-free thereafter.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  IndexedCounter& indexed(const std::string& name);
  Series& series(const std::string& name);

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

  /// Zero every instrument (names and references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;
  template <typename T>
  T& get(std::vector<std::pair<std::string, std::unique_ptr<T>>>& table,
         const std::string& name);

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::pair<std::string, std::unique_ptr<IndexedCounter>>>
      indexed_;
  std::vector<std::pair<std::string, std::unique_ptr<Series>>> series_;
};

/// The engine's instruments, resolved once (SyncNetwork is a template;
/// this keeps name lookups out of the round loop). All durations ns.
struct EngineMetrics {
  Counter& rounds;
  Counter& messages_delivered;
  Histogram& round_ns;        // whole run_round
  Histogram& exchange_p1_ns;  // boundary exchange: bin by dest shard
  Histogram& exchange_p2_ns;  // per shard: sort by receiver + scatter
  Histogram& inbox_sort_ns;   // per shard: per-receiver incidence sort
  Histogram& step_ns;         // active-set step loop
  IndexedCounter& shard_exchange_ns;  // phase-2 ns by shard id
  IndexedCounter& worker_busy_ns;     // step-loop ns by worker id
  Series& messages_per_round;         // delivered per round

  static EngineMetrics& get();
};

// --------------------------------------------------------------- tracer --

/// One numeric span argument. Keys must be string literals (stored by
/// pointer).
struct Arg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static Tracer& global();

#if LPS_TELEMETRY
  bool recording() const noexcept {
    return recording_.load(std::memory_order_relaxed);
  }
#else
  constexpr bool recording() const noexcept { return false; }
#endif
  /// Start/stop span collection (no-op when compiled out). Starting
  /// does NOT clear prior events; call reset() for a fresh trace.
  void set_recording(bool on) noexcept;

  /// Drop all recorded events (buffers stay registered). Only call
  /// while no other thread is emitting.
  void reset();
  /// Event cap across all threads; beyond it events are dropped and
  /// counted. Default 1M.
  void set_capacity(std::size_t max_events);

  /// Copy a dynamic string into tracer-owned storage, returning a
  /// pointer usable as a span name/category for the tracer's lifetime.
  const char* intern(const std::string& s);

  /// Label the calling thread in the exported trace ("worker-3").
  /// Registers the thread's buffer even while not recording, so labels
  /// set at thread spawn survive into later traces.
  void set_thread_label(const std::string& label);

  /// Record a complete span ("ph":"X"). `name` and `cat` must outlive
  /// the tracer (string literals or intern()ed). At most 3 args kept.
  void emit(const char* name, const char* cat, std::uint64_t ts_ns,
            std::uint64_t dur_ns, std::initializer_list<Arg> args = {});
  /// Record an instant event ("ph":"i").
  void instant(const char* name, const char* cat,
               std::initializer_list<Arg> args = {});

  std::size_t events() const noexcept;
  std::size_t dropped() const noexcept;

  /// Fold all buffers into one Chrome-trace JSON document
  /// (Perfetto-loadable: {"traceEvents": [...], ...}; ts/dur in
  /// microseconds, rebased to the earliest event).
  void write_chrome_trace(std::ostream& os) const;
  /// Returns false (and writes nothing) when the file cannot open.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
    char ph;  // 'X' or 'i'
    std::uint8_t argc;
    std::array<Arg, 3> args;
  };
  struct Buffer {
    std::uint32_t tid = 0;
    std::string label;
    std::vector<Event> events;
  };

  Tracer() = default;
  Buffer& local_buffer();
  void push(const char* name, const char* cat, std::uint64_t ts_ns,
            std::uint64_t dur_ns, char ph, std::initializer_list<Arg> args);

  std::atomic<bool> recording_{false};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1u << 20};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

}  // namespace lps::telemetry
