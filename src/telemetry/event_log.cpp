#include "telemetry/event_log.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace lps::telemetry {

namespace {

struct KindRow {
  const char* name;
  const char* a;
  const char* b;
  const char* c;
};

// Indexed by EventKind; the wire names are part of the event-log schema
// (DESIGN.md §14) — tools/trace_summary --events depends on them.
constexpr KindRow kKindTable[kEventKinds] = {
    {"round", "delivered", "sent", "stepped"},
    {"exchange", "phase", "shard", "msgs"},
    {"drop", "edge", "from", nullptr},
    {"dup", "edge", "from", nullptr},
    {"delay", "edge", "from", "rounds"},
    {"crash", "vertex", "epoch", nullptr},
    {"revive", "vertex", "epoch", nullptr},
    {"cut", "u", "v", "epoch"},
    {"reinsert", "u", "v", "epoch"},
    {"resync", "sweep", "perturbed", nullptr},
    {"rebuild", "size_before", "size_after", nullptr},
    {"watchdog", "last_round", "delivered", nullptr},
};

}  // namespace

const char* event_kind_name(EventKind k) noexcept {
  const auto i = static_cast<unsigned>(k);
  return i < kEventKinds ? kKindTable[i].name : "unknown";
}

std::array<const char*, 3> event_arg_names(EventKind k) noexcept {
  const auto i = static_cast<unsigned>(k);
  if (i >= kEventKinds) return {nullptr, nullptr, nullptr};
  return {kKindTable[i].a, kKindTable[i].b, kKindTable[i].c};
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::set_recording(bool on) noexcept {
#if LPS_TELEMETRY
  recording_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void EventLog::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buf : buffers_) buf->events.clear();
  total_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void EventLog::set_capacity(std::size_t max_events) {
  capacity_.store(max_events, std::memory_order_relaxed);
}

EventLog::Buffer& EventLog::local_buffer() {
  // One buffer per (thread, EventLog) pair, registered once; the
  // raw pointer stays valid because buffers_ holds unique_ptrs and is
  // never pruned while the process runs (same lifetime contract as
  // Tracer::local_buffer).
  thread_local Buffer* tl_buffer = nullptr;
  thread_local const EventLog* tl_owner = nullptr;
  if (tl_buffer == nullptr || tl_owner != this) {
    auto owned = std::make_unique<Buffer>();
    owned->events.reserve(256);
    Buffer* raw = owned.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(std::move(owned));
    }
    tl_buffer = raw;
    tl_owner = this;
  }
  return *tl_buffer;
}

void EventLog::emit(EventKind kind, std::uint64_t round, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) {
  if (!recording()) return;
  if (total_.fetch_add(1, std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  local_buffer().events.push_back(
      Event{kind, round, static_cast<std::uint64_t>(now_ns()), a, b, c});
}

std::size_t EventLog::events() const noexcept {
  const std::size_t total = total_.load(std::memory_order_relaxed);
  const std::size_t dropped = dropped_.load(std::memory_order_relaxed);
  return total > dropped ? total - dropped : 0;
}

std::size_t EventLog::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buf : buffers_) total += buf->events.size();
    merged.reserve(total);
    for (const auto& buf : buffers_)
      merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& x, const Event& y) {
                     if (x.ns != y.ns) return x.ns < y.ns;
                     return x.round < y.round;
                   });
  return merged;
}

std::vector<Event> EventLog::tail(std::size_t n) const {
  std::vector<Event> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

std::string EventLog::to_json_line(const Event& e) {
  std::ostringstream os;
  os << "{\"ev\":\"" << event_kind_name(e.kind) << "\",\"round\":" << e.round
     << ",\"ns\":" << e.ns;
  const auto names = event_arg_names(e.kind);
  const std::uint64_t args[3] = {e.a, e.b, e.c};
  for (int i = 0; i < 3; ++i) {
    if (names[static_cast<std::size_t>(i)] != nullptr)
      os << ",\"" << names[static_cast<std::size_t>(i)]
         << "\":" << args[i];
  }
  os << "}";
  return os.str();
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const Event& e : snapshot()) os << to_json_line(e) << "\n";
}

bool EventLog::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace lps::telemetry
