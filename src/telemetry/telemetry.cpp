#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace lps::telemetry {

#if LPS_TELEMETRY
namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}
void set_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}
#else
void set_enabled(bool) noexcept {}
#endif

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Stable small id for the calling thread, used to pick metric slots.
/// Ids beyond kSlots wrap — two threads may then share a slot, which
/// only costs atomic contention, never correctness.
unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t v) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ------------------------------------------------------------ histogram --

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the percentile observation, 1-based.
  const double rank =
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) >= rank) {
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = std::min(static_cast<double>(bucket_hi(b)),
                                 static_cast<double>(max) + 1.0);
      return std::min(lo + frac * (hi - lo), static_cast<double>(max));
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

HistogramSnapshot& HistogramSnapshot::operator-=(
    const HistogramSnapshot& o) noexcept {
  count -= o.count;
  sum -= o.sum;
  // max is not subtractable; keep the later (larger-window) max, which
  // upper-bounds the delta's true max.
  for (unsigned b = 0; b < kHistBuckets; ++b) buckets[b] -= o.buckets[b];
  return *this;
}

Histogram::Histogram() : slots_(new Slot[kSlots]) {}

void Histogram::record(std::uint64_t value) noexcept {
  record(value, thread_slot());
}

void Histogram::record(std::uint64_t value, unsigned slot) noexcept {
  Slot& s = slots_[slot % kSlots];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_max(s.max, value);
  s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot out;
  for (unsigned i = 0; i < kSlots; ++i) {
    const Slot& s = slots_[i];
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() noexcept {
  for (unsigned i = 0; i < kSlots; ++i) {
    Slot& s = slots_[i];
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

// ------------------------------------------------------------- counters --

Counter::Counter() : slots_(new Slot[kSlots]) {}

void Counter::add(std::uint64_t delta) noexcept {
  slots_[thread_slot()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kSlots; ++i) {
    total += slots_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (unsigned i = 0; i < kSlots; ++i) {
    slots_[i].v.store(0, std::memory_order_relaxed);
  }
}

IndexedCounter::IndexedCounter()
    : slots_(new std::atomic<std::uint64_t>[kIndexedCapacity]) {
  for (std::size_t i = 0; i < kIndexedCapacity; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void IndexedCounter::add(std::size_t index, std::uint64_t delta) noexcept {
  if (index >= kIndexedCapacity) {
    dropped_.fetch_add(delta, std::memory_order_relaxed);
    return;
  }
  slots_[index].fetch_add(delta, std::memory_order_relaxed);
  std::size_t mark = watermark_.load(std::memory_order_relaxed);
  while (index + 1 > mark && !watermark_.compare_exchange_weak(
                                 mark, index + 1, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> IndexedCounter::values() const {
  const std::size_t n = watermark_.load(std::memory_order_relaxed);
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = slots_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void IndexedCounter::reset() noexcept {
  for (std::size_t i = 0; i < kIndexedCapacity; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  watermark_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- series --

void Series::push(std::uint64_t v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (values_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  values_.push_back(v);
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_.size();
}

std::vector<std::uint64_t> Series::values_from(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from >= values_.size()) return {};
  return {values_.begin() + static_cast<std::ptrdiff_t>(from), values_.end()};
}

std::uint64_t Series::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Series::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
  dropped_ = 0;
}

// ------------------------------------------------------------- registry --

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

template <typename T>
T& MetricsRegistry::get(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& table,
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, value] : table) {
    if (key == name) return *value;
  }
  table.emplace_back(name, std::make_unique<T>());
  return *table.back().second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return get(counters_, name);
}
Histogram& MetricsRegistry::histogram(const std::string& name) {
  return get(histograms_, name);
}
IndexedCounter& MetricsRegistry::indexed(const std::string& name) {
  return get(indexed_, name);
}
Series& MetricsRegistry::series(const std::string& name) {
  return get(series_, name);
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [key, value] : counters_) {
    out.emplace_back(key, value->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, value] : histograms_) {
    out.emplace_back(key, value->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, value] : counters_) value->reset();
  for (auto& [key, value] : histograms_) value->reset();
  for (auto& [key, value] : indexed_) value->reset();
  for (auto& [key, value] : series_) value->reset();
}

EngineMetrics& EngineMetrics::get() {
  static MetricsRegistry& reg = MetricsRegistry::global();
  static EngineMetrics* instance = new EngineMetrics{
      reg.counter("engine.rounds"),
      reg.counter("engine.messages_delivered"),
      reg.histogram("engine.round_ns"),
      reg.histogram("engine.exchange_p1_ns"),
      reg.histogram("engine.exchange_p2_ns"),
      reg.histogram("engine.inbox_sort_ns"),
      reg.histogram("engine.step_ns"),
      reg.indexed("engine.shard_exchange_ns"),
      reg.indexed("engine.worker_busy_ns"),
      reg.series("engine.messages_per_round"),
  };
  return *instance;
}

// --------------------------------------------------------------- tracer --

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::set_recording(bool on) noexcept {
#if LPS_TELEMETRY
  recording_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) buffer->events.clear();
  total_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t max_events) {
  capacity_.store(max_events, std::memory_order_relaxed);
}

const char* Tracer::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : interned_) {
    if (*existing == s) return existing->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

Tracer::Buffer& Tracer::local_buffer() {
  thread_local Buffer* buf = nullptr;
  if (buf == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    buf = buffers_.back().get();
    buf->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  }
  return *buf;
}

void Tracer::set_thread_label(const std::string& label) {
  Buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(mutex_);
  buf.label = label;
}

void Tracer::push(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, char ph,
                  std::initializer_list<Arg> args) {
  if (!recording()) return;
  if (total_.fetch_add(1, std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.ph = ph;
  e.argc = 0;
  for (const Arg& a : args) {
    if (e.argc >= e.args.size()) break;
    e.args[e.argc++] = a;
  }
  local_buffer().events.push_back(e);
}

void Tracer::emit(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, std::initializer_list<Arg> args) {
  push(name, cat, ts_ns, dur_ns, 'X', args);
}

void Tracer::instant(const char* name, const char* cat,
                     std::initializer_list<Arg> args) {
  push(name, cat, now_ns(), 0, 'i', args);
}

std::size_t Tracer::events() const noexcept {
  const std::size_t total = total_.load(std::memory_order_relaxed);
  const std::size_t dropped = dropped_.load(std::memory_order_relaxed);
  return total - std::min(total, dropped);
}

std::size_t Tracer::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

namespace {

/// %g loses no precision for the small integers args usually hold and
/// stays compact for real fractions.
void append_number(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Rebase timestamps to the earliest event so `ts` stays well inside
  // double precision at nanosecond resolution.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const auto& buffer : buffers_) {
    for (const Event& e : buffer->events) t0 = std::min(t0, e.ts_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;

  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  std::string line;
  for (const auto& buffer : buffers_) {
    if (!buffer->label.empty()) {
      line.clear();
      line += first ? "\n" : ",\n";
      first = false;
      line += "{\"ph\": \"M\", \"pid\": 1, \"tid\": ";
      line += std::to_string(buffer->tid);
      line += ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
      line += buffer->label;  // labels are engine-generated, no escaping
      line += "\"}}";
      os << line;
    }
    for (const Event& e : buffer->events) {
      line.clear();
      line += first ? "\n" : ",\n";
      first = false;
      line += "{\"name\": \"";
      line += e.name;
      line += "\", \"cat\": \"";
      line += e.cat;
      line += "\", \"ph\": \"";
      line += e.ph;
      line += "\", \"pid\": 1, \"tid\": ";
      line += std::to_string(buffer->tid);
      line += ", \"ts\": ";
      append_number(line, static_cast<double>(e.ts_ns - t0) / 1000.0);
      if (e.ph == 'X') {
        line += ", \"dur\": ";
        append_number(line, static_cast<double>(e.dur_ns) / 1000.0);
      }
      if (e.argc > 0) {
        line += ", \"args\": {";
        for (std::uint8_t i = 0; i < e.argc; ++i) {
          if (i > 0) line += ", ";
          line += '"';
          line += e.args[i].key;
          line += "\": ";
          append_number(line, e.args[i].value);
        }
        line += '}';
      }
      line += '}';
      os << line;
    }
  }
  os << "\n]}\n";
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace lps::telemetry
