#include "telemetry/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace lps::telemetry {

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << "at byte " << pos_ << ": " << msg;
      *error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          out.kind = JsonValue::Kind::Bool;
          out.boolean = true;
          pos_ += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          out.kind = JsonValue::Kind::Bool;
          out.boolean = false;
          pos_ += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          out.kind = JsonValue::Kind::Null;
          pos_ += 4;
          return true;
        }
        return fail("bad literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!expect('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!expect('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; decode them permissively as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return fail("bad exponent");
    }
    if (!digits) return fail("bad number");
    out.kind = JsonValue::Kind::Number;
    out.number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool structural_fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string* error) {
  return Parser(text, error).parse(out);
}

bool load_chrome_trace(const std::string& text, TraceDoc& out,
                       std::string* error) {
  JsonValue doc;
  if (!parse_json(text, doc, error)) return false;
  if (!doc.is_object()) return structural_fail(error, "root is not an object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return structural_fail(error, "missing traceEvents array");
  }
  out.spans.clear();
  out.thread_names.clear();
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) return structural_fail(error, where + " not an object");
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return structural_fail(error, where + " missing ph");
    }
    if (name == nullptr || !name->is_string()) {
      return structural_fail(error, where + " missing name");
    }
    const JsonValue* tid = e.find("tid");
    const std::uint32_t tid_v =
        (tid != nullptr && tid->is_number())
            ? static_cast<std::uint32_t>(tid->number)
            : 0;
    if (ph->string == "M") {
      if (name->string == "thread_name") {
        const JsonValue* args = e.find("args");
        const JsonValue* label =
            args != nullptr ? args->find("name") : nullptr;
        if (label != nullptr && label->is_string()) {
          out.thread_names[tid_v] = label->string;
        }
      }
      continue;
    }
    TraceSpan span;
    span.name = name->string;
    span.ph = ph->string[0];
    span.tid = tid_v;
    if (const JsonValue* cat = e.find("cat"); cat != nullptr && cat->is_string()) {
      span.cat = cat->string;
    }
    const JsonValue* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return structural_fail(error, where + " missing ts");
    }
    span.ts_us = ts->number;
    if (span.ph == 'X') {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number()) {
        return structural_fail(error, where + " \"X\" event missing dur");
      }
      span.dur_us = dur->number;
    }
    if (const JsonValue* args = e.find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [k, v] : args->object) {
        if (v.is_number()) span.args[k] = v.number;
      }
    }
    out.spans.push_back(std::move(span));
  }
  return true;
}

bool load_chrome_trace_file(const std::string& path, TraceDoc& out,
                            std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return structural_fail(error, "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_chrome_trace(buf.str(), out, error);
}

}  // namespace lps::telemetry
