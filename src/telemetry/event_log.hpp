// EventLog: the structured half of the observability layer (DESIGN.md
// §14). Where the Tracer records *spans* (how long a phase took), the
// EventLog records *facts* — typed, discrete occurrences with a round
// number and a monotonic-ns stamp:
//
//   round boundaries, shard-exchange phases, message-fault injections
//   (drop/dup/delay), vertex crashes and revivals, adversarial edge
//   cuts and re-insertions, client resyncs, maintainer rebuilds, and
//   watchdog dumps.
//
// The vocabulary is deliberately small and closed (EventKind): every
// consumer — the JSONL writer, tools/trace_summary --events, the
// watchdog's tail dump — switches over the same enum, so adding a kind
// is one enum entry plus one row in the name tables below.
//
// Recording follows the Tracer's discipline exactly: per-thread buffers
// registered once under a mutex, relaxed-load recording() gate resolved
// once per round by the engine, a global capacity cap with a dropped
// counter, and merge-on-write. Emission never feeds back into
// execution — an engine run with the event log on is bit-identical to
// one with it off (CTest-enforced across all 8 engine clients).
//
// Kill switch: compiled out (-DLPS_TELEMETRY=0) recording() is
// constexpr false and every emission site is dead code.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace lps::telemetry {

/// The closed event vocabulary. Numeric payloads a/b/c are interpreted
/// per kind (see event_arg_names); unused slots stay 0 and are omitted
/// from the JSONL record.
enum class EventKind : std::uint8_t {
  kRound,        // a=delivered, b=sent, c=stepped
  kExchange,     // a=phase (1|2), b=shard, c=msgs
  kFaultDrop,    // a=edge, b=from
  kFaultDup,     // a=edge, b=from
  kFaultDelay,   // a=edge, b=from, c=extra rounds
  kCrash,        // a=vertex, b=epoch
  kRevive,       // a=vertex, b=epoch
  kAdversarialCut,  // a=u, b=v, c=epoch
  kReinsert,     // a=u, b=v, c=epoch
  kResync,       // a=sweep, b=perturbed nodes
  kRebuild,      // a=size before, b=size after
  kWatchdog,     // a=last observed round, b=delivered total
};
inline constexpr unsigned kEventKinds = 12;

/// Stable wire name of a kind ("round", "crash", ...). Never nullptr.
const char* event_kind_name(EventKind k) noexcept;
/// Per-kind names of the a/b/c payload slots; a slot that does not
/// apply to the kind is nullptr.
std::array<const char*, 3> event_arg_names(EventKind k) noexcept;

/// One recorded event. `round` is the engine round (or fault epoch for
/// the graph-fault kinds); `ns` is telemetry::now_ns at emission.
struct Event {
  EventKind kind;
  std::uint64_t round;
  std::uint64_t ns;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
};

class EventLog {
 public:
  static EventLog& global();

#if LPS_TELEMETRY
  bool recording() const noexcept {
    return recording_.load(std::memory_order_relaxed);
  }
#else
  constexpr bool recording() const noexcept { return false; }
#endif
  /// Start/stop event collection (no-op when compiled out). Starting
  /// does NOT clear prior events; call reset() for a fresh log.
  void set_recording(bool on) noexcept;

  /// Drop all recorded events (buffers stay registered). Only call
  /// while no other thread is emitting.
  void reset();
  /// Event cap across all threads; beyond it events are dropped and
  /// counted. Default 1M.
  void set_capacity(std::size_t max_events);

  /// Record one event on the calling thread's buffer. Safe from any
  /// thread; a no-op unless recording() (callers resolve the gate once
  /// per round/phase, not per event).
  void emit(EventKind kind, std::uint64_t round, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0);

  std::size_t events() const noexcept;
  std::size_t dropped() const noexcept;

  /// All buffers merged and sorted by (ns, round) — the cross-thread
  /// timeline. snapshot()/write are for quiescent moments; they
  /// tolerate concurrent emission but may miss in-flight events.
  std::vector<Event> snapshot() const;
  /// The last `n` events of the merged timeline (the watchdog's dump).
  std::vector<Event> tail(std::size_t n) const;

  /// One JSON object per line: {"ev":"crash","round":3,"ns":...,
  /// "vertex":17,"epoch":3}. Returns false when the file cannot open.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl(const std::string& path) const;

  /// Render one event as its JSONL line (no trailing newline) — shared
  /// by write_jsonl and the watchdog's stderr tail dump.
  static std::string to_json_line(const Event& e);

 private:
  struct Buffer {
    std::vector<Event> events;
  };

  EventLog() = default;
  Buffer& local_buffer();

#if LPS_TELEMETRY
  std::atomic<bool> recording_{false};
#endif
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1u << 20};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace lps::telemetry
