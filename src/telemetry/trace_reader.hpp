// Minimal JSON reader for Chrome-trace documents, shared by
// tools/trace_summary and tests/test_telemetry. This is a consumer-side
// validator — the writer half lives in telemetry.cpp — so it parses
// strict JSON (no comments, no trailing commas) and rejects anything
// malformed instead of guessing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lps::telemetry {

/// A parsed JSON value. Numbers are kept as double (Chrome traces only
/// carry µs timestamps and small args; 2^53 integer precision is ample).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const noexcept { return kind == Kind::Object; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_number() const noexcept { return kind == Kind::Number; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const noexcept;
};

/// Parse a complete JSON document. Returns false (with a position +
/// message in *error when non-null) on any syntax violation, including
/// trailing garbage after the top-level value.
bool parse_json(const std::string& text, JsonValue& out,
                std::string* error = nullptr);

/// One trace event, flattened from the Chrome schema.
struct TraceSpan {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  // 0 for non-"X" events
  std::uint32_t tid = 0;
  std::map<std::string, double> args;  // numeric args only
};

/// A loaded trace: spans plus the thread_name metadata.
struct TraceDoc {
  std::vector<TraceSpan> spans;                     // ph "X" and "i"
  std::map<std::uint32_t, std::string> thread_names;  // from ph "M"
};

/// Parse `text` as a Chrome-trace JSON document ({"traceEvents": [...]}).
/// Returns false with a message when the document is not valid JSON or
/// lacks the required structure (traceEvents array; per-event name/ph/ts;
/// dur on every "X" event).
bool load_chrome_trace(const std::string& text, TraceDoc& out,
                       std::string* error = nullptr);

/// Convenience: read the file then load_chrome_trace.
bool load_chrome_trace_file(const std::string& path, TraceDoc& out,
                            std::string* error = nullptr);

}  // namespace lps::telemetry
