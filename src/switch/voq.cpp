#include "switch/voq.hpp"

#include <deque>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lps {

SwitchMetrics run_switch(const SwitchConfig& config, Scheduler& scheduler) {
  const std::size_t n = config.ports;
  if (config.warmup >= config.slots) {
    throw std::invalid_argument("run_switch: warmup must be < slots");
  }
  const auto lambda = traffic_matrix(config.pattern, n, config.load);
  Rng rng(config.seed);

  // voq[i][j]: FIFO of arrival slots.
  std::vector<std::vector<std::deque<std::uint64_t>>> voq(
      n, std::vector<std::deque<std::uint64_t>>(n));
  QueueMatrix occupancy(n, std::vector<std::uint32_t>(n, 0));

  SwitchMetrics metrics;
  Samples delays;
  StreamingStats queue_depth;
  std::uint64_t measured_arrivals = 0;

  for (std::uint64_t slot = 0; slot < config.slots; ++slot) {
    const bool measuring = slot >= config.warmup;
    // Arrivals.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (lambda[i][j] > 0.0 && rng.bernoulli(lambda[i][j])) {
          voq[i][j].push_back(slot);
          ++occupancy[i][j];
          ++metrics.arrived;
          if (measuring) ++measured_arrivals;
        }
      }
    }
    // Schedule and transfer.
    const std::vector<int> assignment = scheduler.schedule(occupancy);
    std::vector<char> output_used(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int j = assignment[i];
      if (j < 0) continue;
      if (static_cast<std::size_t>(j) >= n || output_used[j]) {
        throw std::logic_error("run_switch: scheduler returned a non-matching");
      }
      output_used[j] = 1;
      if (voq[i][j].empty()) {
        throw std::logic_error("run_switch: scheduler matched an empty VOQ");
      }
      const std::uint64_t arrival = voq[i][j].front();
      voq[i][j].pop_front();
      --occupancy[i][j];
      ++metrics.delivered;
      if (measuring && arrival >= config.warmup) {
        delays.add(static_cast<double>(slot - arrival));
      }
    }
    if (measuring) {
      std::uint64_t total = 0;
      for (const auto& row : occupancy) {
        for (std::uint32_t x : row) total += x;
      }
      queue_depth.add(static_cast<double>(total));
    }
  }

  (void)measured_arrivals;
  // delivered/arrived over the whole run: long runs make the start/end
  // boundary negligible, and a stable switch tends to 1.0 while an
  // overloaded scheduler's backlog grows and the ratio drops.
  metrics.normalized_throughput =
      metrics.arrived > 0 ? static_cast<double>(metrics.delivered) /
                                static_cast<double>(metrics.arrived)
                          : 1.0;
  metrics.mean_delay = delays.count() ? delays.mean() : 0.0;
  metrics.p99_delay = delays.count() ? delays.quantile(0.99) : 0.0;
  metrics.mean_queue = queue_depth.mean();
  return metrics;
}

}  // namespace lps
