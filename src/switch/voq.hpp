// Input-queued crossbar switch simulator with virtual output queues
// (VOQs): the paper's motivating application. Each time slot: Bernoulli
// cell arrivals per (input, output) pair, one scheduling decision, and
// the crossbar transfers at most one cell per input and per output (a
// partial permutation — exactly the matching abstraction of the paper's
// introduction).
#pragma once

#include <cstdint>

#include "switch/schedulers.hpp"
#include "switch/traffic.hpp"

namespace lps {

struct SwitchConfig {
  std::size_t ports = 16;
  std::uint64_t slots = 20000;
  std::uint64_t warmup = 2000;  // slots excluded from delay statistics
  double load = 0.8;
  TrafficPattern pattern = TrafficPattern::kUniform;
  std::uint64_t seed = 1;
};

struct SwitchMetrics {
  std::uint64_t arrived = 0;
  std::uint64_t delivered = 0;
  /// Delivered cells per slot per port, normalized by offered load:
  /// 1.0 means the switch kept up with arrivals.
  double normalized_throughput = 0.0;
  /// Mean/99th-percentile delay in slots over cells that both arrived
  /// and departed after warmup.
  double mean_delay = 0.0;
  double p99_delay = 0.0;
  /// Mean total queue occupancy (cells) over measured slots.
  double mean_queue = 0.0;
};

SwitchMetrics run_switch(const SwitchConfig& config, Scheduler& scheduler);

}  // namespace lps
