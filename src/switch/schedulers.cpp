#include "switch/schedulers.hpp"

#include <algorithm>
#include <numeric>

#include "core/bipartite_mcm.hpp"
#include "graph/graph.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/rng.hpp"

namespace lps {

namespace {

/// Build the bipartite demand graph: inputs [0,n) as X, outputs [n,2n)
/// as Y, one edge per non-empty VOQ. Returns graph + side labels.
std::pair<Graph, std::vector<std::uint8_t>> demand_graph(
    const QueueMatrix& q) {
  const std::size_t n = q.size();
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (q[i][j] > 0) {
        edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(n + j)});
      }
    }
  }
  Graph g(static_cast<NodeId>(2 * n), std::move(edges));
  std::vector<std::uint8_t> side(2 * n, 0);
  for (std::size_t j = 0; j < n; ++j) side[n + j] = 1;
  return {std::move(g), std::move(side)};
}

std::vector<int> matching_to_assignment(const Graph& g, const Matching& m,
                                        std::size_t n) {
  std::vector<int> out(n, -1);
  for (EdgeId e : m.edge_ids(g)) {
    const Edge& ed = g.edge(e);
    out[ed.u] = static_cast<int>(ed.v - n);
  }
  return out;
}

}  // namespace

std::string PimScheduler::name() const {
  return "PIM-" + std::to_string(iterations_);
}

std::vector<int> PimScheduler::schedule(const QueueMatrix& q) {
  const std::size_t n = q.size();
  std::vector<int> input_match(n, -1);
  std::vector<int> output_match(n, -1);
  for (int it = 0; it < iterations_; ++it) {
    // Request: every unmatched input requests all outputs with cells.
    // Grant: every unmatched output grants one request at random.
    std::vector<std::vector<int>> grants(n);  // grants[input] = outputs
    for (std::size_t j = 0; j < n; ++j) {
      if (output_match[j] != -1) continue;
      std::vector<int> requests;
      for (std::size_t i = 0; i < n; ++i) {
        if (input_match[i] == -1 && q[i][j] > 0) {
          requests.push_back(static_cast<int>(i));
        }
      }
      if (requests.empty()) continue;
      const int granted = requests[rng_.below(requests.size())];
      grants[granted].push_back(static_cast<int>(j));
    }
    // Accept: every input with grants accepts one at random.
    bool progress = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (grants[i].empty()) continue;
      const int j = grants[i][rng_.below(grants[i].size())];
      input_match[i] = j;
      output_match[j] = static_cast<int>(i);
      progress = true;
    }
    if (!progress) break;
  }
  return input_match;
}

std::string IslipScheduler::name() const {
  return "iSLIP-" + std::to_string(iterations_);
}

std::vector<int> IslipScheduler::schedule(const QueueMatrix& q) {
  const std::size_t n = q.size();
  if (grant_ptr_.size() != n) {
    grant_ptr_.assign(n, 0);
    accept_ptr_.assign(n, 0);
  }
  std::vector<int> input_match(n, -1);
  std::vector<int> output_match(n, -1);
  for (int it = 0; it < iterations_; ++it) {
    // Grant: each unmatched output grants the first requesting input at
    // or after its grant pointer (round robin).
    std::vector<std::vector<int>> grants(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (output_match[j] != -1) continue;
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (grant_ptr_[j] + step) % n;
        if (input_match[i] == -1 && q[i][j] > 0) {
          grants[i].push_back(static_cast<int>(j));
          break;
        }
      }
    }
    // Accept: each input accepts the first grant at or after its accept
    // pointer; pointers advance only on first-iteration accepts.
    bool progress = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (grants[i].empty()) continue;
      int chosen = -1;
      for (std::size_t step = 0; step < n && chosen == -1; ++step) {
        const std::size_t j = (accept_ptr_[i] + step) % n;
        for (int gj : grants[i]) {
          if (static_cast<std::size_t>(gj) == j) {
            chosen = gj;
            break;
          }
        }
      }
      input_match[i] = chosen;
      output_match[chosen] = static_cast<int>(i);
      progress = true;
      if (it == 0) {
        grant_ptr_[chosen] = (i + 1) % n;
        accept_ptr_[i] = (static_cast<std::size_t>(chosen) + 1) % n;
      }
    }
    if (!progress) break;
  }
  return input_match;
}

std::string GreedyScheduler::name() const { return "Greedy-LQF"; }

std::vector<int> GreedyScheduler::schedule(const QueueMatrix& q) {
  const std::size_t n = q.size();
  struct Cell {
    std::uint32_t len;
    std::size_t i, j;
  };
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (q[i][j] > 0) cells.push_back({q[i][j], i, j});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.len != b.len) return a.len > b.len;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  std::vector<int> input_match(n, -1);
  std::vector<char> output_used(n, 0);
  for (const Cell& c : cells) {
    if (input_match[c.i] == -1 && !output_used[c.j]) {
      input_match[c.i] = static_cast<int>(c.j);
      output_used[c.j] = 1;
    }
  }
  return input_match;
}

std::string MaxSizeScheduler::name() const { return "MaxSize-HK"; }

std::vector<int> MaxSizeScheduler::schedule(const QueueMatrix& q) {
  auto [g, side] = demand_graph(q);
  const Matching m = hopcroft_karp(g, side);
  return matching_to_assignment(g, m, q.size());
}

std::string MaxWeightScheduler::name() const { return "MaxWeight-Hungarian"; }

std::vector<int> MaxWeightScheduler::schedule(const QueueMatrix& q) {
  const std::size_t n = q.size();
  std::vector<std::vector<double>> profit(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      profit[i][j] = static_cast<double>(q[i][j]);
    }
  }
  const AssignmentResult res = max_weight_assignment(profit);
  return res.row_to_col;
}

std::string DistMcmScheduler::name() const {
  return "DistMCM-k" + std::to_string(k_);
}

std::vector<int> DistMcmScheduler::schedule(const QueueMatrix& q) {
  auto [g, side] = demand_graph(q);
  BipartiteMcmOptions opts;
  opts.k = k_;
  opts.seed = splitmix64(seed_ ^ (++slot_ * 0x2545f4914f6cdd1dULL));
  const BipartiteMcmResult res = bipartite_mcm(g, side, opts);
  return matching_to_assignment(g, res.matching, q.size());
}

}  // namespace lps
