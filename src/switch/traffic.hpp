// Traffic models for the input-queued switch application (the paper's
// motivating example: "internal scheduling of a communication switch").
// A pattern is an N x N matrix of per-slot Bernoulli arrival
// probabilities lambda[i][j] (input i -> output j), admissible when all
// row and column sums are <= 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lps {

enum class TrafficPattern {
  kUniform,      // lambda_ij = load / N
  kDiagonal,     // 2/3 load on (i,i), 1/3 on (i, i+1 mod N)
  kLogDiagonal,  // lambda_{i, i+k} proportional to 2^{-k}
  kHotspot,      // half of each input's load on its "home" output
};

std::string to_string(TrafficPattern p);

/// Build the arrival probability matrix; load in [0, 1] is each input's
/// total arrival rate (row sum). All patterns keep column sums == load,
/// so every load < 1 is admissible.
std::vector<std::vector<double>> traffic_matrix(TrafficPattern pattern,
                                                std::size_t ports,
                                                double load);

}  // namespace lps
