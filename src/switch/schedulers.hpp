// Crossbar schedulers. Each slot, a scheduler picks a (partial)
// matching between inputs and outputs over the non-empty VOQs.
//
// Implemented:
//  * PIM    — DEC AN2's Parallel Iterative Matching [3]: random
//             request/grant/accept iterations (the paper notes PIM is
//             built on Israeli–Itai's ideas).
//  * iSLIP  — McKeown's round-robin refinement of PIM [23].
//  * Greedy — longest-queue-first maximal matching.
//  * MaxSize   — Hopcroft–Karp maximum matching oracle (centralized).
//  * MaxWeight — Hungarian maximum-weight (queue lengths) oracle.
//  * DistMCM   — this paper's bipartite (1-1/(k+1))-MCM (Theorem 3.8)
//                used as a switch scheduler: the motivating application
//                of the paper's introduction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lps {

/// q[i][j] = number of cells queued at input i for output j.
using QueueMatrix = std::vector<std::vector<std::uint32_t>>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// For each input, the matched output or -1. The result must be a
  /// matching (each output used at most once) over non-empty VOQs.
  virtual std::vector<int> schedule(const QueueMatrix& q) = 0;
};

class PimScheduler : public Scheduler {
 public:
  explicit PimScheduler(int iterations = 4, std::uint64_t seed = 1)
      : iterations_(iterations), rng_(seed) {}
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;

 private:
  int iterations_;
  Rng rng_;
};

class IslipScheduler : public Scheduler {
 public:
  explicit IslipScheduler(int iterations = 4)
      : iterations_(iterations) {}
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;

 private:
  int iterations_;
  std::vector<std::size_t> grant_ptr_;   // per output
  std::vector<std::size_t> accept_ptr_;  // per input
};

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;
};

class MaxSizeScheduler : public Scheduler {
 public:
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;
};

class MaxWeightScheduler : public Scheduler {
 public:
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;
};

class DistMcmScheduler : public Scheduler {
 public:
  explicit DistMcmScheduler(int k = 2, std::uint64_t seed = 1)
      : k_(k), seed_(seed) {}
  std::string name() const override;
  std::vector<int> schedule(const QueueMatrix& q) override;

 private:
  int k_;
  std::uint64_t seed_;
  std::uint64_t slot_ = 0;
};

}  // namespace lps
