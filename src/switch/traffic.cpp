#include "switch/traffic.hpp"

#include <cmath>
#include <stdexcept>

namespace lps {

std::string to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kDiagonal:
      return "diagonal";
    case TrafficPattern::kLogDiagonal:
      return "logdiagonal";
    case TrafficPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

std::vector<std::vector<double>> traffic_matrix(TrafficPattern pattern,
                                                std::size_t ports,
                                                double load) {
  if (ports == 0) throw std::invalid_argument("traffic_matrix: ports == 0");
  if (load < 0.0 || load > 1.0) {
    throw std::invalid_argument("traffic_matrix: load must be in [0,1]");
  }
  const std::size_t n = ports;
  std::vector<std::vector<double>> lambda(n, std::vector<double>(n, 0.0));
  switch (pattern) {
    case TrafficPattern::kUniform:
      for (auto& row : lambda) {
        for (auto& x : row) x = load / static_cast<double>(n);
      }
      break;
    case TrafficPattern::kDiagonal:
      for (std::size_t i = 0; i < n; ++i) {
        lambda[i][i] += load * 2.0 / 3.0;
        lambda[i][(i + 1) % n] += load / 3.0;
      }
      break;
    case TrafficPattern::kLogDiagonal: {
      // Weights 2^{-k} for offset k = 0..n-1, normalized.
      double norm = 0.0;
      for (std::size_t k = 0; k < n; ++k) norm += std::ldexp(1.0, -(int)k);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          lambda[i][(i + k) % n] = load * std::ldexp(1.0, -(int)k) / norm;
        }
      }
      break;
    }
    case TrafficPattern::kHotspot:
      for (std::size_t i = 0; i < n; ++i) {
        lambda[i][i] += load / 2.0;
        for (std::size_t j = 0; j < n; ++j) {
          lambda[i][j] += load / (2.0 * static_cast<double>(n));
        }
      }
      break;
  }
  return lambda;
}

}  // namespace lps
