#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lps {

void StreamingStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

double Samples::stddev() const noexcept {
  if (data_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : data_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(data_.size() - 1));
}

double Samples::min() const noexcept {
  ensure_sorted();
  return data_.empty() ? 0.0 : data_.front();
}

double Samples::max() const noexcept {
  ensure_sorted();
  return data_.empty() ? 0.0 : data_.back();
}

double Samples::quantile(double q) const {
  if (data_.empty()) throw std::logic_error("quantile of empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  ensure_sorted();
  const double pos = q * static_cast<double>(data_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

}  // namespace lps
