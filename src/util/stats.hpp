// Streaming and batch statistics used by the benchmark harness and the
// runtime's round/bit accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace lps {

/// Welford-style streaming accumulator: count / mean / variance / extrema
/// in O(1) memory. Numerically stable for long benchmark sweeps.
class StreamingStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch sample container with quantiles. Keeps all samples; use for
/// per-experiment result vectors (hundreds to low millions of entries).
class Samples {
 public:
  void add(double x) { data_.push_back(x); }
  std::size_t count() const noexcept { return data_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& data() const noexcept { return data_; }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace lps
