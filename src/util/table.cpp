#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lps {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table needs columns");
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != columns_.size()) {
    throw std::logic_error("Table: previous row incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty() || rows_.back().size() >= columns_.size()) {
    throw std::logic_error("Table: cell without open row");
  }
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print_markdown(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(columns_);
  os << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lps
