// Deterministic random number generation for the whole library.
//
// All randomized algorithms in this repository draw exclusively from
// `lps::Rng` so that every run is reproducible from a single 64-bit seed.
// Distributed algorithms additionally need *per-node, per-round* streams
// that are independent of scheduling order; `Rng::substream` derives such
// streams by hashing (seed, salt...) with SplitMix64.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

namespace lps {

/// SplitMix64 hash step: the standard finalizer used both to seed
/// xoshiro and to derive independent substreams.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Expand the seed into four non-zero state words via SplitMix64.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Fast path for power-of-two bounds.
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform real in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in (0, 1] — never zero, safe for log().
  double uniform01_open() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Fair coin.
  bool coin() noexcept { return ((*this)() & 1u) != 0; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive a statistically independent generator from this seed and a
  /// list of salts. Used for per-(node, round) streams in the runtime:
  /// the stream does not depend on the order in which nodes execute.
  template <typename... Salts>
  static Rng substream(std::uint64_t seed, Salts... salts) noexcept {
    std::uint64_t h = splitmix64(seed);
    ((h = splitmix64(h ^ static_cast<std::uint64_t>(salts))), ...);
    return Rng(h);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lps
