// Arbitrary-precision unsigned counter.
//
// Algorithm 3 of the paper counts augmenting paths per edge; Lemma 3.6
// bounds the counts by Delta^{ceil(d/2)}, which overflows any fixed-width
// integer for even modest Delta and path length. The paper's CONGEST
// implementation (Lemma 3.7) transmits these counts as a pipeline of
// O(log Delta)-bit chunks, most significant first. `BigCounter` is the
// in-memory representation plus exactly that chunked wire format.
//
// Supported operations are the ones the algorithms need: addition,
// subtraction (for weighted-bucket sampling), comparison, chunked
// (de)serialization, logarithms (for order-statistics sampling of the
// token values in the MIS emulation), and uniform sampling below a bound.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lps {

class BigCounter {
 public:
  /// Zero.
  BigCounter() = default;

  /// From a 64-bit value.
  BigCounter(std::uint64_t v);  // NOLINT(google-explicit-constructor)

  BigCounter& operator+=(const BigCounter& rhs);
  friend BigCounter operator+(BigCounter lhs, const BigCounter& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Subtraction; requires *this >= rhs (checked).
  BigCounter& operator-=(const BigCounter& rhs);
  friend BigCounter operator-(BigCounter lhs, const BigCounter& rhs) {
    lhs -= rhs;
    return lhs;
  }

  /// Shift left by `bits` in [0, 63].
  BigCounter& shift_left(int bits);

  std::strong_ordering operator<=>(const BigCounter& rhs) const;
  bool operator==(const BigCounter& rhs) const { return limbs_ == rhs.limbs_; }

  bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_size() const;

  /// log2 of the value; returns -infinity for zero.
  double log2() const;

  /// Nearest double (may be +inf for huge values).
  double to_double() const;

  /// True iff the value fits in uint64_t.
  bool fits_u64() const { return limbs_.size() <= 1; }

  /// Value as uint64_t; requires fits_u64() (checked).
  std::uint64_t to_u64() const;

  /// Decimal string.
  std::string to_string() const;

  /// Serialize to exactly `num_chunks` chunks of `chunk_bits` bits each,
  /// most significant chunk first (the paper's pipelined wire order).
  /// Requires num_chunks * chunk_bits >= bit_size(). chunk_bits in [1,32].
  std::vector<std::uint32_t> to_chunks(int chunk_bits,
                                       std::size_t num_chunks) const;

  /// Inverse of to_chunks.
  static BigCounter from_chunks(const std::vector<std::uint32_t>& chunks,
                                int chunk_bits);

  /// Uniform random value in [0, bound); requires bound > 0 (checked).
  static BigCounter sample_below(const BigCounter& bound, Rng& rng);

 private:
  void normalize();
  /// Extract `count` (<= 32) bits starting at bit `pos` (LSB order).
  std::uint32_t get_bits(std::size_t pos, int count) const;

  // Little-endian limbs; normalized: no trailing zero limbs, empty == 0.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace lps
