// Minimal result-table writer: every bench binary prints the rows the
// paper's evaluation would contain, both human-readable (GitHub-style
// markdown) and machine-readable (CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lps {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Begin a new row; values are appended with `cell`.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::size_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// GitHub-flavored markdown (aligned pipes).
  void print_markdown(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lps
