#include "util/bigint.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lps {

BigCounter::BigCounter(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigCounter::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigCounter& BigCounter::operator+=(const BigCounter& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned __int128 sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint64_t>(carry));
  return *this;
}

BigCounter& BigCounter::operator-=(const BigCounter& rhs) {
  if (*this < rhs) {
    throw std::invalid_argument("BigCounter subtraction would underflow");
  }
  unsigned __int128 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 sub =
        borrow + (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0);
    if (limbs_[i] >= sub) {
      limbs_[i] -= static_cast<std::uint64_t>(sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + limbs_[i] - sub);
      borrow = 1;
    }
  }
  normalize();
  return *this;
}

std::strong_ordering BigCounter::operator<=>(const BigCounter& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigCounter& BigCounter::shift_left(int bits) {
  assert(bits >= 0 && bits < 64);
  if (bits == 0 || limbs_.empty()) return *this;
  std::uint64_t carry = 0;
  for (auto& limb : limbs_) {
    const std::uint64_t next_carry = limb >> (64 - bits);
    limb = (limb << bits) | carry;
    carry = next_carry;
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

std::size_t BigCounter::bit_size() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         static_cast<std::size_t>(std::bit_width(limbs_.back()));
}

double BigCounter::log2() const {
  if (limbs_.empty()) return -std::numeric_limits<double>::infinity();
  // Use the top two limbs for ~128 bits of mantissa information.
  const std::size_t k = limbs_.size();
  long double top = static_cast<long double>(limbs_[k - 1]);
  if (k >= 2) {
    top = top * 18446744073709551616.0L +  // 2^64
          static_cast<long double>(limbs_[k - 2]);
    return static_cast<double>(std::log2(top)) +
           64.0 * static_cast<double>(k - 2);
  }
  return static_cast<double>(std::log2(top));
}

double BigCounter::to_double() const {
  double d = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    d = d * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
    if (std::isinf(d)) return d;
  }
  return d;
}

std::uint64_t BigCounter::to_u64() const {
  if (!fits_u64()) {
    throw std::overflow_error("BigCounter does not fit in uint64_t");
  }
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigCounter::to_string() const {
  if (limbs_.empty()) return "0";
  // Repeated division by 10^9.
  std::vector<std::uint64_t> work = limbs_;
  std::string out;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(rem) << 64) | work[i];
      work[i] = static_cast<std::uint64_t>(cur / 1000000000u);
      rem = static_cast<std::uint64_t>(cur % 1000000000u);
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    // The chunk is 9 decimal digits unless it is the most significant one.
    std::string digits = std::to_string(rem);
    if (!work.empty()) digits.insert(0, 9 - digits.size(), '0');
    out.insert(0, digits);
  }
  return out;
}

std::uint32_t BigCounter::get_bits(std::size_t pos, int count) const {
  assert(count >= 1 && count <= 32);
  std::uint64_t result = 0;
  const std::size_t limb = pos / 64;
  const int offset = static_cast<int>(pos % 64);
  if (limb < limbs_.size()) {
    result = limbs_[limb] >> offset;
    if (offset + count > 64 && limb + 1 < limbs_.size()) {
      result |= limbs_[limb + 1] << (64 - offset);
    }
  }
  const std::uint64_t mask =
      (count == 64) ? ~0ULL : ((std::uint64_t{1} << count) - 1);
  return static_cast<std::uint32_t>(result & mask);
}

std::vector<std::uint32_t> BigCounter::to_chunks(
    int chunk_bits, std::size_t num_chunks) const {
  assert(chunk_bits >= 1 && chunk_bits <= 32);
  if (num_chunks * static_cast<std::size_t>(chunk_bits) < bit_size()) {
    throw std::invalid_argument("BigCounter::to_chunks: too few chunks");
  }
  std::vector<std::uint32_t> chunks(num_chunks);
  // chunks[0] is most significant.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t pos = (num_chunks - 1 - c) *
                            static_cast<std::size_t>(chunk_bits);
    chunks[c] = get_bits(pos, chunk_bits);
  }
  return chunks;
}

BigCounter BigCounter::from_chunks(const std::vector<std::uint32_t>& chunks,
                                   int chunk_bits) {
  assert(chunk_bits >= 1 && chunk_bits <= 32);
  BigCounter result;
  for (const std::uint32_t chunk : chunks) {
    result.shift_left(chunk_bits);
    result += BigCounter(chunk);
  }
  return result;
}

BigCounter BigCounter::sample_below(const BigCounter& bound, Rng& rng) {
  if (bound.is_zero()) {
    throw std::invalid_argument("BigCounter::sample_below: zero bound");
  }
  const std::size_t bits = bound.bit_size();
  const std::size_t full_limbs = bits / 64;
  const int top_bits = static_cast<int>(bits % 64);
  for (;;) {
    BigCounter candidate;
    candidate.limbs_.resize(full_limbs + (top_bits ? 1 : 0));
    for (std::size_t i = 0; i < full_limbs; ++i) candidate.limbs_[i] = rng();
    if (top_bits != 0) {
      candidate.limbs_.back() = rng() >> (64 - top_bits);
    }
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

}  // namespace lps
