#include "util/options.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::map<std::string, std::string> parse_kv_list(const std::string& spec) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    std::string key = eq == std::string::npos ? entry : entry.substr(0, eq);
    std::string value =
        eq == std::string::npos ? std::string("true") : entry.substr(eq + 1);
    key = trim(key);
    if (key.empty()) {
      throw std::invalid_argument("parse_kv_list: empty key in '" + spec + "'");
    }
    if (!out.emplace(key, trim(value)).second) {
      throw std::invalid_argument("parse_kv_list: duplicate key '" + key +
                                  "' in '" + spec + "'");
    }
  }
  return out;
}

std::int64_t parse_int_value(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer for '" + key + "': '" + v + "'");
  }
}

double parse_double_value(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number for '" + key + "': '" + v + "'");
  }
}

bool parse_bool_value(const std::string& key, const std::string& v) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("bad boolean for '" + key + "': '" + v + "'");
}

std::int64_t SpecArgs::require_int(const std::string& key) {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument(prefix() + ": missing required key '" + key +
                                "'");
  }
  used_.push_back(key);
  return parse_int_value(key, it->second);
}

std::int64_t SpecArgs::get_int(const std::string& key, std::int64_t fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.push_back(key);
  return parse_int_value(key, it->second);
}

double SpecArgs::get_double(const std::string& key, double fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.push_back(key);
  return parse_double_value(key, it->second);
}

std::string SpecArgs::get(const std::string& key, const std::string& fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.push_back(key);
  return it->second;
}

void SpecArgs::check_all_used() const {
  for (const auto& [key, _] : values_) {
    if (std::find(used_.begin(), used_.end(), key) == used_.end()) {
      throw std::invalid_argument(prefix() + ": unknown key '" + key + "'");
    }
  }
}

Options::Options(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_int_value("--" + key, it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_double_value("--" + key, it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_bool_value("--" + key, it->second);
}

}  // namespace lps
