// Tiny command-line option parser for the bench and example binaries,
// plus the shared key/value parsing that api::SolverConfig builds on.
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lps {

/// Parse a comma-separated `k1=v1,k2=v2` list into a map; a bare entry
/// without `=` becomes `key -> "true"` (flag form). Whitespace around
/// entries is trimmed. Throws std::invalid_argument on empty keys or
/// duplicate keys.
std::map<std::string, std::string> parse_kv_list(const std::string& spec);

/// Scalar parsers shared by Options and api::SolverConfig; `key` only
/// names the offender in the error message.
std::int64_t parse_int_value(const std::string& key, const std::string& v);
double parse_double_value(const std::string& key, const std::string& v);
bool parse_bool_value(const std::string& key, const std::string& v);

/// kv accessor with required/optional semantics for `family:k=v,...`
/// spec strings (generator specs, update-stream specs). Tracks which
/// keys were consumed so check_all_used() can make typos fail loudly;
/// `context` names the spec kind in error messages ("generator",
/// "update stream", ...).
class SpecArgs {
 public:
  SpecArgs(std::string context, std::string family, const std::string& kv)
      : context_(std::move(context)),
        family_(std::move(family)),
        values_(parse_kv_list(kv)) {}

  std::int64_t require_int(const std::string& key);
  std::int64_t get_int(const std::string& key, std::int64_t fallback);
  double get_double(const std::string& key, double fallback);
  std::string get(const std::string& key, const std::string& fallback);
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Every provided key must have been consumed — typos fail loudly.
  void check_all_used() const;

 private:
  std::string prefix() const { return context_ + " '" + family_ + "'"; }

  std::string context_;
  std::string family_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> used_;
};

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lps
