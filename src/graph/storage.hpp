// GraphStore: the one flat columnar layout every graph consumer reads.
//
// Before this existed the repo kept three copies of every graph: the
// static CSR in `Graph` (AoS Incidence pairs + an AoS edge vector), the
// dynamic adjacency in `DynamicGraph` (vector-of-vectors), and whatever
// snapshot() compacted between them. GraphStore collapses them onto one
// set of flat columns:
//
//   offsets[n+1]            CSR row boundaries (vertex-contiguous, so a
//                           shard's rows are one contiguous byte range)
//   adj_to[2m], adj_edge[2m]  the incidence lists, split into columns —
//                           neighbor-id scans (find_edge's binary search,
//                           degree filters) touch only adj_to and thus
//                           half the cache lines of the old AoS layout
//   edge_u[m], edge_v[m]    endpoint columns, normalized u < v
//   edge_weight[m]          optional weight column ([] = unweighted)
//
// `Graph` wraps a shared_ptr<const GraphStore>, so copying a Graph is a
// refcount bump and the dynamic overlay can hand static solvers, the LCA
// oracles, and the sharded round engine the *same* arrays it reads
// itself (DESIGN.md §11).
//
// Invariant (inherited from the old Graph and relied on throughout):
// each vertex's incidence slice is sorted ascending by neighbor id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lps {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Undirected edge; stored with u < v (normalized on construction).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One incidence-list entry, materialized on demand from the columns.
struct Incidence {
  NodeId to;
  EdgeId edge;
  friend bool operator==(const Incidence&, const Incidence&) = default;
};

/// A zip view over one vertex's slice of (adj_to, adj_edge). Iterators
/// are random-access and yield Incidence by value, so the ubiquitous
/// `for (const Incidence& inc : g.neighbors(v))` loops and the
/// std::lower_bound in find_edge work unchanged on the columnar layout.
class NeighborView {
 public:
  class iterator {
   public:
    using value_type = Incidence;
    using reference = Incidence;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::random_access_iterator_tag;

    iterator() = default;
    iterator(const NodeId* to, const EdgeId* edge) : to_(to), edge_(edge) {}

    Incidence operator*() const { return {*to_, *edge_}; }
    Incidence operator[](difference_type i) const { return {to_[i], edge_[i]}; }

    iterator& operator++() { ++to_; ++edge_; return *this; }
    iterator operator++(int) { iterator t = *this; ++*this; return t; }
    iterator& operator--() { --to_; --edge_; return *this; }
    iterator operator--(int) { iterator t = *this; --*this; return t; }
    iterator& operator+=(difference_type d) { to_ += d; edge_ += d; return *this; }
    iterator& operator-=(difference_type d) { to_ -= d; edge_ -= d; return *this; }
    friend iterator operator+(iterator it, difference_type d) { return it += d; }
    friend iterator operator+(difference_type d, iterator it) { return it += d; }
    friend iterator operator-(iterator it, difference_type d) { return it -= d; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return a.to_ - b.to_;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.to_ == b.to_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.to_ <=> b.to_;
    }

   private:
    const NodeId* to_ = nullptr;
    const EdgeId* edge_ = nullptr;
  };

  NeighborView() = default;
  NeighborView(const NodeId* to, const EdgeId* edge, std::size_t size)
      : to_(to), edge_(edge), size_(size) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  Incidence operator[](std::size_t i) const { return {to_[i], edge_[i]}; }
  Incidence front() const { return (*this)[0]; }
  Incidence back() const { return (*this)[size_ - 1]; }
  iterator begin() const { return {to_, edge_}; }
  iterator end() const { return {to_ + size_, edge_ + size_}; }

  /// Raw column pointers (the engine's inbox precompute reads these).
  const NodeId* to_data() const noexcept { return to_; }
  const EdgeId* edge_data() const noexcept { return edge_; }

 private:
  const NodeId* to_ = nullptr;
  const EdgeId* edge_ = nullptr;
  std::size_t size_ = 0;
};

/// View over the (edge_u, edge_v) columns presenting the old
/// `const std::vector<Edge>&` surface: iteration, indexing, size, ==.
class EdgeListView {
 public:
  class iterator {
   public:
    using value_type = Edge;
    using reference = Edge;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::random_access_iterator_tag;

    iterator() = default;
    iterator(const NodeId* u, const NodeId* v) : u_(u), v_(v) {}
    Edge operator*() const { return {*u_, *v_}; }
    iterator& operator++() { ++u_; ++v_; return *this; }
    iterator operator++(int) { iterator t = *this; ++*this; return t; }
    iterator& operator+=(difference_type d) { u_ += d; v_ += d; return *this; }
    friend iterator operator+(iterator it, difference_type d) { return it += d; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return a.u_ - b.u_;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.u_ == b.u_;
    }

   private:
    const NodeId* u_ = nullptr;
    const NodeId* v_ = nullptr;
  };

  EdgeListView() = default;
  EdgeListView(const NodeId* u, const NodeId* v, std::size_t size)
      : u_(u), v_(v), size_(size) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  Edge operator[](std::size_t i) const { return {u_[i], v_[i]}; }
  iterator begin() const { return {u_, v_}; }
  iterator end() const { return {u_ + size_, v_ + size_}; }

  friend bool operator==(const EdgeListView& a, const EdgeListView& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  const NodeId* u_ = nullptr;
  const NodeId* v_ = nullptr;
  std::size_t size_ = 0;
};

struct GraphStore {
  NodeId n = 0;
  NodeId max_degree = 0;
  std::vector<std::uint64_t> offsets;  // n+1
  std::vector<NodeId> adj_to;          // 2m, sorted per row
  std::vector<EdgeId> adj_edge;        // 2m, parallel to adj_to
  std::vector<NodeId> edge_u;          // m, u < v
  std::vector<NodeId> edge_v;          // m
  std::vector<double> edge_weight;     // m or empty (unweighted)

  EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edge_u.size());
  }
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets[v + 1] - offsets[v]);
  }
  NeighborView row(NodeId v) const {
    const std::uint64_t b = offsets[v];
    return {adj_to.data() + b, adj_edge.data() + b,
            static_cast<std::size_t>(offsets[v + 1] - b)};
  }
  Edge edge(EdgeId e) const { return {edge_u[e], edge_v[e]}; }
  EdgeListView edge_list() const {
    return {edge_u.data(), edge_v.data(), edge_u.size()};
  }

  /// Build from an edge list: normalize endpoints to u < v, reject
  /// self-loops / duplicates / out-of-range endpoints, counting-sort the
  /// incidence columns, establish the sorted-row invariant. `weights`
  /// (when non-empty) must be one per edge. Duplicate detection is
  /// sort-based, O(m log m) with flat memory — no hash table, so
  /// n = 2^24-scale builds stay cheap.
  static GraphStore build(NodeId n, std::vector<Edge> edges,
                          std::vector<double> weights = {});

  /// The shared empty store default-constructed Graphs point at.
  static const std::shared_ptr<const GraphStore>& empty();
};

}  // namespace lps
