#include "graph/io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lps {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

void write_edge_list(std::ostream& os, const WeightedGraph& wg) {
  // The serialization must not depend on the caller's stream state: a
  // stream left in std::fixed would collapse small weights to 0 (which
  // the reader then rejects as non-positive) and hexfloat is unreadable
  // by operator>>. Force defaultfloat + max_digits10 for the weight
  // columns and restore the stream afterwards.
  const std::ios_base::fmtflags flags = os.flags();
  const std::streamsize precision = os.precision();
  os << wg.graph.num_nodes() << ' ' << wg.graph.num_edges() << " w\n";
  os << std::defaultfloat
     << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (EdgeId e = 0; e < wg.graph.num_edges(); ++e) {
    const Edge& ed = wg.graph.edge(e);
    os << ed.u << ' ' << ed.v << ' ' << wg.weights[e] << '\n';
  }
  os.flags(flags);
  os.precision(precision);
}

ParsedGraph read_edge_list(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) {
    throw std::invalid_argument("read_edge_list: empty input");
  }
  std::istringstream hs(header);
  std::uint64_t n = 0, m = 0;
  std::string flag;
  if (!(hs >> n >> m)) {
    throw std::invalid_argument("read_edge_list: bad header");
  }
  const bool weighted = static_cast<bool>(hs >> flag) && flag == "w";
  std::vector<Edge> edges;
  std::vector<double> weights;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(is >> u >> v)) {
      throw std::invalid_argument("read_edge_list: truncated edge list");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
    if (weighted) {
      double w = 0;
      if (!(is >> w)) {
        throw std::invalid_argument("read_edge_list: missing weight");
      }
      weights.push_back(w);
    }
  }
  ParsedGraph out{Graph(static_cast<NodeId>(n), std::move(edges)),
                  std::nullopt};
  if (weighted) {
    // Re-validate through make_weighted (positivity etc.).
    WeightedGraph wg = make_weighted(std::move(out.graph), std::move(weights));
    out.graph = std::move(wg.graph);
    out.weights = std::move(wg.weights);
  }
  return out;
}

}  // namespace lps
