#include "graph/storage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lps {

GraphStore GraphStore::build(NodeId n, std::vector<Edge> edges,
                             std::vector<double> weights) {
  if (!weights.empty() && weights.size() != edges.size()) {
    throw std::invalid_argument("GraphStore: weight column size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("GraphStore: weights must be positive");
    }
  }
  GraphStore s;
  s.n = n;
  const std::size_t m = edges.size();
  s.edge_u.resize(m);
  s.edge_v.resize(m);
  s.edge_weight = std::move(weights);
  for (std::size_t id = 0; id < m; ++id) {
    Edge& e = edges[id];
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("Graph: endpoint out of range");
    }
    if (e.u == e.v) throw std::invalid_argument("Graph: self-loop");
    if (e.u > e.v) std::swap(e.u, e.v);
    s.edge_u[id] = e.u;
    s.edge_v[id] = e.v;
  }
  // Duplicate detection without a hash table: sort packed (u, v) keys
  // and compare neighbors. Flat memory, scales to tens of millions of
  // edges where an unordered_set would thrash.
  {
    std::vector<std::uint64_t> keys(m);
    for (std::size_t id = 0; id < m; ++id) {
      keys[id] = (static_cast<std::uint64_t>(s.edge_u[id]) << 32) |
                 s.edge_v[id];
    }
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      throw std::invalid_argument("Graph: duplicate edge");
    }
  }
  s.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t id = 0; id < m; ++id) {
    ++s.offsets[s.edge_u[id] + 1];
    ++s.offsets[s.edge_v[id] + 1];
  }
  for (NodeId v = 0; v < n; ++v) s.offsets[v + 1] += s.offsets[v];
  s.adj_to.resize(2 * m);
  s.adj_edge.resize(2 * m);
  std::vector<std::uint64_t> cursor(s.offsets.begin(), s.offsets.end() - 1);
  for (std::size_t id = 0; id < m; ++id) {
    const NodeId u = s.edge_u[id];
    const NodeId v = s.edge_v[id];
    std::uint64_t cu = cursor[u]++;
    std::uint64_t cv = cursor[v]++;
    s.adj_to[cu] = v;
    s.adj_edge[cu] = static_cast<EdgeId>(id);
    s.adj_to[cv] = u;
    s.adj_edge[cv] = static_cast<EdgeId>(id);
  }
  // Establish the sorted-row invariant. Lex-sorted edge input already
  // satisfies it, so the sort is usually skipped; the permutation is
  // applied to both columns via an index sort when it is not.
  std::vector<std::uint32_t> perm;
  std::vector<NodeId> tmp_to;
  std::vector<EdgeId> tmp_edge;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t b = s.offsets[v];
    const std::size_t len = static_cast<std::size_t>(s.offsets[v + 1] - b);
    NodeId* to = s.adj_to.data() + b;
    EdgeId* ed = s.adj_edge.data() + b;
    if (std::is_sorted(to, to + len)) continue;
    perm.resize(len);
    for (std::size_t i = 0; i < len; ++i) perm[i] = static_cast<std::uint32_t>(i);
    std::sort(perm.begin(), perm.end(),
              [to](std::uint32_t a, std::uint32_t b2) { return to[a] < to[b2]; });
    tmp_to.assign(to, to + len);
    tmp_edge.assign(ed, ed + len);
    for (std::size_t i = 0; i < len; ++i) {
      to[i] = tmp_to[perm[i]];
      ed[i] = tmp_edge[perm[i]];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    s.max_degree = std::max(s.max_degree, s.degree(v));
  }
  return s;
}

const std::shared_ptr<const GraphStore>& GraphStore::empty() {
  static const std::shared_ptr<const GraphStore> kEmpty = [] {
    auto s = std::make_shared<GraphStore>();
    s->offsets.assign(1, 0);
    return s;
  }();
  return kEmpty;
}

}  // namespace lps
