// Edge-weight models for the weighted-matching experiments, plus the
// adversarial instances that make greedy baselines hit their worst case.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lps {

/// m i.i.d. weights uniform on [lo, hi]; requires 0 < lo <= hi.
std::vector<double> uniform_weights(EdgeId m, double lo, double hi, Rng& rng);

/// m i.i.d. integer weights uniform on {1, ..., max_w}.
std::vector<double> integer_weights(EdgeId m, std::uint64_t max_w, Rng& rng);

/// m i.i.d. Exp(mean) weights, shifted by +1 so they stay positive and
/// the dynamic range stays polynomial.
std::vector<double> exponential_weights(EdgeId m, double mean, Rng& rng);

/// Weights 2^{c_e} for c_e uniform on {0,...,levels-1}: exercises the
/// geometric weight classes of the delta-MWM black box.
std::vector<double> power_of_two_weights(EdgeId m, int levels, Rng& rng);

/// The classic greedy trap: `gadgets` disjoint 3-edge paths with weights
/// (1, 1+eps, 1). A greedy/locally-heaviest algorithm takes the middle
/// edge of each gadget (weight 1+eps) while the optimum takes both outer
/// edges (weight 2), so greedy tends to 1/2 as eps -> 0.
WeightedGraph greedy_trap_path(NodeId gadgets, double eps);

/// Path 0-1-...-n-1 with strictly increasing weights 1,2,...,n-1: the
/// worst case for sequential local propagation (locally heaviest edge
/// algorithms serialize along it).
WeightedGraph increasing_path(NodeId n);

}  // namespace lps
