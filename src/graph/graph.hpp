// Core graph representation: compact CSR adjacency for undirected graphs,
// with stable edge identifiers shared by matchings, weights and the
// distributed runtime (an edge id doubles as a communication channel id).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace lps {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Undirected edge; stored with u < v (normalized on construction).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected graph in CSR form.
///
/// Self-loops and parallel edges are rejected: the matching algorithms
/// and the message model both assume simple graphs (as does the paper).
class Graph {
 public:
  /// Entry in a vertex's incidence list.
  ///
  /// Invariant: each vertex's incidence list is sorted by neighbor id
  /// (ascending), regardless of the order edges were supplied in. Code
  /// may rely on this for binary search (find_edge) and for canonical
  /// per-neighbor iteration order; slot indices into neighbors(v) are
  /// stable for the lifetime of the Graph.
  struct Incidence {
    NodeId to;
    EdgeId edge;
  };

  Graph() = default;

  /// Build from an edge list; endpoints are normalized to u < v.
  /// Throws std::invalid_argument on self-loops, duplicate edges, or
  /// endpoints >= n.
  Graph(NodeId n, std::vector<Edge> edges);

  NodeId num_nodes() const noexcept { return n_; }
  EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// The endpoint of `e` that is not `v`; requires v to be an endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const Edge& ed = edges_[e];
    return ed.u == v ? ed.v : ed.u;
  }

  std::span<const Incidence> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const noexcept { return max_degree_; }

  /// Edge id connecting u and v, or kInvalidEdge. Binary search over the
  /// smaller endpoint's sorted incidence list: O(log min degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// Two-coloring if the graph is bipartite: side[v] in {0,1}; isolated
  /// vertices get side 0. Returns std::nullopt when an odd cycle exists.
  std::optional<std::vector<std::uint8_t>> bipartition() const;

  /// Connected component index per vertex (0-based, by discovery order).
  std::vector<NodeId> components() const;

 private:
  NodeId n_ = 0;
  NodeId max_degree_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  // n_+1
  std::vector<Incidence> adj_;        // 2m
};

/// A graph plus a positive weight per edge.
struct WeightedGraph {
  Graph graph;
  std::vector<double> weights;  // indexed by EdgeId; same size as edges

  double weight(EdgeId e) const { return weights[e]; }
};

/// Validates the weight vector (size match, strictly positive, finite)
/// and assembles a WeightedGraph. Throws std::invalid_argument otherwise.
WeightedGraph make_weighted(Graph graph, std::vector<double> weights);

/// Result of induced-subgraph extraction with mappings back to the parent.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> node_to_parent;  // subgraph node -> parent node
  std::vector<EdgeId> edge_to_parent;  // subgraph edge -> parent edge
  std::vector<NodeId> parent_to_node;  // parent node -> subgraph node or kInvalidNode
};

/// Keep a vertex iff keep_node[v]; keep an edge iff keep_edge[e] and both
/// endpoints are kept. Either mask may be empty meaning "keep all".
Subgraph induced_subgraph(const Graph& g, const std::vector<char>& keep_node,
                          const std::vector<char>& keep_edge);

}  // namespace lps
