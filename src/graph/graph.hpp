// Core graph representation: a thin immutable view over the shared
// columnar GraphStore (storage.hpp) — flat CSR adjacency with stable
// edge identifiers shared by matchings, weights and the distributed
// runtime (an edge id doubles as a communication channel id).
//
// A Graph is a shared_ptr to its store, so copies are refcount bumps
// and a DynamicGraph snapshot can hand solvers the very arrays the
// overlay reads (DESIGN.md §11). All the old call-site idioms keep
// working: `for (const Graph::Incidence& inc : g.neighbors(v))`
// iterates the columnar rows through a zip view.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/storage.hpp"

namespace lps {

/// Immutable undirected graph over columnar CSR storage.
///
/// Self-loops and parallel edges are rejected: the matching algorithms
/// and the message model both assume simple graphs (as does the paper).
class Graph {
 public:
  /// Entry in a vertex's incidence list.
  ///
  /// Invariant: each vertex's incidence list is sorted by neighbor id
  /// (ascending), regardless of the order edges were supplied in. Code
  /// may rely on this for binary search (find_edge) and for canonical
  /// per-neighbor iteration order; slot indices into neighbors(v) are
  /// stable for the lifetime of the Graph.
  using Incidence = lps::Incidence;

  Graph() : store_(GraphStore::empty()) {}

  /// Build from an edge list; endpoints are normalized to u < v.
  /// Throws std::invalid_argument on self-loops, duplicate edges, or
  /// endpoints >= n.
  Graph(NodeId n, std::vector<Edge> edges)
      : store_(std::make_shared<const GraphStore>(
            GraphStore::build(n, std::move(edges)))) {}

  /// Wrap an existing store (zero copy). The store must satisfy the
  /// sorted-incidence invariant; GraphStore::build always does.
  explicit Graph(std::shared_ptr<const GraphStore> store)
      : store_(std::move(store)) {}

  NodeId num_nodes() const noexcept { return store_->n; }
  EdgeId num_edges() const noexcept { return store_->num_edges(); }

  Edge edge(EdgeId e) const { return store_->edge(e); }
  EdgeListView edges() const noexcept { return store_->edge_list(); }

  /// The endpoint of `e` that is not `v`; requires v to be an endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const NodeId u = store_->edge_u[e];
    return u == v ? store_->edge_v[e] : u;
  }

  NeighborView neighbors(NodeId v) const { return store_->row(v); }

  NodeId degree(NodeId v) const { return store_->degree(v); }

  NodeId max_degree() const noexcept { return store_->max_degree; }

  /// Edge id connecting u and v, or kInvalidEdge. Binary search over the
  /// smaller endpoint's sorted neighbor column: O(log min degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// Two-coloring if the graph is bipartite: side[v] in {0,1}; isolated
  /// vertices get side 0. Returns std::nullopt when an odd cycle exists.
  std::optional<std::vector<std::uint8_t>> bipartition() const;

  /// Connected component index per vertex (0-based, by discovery order).
  std::vector<NodeId> components() const;

  /// The underlying columnar store (shared with every copy of this
  /// Graph, and with the DynamicGraph overlay when bridged zero-copy).
  const GraphStore& store() const noexcept { return *store_; }
  const std::shared_ptr<const GraphStore>& store_ptr() const noexcept {
    return store_;
  }

 private:
  std::shared_ptr<const GraphStore> store_;
};

/// A graph plus a positive weight per edge.
struct WeightedGraph {
  Graph graph;
  std::vector<double> weights;  // indexed by EdgeId; same size as edges

  double weight(EdgeId e) const { return weights[e]; }
};

/// Validates the weight vector (size match, strictly positive, finite)
/// and assembles a WeightedGraph. Throws std::invalid_argument otherwise.
WeightedGraph make_weighted(Graph graph, std::vector<double> weights);

/// Result of induced-subgraph extraction with mappings back to the parent.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> node_to_parent;  // subgraph node -> parent node
  std::vector<EdgeId> edge_to_parent;  // subgraph edge -> parent edge
  std::vector<NodeId> parent_to_node;  // parent node -> subgraph node or kInvalidNode
};

/// Keep a vertex iff keep_node[v]; keep an edge iff keep_edge[e] and both
/// endpoints are kept. Either mask may be empty meaning "keep all".
Subgraph induced_subgraph(const Graph& g, const std::vector<char>& keep_node,
                          const std::vector<char>& keep_edge);

}  // namespace lps
