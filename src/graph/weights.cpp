#include "graph/weights.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"

namespace lps {

std::vector<double> uniform_weights(EdgeId m, double lo, double hi, Rng& rng) {
  if (!(0.0 < lo) || !(lo <= hi)) {
    throw std::invalid_argument("uniform_weights: need 0 < lo <= hi");
  }
  std::vector<double> w(m);
  for (auto& x : w) x = lo + (hi - lo) * rng.uniform01();
  return w;
}

std::vector<double> integer_weights(EdgeId m, std::uint64_t max_w, Rng& rng) {
  if (max_w == 0) throw std::invalid_argument("integer_weights: max_w == 0");
  std::vector<double> w(m);
  for (auto& x : w) x = static_cast<double>(1 + rng.below(max_w));
  return w;
}

std::vector<double> exponential_weights(EdgeId m, double mean, Rng& rng) {
  if (!(mean > 0.0)) throw std::invalid_argument("exponential_weights: mean");
  std::vector<double> w(m);
  for (auto& x : w) x = 1.0 - mean * std::log(rng.uniform01_open());
  return w;
}

std::vector<double> power_of_two_weights(EdgeId m, int levels, Rng& rng) {
  if (levels < 1 || levels > 60) {
    throw std::invalid_argument("power_of_two_weights: levels out of range");
  }
  std::vector<double> w(m);
  for (auto& x : w) {
    x = std::ldexp(1.0, static_cast<int>(rng.below(levels)));
  }
  return w;
}

WeightedGraph greedy_trap_path(NodeId gadgets, double eps) {
  std::vector<Edge> edges;
  std::vector<double> weights;
  for (NodeId i = 0; i < gadgets; ++i) {
    const NodeId base = 4 * i;
    edges.push_back({base, base + 1});
    weights.push_back(1.0);
    edges.push_back({base + 1, base + 2});
    weights.push_back(1.0 + eps);
    edges.push_back({base + 2, base + 3});
    weights.push_back(1.0);
  }
  return make_weighted(Graph(4 * gadgets, std::move(edges)),
                       std::move(weights));
}

WeightedGraph increasing_path(NodeId n) {
  Graph g = path_graph(n);
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[e] = static_cast<double>(e + 1);
  }
  return make_weighted(std::move(g), std::move(w));
}

}  // namespace lps
