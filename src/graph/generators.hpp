// Graph generators for tests, examples, and the benchmark workloads.
// Random generators take an explicit Rng so every workload is seedable.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lps {

/// Path 0-1-2-...-(n-1).
Graph path_graph(NodeId n);
/// Cycle on n >= 3 vertices.
Graph cycle_graph(NodeId n);
/// Complete graph K_n.
Graph complete_graph(NodeId n);
/// Star with center 0 and n-1 leaves.
Graph star_graph(NodeId n);
/// rows x cols grid.
Graph grid_graph(NodeId rows, NodeId cols);
/// Complete binary tree on n vertices (heap-indexed).
Graph binary_tree(NodeId n);
/// Complete bipartite K_{a,b}; X side is [0,a), Y side is [a,a+b).
Graph complete_bipartite(NodeId a, NodeId b);

/// Erdős–Rényi G(n,p) via geometric edge skipping (O(n + m) expected).
Graph erdos_renyi(NodeId n, double p, Rng& rng);

/// A bipartite graph along with its side labels.
struct BipartiteGraph {
  Graph graph;
  std::vector<std::uint8_t> side;  // 0 = X, 1 = Y
  NodeId nx = 0;
  NodeId ny = 0;
};

/// Random bipartite graph: each X-Y pair is an edge independently w.p. p.
/// X side is [0,nx), Y side is [nx,nx+ny).
BipartiteGraph random_bipartite(NodeId nx, NodeId ny, double p, Rng& rng);

/// d-regular random bipartite-ish graph used by switch benchmarks:
/// every X node gets exactly d distinct random Y neighbors.
BipartiteGraph random_bipartite_regular_left(NodeId nx, NodeId ny, NodeId d,
                                             Rng& rng);

/// Uniform random labelled tree via Prüfer decoding.
Graph random_tree(NodeId n, Rng& rng);

/// Random d-regular simple graph (configuration model with restarts).
/// Requires n*d even and d < n. Throws after too many failed attempts.
Graph random_regular(NodeId n, NodeId d, Rng& rng);

/// A tightness gadget for the phase ladder of Algorithm 1 / Theorem 3.8:
/// `copies` disjoint paths, each with 2k+1 edges, together with the
/// matching that leaves only the two path endpoints free — the unique
/// augmenting path per copy is the whole path (length 2k+1). An
/// algorithm that only considers augmenting paths of length <= 2k-1
/// finds nothing and is stuck at exactly k/(k+1) of the optimum.
struct TightChain {
  Graph graph;
  std::vector<std::uint8_t> side;  // proper 2-coloring (paths alternate)
  std::vector<EdgeId> matched;     // the pre-matching described above
};
TightChain tight_bipartite_chain(int k, NodeId copies);

}  // namespace lps
