#include "graph/matching.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace lps {

Matching Matching::from_edges(const Graph& g, const std::vector<EdgeId>& ids) {
  Matching m(g.num_nodes());
  for (EdgeId e : ids) m.add(g, e);
  return m;
}

std::vector<EdgeId> Matching::edge_ids(const Graph& g) const {
  std::vector<EdgeId> out;
  out.reserve(size_);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const EdgeId e = match_edge_[v];
    if (e != kInvalidEdge && g.edge(e).u == v) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Matching::add(const Graph& g, EdgeId e) {
  if (e >= g.num_edges()) throw std::invalid_argument("Matching::add: bad id");
  const Edge& ed = g.edge(e);
  if (!is_free(ed.u) || !is_free(ed.v)) {
    throw std::invalid_argument("Matching::add: endpoint already matched");
  }
  match_edge_[ed.u] = e;
  match_edge_[ed.v] = e;
  ++size_;
}

void Matching::remove(const Graph& g, EdgeId e) {
  const Edge& ed = g.edge(e);
  if (match_edge_[ed.u] != e || match_edge_[ed.v] != e) {
    throw std::invalid_argument("Matching::remove: edge not matched");
  }
  match_edge_[ed.u] = kInvalidEdge;
  match_edge_[ed.v] = kInvalidEdge;
  --size_;
}

void Matching::symmetric_difference(const Graph& g,
                                    const std::vector<EdgeId>& s) {
  std::unordered_set<EdgeId> toggles(s.begin(), s.end());
  if (toggles.size() != s.size()) {
    throw std::invalid_argument("symmetric_difference: duplicate edges in P");
  }
  std::vector<EdgeId> result;
  result.reserve(size_ + toggles.size());
  for (EdgeId e : edge_ids(g)) {
    if (auto it = toggles.find(e); it != toggles.end()) {
      toggles.erase(it);  // in both: drops out
    } else {
      result.push_back(e);
    }
  }
  result.insert(result.end(), toggles.begin(), toggles.end());
  *this = from_edges(g, result);  // validates disjointness
}

double Matching::weight(const WeightedGraph& wg) const {
  double total = 0.0;
  for (EdgeId e : edge_ids(wg.graph)) total += wg.weight(e);
  return total;
}

bool is_valid_matching(const Graph& g, const std::vector<EdgeId>& ids) {
  std::vector<char> used(g.num_nodes(), 0);
  for (EdgeId e : ids) {
    if (e >= g.num_edges()) return false;
    const Edge& ed = g.edge(e);
    if (used[ed.u] || used[ed.v]) return false;
    used[ed.u] = used[ed.v] = 1;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const Matching& m) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (m.is_free(ed.u) && m.is_free(ed.v)) return false;
  }
  return true;
}

namespace {

/// Depth-first search over alternating simple paths.
struct AugmentingSearch {
  const Graph& g;
  const Matching& m;
  int max_len;
  std::vector<char> on_path;
  std::vector<EdgeId> path;
  NodeId root = kInvalidNode;

  AugmentingSearch(const Graph& g_in, const Matching& m_in, int max_len_in)
      : g(g_in), m(m_in), max_len(max_len_in), on_path(g_in.num_nodes(), 0) {}

  /// At vertex v with path.size() edges used so far. Returns true when an
  /// augmenting path is completed in `path`.
  bool extend(NodeId v) {
    const int used = static_cast<int>(path.size());
    if (used >= max_len) return false;
    const bool need_unmatched = (used % 2 == 0);
    if (need_unmatched) {
      for (const Graph::Incidence& inc : g.neighbors(v)) {
        if (on_path[inc.to]) continue;
        if (m.contains(g, inc.edge)) continue;
        path.push_back(inc.edge);
        if (m.is_free(inc.to)) return true;  // odd length, free end
        on_path[inc.to] = 1;
        if (extend(inc.to)) return true;
        on_path[inc.to] = 0;
        path.pop_back();
      }
    } else {
      const EdgeId e = m.matched_edge(v);
      // v was reached by an unmatched edge and is matched (else we would
      // have stopped); follow its unique matched edge.
      const NodeId w = g.other_endpoint(e, v);
      if (!on_path[w]) {
        path.push_back(e);
        on_path[w] = 1;
        if (extend(w)) return true;
        on_path[w] = 0;
        path.pop_back();
      }
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<EdgeId>> find_augmenting_path_bounded(
    const Graph& g, const Matching& m, int max_len) {
  if (max_len <= 0) return std::nullopt;
  AugmentingSearch search(g, m, max_len);
  for (NodeId r = 0; r < g.num_nodes(); ++r) {
    if (!m.is_free(r)) continue;
    search.root = r;
    search.on_path[r] = 1;
    if (search.extend(r)) return search.path;
    search.on_path[r] = 0;
  }
  return std::nullopt;
}

int shortest_augmenting_path_length(const Graph& g, const Matching& m,
                                    int cap) {
  for (int len = 1; len <= cap; len += 2) {
    if (auto p = find_augmenting_path_bounded(g, m, len)) {
      return static_cast<int>(p->size());
    }
  }
  return -1;
}

void apply_augmenting_path(const Graph& g, Matching& m,
                           const std::vector<EdgeId>& path) {
  if (path.empty() || path.size() % 2 == 0) {
    throw std::invalid_argument("augmenting path must have odd length");
  }
  // Validate endpoints and alternation by walking the path.
  const Edge& first = g.edge(path.front());
  // Determine the starting endpoint: the one not shared with edge 2 (or
  // either endpoint for a single-edge path).
  NodeId cur;
  if (path.size() == 1) {
    cur = first.u;
  } else {
    const Edge& second = g.edge(path[1]);
    cur = (first.u == second.u || first.u == second.v) ? first.v : first.u;
  }
  if (!m.is_free(cur)) {
    throw std::invalid_argument("augmenting path must start free");
  }
  NodeId walk = cur;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const bool expect_matched = (i % 2 == 1);
    if (m.contains(g, path[i]) != expect_matched) {
      throw std::invalid_argument("augmenting path does not alternate");
    }
    const Edge& ed = g.edge(path[i]);
    if (ed.u != walk && ed.v != walk) {
      throw std::invalid_argument("augmenting path is not connected");
    }
    walk = g.other_endpoint(path[i], walk);
  }
  if (!m.is_free(walk)) {
    throw std::invalid_argument("augmenting path must end free");
  }
  m.symmetric_difference(g, path);
}

std::vector<AlternatingComponent> decompose_symmetric_difference(
    const Graph& g, const Matching& a, const Matching& b) {
  // Collect edges in exactly one of the two matchings.
  std::unordered_set<EdgeId> sym;
  for (EdgeId e : a.edge_ids(g)) sym.insert(e);
  for (EdgeId e : b.edge_ids(g)) {
    if (!sym.insert(e).second) sym.erase(e);
  }
  // Each vertex has degree <= 2 in the symmetric difference.
  std::vector<std::vector<EdgeId>> inc(g.num_nodes());
  for (EdgeId e : sym) {
    inc[g.edge(e).u].push_back(e);
    inc[g.edge(e).v].push_back(e);
  }
  std::vector<char> used_edge(g.num_edges(), 0);
  std::vector<AlternatingComponent> out;

  auto walk_from = [&](NodeId start) {
    AlternatingComponent comp;
    comp.kind = AlternatingComponent::Kind::kPath;
    NodeId cur = start;
    comp.nodes.push_back(cur);
    for (;;) {
      EdgeId next = kInvalidEdge;
      for (EdgeId e : inc[cur]) {
        if (!used_edge[e]) {
          next = e;
          break;
        }
      }
      if (next == kInvalidEdge) break;
      used_edge[next] = 1;
      comp.edges.push_back(next);
      cur = g.other_endpoint(next, cur);
      if (cur == start) {
        comp.kind = AlternatingComponent::Kind::kCycle;
        break;
      }
      comp.nodes.push_back(cur);
    }
    return comp;
  };

  // Paths first: start from degree-1 vertices.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (inc[v].size() == 1 && !used_edge[inc[v][0]]) {
      out.push_back(walk_from(v));
    }
  }
  // Remaining components are cycles.
  for (EdgeId e : sym) {
    if (!used_edge[e]) out.push_back(walk_from(g.edge(e).u));
  }
  return out;
}

}  // namespace lps
