// Matching representation and the verification/analysis oracles used by
// tests and benches: validity, maximality, bounded augmenting-path
// search (exact, used to check the Hopcroft–Karp invariants of
// Lemmas 3.4/3.5), and symmetric-difference decomposition.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lps {

/// A matching over a fixed vertex set, stored as the matched edge id per
/// vertex. All mutating operations validate the matching property.
class Matching {
 public:
  Matching() = default;
  explicit Matching(NodeId n) : match_edge_(n, kInvalidEdge) {}

  /// Build from explicit edge ids; throws if they are not disjoint.
  static Matching from_edges(const Graph& g, const std::vector<EdgeId>& ids);

  NodeId num_nodes() const { return static_cast<NodeId>(match_edge_.size()); }
  std::size_t size() const { return size_; }

  bool is_free(NodeId v) const { return match_edge_[v] == kInvalidEdge; }
  EdgeId matched_edge(NodeId v) const { return match_edge_[v]; }
  NodeId mate(const Graph& g, NodeId v) const {
    return is_free(v) ? kInvalidNode : g.other_endpoint(match_edge_[v], v);
  }
  bool contains(const Graph& g, EdgeId e) const {
    return match_edge_[g.edge(e).u] == e;
  }

  /// Matched edge ids (each once), in increasing id order.
  std::vector<EdgeId> edge_ids(const Graph& g) const;

  /// Add an edge whose endpoints are both free (checked).
  void add(const Graph& g, EdgeId e);
  /// Remove an edge currently in the matching (checked).
  void remove(const Graph& g, EdgeId e);

  /// Replace M by M (xor) S for an arbitrary edge set S; throws if the
  /// result is not a matching. This implements the paper's `M <- M ⊕ P`.
  void symmetric_difference(const Graph& g, const std::vector<EdgeId>& s);

  double weight(const WeightedGraph& wg) const;

  friend bool operator==(const Matching&, const Matching&) = default;

 private:
  std::vector<EdgeId> match_edge_;
  std::size_t size_ = 0;
};

/// True iff the ids form a valid matching (disjoint, in range, no dup).
bool is_valid_matching(const Graph& g, const std::vector<EdgeId>& ids);

/// True iff no graph edge has both endpoints free.
bool is_maximal_matching(const Graph& g, const Matching& m);

/// Exact search for an augmenting path with at most `max_len` edges.
/// Returns the path's edge ids in order, or nullopt. Exponential in
/// max_len in the worst case (branching <= Delta per unmatched step);
/// intended for test oracles and small `max_len`.
std::optional<std::vector<EdgeId>> find_augmenting_path_bounded(
    const Graph& g, const Matching& m, int max_len);

inline bool has_augmenting_path_leq(const Graph& g, const Matching& m,
                                    int max_len) {
  return find_augmenting_path_bounded(g, m, max_len).has_value();
}

/// Length of the shortest augmenting path, scanning odd lengths up to
/// `cap`; returns -1 if none with length <= cap exists.
int shortest_augmenting_path_length(const Graph& g, const Matching& m,
                                    int cap);

/// Validates that `path` is an augmenting path w.r.t. m and applies it.
void apply_augmenting_path(const Graph& g, Matching& m,
                           const std::vector<EdgeId>& path);

/// A connected component of M (xor) M': an alternating path or cycle.
struct AlternatingComponent {
  enum class Kind { kPath, kCycle };
  Kind kind;
  std::vector<NodeId> nodes;  // in walk order (cycle: closing node omitted)
  std::vector<EdgeId> edges;  // |nodes|-1 for paths, |nodes| for cycles
};

/// Decompose the symmetric difference of two matchings into alternating
/// paths and cycles (the structure Lemma 3.9's proof walks over).
std::vector<AlternatingComponent> decompose_symmetric_difference(
    const Graph& g, const Matching& a, const Matching& b);

}  // namespace lps
