// Plain-text edge-list IO: `n m [w]` header, then one `u v [weight]`
// line per edge. Round-trips exactly for integer weights; doubles use
// max_digits10 so round-trips are bit-faithful.
#pragma once

#include <iosfwd>
#include <optional>

#include "graph/graph.hpp"

namespace lps {

void write_edge_list(std::ostream& os, const Graph& g);
void write_edge_list(std::ostream& os, const WeightedGraph& wg);

struct ParsedGraph {
  Graph graph;
  std::optional<std::vector<double>> weights;
};

/// Throws std::invalid_argument on malformed input.
ParsedGraph read_edge_list(std::istream& is);

}  // namespace lps
