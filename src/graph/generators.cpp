#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lps {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph(n, std::move(edges));
}

Graph cycle_graph(NodeId n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n must be >= 3");
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  edges.push_back({0, n - 1});
  return Graph(n, std::move(edges));
}

Graph complete_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph(n, std::move(edges));
}

Graph star_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph(n, std::move(edges));
}

Graph grid_graph(NodeId rows, NodeId cols) {
  std::vector<Edge> edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph binary_tree(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({(v - 1) / 2, v});
  return Graph(n, std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<Edge> edges;
  for (NodeId x = 0; x < a; ++x) {
    for (NodeId y = 0; y < b; ++y) edges.push_back({x, a + y});
  }
  return Graph(a + b, std::move(edges));
}

namespace {

/// Iterate the pairs selected by independent-p sampling using geometric
/// jumps: after the current index, skip Geometric(p) positions.
template <typename Emit>
void sample_pairs(std::uint64_t total, double p, Rng& rng, Emit emit) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) emit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double index = -1.0;
  for (;;) {
    const double skip = std::floor(std::log(rng.uniform01_open()) / log1mp);
    index += skip + 1.0;
    if (index >= static_cast<double>(total)) break;
    emit(static_cast<std::uint64_t>(index));
  }
}

}  // namespace

Graph erdos_renyi(NodeId n, double p, Rng& rng) {
  std::vector<Edge> edges;
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  sample_pairs(total, p, rng, [&](std::uint64_t idx) {
    // Decode linear index to (u,v), u < v, row-major over the triangle.
    const NodeId u = static_cast<NodeId>(
        n - 2 -
        static_cast<NodeId>(std::floor(
            (std::sqrt(8.0 * (static_cast<double>(total - 1 - idx)) + 1.0) -
             1.0) /
            2.0)));
    const std::uint64_t used =
        static_cast<std::uint64_t>(u) * n - static_cast<std::uint64_t>(u) * (u + 1) / 2;
    const NodeId v = static_cast<NodeId>(u + 1 + (idx - used));
    edges.push_back({u, v});
  });
  // The floating-point decode above can go wrong at huge n; verify and
  // fall back to exact decode if needed.
  for (Edge& e : edges) {
    if (e.u >= n || e.v >= n || e.u >= e.v) {
      throw std::logic_error("erdos_renyi: index decode failure");
    }
  }
  return Graph(n, std::move(edges));
}

BipartiteGraph random_bipartite(NodeId nx, NodeId ny, double p, Rng& rng) {
  BipartiteGraph out;
  out.nx = nx;
  out.ny = ny;
  std::vector<Edge> edges;
  sample_pairs(static_cast<std::uint64_t>(nx) * ny, p, rng,
               [&](std::uint64_t idx) {
                 const NodeId x = static_cast<NodeId>(idx / ny);
                 const NodeId y = static_cast<NodeId>(idx % ny);
                 edges.push_back({x, nx + y});
               });
  out.graph = Graph(nx + ny, std::move(edges));
  out.side.assign(nx + ny, 0);
  for (NodeId v = nx; v < nx + ny; ++v) out.side[v] = 1;
  return out;
}

BipartiteGraph random_bipartite_regular_left(NodeId nx, NodeId ny, NodeId d,
                                             Rng& rng) {
  if (d > ny) throw std::invalid_argument("regular_left: d > ny");
  BipartiteGraph out;
  out.nx = nx;
  out.ny = ny;
  std::vector<Edge> edges;
  std::vector<NodeId> pool(ny);
  for (NodeId y = 0; y < ny; ++y) pool[y] = y;
  for (NodeId x = 0; x < nx; ++x) {
    // Partial Fisher–Yates: first d entries become x's neighbors.
    for (NodeId i = 0; i < d; ++i) {
      const NodeId j =
          i + static_cast<NodeId>(rng.below(ny - i));
      std::swap(pool[i], pool[j]);
      edges.push_back({x, nx + pool[i]});
    }
  }
  out.graph = Graph(nx + ny, std::move(edges));
  out.side.assign(nx + ny, 0);
  for (NodeId v = nx; v < nx + ny; ++v) out.side[v] = 1;
  return out;
}

Graph random_tree(NodeId n, Rng& rng) {
  if (n <= 1) return Graph(n, {});
  if (n == 2) return Graph(2, {{0, 1}});
  // Uniform labelled tree via Prüfer sequence decoding.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<NodeId> degree(n, 1);
  for (NodeId x : prufer) ++degree[x];
  std::vector<Edge> edges;
  // Min-leaf extraction with a pointer (cp-algorithms style decode).
  NodeId ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    edges.push_back({leaf, x});
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;  // new leaf below the pointer: use it immediately
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.push_back({leaf, static_cast<NodeId>(n - 1)});
  return Graph(n, std::move(edges));
}

Graph random_regular(NodeId n, NodeId d, Rng& rng) {
  if (static_cast<std::uint64_t>(n) * d % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  if (d >= n) throw std::invalid_argument("random_regular: d must be < n");
  constexpr int kMaxAttempts = 2000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    std::vector<Edge> edges;
    std::unordered_set<std::uint64_t> seen;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!seen.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
        ok = false;
        break;
      }
      edges.push_back({u, v});
    }
    if (ok) return Graph(n, std::move(edges));
  }
  throw std::runtime_error("random_regular: too many rejected pairings");
}

TightChain tight_bipartite_chain(int k, NodeId copies) {
  if (k < 1) throw std::invalid_argument("tight_bipartite_chain: k >= 1");
  // Each copy: vertices c*(2k+2) .. c*(2k+2) + 2k+1, path edges in
  // order; matched edges are the even-indexed ones within the copy
  // (0-indexed positions 1, 3, ..., 2k-1), i.e. every second edge
  // starting from the second — endpoints stay free.
  const NodeId stride = static_cast<NodeId>(2 * k + 2);
  std::vector<Edge> edges;
  std::vector<EdgeId> matched;
  for (NodeId c = 0; c < copies; ++c) {
    const NodeId base = c * stride;
    for (NodeId i = 0; i + 1 < stride; ++i) {
      const EdgeId id = static_cast<EdgeId>(edges.size());
      edges.push_back({base + i, base + i + 1});
      if (i % 2 == 1) matched.push_back(id);
    }
  }
  TightChain out{Graph(copies * stride, std::move(edges)), {}, std::move(matched)};
  out.side.assign(copies * stride, 0);
  for (NodeId v = 0; v < copies * stride; ++v) {
    out.side[v] = static_cast<std::uint8_t>(v % 2);
  }
  return out;
}

}  // namespace lps
