#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lps {

namespace {
std::uint64_t edge_key(const Edge& e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}
}  // namespace

Graph::Graph(NodeId n, std::vector<Edge> edges)
    : n_(n), edges_(std::move(edges)) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges_.size() * 2);
  for (Edge& e : edges_) {
    if (e.u >= n_ || e.v >= n_) {
      throw std::invalid_argument("Graph: endpoint out of range");
    }
    if (e.u == e.v) throw std::invalid_argument("Graph: self-loop");
    if (e.u > e.v) std::swap(e.u, e.v);
    if (!seen.insert(edge_key(e)).second) {
      throw std::invalid_argument("Graph: duplicate edge");
    }
  }
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  adj_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adj_[cursor[e.u]++] = {e.v, id};
    adj_[cursor[e.v]++] = {e.u, id};
  }
  // Establish the sorted-incidence invariant (see Incidence in the
  // header): neighbors ascending within each vertex's list. Lex-sorted
  // edge input already satisfies it, so this is usually a no-op pass.
  for (NodeId v = 0; v < n_; ++v) {
    auto* begin = adj_.data() + offsets_[v];
    auto* end = adj_.data() + offsets_[v + 1];
    if (!std::is_sorted(begin, end, [](const Incidence& a, const Incidence& b) {
          return a.to < b.to;
        })) {
      std::sort(begin, end, [](const Incidence& a, const Incidence& b) {
        return a.to < b.to;
      });
    }
  }
  for (NodeId v = 0; v < n_; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Incidence& inc, NodeId target) { return inc.to < target; });
  if (it != nbrs.end() && it->to == v) return it->edge;
  return kInvalidEdge;
}

std::optional<std::vector<std::uint8_t>> Graph::bipartition() const {
  std::vector<std::uint8_t> side(n_, 2);  // 2 == unvisited
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n_; ++root) {
    if (side[root] != 2) continue;
    side[root] = 0;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : neighbors(v)) {
        if (side[inc.to] == 2) {
          side[inc.to] = static_cast<std::uint8_t>(1 - side[v]);
          stack.push_back(inc.to);
        } else if (side[inc.to] == side[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

std::vector<NodeId> Graph::components() const {
  std::vector<NodeId> comp(n_, kInvalidNode);
  std::vector<NodeId> stack;
  NodeId next = 0;
  for (NodeId root = 0; root < n_; ++root) {
    if (comp[root] != kInvalidNode) continue;
    comp[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : neighbors(v)) {
        if (comp[inc.to] == kInvalidNode) {
          comp[inc.to] = next;
          stack.push_back(inc.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

WeightedGraph make_weighted(Graph graph, std::vector<double> weights) {
  if (weights.size() != graph.num_edges()) {
    throw std::invalid_argument("make_weighted: size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("make_weighted: weights must be positive");
    }
  }
  return WeightedGraph{std::move(graph), std::move(weights)};
}

Subgraph induced_subgraph(const Graph& g, const std::vector<char>& keep_node,
                          const std::vector<char>& keep_edge) {
  const bool all_nodes = keep_node.empty();
  const bool all_edges = keep_edge.empty();
  if (!all_nodes && keep_node.size() != g.num_nodes()) {
    throw std::invalid_argument("induced_subgraph: node mask size");
  }
  if (!all_edges && keep_edge.size() != g.num_edges()) {
    throw std::invalid_argument("induced_subgraph: edge mask size");
  }
  Subgraph out;
  out.parent_to_node.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (all_nodes || keep_node[v]) {
      out.parent_to_node[v] = static_cast<NodeId>(out.node_to_parent.size());
      out.node_to_parent.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!all_edges && !keep_edge[e]) continue;
    const Edge& ed = g.edge(e);
    const NodeId nu = out.parent_to_node[ed.u];
    const NodeId nv = out.parent_to_node[ed.v];
    if (nu == kInvalidNode || nv == kInvalidNode) continue;
    edges.push_back({nu, nv});
    out.edge_to_parent.push_back(e);
  }
  out.graph = Graph(static_cast<NodeId>(out.node_to_parent.size()),
                    std::move(edges));
  return out;
}

}  // namespace lps
