#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lps {

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const GraphStore& s = *store_;
  const NodeId* begin = s.adj_to.data() + s.offsets[u];
  const NodeId* end = s.adj_to.data() + s.offsets[u + 1];
  const NodeId* it = std::lower_bound(begin, end, v);
  if (it != end && *it == v) {
    return s.adj_edge[s.offsets[u] + static_cast<std::size_t>(it - begin)];
  }
  return kInvalidEdge;
}

std::optional<std::vector<std::uint8_t>> Graph::bipartition() const {
  const NodeId n = num_nodes();
  std::vector<std::uint8_t> side(n, 2);  // 2 == unvisited
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (side[root] != 2) continue;
    side[root] = 0;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : neighbors(v)) {
        if (side[inc.to] == 2) {
          side[inc.to] = static_cast<std::uint8_t>(1 - side[v]);
          stack.push_back(inc.to);
        } else if (side[inc.to] == side[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

std::vector<NodeId> Graph::components() const {
  const NodeId n = num_nodes();
  std::vector<NodeId> comp(n, kInvalidNode);
  std::vector<NodeId> stack;
  NodeId next = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (comp[root] != kInvalidNode) continue;
    comp[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : neighbors(v)) {
        if (comp[inc.to] == kInvalidNode) {
          comp[inc.to] = next;
          stack.push_back(inc.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

WeightedGraph make_weighted(Graph graph, std::vector<double> weights) {
  if (weights.size() != graph.num_edges()) {
    throw std::invalid_argument("make_weighted: size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("make_weighted: weights must be positive");
    }
  }
  return WeightedGraph{std::move(graph), std::move(weights)};
}

Subgraph induced_subgraph(const Graph& g, const std::vector<char>& keep_node,
                          const std::vector<char>& keep_edge) {
  const bool all_nodes = keep_node.empty();
  const bool all_edges = keep_edge.empty();
  if (!all_nodes && keep_node.size() != g.num_nodes()) {
    throw std::invalid_argument("induced_subgraph: node mask size");
  }
  if (!all_edges && keep_edge.size() != g.num_edges()) {
    throw std::invalid_argument("induced_subgraph: edge mask size");
  }
  Subgraph out;
  out.parent_to_node.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (all_nodes || keep_node[v]) {
      out.parent_to_node[v] = static_cast<NodeId>(out.node_to_parent.size());
      out.node_to_parent.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!all_edges && !keep_edge[e]) continue;
    const Edge ed = g.edge(e);
    const NodeId nu = out.parent_to_node[ed.u];
    const NodeId nv = out.parent_to_node[ed.v];
    if (nu == kInvalidNode || nv == kInvalidNode) continue;
    edges.push_back({nu, nv});
    out.edge_to_parent.push_back(e);
  }
  out.graph = Graph(static_cast<NodeId>(out.node_to_parent.size()),
                    std::move(edges));
  return out;
}

}  // namespace lps
