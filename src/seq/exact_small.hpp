// Exhaustive exact matching solvers for tiny graphs (n <= 30): the
// oracles that validate Hopcroft–Karp, blossom, and Hungarian, and the
// only exact w(M*) source for *general* weighted graphs in the test
// suite (exact general MWM at scale is out of scope; see DESIGN.md).
#pragma once

#include "graph/matching.hpp"

namespace lps {

/// Exact maximum-cardinality matching by memoized recursion over vertex
/// subsets. Requires n <= 30 (checked). Exponential: use on tiny graphs.
Matching exact_mcm_small(const Graph& g);

/// Exact maximum-weight matching, same technique and limits.
Matching exact_mwm_small(const WeightedGraph& wg);

}  // namespace lps
