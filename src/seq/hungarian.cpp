#include "seq/hungarian.hpp"

#include <limits>
#include <stdexcept>

namespace lps {

AssignmentResult max_weight_assignment(
    const std::vector<std::vector<double>>& profit) {
  const std::size_t rows = profit.size();
  std::size_t cols = 0;
  for (const auto& r : profit) cols = std::max(cols, r.size());
  const std::size_t s = std::max(rows, cols);  // pad to square with zeros
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Minimization form: cost = -profit, padded with 0 (== stay unmatched).
  auto cost = [&](std::size_t i, std::size_t j) -> double {
    if (i < rows && j < profit[i].size()) {
      const double p = profit[i][j];
      if (p < 0.0) {
        throw std::invalid_argument("max_weight_assignment: negative profit");
      }
      return -p;
    }
    return 0.0;
  };

  // 1-based potentials over a square matrix (classic implementation).
  std::vector<double> u(s + 1, 0.0), v(s + 1, 0.0);
  std::vector<std::size_t> p(s + 1, 0), way(s + 1, 0);
  for (std::size_t i = 1; i <= s; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(s + 1, kInf);
    std::vector<char> used(s + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= s; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= s; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult out;
  out.row_to_col.assign(rows, -1);
  for (std::size_t j = 1; j <= s; ++j) {
    const std::size_t i = p[j];
    if (i >= 1 && i <= rows && j <= cols) {
      const std::size_t row = i - 1, col = j - 1;
      if (col < profit[row].size() && profit[row][col] > 0.0) {
        out.row_to_col[row] = static_cast<int>(col);
        out.total_profit += profit[row][col];
      }
    }
  }
  return out;
}

Matching hungarian_mwm(const WeightedGraph& wg,
                       const std::vector<std::uint8_t>& side) {
  const Graph& g = wg.graph;
  if (side.size() != g.num_nodes()) {
    throw std::invalid_argument("hungarian_mwm: side size mismatch");
  }
  std::vector<NodeId> xs, ys;
  std::vector<NodeId> index(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (side[v] == 0) {
      index[v] = static_cast<NodeId>(xs.size());
      xs.push_back(v);
    } else {
      index[v] = static_cast<NodeId>(ys.size());
      ys.push_back(v);
    }
  }
  std::vector<std::vector<double>> profit(xs.size(),
                                          std::vector<double>(ys.size(), 0.0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (side[ed.u] == side[ed.v]) {
      throw std::invalid_argument("hungarian_mwm: side is not a 2-coloring");
    }
    const NodeId x = side[ed.u] == 0 ? ed.u : ed.v;
    const NodeId y = side[ed.u] == 0 ? ed.v : ed.u;
    profit[index[x]][index[y]] = wg.weights[e];
  }
  const AssignmentResult res = max_weight_assignment(profit);
  std::vector<EdgeId> ids;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (res.row_to_col[i] < 0) continue;
    const NodeId x = xs[i];
    const NodeId y = ys[static_cast<std::size_t>(res.row_to_col[i])];
    ids.push_back(g.find_edge(x, y));
  }
  return Matching::from_edges(g, ids);
}

}  // namespace lps
