// Sequential greedy baselines. The paper's introduction: "the greedy
// algorithm (that repeatedly adds the heaviest remaining edge ...) finds
// a 1/2-MCM or 1/2-MWM".
#pragma once

#include "graph/matching.hpp"

namespace lps {

/// Maximal matching by scanning edges in id order (a 1/2-MCM).
Matching greedy_mcm(const Graph& g);

/// Greedy by descending weight (ties by edge id): the classical 1/2-MWM.
Matching greedy_mwm(const WeightedGraph& wg);

/// Locally-heaviest-edge algorithm (Preis-style): repeatedly add any edge
/// that is at least as heavy as all adjacent remaining edges. Produces a
/// 1/2-MWM; implemented with a worklist, O(m log m). With consistent tie
/// breaking its result equals greedy_mwm's weight guarantee but the
/// insertion order differs, which exercises different code paths in
/// verification.
Matching locally_heaviest_mwm(const WeightedGraph& wg);

}  // namespace lps
