// Hungarian algorithm (Jonker–Volgenant potentials, O(n^3)): exact
// maximum-weight assignment, used as the w(M*) oracle on bipartite
// weighted inputs and as the MaxWeight oracle scheduler in the switch
// application.
#pragma once

#include <vector>

#include "graph/matching.hpp"

namespace lps {

struct AssignmentResult {
  /// For each row, the assigned column or -1 (unassigned / zero-profit).
  std::vector<int> row_to_col;
  double total_profit = 0.0;
};

/// Maximum-total-profit assignment for a dense profit matrix. Profits
/// must be >= 0; zero-profit assignments are reported as unassigned.
/// Rows and columns may differ in count.
AssignmentResult max_weight_assignment(
    const std::vector<std::vector<double>>& profit);

/// Exact maximum-weight matching of a bipartite weighted graph.
/// side[v] in {0,1} must 2-color every edge.
Matching hungarian_mwm(const WeightedGraph& wg,
                       const std::vector<std::uint8_t>& side);

}  // namespace lps
