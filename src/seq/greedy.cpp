#include "seq/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace lps {

Matching greedy_mcm(const Graph& g) {
  Matching m(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(g, e);
  }
  return m;
}

Matching greedy_mwm(const WeightedGraph& wg) {
  const Graph& g = wg.graph;
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (wg.weights[a] != wg.weights[b]) return wg.weights[a] > wg.weights[b];
    return a < b;
  });
  Matching m(g.num_nodes());
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(g, e);
  }
  return m;
}

Matching locally_heaviest_mwm(const WeightedGraph& wg) {
  const Graph& g = wg.graph;
  // An edge dominates if no *remaining* adjacent edge is strictly
  // heavier (ties broken by id). Removing matched endpoints can promote
  // new dominant edges, so we process a worklist seeded with all edges.
  auto heavier = [&](EdgeId a, EdgeId b) {
    if (wg.weights[a] != wg.weights[b]) return wg.weights[a] > wg.weights[b];
    return a < b;
  };
  Matching m(g.num_nodes());
  std::vector<char> dead(g.num_edges(), 0);
  auto dominant = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    for (const NodeId endpoint : {ed.u, ed.v}) {
      for (const Graph::Incidence& inc : g.neighbors(endpoint)) {
        if (inc.edge != e && !dead[inc.edge] && heavier(inc.edge, e)) {
          return false;
        }
      }
    }
    return true;
  };
  std::vector<EdgeId> work(g.num_edges());
  std::iota(work.begin(), work.end(), 0);
  while (!work.empty()) {
    std::vector<EdgeId> next;
    bool progress = false;
    for (EdgeId e : work) {
      if (dead[e]) continue;
      if (!dominant(e)) {
        next.push_back(e);
        continue;
      }
      progress = true;
      const Edge& ed = g.edge(e);
      m.add(g, e);
      for (const NodeId endpoint : {ed.u, ed.v}) {
        for (const Graph::Incidence& inc : g.neighbors(endpoint)) {
          dead[inc.edge] = 1;
        }
      }
    }
    if (!progress) break;  // should not happen; defensive
    work = std::move(next);
  }
  return m;
}

}  // namespace lps
