#include "seq/hopcroft_karp.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace lps {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

struct HkState {
  const Graph& g;
  const std::vector<std::uint8_t>& side;
  std::vector<NodeId> mate;       // node -> mate or kInvalidNode
  std::vector<EdgeId> mate_edge;  // node -> matched edge id
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;

  explicit HkState(const Graph& g_in, const std::vector<std::uint8_t>& s)
      : g(g_in),
        side(s),
        mate(g_in.num_nodes(), kInvalidNode),
        mate_edge(g_in.num_nodes(), kInvalidEdge),
        dist(g_in.num_nodes(), kInf) {}

  /// Layered BFS from free X nodes; true iff a free Y node is reachable.
  bool bfs() {
    queue.clear();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (side[v] == 0 && mate[v] == kInvalidNode) {
        dist[v] = 0;
        queue.push_back(v);
      } else if (side[v] == 0) {
        dist[v] = kInf;
      }
    }
    bool reachable_free_y = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      for (const Graph::Incidence& inc : g.neighbors(x)) {
        const NodeId y = inc.to;
        const NodeId xx = mate[y];
        if (xx == kInvalidNode) {
          reachable_free_y = true;
        } else if (dist[xx] == kInf) {
          dist[xx] = dist[x] + 1;
          queue.push_back(xx);
        }
      }
    }
    return reachable_free_y;
  }

  /// Layered DFS augmenting from X node x.
  bool dfs(NodeId x) {
    for (const Graph::Incidence& inc : g.neighbors(x)) {
      const NodeId y = inc.to;
      const NodeId xx = mate[y];
      if (xx == kInvalidNode ||
          (dist[xx] == dist[x] + 1 && dfs(xx))) {
        mate[x] = y;
        mate[y] = x;
        mate_edge[x] = inc.edge;
        mate_edge[y] = inc.edge;
        return true;
      }
    }
    dist[x] = kInf;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const Graph& g, const std::vector<std::uint8_t>& side) {
  if (side.size() != g.num_nodes()) {
    throw std::invalid_argument("hopcroft_karp: side size mismatch");
  }
  for (const Edge& e : g.edges()) {
    if (side[e.u] == side[e.v]) {
      throw std::invalid_argument("hopcroft_karp: side is not a 2-coloring");
    }
  }
  HkState st(g, side);
  while (st.bfs()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (side[v] == 0 && st.mate[v] == kInvalidNode) st.dfs(v);
    }
  }
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (side[v] == 0 && st.mate_edge[v] != kInvalidEdge) {
      ids.push_back(st.mate_edge[v]);
    }
  }
  return Matching::from_edges(g, ids);
}

Matching hopcroft_karp(const Graph& g) {
  auto side = g.bipartition();
  if (!side) throw std::invalid_argument("hopcroft_karp: graph not bipartite");
  return hopcroft_karp(g, *side);
}

}  // namespace lps
