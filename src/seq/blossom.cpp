#include "seq/blossom.hpp"

#include <algorithm>
#include <vector>

namespace lps {

namespace {

/// Classic array-based blossom implementation (contract-and-augment).
struct BlossomSolver {
  const Graph& g;
  const NodeId n;
  std::vector<NodeId> match, parent, base;
  std::vector<char> used, in_blossom;
  std::vector<NodeId> queue;

  explicit BlossomSolver(const Graph& g_in)
      : g(g_in),
        n(g_in.num_nodes()),
        match(n, kInvalidNode),
        parent(n, kInvalidNode),
        base(n, 0),
        used(n, 0),
        in_blossom(n, 0) {}

  NodeId lowest_common_ancestor(NodeId a, NodeId b) {
    std::vector<char> seen(n, 0);
    for (;;) {
      a = base[a];
      seen[a] = 1;
      if (match[a] == kInvalidNode) break;
      a = parent[match[a]];
    }
    for (;;) {
      b = base[b];
      if (seen[b]) return b;
      b = parent[match[b]];
    }
  }

  void mark_path(NodeId v, NodeId stem, NodeId child) {
    while (base[v] != stem) {
      in_blossom[base[v]] = 1;
      in_blossom[base[match[v]]] = 1;
      parent[v] = child;
      child = match[v];
      v = parent[match[v]];
    }
  }

  /// BFS for an augmenting path from `root`; augments and returns true.
  bool find_and_augment(NodeId root) {
    std::fill(used.begin(), used.end(), 0);
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    for (NodeId i = 0; i < n; ++i) base[i] = i;
    used[root] = 1;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const Graph::Incidence& inc : g.neighbors(v)) {
        const NodeId to = inc.to;
        if (base[v] == base[to] || match[v] == to) continue;
        if (to == root ||
            (match[to] != kInvalidNode && parent[match[to]] != kInvalidNode)) {
          // Odd cycle found: contract the blossom.
          const NodeId stem = lowest_common_ancestor(v, to);
          std::fill(in_blossom.begin(), in_blossom.end(), 0);
          mark_path(v, stem, to);
          mark_path(to, stem, v);
          for (NodeId i = 0; i < n; ++i) {
            if (in_blossom[base[i]]) {
              base[i] = stem;
              if (!used[i]) {
                used[i] = 1;
                queue.push_back(i);
              }
            }
          }
        } else if (parent[to] == kInvalidNode) {
          parent[to] = v;
          if (match[to] == kInvalidNode) {
            // Augment along the alternating tree path ending at `to`.
            NodeId u = to;
            while (u != kInvalidNode) {
              const NodeId pv = parent[u];
              const NodeId ppv = match[pv];
              match[u] = pv;
              match[pv] = u;
              u = ppv;
            }
            return true;
          }
          used[match[to]] = 1;
          queue.push_back(match[to]);
        }
      }
    }
    return false;
  }

  void run() {
    // Greedy initialization halves the number of BFS phases in practice.
    for (NodeId v = 0; v < n; ++v) {
      if (match[v] != kInvalidNode) continue;
      for (const Graph::Incidence& inc : g.neighbors(v)) {
        if (match[inc.to] == kInvalidNode) {
          match[v] = inc.to;
          match[inc.to] = v;
          break;
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (match[v] == kInvalidNode) find_and_augment(v);
    }
  }
};

}  // namespace

Matching blossom_mcm(const Graph& g) {
  BlossomSolver solver(g);
  solver.run();
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId u = solver.match[v];
    if (u != kInvalidNode && v < u) {
      const EdgeId e = g.find_edge(v, u);
      ids.push_back(e);
    }
  }
  return Matching::from_edges(g, ids);
}

}  // namespace lps
