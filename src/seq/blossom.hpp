// Edmonds' blossom algorithm: exact maximum-cardinality matching in
// general graphs, O(V^3). Serves as the |M*| oracle for every
// approximation-ratio measurement on non-bipartite inputs.
#pragma once

#include "graph/matching.hpp"

namespace lps {

Matching blossom_mcm(const Graph& g);

}  // namespace lps
