// Hopcroft–Karp exact maximum-cardinality matching for bipartite graphs
// (reference [13] of the paper, whose Lemmas 3.4/3.5 underpin
// Algorithm 1). O(E sqrt(V)).
#pragma once

#include "graph/matching.hpp"

namespace lps {

/// side[v] in {0,1} must be a proper 2-coloring (every edge bichromatic);
/// throws std::invalid_argument otherwise.
Matching hopcroft_karp(const Graph& g, const std::vector<std::uint8_t>& side);

/// Convenience: derives a bipartition (throws if the graph is not
/// bipartite) and runs Hopcroft–Karp.
Matching hopcroft_karp(const Graph& g);

}  // namespace lps
