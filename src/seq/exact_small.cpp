#include "seq/exact_small.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_map>

namespace lps {

namespace {

/// Memoized best value over "used vertex" masks. The recursion always
/// branches on the lowest unused vertex: either leave it unmatched or
/// match it to an unused neighbor, so every matching is explored once.
struct SmallSolver {
  const Graph& g;
  const std::vector<double>* weights;  // null => cardinality
  std::unordered_map<std::uint32_t, double> memo;

  double value(EdgeId e) const { return weights ? (*weights)[e] : 1.0; }

  double best(std::uint32_t used) {
    const std::uint32_t full = (g.num_nodes() == 32)
                                   ? 0xffffffffu
                                   : ((1u << g.num_nodes()) - 1);
    if ((used & full) == full) return 0.0;
    if (auto it = memo.find(used); it != memo.end()) return it->second;
    const NodeId v = static_cast<NodeId>(std::countr_one(used));
    // Option 1: v stays unmatched.
    double result = best(used | (1u << v));
    // Option 2: match v with an unused neighbor.
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      if (used & (1u << inc.to)) continue;
      result = std::max(result, value(inc.edge) +
                                    best(used | (1u << v) | (1u << inc.to)));
    }
    memo.emplace(used, result);
    return result;
  }

  /// Reconstruct one optimal matching by replaying the recursion.
  std::vector<EdgeId> reconstruct() {
    std::vector<EdgeId> ids;
    std::uint32_t used = 0;
    const std::uint32_t full = (g.num_nodes() == 32)
                                   ? 0xffffffffu
                                   : ((1u << g.num_nodes()) - 1);
    while ((used & full) != full) {
      const NodeId v = static_cast<NodeId>(std::countr_one(used));
      const double target = best(used);
      if (best(used | (1u << v)) == target) {
        used |= (1u << v);
        continue;
      }
      bool advanced = false;
      for (const Graph::Incidence& inc : g.neighbors(v)) {
        if (used & (1u << inc.to)) continue;
        const std::uint32_t next = used | (1u << v) | (1u << inc.to);
        if (value(inc.edge) + best(next) == target) {
          ids.push_back(inc.edge);
          used = next;
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        throw std::logic_error("exact_small: reconstruction failed");
      }
    }
    return ids;
  }
};

Matching solve(const Graph& g, const std::vector<double>* weights) {
  if (g.num_nodes() > 30) {
    throw std::invalid_argument("exact_small: graph too large (n > 30)");
  }
  if (g.num_nodes() == 0) return Matching(0);
  SmallSolver solver{g, weights, {}};
  solver.best(0);
  return Matching::from_edges(g, solver.reconstruct());
}

}  // namespace

Matching exact_mcm_small(const Graph& g) { return solve(g, nullptr); }

Matching exact_mwm_small(const WeightedGraph& wg) {
  return solve(wg.graph, &wg.weights);
}

}  // namespace lps
