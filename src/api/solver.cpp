#include "api/solver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace lps::api {

Instance Instance::unweighted(Graph g) {
  Instance out;
  out.wg_.graph = std::move(g);
  return out;
}

Instance Instance::weighted(WeightedGraph wg) {
  if (wg.weights.size() != wg.graph.num_edges()) {
    throw std::invalid_argument("Instance::weighted: weight count mismatch");
  }
  Instance out;
  out.wg_ = std::move(wg);
  out.weighted_ = true;
  return out;
}

Instance& Instance::with_side(std::vector<std::uint8_t> side) {
  if (side.size() != wg_.graph.num_nodes()) {
    throw std::invalid_argument("Instance::with_side: size mismatch");
  }
  side_ = std::move(side);
  return *this;
}

const WeightedGraph& Instance::weighted_graph() const {
  if (!has_weights()) {
    throw std::logic_error("Instance: weighted_graph() on unweighted instance");
  }
  return wg_;
}

std::optional<std::vector<std::uint8_t>> Instance::bipartition() const {
  if (side_.has_value()) return side_;
  return wg_.graph.bipartition();
}

bool Instance::is_bipartite() const {
  return side_.has_value() || wg_.graph.bipartition().has_value();
}

SolverConfig SolverConfig::parse(const std::string& spec) {
  SolverConfig out;
  for (auto& [key, value] : parse_kv_list(spec)) out.set(key, value);
  return out;
}

SolverConfig& SolverConfig::set(const std::string& key,
                                const std::string& value) {
  if (key == "seed") {
    seed(static_cast<std::uint64_t>(parse_int_value(key, value)));
  } else if (key == "shards") {
    shards(static_cast<unsigned>(parse_int_value(key, value)));
  } else {
    values_[key] = value;
  }
  return *this;
}

bool SolverConfig::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string SolverConfig::get(const std::string& key,
                              const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t SolverConfig::get_int(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_int_value(key, it->second);
}

double SolverConfig::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_double_value(key, it->second);
}

bool SolverConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_bool_value(key, it->second);
}

std::string SolverConfig::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ',';
    out += key + '=' + value;
  }
  if (!out.empty()) out += ',';
  out += "seed=" + std::to_string(seed_);
  if (shards_ != 0) out += ",shards=" + std::to_string(shards_);
  return out;
}

void MatchingSolver::validate_config(const SolverConfig& config) const {
  const std::vector<std::string> known = config_keys();
  for (const auto& [key, value] : config.entries()) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("solver '" + name() +
                                  "': unknown config key '" + key + "'");
    }
  }
}

void MatchingSolver::validate(const Instance& instance,
                              const SolverConfig& config) const {
  validate_config(config);
  const Capabilities caps = capabilities();
  if (caps.weighted && !instance.has_weights()) {
    throw std::invalid_argument("solver '" + name() +
                                "' requires edge weights");
  }
  if (!caps.general && !instance.is_bipartite()) {
    throw std::invalid_argument("solver '" + name() +
                                "' requires a bipartite instance");
  }
}

SolveResult MatchingSolver::solve(const Instance& instance,
                                  const SolverConfig& config) const {
  validate(instance, config);
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool ttrace = tracer.recording();
  const std::uint64_t t0 = ttrace ? telemetry::now_ns() : 0;
  const auto start = std::chrono::steady_clock::now();
  SolveResult result = run(instance, config);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (ttrace) {
    tracer.emit(tracer.intern("solve:" + name()), "api", t0,
                telemetry::now_ns() - t0,
                {{"n", static_cast<double>(instance.graph().num_nodes())},
                 {"m", static_cast<double>(instance.graph().num_edges())},
                 {"rounds", static_cast<double>(result.stats.rounds)}});
  }
  return result;
}

}  // namespace lps::api
