// The data-driven run harness: (generator spec, solver name, config,
// seeds, threads) -> structured, machine-readable results. Benches,
// examples, and tests describe *what* to run; the runner owns the
// mechanics — instance construction, thread-pool plumbing, oracle
// resolution, validity auditing, and JSON emission.
//
// Generator specs are `family:k1=v1,k2=v2` strings (util/options kv
// grammar after the colon):
//
//   path:n=16            cycle:n=63          complete:n=16
//   star:n=50            binary_tree:n=31    tree:n=100   (random tree)
//   grid:rows=12,cols=12                     complete_bipartite:a=8,b=8
//   er:n=128,p=0.05      er:n=128,deg=4      (deg -> p = deg/n)
//   bipartite:nx=64,ny=64,p=0.06             (or deg -> p = deg/ny)
//   bipartite_regular:nx=64,ny=64,d=6        regular:n=64,d=4
//   tight_chain:k=3,copies=16
//   greedy_trap:gadgets=16,eps=0.001         increasing_path:n=64
//
// Any family (except the intrinsically weighted last two) takes an
// optional weight model: `w=uniform,wlo=1,whi=100` | `w=integer,
// wmax=64` | `w=exp,wmean=8` | `w=pow2,wlevels=10`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/solver.hpp"

namespace lps::api {

/// Build an Instance from a generator spec; `seed` drives all
/// randomness (graph and weights). Bipartite families attach the side.
Instance make_instance(const std::string& spec, std::uint64_t seed);

struct RunSpec {
  std::string generator;          // generator spec string (see above)
  std::string solver;             // registry name
  std::string config;             // solver config kv list ("" = defaults)
  std::uint64_t instance_seed = 1;
  /// Default solver seed; a `seed=` entry in `config` takes precedence.
  std::uint64_t solver_seed = 1;
  unsigned threads = 1;           // 1 = inline; 0 = hardware concurrency
  /// Round-engine shard count forwarded to the solver: 0 = auto (size
  /// shards to the detected L2 cache), 1 = single shard, k = at most k.
  /// A `shards=` entry in `config` takes precedence. Results are
  /// bit-identical for any value; only locality changes.
  unsigned shards = 0;
  /// "auto" picks the cheapest exact oracle for the instance shape and
  /// falls back to the certified 2x-greedy upper bound at scale;
  /// "none" skips the comparison; any registry name forces that solver.
  std::string oracle = "auto";
  /// When true and the solver accepts the key, the exact optimum is
  /// passed as config `oracle_optimum_size` (Algorithm 4's certified
  /// early exit).
  bool feed_oracle = false;
  /// LCA query-oracle leg (src/lca), run after the solve: "" skips it,
  /// "auto" uses the oracle paired with `solver` (throws when none
  /// exists), any other value names an oracle explicitly. The oracle
  /// runs with the solver's seed; when it pairs with `solver` its
  /// per-edge answers are audited against the global matching.
  std::string lca;
  /// Edge queries to issue: 0 = every edge once (the consistency
  /// sweep); otherwise that many uniform samples with replacement (the
  /// cache-amortization serving scenario).
  std::uint64_t lca_queries = 0;
  /// Oracle memo bound (entries per table); 0 = oracle default.
  std::uint64_t lca_cache = 0;
  /// Dynamic-matching leg (src/dynamic), run after the solve: "" skips
  /// it; otherwise a maintainer name ("greedy" | "repair" | "scratch").
  /// The leg replays `dynamic_stream` through the maintainer and
  /// records updates/sec, recourse per update, and the maintained
  /// matching's approximation against a from-scratch registry solve.
  std::string dynamic;
  /// Update-stream spec (dynamic/stream.hpp grammar, e.g.
  /// "churn:n=4096,m0=8192,updates=20000"). Required when `dynamic` is
  /// set; seeded by instance_seed.
  std::string dynamic_stream;
  /// Maintainer kv config (make_matcher grammar; e.g. "eps=0.1,
  /// interval=16" for repair).
  std::string dynamic_config;
  /// Approximation-vs-time sample points along the stream (snapshots
  /// re-solved through the registry); 0 disables the ratio columns.
  std::uint64_t dynamic_checkpoints = 8;
  /// Fault-injection spec ("" = fault-free): a registered preset name
  /// (src/faults/scenarios) or an explicit `name:key=value,...` plan.
  /// Message-layer faults (drop/dup/delay/reorder) are forwarded to the
  /// solver through its `faults` config key — the run rejects solvers
  /// without one up front. Graph-layer faults (flap/adversarial epochs)
  /// require the dynamic leg: after the update stream a FaultSession
  /// runs `epochs` crash/recover + adversarial-delete epochs against
  /// the maintainer and lands the degradation metrics in the fault_*
  /// fields. Malformed specs throw std::invalid_argument before any
  /// solve work; any fault request throws when the library was built
  /// with -DLPS_FAULTS=0.
  std::string faults;
  /// Collect per-phase metrics (src/telemetry) during the run and attach
  /// the `telemetry` block to the JSON record. One predictable branch
  /// per engine phase; set false for overhead-sensitive measurement.
  /// No-op when the library is built with -DLPS_TELEMETRY=0.
  bool telemetry = true;
  /// When non-empty, record Chrome-trace spans for the whole run and
  /// write them to this path (load in Perfetto / chrome://tracing).
  /// Implies metric collection.
  std::string trace;
  /// When non-empty, record the structured event log (round boundaries,
  /// exchange phases, fault injections, resyncs, rebuilds — see
  /// telemetry/event_log.hpp) and write it as JSONL to this path.
  /// Validate/cross-link with `trace_summary --events`. No events are
  /// recorded when the library is built with -DLPS_TELEMETRY=0 (the
  /// file is still written, empty).
  std::string events;
  /// Live-progress status line period in ms (stderr); 0 = no status
  /// line. Inert when built with -DLPS_TELEMETRY=0.
  unsigned monitor_ms = 0;
  /// Stall-watchdog deadline in ms: when no engine round completes for
  /// this long, dump the event-log tail + per-shard/per-worker counters
  /// to stderr. 0 disables the watchdog.
  unsigned stall_timeout_ms = 0;
  /// After the stall dump, abort the process with
  /// telemetry::kWatchdogExitCode instead of latching and continuing.
  bool stall_abort = false;
  /// Run-ledger destination: "" = default resolution (LPS_LEDGER env,
  /// else bench/ledger.jsonl), "off"/"0" = no append, anything else =
  /// explicit path. Appends are best-effort and never fail the run.
  std::string ledger;
};

/// The per-run telemetry digest attached to RunResult (and the JSON
/// record). All durations ns; phase means are per *round* averages.
struct TelemetrySummary {
  bool enabled = false;   // false = block absent (telemetry off/compiled out)
  std::uint64_t rounds = 0;
  std::uint64_t messages_delivered = 0;
  // Whole-round latency distribution.
  double round_ns_mean = 0.0;
  double round_ns_p50 = 0.0;
  double round_ns_p90 = 0.0;
  double round_ns_p99 = 0.0;
  std::uint64_t round_ns_max = 0;
  // Per-phase means per round (boundary exchange 1/2, inbox sort, step
  // loop).
  double exchange_p1_ns_mean = 0.0;
  double exchange_p2_ns_mean = 0.0;
  double inbox_sort_ns_mean = 0.0;
  double step_ns_mean = 0.0;
  // Per-worker step-loop busy time and the implied stall fraction
  // (1 - busy / (workers * step span); 0 when single-threaded).
  std::vector<std::uint64_t> worker_busy_ns;
  double worker_stall_frac = 0.0;
  // Per-shard phase-2 exchange time: the straggler diagnostic.
  std::uint64_t shards_touched = 0;
  double shard_busy_mean_ns = 0.0;
  std::uint64_t shard_busy_max_ns = 0;
  std::uint64_t hottest_shard = 0;
  double shard_imbalance = 0.0;  // max/mean over touched shards
  // Messages delivered per round, strided to <= 64 samples.
  std::vector<std::uint64_t> messages_per_round;
  std::uint64_t messages_per_round_stride = 1;
  // Optional-leg latency digests (zero when the leg did not run).
  double lca_query_ns_p50 = 0.0;
  double lca_query_ns_p99 = 0.0;
  double dynamic_update_ns_p50 = 0.0;
  double dynamic_update_ns_p99 = 0.0;
  double faults_recovery_ns_p50 = 0.0;
  double faults_recovery_ns_p99 = 0.0;
};

struct RunResult {
  RunSpec spec;
  // Instance shape.
  NodeId n = 0;
  EdgeId m = 0;
  NodeId max_degree = 0;
  bool weighted = false;
  // Solve outcome.
  double wall_ms = 0.0;
  NetStats net;
  std::size_t matching_size = 0;
  double matching_weight = 0.0;
  bool valid = false;
  bool maximal = false;
  bool converged = false;
  double guarantee = 0.0;
  std::map<std::string, double> metrics;
  // Oracle comparison, measured in the *solver's* objective (weight
  // only when the solver optimizes weight, cardinality otherwise — a
  // weight-blind solver on a weighted instance gets the MCM oracle, so
  // its guarantee stays comparable). `optimum` is the exact objective,
  // the certified upper bound, or (for a guarantee-less explicit
  // oracle) a mere reference value; `ratio` = achieved / optimum (-1
  // when the oracle is "none" or the optimum is 0).
  std::string oracle_solver;  // registry name actually used ("" = none)
  std::string optimum_kind;   // "exact" | "upper_bound" | "reference" | "none"
  double optimum = 0.0;
  double ratio = -1.0;
  // LCA query-oracle leg (empty/zero unless spec.lca was set). The
  // probes-per-query column is the subsystem's headline number: it must
  // grow sublinearly in n where a global solve grows at least linearly.
  std::string lca_oracle;          // oracle actually used ("" = none)
  std::uint64_t lca_queries = 0;   // queries actually issued
  double lca_probes_per_query = 0.0;
  double lca_queries_per_sec = 0.0;
  double lca_cache_hit_rate = 0.0;
  /// 1 = every queried edge agreed with the global matching, 0 = some
  /// disagreed, -1 = not audited (oracle not paired with the solver,
  /// or no queries ran).
  int lca_agree = -1;
  // Dynamic leg (zero/empty unless spec.dynamic was set). The headline
  // numbers: updates/sec (the incremental path's throughput, to beat
  // the from-scratch re-solve) and recourse per update (matched-edge
  // flips — how much the answer churns).
  std::string dynamic_maintainer;  // maintainer actually run ("" = none)
  /// Warm-up updates that built the initial graph (off the clock and
  /// outside the recourse accounting; see StreamSpec::bootstrap).
  std::uint64_t dynamic_bootstrap_updates = 0;
  /// Measured churn updates (the stream minus the bootstrap prefix).
  std::uint64_t dynamic_updates = 0;
  double dynamic_updates_per_sec = 0.0;
  double dynamic_recourse_per_update = 0.0;
  std::size_t dynamic_final_size = 0;
  std::uint64_t dynamic_final_edges = 0;  // live edges after the stream
  /// Maintained size / from-scratch registry solve on the same
  /// snapshot, at the final state and as the minimum over checkpoints
  /// (approximation vs time); -1 when checkpoints were disabled.
  double dynamic_ratio = -1.0;
  double dynamic_ratio_min = -1.0;
  std::string dynamic_baseline;  // registry solver used for the ratio
  bool dynamic_valid = false;    // final matching audit passed
  // Fault-injection leg (inert unless spec.faults was set). The
  // headline degradation metrics: every epoch-end audit must pass
  // (fault_all_valid), and fault_min_ratio is the worst epoch-end
  // matching size against the fault-free baseline captured when the
  // session started (-1 when no fault epochs ran).
  std::string fault_plan;   // canonical plan echo ("" = fault-free)
  std::uint64_t fault_epochs = 0;       // fault epochs actually run
  bool fault_all_valid = true;
  double fault_min_ratio = -1.0;
  double fault_final_ratio = -1.0;      // after the terminal heal
  bool fault_final_valid = true;
  std::size_t fault_baseline_size = 0;
  std::uint64_t fault_crashed = 0;      // vertices crashed, all epochs
  std::uint64_t fault_revived = 0;
  std::uint64_t fault_adversarial = 0;  // matched edges adversary cut
  std::uint64_t fault_reinserted = 0;   // parked edges restored
  std::uint64_t fault_recourse = 0;     // matched-edge flips, all epochs
  std::uint64_t fault_recovery_p50_ns = 0;  // per-epoch recovery latency
  std::uint64_t fault_recovery_p99_ns = 0;
  // Per-run telemetry digest (enabled=false when spec.telemetry was
  // off or the library was built with LPS_TELEMETRY=0).
  TelemetrySummary telemetry;
  /// Path the trace was written to ("" = no trace requested/written).
  std::string trace_path;
  /// Path the event log was written to ("" = not requested/failed).
  std::string events_path;
  /// Events recorded during the run (0 when not requested/compiled out).
  std::uint64_t events_recorded = 0;
  /// True when the stall watchdog fired during the run (only reachable
  /// with stall_abort=false; an aborted run never returns).
  bool stalled = false;
  // Provenance stamp (git SHA, build type, resolved threads, record
  // timestamp); filled by run_one.
  std::string prov_git_sha;
  std::string prov_build_type;
  unsigned prov_threads = 0;
  std::string prov_timestamp_utc;

  /// The flat JSON record (one line).
  std::string to_json() const;
};

/// Execute one run end to end. Throws std::invalid_argument on unknown
/// solvers, malformed specs, or capability mismatches.
RunResult run_one(const RunSpec& spec);

/// Write `result.to_json()` to `<dir>/<derived-name>.json` (directories
/// created as needed). Repeated identical specs never overwrite: when
/// the derived path exists the stem gets a `__r2`, `__r3`, ... ordinal
/// suffix. Returns the path actually written. `name_hint` overrides the
/// derived file stem when non-empty (same collision handling).
std::string write_json(const RunResult& result, const std::string& dir,
                       const std::string& name_hint = "");

}  // namespace lps::api
