// Run provenance: the build/environment facts stamped into every
// per-run JSON record so bench/out artifacts can be compared across
// PRs (same generator spec, different git SHA => a real regression;
// different build type => apples to oranges).
#pragma once

#include <string>

#include "api/json.hpp"

namespace lps::api {

struct Provenance {
  std::string git_sha;     // configure-time HEAD ("unknown" outside git)
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  unsigned threads = 0;    // resolved worker count of the run
  std::string timestamp_utc;  // ISO-8601 UTC, per record
};

/// Compile-time facts plus a fresh timestamp; `threads` is the run's
/// resolved worker count (spec.threads with 0 already expanded).
Provenance current_provenance(unsigned threads);

/// The nested object the runner embeds under the "provenance" key.
JsonObject provenance_json(const Provenance& p);

}  // namespace lps::api
