// String-keyed registry of MatchingSolver implementations. Adding an
// algorithm to the system is a registration here, not a new driver:
// benches, examples, and tests all resolve solvers by name and consume
// the uniform solve() interface.
//
// `SolverRegistry::global()` comes pre-populated with every src/core
// and src/seq algorithm (see solvers.cpp for the adapter table).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/solver.hpp"

namespace lps::api {

class SolverRegistry {
 public:
  SolverRegistry() = default;

  /// The process-wide registry with all built-in solvers registered.
  static SolverRegistry& global();

  /// Register a solver; throws std::invalid_argument on a duplicate or
  /// empty name. Solvers must be stateless (solve() is const and may be
  /// called concurrently).
  void add(std::shared_ptr<const MatchingSolver> solver);

  /// nullptr when the name is unknown.
  const MatchingSolver* find(const std::string& name) const noexcept;

  /// Throws std::invalid_argument listing the registered names.
  const MatchingSolver& at(const std::string& name) const;

  bool contains(const std::string& name) const noexcept {
    return find(name) != nullptr;
  }
  std::size_t size() const noexcept { return solvers_.size(); }

  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::shared_ptr<const MatchingSolver>> solvers_;
};

/// Registers every src/core and src/seq algorithm into `registry`
/// (called once by global(); exposed for tests that build their own).
void register_builtin_solvers(SolverRegistry& registry);

}  // namespace lps::api
