// The adapter table: every src/core and src/seq algorithm wrapped as a
// MatchingSolver. Each adapter maps the algorithm's bespoke option
// struct onto the uniform SolverConfig key/value space and folds its
// bespoke result struct into SolveResult (matching + NetStats + named
// metrics). Config keys keep the option-struct field names so the
// mapping stays greppable.
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/class_mwm.hpp"
#include "core/general_mcm.hpp"
#include "core/generic_mcm.hpp"
#include "core/hoepman_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/pipelined_max.hpp"
#include "core/weighted_mwm.hpp"
#include "lca/rank_greedy.hpp"
#include "seq/blossom.hpp"
#include "seq/exact_small.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"

namespace lps::api {
namespace {

/// A solver assembled from plain data plus two lambdas; all built-in
/// adapters are instances of this.
class FunctionSolver final : public MatchingSolver {
 public:
  using RunFn = std::function<SolveResult(const Instance&, const SolverConfig&)>;
  using GuaranteeFn = std::function<double(const SolverConfig&)>;

  FunctionSolver(std::string name, std::string description, Capabilities caps,
                 std::vector<std::string> keys, GuaranteeFn guarantee,
                 RunFn run)
      : name_(std::move(name)),
        description_(std::move(description)),
        caps_(caps),
        keys_(std::move(keys)),
        guarantee_(std::move(guarantee)),
        run_(std::move(run)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  Capabilities capabilities() const override { return caps_; }
  std::vector<std::string> config_keys() const override { return keys_; }
  double guarantee(const SolverConfig& config) const override {
    return guarantee_ ? guarantee_(config) : 0.0;
  }

 protected:
  SolveResult run(const Instance& instance,
                  const SolverConfig& config) const override {
    return run_(instance, config);
  }

 private:
  std::string name_;
  std::string description_;
  Capabilities caps_;
  std::vector<std::string> keys_;
  GuaranteeFn guarantee_;
  RunFn run_;
};

SolveResult make_result(Matching m, NetStats stats = {},
                        bool converged = true) {
  SolveResult out;
  out.matching = std::move(m);
  out.stats = stats;
  out.converged = converged;
  return out;
}

/// The instance's bipartition, required: attached side, else computed,
/// else an error naming the solver.
std::vector<std::uint8_t> require_side(const Instance& instance,
                                       const char* solver) {
  auto side = instance.bipartition();
  if (!side.has_value()) {
    throw std::invalid_argument(std::string("solver '") + solver +
                                "' requires a bipartite instance");
  }
  return std::move(*side);
}

int config_k(const SolverConfig& c) {
  const int k = static_cast<int>(c.get_int("k", 3));
  if (k < 1) throw std::invalid_argument("config: k must be >= 1");
  return k;
}

/// generic_mcm documents eps in (0, 1] (eps = 1 -> k = 1); the other
/// eps consumers require (0, 1) strictly.
double config_eps(const SolverConfig& c, double fallback,
                  bool inclusive_one = false) {
  const double eps = c.get_double("eps", fallback);
  if (eps <= 0.0 || eps > 1.0 || (!inclusive_one && eps == 1.0)) {
    throw std::invalid_argument(std::string("config: eps must be in (0, 1") +
                                (inclusive_one ? "]" : ")"));
  }
  return eps;
}

/// True when the config sets a truncating cap to a nonzero value: the
/// run may stop short of the analysis' budget, so the solver's
/// approximation guarantee no longer applies and guarantee() must
/// report 0. Every cap documents 0 as "use the default budget", which
/// does not truncate.
bool truncated(const SolverConfig& c,
               std::initializer_list<const char*> cap_keys) {
  for (const char* key : cap_keys) {
    if (c.get_int(key, 0) != 0) return true;
  }
  return false;
}

void add(SolverRegistry& reg, std::string name, std::string description,
         Capabilities caps, std::vector<std::string> keys,
         FunctionSolver::GuaranteeFn guarantee, FunctionSolver::RunFn run) {
  reg.add(std::make_shared<FunctionSolver>(
      std::move(name), std::move(description), caps, std::move(keys),
      std::move(guarantee), std::move(run)));
}

// ------------------------------------------------- core (distributed) --

void register_core(SolverRegistry& reg) {
  add(reg, "israeli_itai",
      "Randomized distributed maximal matching (1/2-MCM baseline, "
      "O(log n) rounds w.h.p.) [Israeli & Itai 1986]",
      {.bipartite = true, .general = true, .distributed = true,
       .maximal = true},
      {"max_phases", "faults"},
      [](const SolverConfig& c) {
        // Under injected faults maximality is best-effort (resync may
        // exhaust its budget), so the 1/2 guarantee no longer applies.
        if (!c.get("faults", "").empty()) return 0.0;
        return truncated(c, {"max_phases"}) ? 0.0 : 0.5;
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        IsraeliItaiOptions o;
        o.seed = cfg.seed();
        o.max_phases = static_cast<std::uint64_t>(cfg.get_int("max_phases", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        o.faults = cfg.get("faults", "");
        auto res = israeli_itai(inst.graph(), o);
        SolveResult out =
            make_result(std::move(res.matching), res.stats, res.converged);
        out.metrics["resyncs"] = static_cast<double>(res.resyncs);
        return out;
      });

  add(reg, "generic_mcm",
      "Algorithm 1 (Theorem 3.1): generic (1-eps)-MCM in the LOCAL "
      "model, O(eps^-3 log n) rounds w.h.p.",
      {.bipartite = true, .general = true, .distributed = true},
      {"eps", "max_conflict_nodes", "use_abi_mis", "check_invariants"},
      [](const SolverConfig& c) {
        const double eps = config_eps(c, 0.34, /*inclusive_one=*/true);
        const int k = static_cast<int>(std::ceil(1.0 / eps));
        return 1.0 - 1.0 / (k + 1);
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        GenericMcmOptions o;
        o.eps = config_eps(cfg, 0.34, /*inclusive_one=*/true);
        o.seed = cfg.seed();
        o.max_conflict_nodes = static_cast<std::size_t>(
            cfg.get_int("max_conflict_nodes", 4 << 20));
        o.use_abi_mis = cfg.get_bool("use_abi_mis", false);
        o.check_invariants = cfg.get_bool("check_invariants", false);
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = generic_mcm(inst.graph(), o);
        SolveResult out = make_result(std::move(res.matching), res.stats);
        out.metrics["phases"] = static_cast<double>(res.phases.size());
        std::size_t selected = 0;
        for (const auto& ph : res.phases) selected += ph.selected_paths;
        out.metrics["selected_paths"] = static_cast<double>(selected);
        return out;
      });

  add(reg, "bipartite_mcm",
      "Section 3.2 CONGEST engine (Theorem 3.8): (1-1/(k+1))-MCM for "
      "bipartite graphs with O(log Delta)-bit messages",
      {.bipartite = true, .distributed = true},
      {"k", "max_iterations_per_phase"},
      [](const SolverConfig& c) {
        if (truncated(c, {"max_iterations_per_phase"})) return 0.0;
        return 1.0 - 1.0 / (config_k(c) + 1);
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        const auto side = require_side(inst, "bipartite_mcm");
        BipartiteMcmOptions o;
        o.k = config_k(cfg);
        o.seed = cfg.seed();
        o.max_iterations_per_phase = static_cast<std::uint64_t>(
            cfg.get_int("max_iterations_per_phase", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = bipartite_mcm(inst.graph(), side, o);
        SolveResult out =
            make_result(std::move(res.matching), res.stats, res.converged);
        out.metrics["phases"] = static_cast<double>(res.phases.size());
        std::uint64_t iters = 0;
        std::size_t paths = 0;
        for (const auto& ph : res.phases) {
          iters += ph.iterations;
          paths += ph.paths_applied;
        }
        out.metrics["aug_iterations"] = static_cast<double>(iters);
        out.metrics["paths_applied"] = static_cast<double>(paths);
        return out;
      });

  add(reg, "general_mcm",
      "Algorithm 4 (Theorem 3.11): (1-1/k)-MCM for general graphs via "
      "repeated random bipartition",
      {.bipartite = true, .general = true, .distributed = true},
      {"k", "mode", "max_iterations", "empty_streak_stop",
       "oracle_optimum_size", "max_aug_iterations"},
      // empty_streak_stop is not listed: it tunes the adaptive
      // heuristic (default 2^{2k+1}) rather than capping the paper
      // budget, so it leaves the stated guarantee unchanged.
      [](const SolverConfig& c) {
        if (truncated(c, {"max_iterations", "max_aug_iterations"})) {
          return 0.0;
        }
        return 1.0 - 1.0 / config_k(c);
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        GeneralMcmOptions o;
        o.k = config_k(cfg);
        o.seed = cfg.seed();
        const std::string mode = cfg.get("mode", "adaptive");
        if (mode == "paper") {
          o.mode = GeneralMcmOptions::Mode::kPaper;
        } else if (mode == "adaptive") {
          o.mode = GeneralMcmOptions::Mode::kAdaptive;
        } else {
          throw std::invalid_argument(
              "general_mcm: mode must be 'paper' or 'adaptive'");
        }
        o.max_iterations =
            static_cast<std::uint64_t>(cfg.get_int("max_iterations", 0));
        o.empty_streak_stop =
            static_cast<std::uint64_t>(cfg.get_int("empty_streak_stop", 0));
        o.oracle_optimum_size =
            static_cast<std::size_t>(cfg.get_int("oracle_optimum_size", 0));
        o.max_aug_iterations =
            static_cast<std::uint64_t>(cfg.get_int("max_aug_iterations", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = general_mcm(inst.graph(), o);
        // Converged = the adaptive exit fired or the full analysis
        // budget ran; an explicit max_iterations below the paper
        // budget is a truncated run.
        SolveResult out = make_result(
            std::move(res.matching), res.stats,
            res.stopped_early || res.iterations >= res.paper_budget);
        out.metrics["iterations"] = static_cast<double>(res.iterations);
        out.metrics["paper_budget"] = static_cast<double>(res.paper_budget);
        out.metrics["paths_applied"] = static_cast<double>(res.paths_applied);
        out.metrics["stopped_early"] = res.stopped_early ? 1.0 : 0.0;
        return out;
      });

  add(reg, "hoepman_mwm",
      "Hoepman's deterministic distributed 1/2-MWM (Theta(n) rounds; "
      "reference [11])",
      {.bipartite = true, .general = true, .weighted = true,
       .distributed = true},
      {"max_rounds"},
      [](const SolverConfig& c) {
        return truncated(c, {"max_rounds"}) ? 0.0 : 0.5;
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        HoepmanOptions o;
        o.max_rounds = static_cast<std::uint64_t>(cfg.get_int("max_rounds", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = hoepman_mwm(inst.weighted_graph(), o);
        return make_result(std::move(res.matching), res.stats, res.converged);
      });

  add(reg, "class_mwm",
      "Geometric weight classes + per-class Israeli-Itai + survival "
      "sweep: the constant-delta MWM black box standing in for [18] "
      "(DESIGN.md sec. 4)",
      {.bipartite = true, .general = true, .weighted = true,
       .distributed = true},
      {"class_base", "max_phases_per_class"},
      [](const SolverConfig&) { return 0.0; },
      [](const Instance& inst, const SolverConfig& cfg) {
        ClassMwmOptions o;
        o.seed = cfg.seed();
        o.class_base = cfg.get_double("class_base", 2.0);
        o.max_phases_per_class = static_cast<std::uint64_t>(
            cfg.get_int("max_phases_per_class", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = class_mwm(inst.weighted_graph(), o);
        SolveResult out =
            make_result(std::move(res.matching), res.stats, res.converged);
        out.metrics["num_classes"] = static_cast<double>(res.num_classes);
        return out;
      });

  add(reg, "weighted_mwm",
      "Algorithm 5 (Theorem 4.5): (1/2-eps)-MWM by reduction to a "
      "delta-MWM black box",
      {.bipartite = true, .general = true, .weighted = true,
       .distributed = true},
      {"eps", "delta", "black_box", "max_iterations"},
      // eps >= 1/2 still runs but states no guarantee (0 by contract).
      [](const SolverConfig& c) {
        if (truncated(c, {"max_iterations"})) return 0.0;
        return std::max(0.0, 0.5 - config_eps(c, 0.1));
      },
      [](const Instance& inst, const SolverConfig& cfg) {
        WeightedMwmOptions o;
        o.eps = config_eps(cfg, 0.1);
        o.delta = cfg.get_double("delta", 0.2);
        o.seed = cfg.seed();
        const std::string box = cfg.get("black_box", "class");
        if (box == "class") {
          o.black_box = class_mwm_black_box(cfg.pool(), cfg.shards());
        } else if (box == "greedy") {
          o.black_box = greedy_black_box();
        } else {
          throw std::invalid_argument(
              "weighted_mwm: black_box must be 'class' or 'greedy'");
        }
        o.max_iterations =
            static_cast<std::uint64_t>(cfg.get_int("max_iterations", 0));
        o.pool = cfg.pool();
        o.shards = cfg.shards();
        auto res = weighted_mwm(inst.weighted_graph(), o);
        // Lemma 4.3's iteration budget; an explicit cap below it makes
        // the run truncated, not converged.
        const std::uint64_t budget =
            weighted_mwm_iteration_budget(o.delta, o.eps);
        SolveResult out = make_result(
            std::move(res.matching), res.stats,
            res.converged_early || res.iterations >= budget);
        out.metrics["iterations"] = static_cast<double>(res.iterations);
        out.metrics["converged_early"] = res.converged_early ? 1.0 : 0.0;
        if (!res.weight_trajectory.empty()) {
          out.metrics["first_iteration_weight"] = res.weight_trajectory.front();
        }
        return out;
      });

  add(reg, "pipelined_max",
      "Lemma 3.7 bit-pipelined maximum over a tree (primitive, not a "
      "matching: per-node values are the degrees; result in metrics)",
      {.bipartite = true, .general = true, .distributed = true,
       .primitive = true},
      {"chunk_bits", "root"}, [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig& cfg) {
        const Graph& g = inst.graph();
        const int chunk_bits =
            static_cast<int>(cfg.get_int("chunk_bits", 8));
        const std::int64_t root_raw = cfg.get_int("root", 0);
        if (root_raw < 0 || root_raw >= static_cast<std::int64_t>(g.num_nodes())) {
          throw std::invalid_argument(
              "pipelined_max: root " + std::to_string(root_raw) +
              " out of range [0, " + std::to_string(g.num_nodes()) + ")");
        }
        const NodeId root = static_cast<NodeId>(root_raw);
        std::vector<std::optional<BigCounter>> values(g.num_nodes());
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          values[v] = BigCounter(g.degree(v));
        }
        auto res =
            pipelined_max(g, root, values, chunk_bits, cfg.pool(),
                          cfg.shards());
        SolveResult out = make_result(Matching(g.num_nodes()), res.stats);
        out.metrics["maximum"] = res.maximum.to_double();
        out.metrics["tree_depth"] = static_cast<double>(res.tree_depth);
        out.metrics["chunk_count"] = static_cast<double>(res.chunk_count);
        return out;
      });
}

// ------------------------------------------------- seq (baselines) --

void register_seq(SolverRegistry& reg) {
  add(reg, "greedy_mcm",
      "Sequential maximal matching by edge-id scan (1/2-MCM)",
      {.bipartite = true, .general = true, .maximal = true}, {},
      [](const SolverConfig&) { return 0.5; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(greedy_mcm(inst.graph()));
      });

  add(reg, "rank_greedy_mcm",
      "Greedy maximal matching over a seed-derived random edge order "
      "(1/2-MCM): the virtual global execution behind the src/lca "
      "rank-greedy query oracle [Nguyen-Onak style]",
      {.bipartite = true, .general = true, .maximal = true}, {},
      [](const SolverConfig&) { return 0.5; },
      [](const Instance& inst, const SolverConfig& cfg) {
        return make_result(
            lca::rank_greedy_matching(inst.graph(), cfg.seed()));
      });

  add(reg, "greedy_mwm",
      "Sequential greedy by descending weight (classical 1/2-MWM)",
      {.bipartite = true, .general = true, .weighted = true,
       .maximal = true},
      {}, [](const SolverConfig&) { return 0.5; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(greedy_mwm(inst.weighted_graph()));
      });

  add(reg, "locally_heaviest_mwm",
      "Preis-style locally-heaviest-edge 1/2-MWM",
      {.bipartite = true, .general = true, .weighted = true,
       .maximal = true},
      {}, [](const SolverConfig&) { return 0.5; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(locally_heaviest_mwm(inst.weighted_graph()));
      });

  add(reg, "hopcroft_karp",
      "Exact maximum-cardinality matching for bipartite graphs, "
      "O(E sqrt(V)) [13]",
      {.bipartite = true, .exact = true, .maximal = true}, {},
      [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig&) {
        const auto side = require_side(inst, "hopcroft_karp");
        return make_result(hopcroft_karp(inst.graph(), side));
      });

  add(reg, "blossom",
      "Edmonds' blossom algorithm: exact MCM for general graphs, O(V^3)",
      {.bipartite = true, .general = true, .exact = true, .maximal = true},
      {}, [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(blossom_mcm(inst.graph()));
      });

  add(reg, "hungarian",
      "Hungarian algorithm: exact maximum-weight matching for bipartite "
      "graphs, O(n^3)",
      {.bipartite = true, .weighted = true, .exact = true}, {},
      [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig&) {
        const auto side = require_side(inst, "hungarian");
        return make_result(hungarian_mwm(inst.weighted_graph(), side));
      });

  add(reg, "exact_mcm_small",
      "Exhaustive exact MCM over vertex subsets (n <= 30)",
      {.bipartite = true, .general = true, .exact = true, .maximal = true},
      {}, [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(exact_mcm_small(inst.graph()));
      });

  add(reg, "exact_mwm_small",
      "Exhaustive exact MWM over vertex subsets (n <= 30)",
      {.bipartite = true, .general = true, .weighted = true, .exact = true},
      {}, [](const SolverConfig&) { return 1.0; },
      [](const Instance& inst, const SolverConfig&) {
        return make_result(exact_mwm_small(inst.weighted_graph()));
      });
}

}  // namespace

void register_builtin_solvers(SolverRegistry& registry) {
  register_core(registry);
  register_seq(registry);
}

}  // namespace lps::api
