// Minimal JSON object writer for the runner's machine-readable per-run
// records (bench/out/*.json). Write-only, no external dependencies;
// numbers use max_digits10 so round-trips are value-faithful.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lps::api {

/// Escape for inclusion inside a JSON string literal (adds no quotes).
std::string json_escape(const std::string& s);

class JsonObject;

/// JSON array builder (telemetry series / histograms in per-run JSON).
class JsonArray {
 public:
  JsonArray& push(double value);
  JsonArray& push(std::uint64_t value);
  JsonArray& push(const JsonObject& nested);

  /// `[v, ...]` on one line.
  std::string str() const;

 private:
  std::vector<std::string> items_;
};

/// Flat-to-lightly-nested JSON object builder; keys appear in insertion
/// order. Nesting via add(key, JsonObject) / add(key, JsonArray).
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::int64_t value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, int value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add(const std::string& key, const JsonObject& nested);
  JsonObject& add(const std::string& key, const JsonArray& array);

  /// `{"k": v, ...}` on one line.
  std::string str() const;

 private:
  JsonObject& raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace lps::api
