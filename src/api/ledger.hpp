// The append-only run ledger (DESIGN.md §14): every api::run_one and
// every bench_micro sweep row appends one JSONL record to
// bench/ledger.jsonl, giving the repo cross-run memory — perf history
// stops living only in the hand-curated BENCH_*.json baselines.
//
// Record schema (one JSON object per line):
//
//   kind             "run" | "bench"
//   config           the grouping key tools/perf_diff compares within;
//                    bench rows use "engine:n=<n>,deg=<deg>" so they
//                    join against BENCH_engine.json rows directly
//   metric           headline metric name ("wall_ms", "rounds_per_sec")
//   value            the measurement
//   higher_is_better direction, so perf_diff needs no metric table
//   git_sha / build_type / threads / timestamp_utc   provenance
//   ...              kind-specific context (spec echo, shape, telemetry
//                    percentiles for runs; shard count etc. for bench)
//
// Appends are best-effort by design: a read-only checkout or a full
// disk must never fail the run the ledger is merely describing.
//
// Path resolution: the LPS_LEDGER environment variable overrides the
// default `bench/ledger.jsonl` ("0"/"off" disables appends entirely);
// an explicit per-call path wins over both.
#pragma once

#include <string>

namespace lps::api {

struct RunResult;

inline constexpr const char* kDefaultLedgerPath = "bench/ledger.jsonl";

/// Resolve where ledger appends go. `override_path` wins when non-empty
/// ("off"/"0" disables); otherwise LPS_LEDGER, otherwise the default.
/// Returns "" when appends are disabled.
std::string resolve_ledger_path(const std::string& override_path = "");

/// Append one pre-rendered JSON line. Creates parent directories as
/// needed. Best-effort: returns false (never throws) on any failure or
/// when `path` is empty.
bool append_ledger_line(const std::string& path, const std::string& json_line);

/// Render + append the "run" record for a finished run_one result.
bool append_run_ledger(const RunResult& result, const std::string& path);

/// Render a "bench" record (the caller appends it via
/// append_ledger_line; bench_common.hpp wraps the pair).
std::string bench_ledger_record(const std::string& config_key,
                                const std::string& metric, double value,
                                bool higher_is_better, unsigned threads);

}  // namespace lps::api
