#include "api/registry.hpp"

#include <stdexcept>

namespace lps::api {

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* instance = [] {
    auto* reg = new SolverRegistry();
    register_builtin_solvers(*reg);
    return reg;
  }();
  return *instance;
}

void SolverRegistry::add(std::shared_ptr<const MatchingSolver> solver) {
  if (!solver || solver->name().empty()) {
    throw std::invalid_argument("SolverRegistry::add: unnamed solver");
  }
  const std::string name = solver->name();
  if (!solvers_.emplace(name, std::move(solver)).second) {
    throw std::invalid_argument("SolverRegistry::add: duplicate solver '" +
                                name + "'");
  }
}

const MatchingSolver* SolverRegistry::find(
    const std::string& name) const noexcept {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second.get();
}

const MatchingSolver& SolverRegistry::at(const std::string& name) const {
  if (const MatchingSolver* solver = find(name)) return *solver;
  std::string known;
  for (const auto& [registered, _] : solvers_) {
    if (!known.empty()) known += ", ";
    known += registered;
  }
  throw std::invalid_argument("unknown solver '" + name + "' (registered: " +
                              known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, _] : solvers_) out.push_back(name);
  return out;
}

}  // namespace lps::api
