#include "api/ledger.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "api/json.hpp"
#include "api/provenance.hpp"
#include "api/runner.hpp"

namespace lps::api {

namespace {

bool disabled_token(const std::string& s) {
  return s == "0" || s == "off" || s == "OFF" || s == "none";
}

}  // namespace

std::string resolve_ledger_path(const std::string& override_path) {
  if (!override_path.empty()) {
    return disabled_token(override_path) ? std::string{} : override_path;
  }
  if (const char* env = std::getenv("LPS_LEDGER")) {
    const std::string v(env);
    if (v.empty() || disabled_token(v)) return {};
    return v;
  }
  return kDefaultLedgerPath;
}

bool append_ledger_line(const std::string& path,
                        const std::string& json_line) {
  if (path.empty()) return false;
  try {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream os(path, std::ios::app);
    if (!os) return false;
    os << json_line << "\n";
    return static_cast<bool>(os);
  } catch (...) {
    return false;  // best-effort: the ledger never fails the run
  }
}

bool append_run_ledger(const RunResult& result, const std::string& path) {
  if (path.empty()) return false;
  const RunSpec& spec = result.spec;
  // The grouping key: everything that makes two runs comparable. Sweeps
  // over seeds land in one group; changing solver/generator/config/
  // threads starts a new trend line.
  std::string key = spec.solver + "|" + spec.generator;
  if (!spec.config.empty()) key += "|" + spec.config;
  if (!spec.dynamic.empty()) key += "|dyn-" + spec.dynamic;
  if (!spec.faults.empty()) key += "|f-" + spec.faults;
  key += "|t" + std::to_string(spec.threads);

  JsonObject o;
  o.add("kind", "run")
      .add("config", key)
      .add("metric", "wall_ms")
      .add("value", result.wall_ms)
      .add("higher_is_better", false)
      .add("git_sha", result.prov_git_sha)
      .add("build_type", result.prov_build_type)
      .add("threads", static_cast<std::uint64_t>(result.prov_threads))
      .add("timestamp_utc", result.prov_timestamp_utc)
      .add("solver", spec.solver)
      .add("generator", spec.generator)
      .add("n", static_cast<std::uint64_t>(result.n))
      .add("m", static_cast<std::uint64_t>(result.m))
      .add("rounds", result.net.rounds)
      .add("messages", result.net.messages)
      .add("matching_size", static_cast<std::uint64_t>(result.matching_size))
      .add("valid", result.valid);
  if (result.telemetry.enabled && result.telemetry.rounds > 0) {
    o.add("round_ns_p50", result.telemetry.round_ns_p50)
        .add("round_ns_p90", result.telemetry.round_ns_p90)
        .add("round_ns_p99", result.telemetry.round_ns_p99);
  }
  if (!spec.dynamic.empty()) {
    o.add("dynamic_updates_per_sec", result.dynamic_updates_per_sec);
  }
  return append_ledger_line(path, o.str());
}

std::string bench_ledger_record(const std::string& config_key,
                                const std::string& metric, double value,
                                bool higher_is_better, unsigned threads) {
  const Provenance prov = current_provenance(threads);
  JsonObject o;
  o.add("kind", "bench")
      .add("config", config_key)
      .add("metric", metric)
      .add("value", value)
      .add("higher_is_better", higher_is_better)
      .add("git_sha", prov.git_sha)
      .add("build_type", prov.build_type)
      .add("threads", static_cast<std::uint64_t>(prov.threads))
      .add("timestamp_utc", prov.timestamp_utc);
  return o.str();
}

}  // namespace lps::api
