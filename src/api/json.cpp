#include "api/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace lps::api {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string render_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  return buf;
}

}  // namespace

JsonArray& JsonArray::push(double value) {
  items_.push_back(render_double(value));
  return *this;
}

JsonArray& JsonArray::push(std::uint64_t value) {
  items_.push_back(std::to_string(value));
  return *this;
}

JsonArray& JsonArray::push(const JsonObject& nested) {
  items_.push_back(nested.str());
  return *this;
}

std::string JsonArray::str() const {
  std::string out = "[";
  bool first = true;
  for (const std::string& item : items_) {
    if (!first) out += ", ";
    first = false;
    out += item;
  }
  out += ']';
  return out;
}

JsonObject& JsonObject::raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const std::string& value) {
  return raw(key, '"' + json_escape(value) + '"');
}

JsonObject& JsonObject::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

JsonObject& JsonObject::add(const std::string& key, double value) {
  return raw(key, render_double(value));
}

JsonObject& JsonObject::add(const std::string& key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::add(const std::string& key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::add(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::add(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::add(const std::string& key, const JsonObject& nested) {
  return raw(key, nested.str());
}

JsonObject& JsonObject::add(const std::string& key, const JsonArray& array) {
  return raw(key, array.str());
}

std::string JsonObject::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, rendered] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(key) + "\": " + rendered;
  }
  out += '}';
  return out;
}

}  // namespace lps::api
