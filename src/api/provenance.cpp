#include "api/provenance.hpp"

#include <chrono>
#include <cstdint>
#include <ctime>

namespace lps::api {

// LPS_GIT_SHA / LPS_BUILD_TYPE are injected by CMake at configure time
// (see CMakeLists.txt); a build outside the repo or a stale configure
// reports "unknown" rather than lying.
#ifndef LPS_GIT_SHA
#define LPS_GIT_SHA "unknown"
#endif
#ifndef LPS_BUILD_TYPE
#ifdef NDEBUG
#define LPS_BUILD_TYPE "release-unconfigured"
#else
#define LPS_BUILD_TYPE "debug-unconfigured"
#endif
#endif

Provenance current_provenance(unsigned threads) {
  Provenance p;
  p.git_sha = LPS_GIT_SHA;
  p.build_type = LPS_BUILD_TYPE;
  p.threads = threads;
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  p.timestamp_utc = buf;
  return p;
}

JsonObject provenance_json(const Provenance& p) {
  JsonObject o;
  o.add("git_sha", p.git_sha)
      .add("build_type", p.build_type)
      .add("threads", static_cast<std::uint64_t>(p.threads))
      .add("timestamp_utc", p.timestamp_utc);
  return o;
}

}  // namespace lps::api
