#include "api/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include <chrono>
#include <thread>

#include "api/json.hpp"
#include "api/ledger.hpp"
#include "api/provenance.hpp"
#include "api/registry.hpp"
#include "dynamic/matcher.hpp"
#include "dynamic/stream.hpp"
#include "faults/injector.hpp"
#include "faults/recovery.hpp"
#include "faults/scenarios.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "lca/batch.hpp"
#include "lca/oracle.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace lps::api {
namespace {

/// nullopt = no weight model requested; a (possibly empty, when m = 0)
/// vector otherwise, so zero-edge instances stay weighted.
std::optional<std::vector<double>> make_weights(SpecArgs& args, EdgeId m,
                                                Rng& rng) {
  const std::string model = args.get("w", "");
  if (model.empty()) return std::nullopt;
  if (model == "uniform") {
    return uniform_weights(m, args.get_double("wlo", 1.0),
                           args.get_double("whi", 100.0), rng);
  }
  if (model == "integer") {
    return integer_weights(
        m, static_cast<std::uint64_t>(args.get_int("wmax", 64)), rng);
  }
  if (model == "exp") {
    return exponential_weights(m, args.get_double("wmean", 8.0), rng);
  }
  if (model == "pow2") {
    return power_of_two_weights(
        m, static_cast<int>(args.get_int("wlevels", 10)), rng);
  }
  throw std::invalid_argument("generator weight model '" + model +
                              "' not one of uniform/integer/exp/pow2");
}

Instance finish(SpecArgs& args, Graph g, Rng& rng,
                std::vector<std::uint8_t> side = {}) {
  std::optional<std::vector<double>> w = make_weights(args, g.num_edges(), rng);
  args.check_all_used();
  Instance inst = w.has_value()
                      ? Instance::weighted(
                            make_weighted(std::move(g), std::move(*w)))
                      : Instance::unweighted(std::move(g));
  if (!side.empty()) inst.with_side(std::move(side));
  return inst;
}

}  // namespace

Instance make_instance(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string kv =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  SpecArgs args("generator", family, kv);
  Rng rng(seed);

  const auto node_arg = [&](const char* key) {
    const std::int64_t v = args.require_int(key);
    if (v < 0 || v > static_cast<std::int64_t>(kInvalidNode) - 1) {
      throw std::invalid_argument("generator '" + family + "': key '" + key +
                                  "' out of range: " + std::to_string(v));
    }
    return static_cast<NodeId>(v);
  };

  if (family == "path") return finish(args, path_graph(node_arg("n")), rng);
  if (family == "cycle") return finish(args, cycle_graph(node_arg("n")), rng);
  if (family == "complete") {
    return finish(args, complete_graph(node_arg("n")), rng);
  }
  if (family == "star") return finish(args, star_graph(node_arg("n")), rng);
  if (family == "binary_tree") {
    return finish(args, binary_tree(node_arg("n")), rng);
  }
  if (family == "tree") {
    return finish(args, random_tree(node_arg("n"), rng), rng);
  }
  if (family == "grid") {
    const NodeId rows = node_arg("rows");
    const NodeId cols = node_arg("cols");
    // The parity 2-coloring is known by construction; attaching it
    // spares every bipartite-only solver the BFS.
    std::vector<std::uint8_t> side(static_cast<std::size_t>(rows) * cols);
    for (NodeId r = 0; r < rows; ++r) {
      for (NodeId c = 0; c < cols; ++c) {
        side[static_cast<std::size_t>(r) * cols + c] = (r + c) % 2;
      }
    }
    return finish(args, grid_graph(rows, cols), rng, std::move(side));
  }
  if (family == "complete_bipartite") {
    const NodeId a = node_arg("a");
    const NodeId b = node_arg("b");
    std::vector<std::uint8_t> side(a + b, 0);
    std::fill(side.begin() + a, side.end(), std::uint8_t{1});
    return finish(args, complete_bipartite(a, b), rng, std::move(side));
  }
  const auto density_arg = [&](NodeId denominator) {
    if (args.has("p") && args.has("deg")) {
      throw std::invalid_argument("generator '" + family +
                                  "': 'p' and 'deg' are mutually exclusive");
    }
    return args.has("p") ? args.get_double("p", 0.0)
                         : args.get_double("deg", 4.0) /
                               static_cast<double>(denominator);
  };

  if (family == "er") {
    const NodeId n = node_arg("n");
    const double p = density_arg(n);
    return finish(args, erdos_renyi(n, p, rng), rng);
  }
  if (family == "bipartite") {
    const NodeId nx = node_arg("nx");
    const NodeId ny = node_arg("ny");
    const double p = density_arg(ny);
    BipartiteGraph bg = random_bipartite(nx, ny, p, rng);
    return finish(args, std::move(bg.graph), rng, std::move(bg.side));
  }
  if (family == "bipartite_regular") {
    const NodeId nx = node_arg("nx");
    const NodeId ny = node_arg("ny");
    const NodeId d = node_arg("d");
    BipartiteGraph bg = random_bipartite_regular_left(nx, ny, d, rng);
    return finish(args, std::move(bg.graph), rng, std::move(bg.side));
  }
  if (family == "regular") {
    const NodeId n = node_arg("n");
    const NodeId d = node_arg("d");
    return finish(args, random_regular(n, d, rng), rng);
  }
  if (family == "tight_chain") {
    TightChain tc = tight_bipartite_chain(
        static_cast<int>(args.require_int("k")), node_arg("copies"));
    return finish(args, std::move(tc.graph), rng, std::move(tc.side));
  }
  if (family == "greedy_trap") {
    WeightedGraph wg = greedy_trap_path(node_arg("gadgets"),
                                        args.get_double("eps", 0.001));
    args.check_all_used();
    return Instance::weighted(std::move(wg));
  }
  if (family == "increasing_path") {
    WeightedGraph wg = increasing_path(node_arg("n"));
    args.check_all_used();
    return Instance::weighted(std::move(wg));
  }
  throw std::invalid_argument("unknown generator family '" + family +
                              "' in spec '" + spec + "'");
}

namespace {

struct OracleChoice {
  std::string solver;  // "" = none
  std::string kind;    // "exact" | "upper_bound" | "reference" | "none"
  /// Multiplier turning the oracle's objective into a certified upper
  /// bound on the optimum: 1 for exact oracles, 1/guarantee for
  /// approximate ones (a g-approximation M has OPT <= w(M)/g).
  double bound_factor = 1.0;
};

/// Exact when affordable, certified 1/guarantee-scaled bound otherwise.
/// `weighted_objective` is the *solver's* objective, not the instance's:
/// a weight-blind solver on a weighted instance is measured (and its
/// oracle chosen) in cardinality, so its guarantee stays comparable.
/// `bipartite` is passed in so the caller's one BFS is the only one.
OracleChoice resolve_oracle(const std::string& requested, const Instance& inst,
                            bool weighted_objective, bool bipartite) {
  if (requested == "none") return {"", "none", 1.0};
  if (requested != "auto") {
    const MatchingSolver& s = SolverRegistry::global().at(requested);
    // Primitives return no matching, so their objective is always 0.
    if (s.capabilities().primitive) {
      throw std::invalid_argument("oracle '" + requested +
                                  "' is a primitive, not a matching solver");
    }
    // An oracle optimizing a different objective than the one the run
    // is measured in certifies nothing (e.g. the Hopcroft-Karp optimum
    // is no weight bound): reject rather than emit a bogus "exact".
    if (s.capabilities().weighted != weighted_objective) {
      throw std::invalid_argument(
          "oracle '" + requested + "' optimizes " +
          (s.capabilities().weighted ? "weight" : "cardinality") +
          " but the run is measured in " +
          (weighted_objective ? "weight" : "cardinality"));
    }
    if (s.capabilities().exact) return {requested, "exact", 1.0};
    const double g = s.guarantee(SolverConfig());
    // A guarantee-less oracle certifies nothing: the comparison is just
    // a reference ratio, not a bound.
    if (g <= 0.0) return {requested, "reference", 1.0};
    return {requested, "upper_bound", 1.0 / g};
  }
  const NodeId n = inst.graph().num_nodes();
  // Single source of truth for the fallback's bound: its own guarantee
  // (a g-approximation M certifies OPT <= objective(M)/g).
  const auto certified = [](const char* name) {
    const double g =
        SolverRegistry::global().at(name).guarantee(SolverConfig());
    return OracleChoice{name, "upper_bound", 1.0 / g};
  };
  if (weighted_objective) {
    if (bipartite && n <= 1000) return {"hungarian", "exact", 1.0};
    if (n <= 20) return {"exact_mwm_small", "exact", 1.0};
    return certified("greedy_mwm");
  }
  if (bipartite) return {"hopcroft_karp", "exact", 1.0};
  if (n <= 400) return {"blossom", "exact", 1.0};
  return certified("greedy_mcm");
}

double objective(const Instance& inst, const Matching& m,
                 bool weighted_objective) {
  return weighted_objective ? m.weight(inst.weighted_graph())
                            : static_cast<double>(m.size());
}

/// Salt for the query-sampling substream, so the sampled edge stream is
/// independent of every solver/generator draw under the same seed.
constexpr std::uint64_t kLcaQuerySalt = 0x9c5a11edull;

/// The LCA leg: build the oracle fleet, fan the edge queries across the
/// pool, audit agreement against the global matching when the oracle
/// pairs with the run's solver, and record the cost counters.
void run_lca_leg(const RunSpec& spec, const Instance& inst,
                 const SolverConfig& config, const Matching& global,
                 ThreadPool* pool, RunResult& out) {
  std::string oracle_name = spec.lca;
  if (oracle_name == "auto") {
    if (!lca::has_oracle(spec.solver)) {
      throw std::invalid_argument("lca=auto: solver '" + spec.solver +
                                  "' has no LCA oracle");
    }
    oracle_name = spec.solver;
  }
  const bool paired = oracle_name == spec.solver;
  lca::OracleOptions oopts;
  oopts.seed = config.seed();
  oopts.cache_capacity = static_cast<std::size_t>(spec.lca_cache);
  // Only a paired oracle inherits the solver's config keys: an oracle
  // exercised against a different solver's run would reject them.
  if (paired) oopts.config = config.entries();
  const Graph& g = inst.graph();
  // Validate the name (and the config keys) even when there is nothing
  // to query, so typos fail loudly on zero-edge sweep rows too.
  lca::BatchEngine engine(
      [&] { return lca::make_oracle(oracle_name, g, oopts); }, pool);
  out.lca_oracle = oracle_name;
  if (g.num_edges() == 0) return;

  std::vector<EdgeId> queries;
  if (spec.lca_queries == 0) {
    queries.resize(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) queries[e] = e;
  } else {
    Rng rng = Rng::substream(config.seed(), kLcaQuerySalt);
    queries.reserve(spec.lca_queries);
    for (std::uint64_t i = 0; i < spec.lca_queries; ++i) {
      queries.push_back(static_cast<EdgeId>(rng.below(g.num_edges())));
    }
  }
  const lca::EdgeBatchResult batch = engine.query_edges(queries);
  out.lca_queries = batch.stats.oracle.queries;
  out.lca_probes_per_query = batch.stats.oracle.probes_per_query();
  out.lca_queries_per_sec = batch.stats.queries_per_sec();
  out.lca_cache_hit_rate = batch.stats.oracle.cache_hit_rate();
  if (paired) {
    out.lca_agree = 1;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const bool global_says = global.contains(g, queries[i]);
      if (global_says != (batch.in_matching[i] != 0)) {
        out.lca_agree = 0;
        break;
      }
    }
  }
}

/// The dynamic leg: stream the pre-built update trace through the
/// pre-built maintainer and measure throughput, recourse, and the
/// approximation ratio against a from-scratch registry solve at
/// checkpoints along the stream. Checkpoint solves run off the clock —
/// they are measurement, not maintenance. Stream and maintainer are
/// constructed (and their specs rejected) eagerly in run_one so every
/// malformed spec fails before any solve work, on the same path.
/// When `fault_plan` carries graph-layer faults, a FaultSession runs
/// its crash/recover + adversarial-delete epochs against the maintained
/// state after the stream, landing the degradation metrics in the
/// fault_* fields.
void run_dynamic_leg(const RunSpec& spec, const faults::FaultPlan& fault_plan,
                     const dynamic::StreamSpec& stream,
                     dynamic::DynamicMatcher& matcher, RunResult& out) {
  out.dynamic_maintainer = matcher.name();

  // Exact baseline while affordable, certified-reference greedy beyond.
  // Decided per checkpoint from the *current* snapshot: growing streams
  // (pa, vertex churn) must not drag the O(n^3)-class exact oracle to
  // scales it was never meant for just because the stream started small.
  const auto ratio_now = [&]() {
    const dynamic::Snapshot snap = matcher.graph().snapshot();
    out.dynamic_baseline =
        snap.graph.num_nodes() <= 400 ? "blossom" : "greedy_mcm";
    if (snap.graph.num_edges() == 0) return 1.0;
    SolverConfig config;
    config.seed(spec.solver_seed);
    const SolveResult solved =
        SolverRegistry::global().at(out.dynamic_baseline).solve(
            Instance::unweighted(snap.graph), config);
    if (solved.matching.size() == 0) return 1.0;
    return static_cast<double>(matcher.matching_size()) /
           static_cast<double>(solved.matching.size());
  };

  // The bootstrap prefix (churn/adversarial's m0 build inserts) is
  // warm-up, not workload: it runs off the clock and outside the
  // recourse accounting, so updates/sec measures maintenance under
  // churn on the standing graph, not bulk construction.
  const std::uint64_t total = stream.trace.size();
  const std::uint64_t bootstrap = stream.bootstrap;
  for (std::uint64_t i = 0; i < bootstrap; ++i) {
    matcher.apply(stream.trace[i]);
  }
  const std::uint64_t measured = total - bootstrap;
  const std::uint64_t recourse_before = matcher.stats().recourse;
  std::uint64_t next_checkpoint =
      spec.dynamic_checkpoints > 0
          ? std::max<std::uint64_t>(1, measured / spec.dynamic_checkpoints)
          : measured + 1;
  const std::uint64_t checkpoint_step = next_checkpoint;
  double ratio_min = 2.0;
  std::chrono::steady_clock::duration applied{0};
  for (std::uint64_t i = 0; i < measured; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    matcher.apply(stream.trace[bootstrap + i]);
    applied += std::chrono::steady_clock::now() - t0;
    if (i + 1 >= next_checkpoint && i + 1 < measured) {
      next_checkpoint += checkpoint_step;
      ratio_min = std::min(ratio_min, ratio_now());
    }
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    matcher.flush();
    applied += std::chrono::steady_clock::now() - t0;
  }

  out.dynamic_bootstrap_updates = bootstrap;
  out.dynamic_updates = measured;
  const double secs = std::chrono::duration<double>(applied).count();
  out.dynamic_updates_per_sec =
      secs > 0.0 ? static_cast<double>(measured) / secs : 0.0;
  out.dynamic_recourse_per_update =
      measured > 0 ? static_cast<double>(matcher.stats().recourse -
                                         recourse_before) /
                         static_cast<double>(measured)
                   : 0.0;
  out.dynamic_final_size = matcher.matching_size();
  out.dynamic_final_edges = matcher.graph().num_live_edges();
  if (spec.dynamic_checkpoints > 0) {
    out.dynamic_ratio = ratio_now();
    out.dynamic_ratio_min = std::min(ratio_min, out.dynamic_ratio);
  }
  try {
    matcher.check_matching();
    matcher.graph().check_invariants();
    out.dynamic_valid = true;
  } catch (const std::logic_error&) {
    out.dynamic_valid = false;
  }

  // Graph-layer fault epochs run against the post-stream state, so the
  // dynamic_* fields above describe the churn phase and the fault_*
  // fields describe degradation and recovery relative to it.
  if (fault_plan.graph_faults() && fault_plan.epochs > 0) {
    faults::FaultSession session(matcher, fault_plan, spec.solver_seed);
    const faults::SessionResult s = session.run();
    out.fault_epochs = s.epochs.size();
    out.fault_all_valid = s.all_valid;
    out.fault_min_ratio = s.min_ratio;
    out.fault_final_ratio = s.final_ratio;
    out.fault_final_valid = s.final_valid;
    out.fault_baseline_size = s.baseline_size;
    out.fault_crashed = s.crashed;
    out.fault_revived = s.revived;
    out.fault_adversarial = s.adversarial;
    out.fault_reinserted = s.reinserted;
    out.fault_recourse = s.total_recourse;
    out.fault_recovery_p50_ns = s.recovery_p50_ns;
    out.fault_recovery_p99_ns = s.recovery_p99_ns;
  }
}

/// A point-in-time copy of every instrument the run summary reads.
/// run_one snapshots around each phase and subtracts, so one process
/// can run many runs without resetting the global registry.
struct TelemetrySnap {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  telemetry::HistogramSnapshot round_ns;
  telemetry::HistogramSnapshot p1_ns;
  telemetry::HistogramSnapshot p2_ns;
  telemetry::HistogramSnapshot sort_ns;
  telemetry::HistogramSnapshot step_ns;
  std::vector<std::uint64_t> shard_ns;
  std::vector<std::uint64_t> worker_ns;
  std::size_t series_size = 0;
  telemetry::HistogramSnapshot lca_query_ns;
  telemetry::HistogramSnapshot dyn_update_ns;
  telemetry::HistogramSnapshot fault_recovery_ns;
};

TelemetrySnap snap_telemetry() {
  TelemetrySnap s;
  telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
  s.rounds = em.rounds.value();
  s.messages = em.messages_delivered.value();
  s.round_ns = em.round_ns.snapshot();
  s.p1_ns = em.exchange_p1_ns.snapshot();
  s.p2_ns = em.exchange_p2_ns.snapshot();
  s.sort_ns = em.inbox_sort_ns.snapshot();
  s.step_ns = em.step_ns.snapshot();
  s.shard_ns = em.shard_exchange_ns.values();
  s.worker_ns = em.worker_busy_ns.values();
  s.series_size = em.messages_per_round.size();
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  s.lca_query_ns = reg.histogram("lca.query_ns").snapshot();
  s.dyn_update_ns = reg.histogram("dynamic.update_ns").snapshot();
  s.fault_recovery_ns = reg.histogram("faults.recovery_ns").snapshot();
  return s;
}

std::vector<std::uint64_t> vec_delta(std::vector<std::uint64_t> after,
                                     const std::vector<std::uint64_t>& before) {
  for (std::size_t i = 0; i < before.size() && i < after.size(); ++i) {
    after[i] -= before[i];
  }
  return after;
}

/// Fold the solve-phase delta (before -> after_solve) plus the optional
/// legs' histograms (before -> end) into the JSON-ready digest.
TelemetrySummary summarize_telemetry(const TelemetrySnap& before,
                                     const TelemetrySnap& after_solve,
                                     const TelemetrySnap& end) {
  TelemetrySummary t;
  // Compiled out (-DLPS_TELEMETRY=0) set_enabled is a no-op and every
  // delta below is zero; report the block as disabled rather than as a
  // run that mysteriously measured nothing.
  t.enabled = telemetry::enabled();
  t.rounds = after_solve.rounds - before.rounds;
  t.messages_delivered = after_solve.messages - before.messages;

  telemetry::HistogramSnapshot round = after_solve.round_ns;
  round -= before.round_ns;
  t.round_ns_mean = round.mean();
  t.round_ns_p50 = round.percentile(50);
  t.round_ns_p90 = round.percentile(90);
  t.round_ns_p99 = round.percentile(99);
  t.round_ns_max = round.max;

  const auto per_round_mean = [&](telemetry::HistogramSnapshot h,
                                  const telemetry::HistogramSnapshot& b) {
    h -= b;
    return t.rounds == 0 ? 0.0
                         : static_cast<double>(h.sum) /
                               static_cast<double>(t.rounds);
  };
  t.exchange_p1_ns_mean = per_round_mean(after_solve.p1_ns, before.p1_ns);
  t.exchange_p2_ns_mean = per_round_mean(after_solve.p2_ns, before.p2_ns);
  t.inbox_sort_ns_mean = per_round_mean(after_solve.sort_ns, before.sort_ns);
  t.step_ns_mean = per_round_mean(after_solve.step_ns, before.step_ns);

  t.worker_busy_ns = vec_delta(after_solve.worker_ns, before.worker_ns);
  telemetry::HistogramSnapshot step = after_solve.step_ns;
  step -= before.step_ns;
  if (t.worker_busy_ns.size() > 1 && step.sum > 0) {
    std::uint64_t busy = 0;
    for (std::uint64_t w : t.worker_busy_ns) busy += w;
    const double span = static_cast<double>(step.sum) *
                        static_cast<double>(t.worker_busy_ns.size());
    t.worker_stall_frac =
        std::clamp(1.0 - static_cast<double>(busy) / span, 0.0, 1.0);
  }

  const std::vector<std::uint64_t> shard =
      vec_delta(after_solve.shard_ns, before.shard_ns);
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < shard.size(); ++s) {
    if (shard[s] == 0) continue;
    ++t.shards_touched;
    shard_sum += shard[s];
    if (shard[s] > t.shard_busy_max_ns) {
      t.shard_busy_max_ns = shard[s];
      t.hottest_shard = s;
    }
  }
  if (t.shards_touched > 0) {
    t.shard_busy_mean_ns = static_cast<double>(shard_sum) /
                           static_cast<double>(t.shards_touched);
    t.shard_imbalance =
        static_cast<double>(t.shard_busy_max_ns) / t.shard_busy_mean_ns;
  }

  const std::vector<std::uint64_t> series =
      telemetry::EngineMetrics::get().messages_per_round.values_from(
          before.series_size);
  const std::size_t rounds_in_series =
      std::min<std::size_t>(series.size(), after_solve.series_size >
                                                   before.series_size
                                               ? after_solve.series_size -
                                                     before.series_size
                                               : 0);
  t.messages_per_round_stride =
      std::max<std::uint64_t>(1, (rounds_in_series + 63) / 64);
  for (std::size_t i = 0; i < rounds_in_series;
       i += t.messages_per_round_stride) {
    t.messages_per_round.push_back(series[i]);
  }

  telemetry::HistogramSnapshot lca = end.lca_query_ns;
  lca -= before.lca_query_ns;
  if (lca.count > 0) {
    t.lca_query_ns_p50 = lca.percentile(50);
    t.lca_query_ns_p99 = lca.percentile(99);
  }
  telemetry::HistogramSnapshot dyn = end.dyn_update_ns;
  dyn -= before.dyn_update_ns;
  if (dyn.count > 0) {
    t.dynamic_update_ns_p50 = dyn.percentile(50);
    t.dynamic_update_ns_p99 = dyn.percentile(99);
  }
  telemetry::HistogramSnapshot rec = end.fault_recovery_ns;
  rec -= before.fault_recovery_ns;
  if (rec.count > 0) {
    t.faults_recovery_ns_p50 = rec.percentile(50);
    t.faults_recovery_ns_p99 = rec.percentile(99);
  }
  return t;
}

}  // namespace

RunResult run_one(const RunSpec& spec) {
  Instance inst = make_instance(spec.generator, spec.instance_seed);
  // Attach the bipartition once: oracle resolution, the oracle, and the
  // solver would each recompute the O(n+m) BFS otherwise. `bipartite`
  // remembers the outcome so non-bipartite runs pay the BFS only once.
  bool bipartite = inst.side().has_value();
  if (!bipartite) {
    if (auto side = inst.graph().bipartition()) {
      inst.with_side(std::move(*side));
      bipartite = true;
    }
  }
  const MatchingSolver& solver = SolverRegistry::global().at(spec.solver);

  SolverConfig config = SolverConfig::parse(spec.config);
  // A `seed=` entry in the config string wins over the RunSpec default.
  if (!config.seed_was_set()) config.seed(spec.solver_seed);
  // Likewise `shards=`; 0 means auto in both places, so only a nonzero
  // config entry can differ from the RunSpec default.
  if (config.shards() == 0) config.shards(spec.shards);
  // Fault plan: parsed — and rejected — before any solve work, on the
  // same error path as generator and config typos, so the runner's
  // one-line-diagnostic contract holds for fault specs too.
  const faults::FaultPlan fault_plan = faults::make_fault_plan(spec.faults);
#if !LPS_FAULTS
  if (fault_plan.any()) {
    throw std::invalid_argument("run_one: fault plan '" + fault_plan.name +
                                "' requested but the library was built with "
                                "-DLPS_FAULTS=0");
  }
#endif
  if (fault_plan.message_faults()) {
    const std::vector<std::string> keys = solver.config_keys();
    if (std::find(keys.begin(), keys.end(), "faults") == keys.end()) {
      throw std::invalid_argument("run_one: solver '" + spec.solver +
                                  "' does not take message-layer faults "
                                  "(no 'faults' config key)");
    }
    config.set("faults", spec.faults);
  }
  if (fault_plan.graph_faults() && spec.dynamic.empty()) {
    throw std::invalid_argument(
        "run_one: fault plan '" + fault_plan.name +
        "' has graph-layer faults (flap/adversarial) but no dynamic leg; "
        "set dynamic and dynamic_stream");
  }
  // Fail everything solve() would reject before the (possibly O(n^3))
  // oracle run below: config typos and instance-shape mismatches.
  solver.validate(inst, config);
  // The dynamic leg's specs get the same eager treatment: stream typos,
  // unknown maintainer names, and bad maintainer configs all fail here,
  // on the one error path, not after the solve already ran.
  std::optional<dynamic::StreamSpec> dyn_stream;
  std::unique_ptr<dynamic::DynamicMatcher> dyn_matcher;
  if (!spec.dynamic.empty()) {
    if (spec.dynamic_stream.empty()) {
      throw std::invalid_argument(
          "run_one: dynamic leg requires a dynamic_stream spec");
    }
    dyn_stream =
        dynamic::make_update_stream(spec.dynamic_stream, spec.instance_seed);
    dyn_matcher = dynamic::make_matcher(
        spec.dynamic, dynamic::DynamicGraph(dyn_stream->initial_nodes),
        spec.dynamic_config.empty()
            ? std::map<std::string, std::string>{}
            : parse_kv_list(spec.dynamic_config));
  }
  std::unique_ptr<ThreadPool> pool;
  if (spec.threads != 1) {
    pool = std::make_unique<ThreadPool>(spec.threads);
    config.pool(pool.get());
  }

  RunResult out;
  out.spec = spec;
  if (fault_plan.any()) out.fault_plan = fault_plan.to_spec();
  out.n = inst.graph().num_nodes();
  out.m = inst.graph().num_edges();
  out.max_degree = inst.graph().max_degree();
  out.weighted = inst.has_weights();

  // Ratios are measured in the solver's own objective: weight only when
  // the solver optimizes weight, cardinality otherwise (so a 1/2-MCM
  // guarantee is never compared against a max-weight optimum).
  const bool weighted_objective =
      solver.capabilities().weighted && inst.has_weights();

  // Oracle first: Algorithm 4's certified early exit consumes the exact
  // optimum through the uniform config path when the solver accepts it.
  // Primitives have no matching objective, so the comparison is skipped.
  const OracleChoice oracle =
      solver.capabilities().primitive
          ? OracleChoice{"", "none", 1.0}
          : resolve_oracle(spec.oracle, inst, weighted_objective, bipartite);
  out.oracle_solver = oracle.solver;
  out.optimum_kind = oracle.kind;
  // The solver resolved as its own oracle (an exact solver, or the
  // certified greedy fallback measuring greedy itself): same name,
  // same seed, and no config entries means the oracle solve would be
  // identical — reuse the solver's result instead of running it twice.
  const bool self_oracle = oracle.solver == spec.solver &&
                           config.entries().empty() &&
                           config.seed() == spec.solver_seed;
  if (!oracle.solver.empty() && !self_oracle) {
    const MatchingSolver& oracle_solver =
        SolverRegistry::global().at(oracle.solver);
    SolverConfig oracle_config;
    oracle_config.seed(spec.solver_seed);
    const SolveResult oracle_result = oracle_solver.solve(inst, oracle_config);
    out.optimum = objective(inst, oracle_result.matching, weighted_objective) *
                  oracle.bound_factor;
    if (spec.feed_oracle && oracle.kind == "exact") {
      const auto keys = solver.config_keys();
      if (std::find(keys.begin(), keys.end(), "oracle_optimum_size") !=
          keys.end()) {
        config.set("oracle_optimum_size",
                   std::to_string(oracle_result.matching.size()));
      }
    }
  }

  // Telemetry window: metrics cover only the solver's own solve (the
  // oracle ran above, outside the window); the optional legs contribute
  // their dedicated histograms below. The prior enabled state is
  // restored on the way out so nested/test callers see no side effect.
  const bool want_trace = !spec.trace.empty();
  const bool want_metrics = spec.telemetry || want_trace;
  const bool prev_metrics = telemetry::enabled();
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  if (want_metrics) telemetry::set_enabled(true);
  if (want_trace) {
    tracer.reset();
    tracer.set_recording(true);
  }
  // Structured event log: recorded over the same window as the trace
  // (solve + optional legs), written as JSONL at the end.
  const bool want_events = !spec.events.empty();
  telemetry::EventLog& elog = telemetry::EventLog::global();
  if (want_events) {
    elog.reset();
    elog.set_recording(true);
  }
  // Live monitor + stall watchdog: a background sampler reading the
  // progress board the engine publishes each round. Purely
  // observational — the run's execution is bit-identical with or
  // without it.
  std::unique_ptr<telemetry::Monitor> monitor;
  if (spec.monitor_ms > 0 || spec.stall_timeout_ms > 0) {
    telemetry::MonitorOptions mopts;
    mopts.interval_ms = spec.monitor_ms > 0 ? static_cast<int>(spec.monitor_ms)
                                            : 1000;
    mopts.stall_timeout_ms = static_cast<int>(spec.stall_timeout_ms);
    mopts.abort_on_stall = spec.stall_abort;
    mopts.out = spec.monitor_ms > 0 ? &std::cerr : nullptr;
    mopts.label = spec.solver;
    monitor = std::make_unique<telemetry::Monitor>(mopts);
  }
  TelemetrySnap t_before;
  if (want_metrics) t_before = snap_telemetry();

  SolveResult result = solver.solve(inst, config);

  TelemetrySnap t_solve;
  if (want_metrics) t_solve = snap_telemetry();
  if (self_oracle) {
    out.optimum = objective(inst, result.matching, weighted_objective) *
                  oracle.bound_factor;
  }
  out.wall_ms = result.wall_ms;
  out.net = result.stats;
  out.converged = result.converged;
  out.metrics = std::move(result.metrics);
  out.guarantee = solver.guarantee(config);
  out.matching_size = result.matching.size();
  out.matching_weight = inst.has_weights()
                            ? result.matching.weight(inst.weighted_graph())
                            : 0.0;
  out.valid = is_valid_matching(inst.graph(),
                                result.matching.edge_ids(inst.graph()));
  out.maximal = !solver.capabilities().primitive &&
                is_maximal_matching(inst.graph(), result.matching);
  if (out.optimum > 0.0 && !solver.capabilities().primitive) {
    out.ratio =
        objective(inst, result.matching, weighted_objective) / out.optimum;
  }
  if (!spec.lca.empty()) {
    run_lca_leg(spec, inst, config, result.matching, pool.get(), out);
  }
  if (!spec.dynamic.empty()) {
    run_dynamic_leg(spec, fault_plan, *dyn_stream, *dyn_matcher, out);
  }
  if (want_metrics) {
    out.telemetry = summarize_telemetry(t_before, t_solve, snap_telemetry());
  }
  if (monitor != nullptr) {
    monitor->stop();
    out.stalled = monitor->stalled();
    monitor.reset();
  }
  telemetry::set_enabled(prev_metrics);
  if (want_trace) {
    tracer.set_recording(false);
    if (tracer.write_chrome_trace(spec.trace)) out.trace_path = spec.trace;
  }
  if (want_events) {
    elog.set_recording(false);
    out.events_recorded = elog.events();
    if (elog.write_jsonl(spec.events)) out.events_path = spec.events;
  }
  // Mirror ThreadPool's resolution of the 0 sentinel (hardware
  // concurrency, floored at 1 — the standard allows it to report 0).
  const unsigned resolved_threads =
      spec.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : spec.threads;
  const Provenance prov = current_provenance(resolved_threads);
  out.prov_git_sha = prov.git_sha;
  out.prov_build_type = prov.build_type;
  out.prov_threads = prov.threads;
  out.prov_timestamp_utc = prov.timestamp_utc;
  // Cross-run memory: one best-effort JSONL record per run (spec.ledger
  // / LPS_LEDGER control the destination; see api/ledger.hpp).
  append_run_ledger(out, resolve_ledger_path(spec.ledger));
  return out;
}

std::string RunResult::to_json() const {
  JsonObject metrics_obj;
  for (const auto& [key, value] : metrics) metrics_obj.add(key, value);
  JsonObject tel;
  tel.add("enabled", telemetry.enabled);
  if (telemetry.enabled) {
    JsonArray worker_busy;
    for (const std::uint64_t w : telemetry.worker_busy_ns) worker_busy.push(w);
    JsonObject shards_obj;
    shards_obj.add("touched", telemetry.shards_touched)
        .add("busy_mean_ns", telemetry.shard_busy_mean_ns)
        .add("busy_max_ns", telemetry.shard_busy_max_ns)
        .add("hottest", telemetry.hottest_shard)
        .add("imbalance", telemetry.shard_imbalance);
    JsonArray mpr;
    for (const std::uint64_t v : telemetry.messages_per_round) mpr.push(v);
    tel.add("rounds", telemetry.rounds)
        .add("messages_delivered", telemetry.messages_delivered);
    // Empty-histogram contract: a run with no engine rounds (sequential
    // solvers, pure dynamic legs) has nothing in the round/phase
    // histograms — omit the blocks rather than emit p50/p90/p99 zeros
    // that read as measurements.
    if (telemetry.rounds > 0) {
      JsonObject round;
      round.add("mean_ns", telemetry.round_ns_mean)
          .add("p50_ns", telemetry.round_ns_p50)
          .add("p90_ns", telemetry.round_ns_p90)
          .add("p99_ns", telemetry.round_ns_p99)
          .add("max_ns", telemetry.round_ns_max);
      JsonObject phases;
      phases.add("exchange_p1_ns", telemetry.exchange_p1_ns_mean)
          .add("exchange_p2_ns", telemetry.exchange_p2_ns_mean)
          .add("inbox_sort_ns", telemetry.inbox_sort_ns_mean)
          .add("step_ns", telemetry.step_ns_mean);
      tel.add("round", round).add("phase_mean_per_round", phases);
    }
    tel.add("worker_busy_ns", worker_busy)
        .add("worker_stall_frac", telemetry.worker_stall_frac)
        .add("shard_exchange", shards_obj)
        .add("messages_per_round", mpr)
        .add("messages_per_round_stride", telemetry.messages_per_round_stride);
    if (telemetry.lca_query_ns_p50 > 0.0) {
      tel.add("lca_query_ns_p50", telemetry.lca_query_ns_p50)
          .add("lca_query_ns_p99", telemetry.lca_query_ns_p99);
    }
    if (telemetry.dynamic_update_ns_p50 > 0.0) {
      tel.add("dynamic_update_ns_p50", telemetry.dynamic_update_ns_p50)
          .add("dynamic_update_ns_p99", telemetry.dynamic_update_ns_p99);
    }
    if (telemetry.faults_recovery_ns_p50 > 0.0) {
      tel.add("faults_recovery_ns_p50", telemetry.faults_recovery_ns_p50)
          .add("faults_recovery_ns_p99", telemetry.faults_recovery_ns_p99);
    }
    if (!trace_path.empty()) tel.add("trace_path", trace_path);
    if (!events_path.empty()) {
      tel.add("events_path", events_path)
          .add("events_recorded", events_recorded);
    }
  }
  JsonObject o;
  o.add("solver", spec.solver)
      .add("generator", spec.generator)
      .add("config", spec.config)
      .add("instance_seed", spec.instance_seed)
      .add("solver_seed", spec.solver_seed)
      .add("threads", static_cast<std::uint64_t>(spec.threads))
      .add("shards", static_cast<std::uint64_t>(spec.shards))
      .add("oracle", spec.oracle)
      .add("feed_oracle", spec.feed_oracle)
      .add("n", static_cast<std::uint64_t>(n))
      .add("m", static_cast<std::uint64_t>(m))
      .add("max_degree", static_cast<std::uint64_t>(max_degree))
      .add("weighted", weighted)
      .add("wall_ms", wall_ms)
      .add("rounds", net.rounds)
      .add("messages", net.messages)
      .add("total_bits", net.total_bits)
      .add("max_message_bits", net.max_message_bits)
      .add("matching_size", static_cast<std::uint64_t>(matching_size))
      .add("matching_weight", matching_weight)
      .add("valid", valid)
      .add("maximal", maximal)
      .add("converged", converged)
      .add("stalled", stalled)
      .add("guarantee", guarantee)
      .add("oracle_solver", oracle_solver)
      .add("optimum_kind", optimum_kind)
      .add("optimum", optimum)
      .add("ratio", ratio)
      .add("lca_oracle", lca_oracle)
      .add("lca_queries", lca_queries)
      .add("lca_probes_per_query", lca_probes_per_query)
      .add("lca_queries_per_sec", lca_queries_per_sec)
      .add("lca_cache_hit_rate", lca_cache_hit_rate)
      .add("lca_agree", lca_agree)
      .add("dynamic_maintainer", dynamic_maintainer)
      .add("dynamic_stream", spec.dynamic_stream)
      .add("dynamic_bootstrap_updates", dynamic_bootstrap_updates)
      .add("dynamic_updates", dynamic_updates)
      .add("dynamic_updates_per_sec", dynamic_updates_per_sec)
      .add("dynamic_recourse_per_update", dynamic_recourse_per_update)
      .add("dynamic_final_size", static_cast<std::uint64_t>(dynamic_final_size))
      .add("dynamic_final_edges", dynamic_final_edges)
      .add("dynamic_ratio", dynamic_ratio)
      .add("dynamic_ratio_min", dynamic_ratio_min)
      .add("dynamic_baseline", dynamic_baseline)
      .add("dynamic_valid", dynamic_valid)
      .add("faults", spec.faults)
      .add("fault_plan", fault_plan)
      .add("fault_epochs", fault_epochs)
      .add("fault_all_valid", fault_all_valid)
      .add("fault_min_ratio", fault_min_ratio)
      .add("fault_final_ratio", fault_final_ratio)
      .add("fault_final_valid", fault_final_valid)
      .add("fault_baseline_size",
           static_cast<std::uint64_t>(fault_baseline_size))
      .add("fault_crashed", fault_crashed)
      .add("fault_revived", fault_revived)
      .add("fault_adversarial", fault_adversarial)
      .add("fault_reinserted", fault_reinserted)
      .add("fault_recourse", fault_recourse)
      .add("fault_recovery_p50_ns", fault_recovery_p50_ns)
      .add("fault_recovery_p99_ns", fault_recovery_p99_ns)
      .add("provenance", provenance_json(Provenance{
                             prov_git_sha, prov_build_type, prov_threads,
                             prov_timestamp_utc}))
      .add("telemetry", tel)
      .add("metrics", metrics_obj);
  return o.str();
}

std::string write_json(const RunResult& result, const std::string& dir,
                       const std::string& name_hint) {
  std::string stem = name_hint;
  if (stem.empty()) {
    // Every spec field that changes the record is part of the stem, so
    // sweeps over any single knob never clobber each other's files.
    stem = result.spec.solver + "__" + result.spec.generator + "__s" +
           std::to_string(result.spec.instance_seed) + "-" +
           std::to_string(result.spec.solver_seed);
    if (!result.spec.config.empty()) stem += "__" + result.spec.config;
    if (result.spec.threads != 1) {
      stem += "__t" + std::to_string(result.spec.threads);
    }
    if (result.spec.shards != 0) {
      stem += "__s" + std::to_string(result.spec.shards);
    }
    if (result.spec.oracle != "auto") stem += "__o-" + result.spec.oracle;
    if (result.spec.feed_oracle) stem += "__fed";
    if (!result.spec.lca.empty()) {
      stem += "__lca-" + result.spec.lca + "-q" +
              std::to_string(result.spec.lca_queries);
    }
    if (!result.spec.dynamic.empty()) {
      stem += "__dyn-" + result.spec.dynamic + "-" + result.spec.dynamic_stream;
      if (!result.spec.dynamic_config.empty()) {
        stem += "-" + result.spec.dynamic_config;
      }
      stem += "-cp" + std::to_string(result.spec.dynamic_checkpoints);
    }
    if (!result.spec.faults.empty()) stem += "__f-" + result.spec.faults;
  }
  for (char& c : stem) {
    if (c == ':' || c == ',' || c == '=' || c == '/' || c == ' ') c = '-';
  }
  std::filesystem::create_directories(dir);
  // Repeated identical specs must not silently overwrite earlier
  // records: probe for a free path, suffixing a run ordinal.
  std::string path = dir + "/" + stem + ".json";
  for (unsigned ordinal = 2; std::filesystem::exists(path); ++ordinal) {
    path = dir + "/" + stem + "__r" + std::to_string(ordinal) + ".json";
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_json: cannot open '" + path + "'");
  }
  os << result.to_json() << "\n";
  return path;
}

}  // namespace lps::api
