// The unified solver abstraction: every matching algorithm in src/core
// and src/seq is exposed behind one interface so that benches, examples,
// tests, and future serving layers can enumerate, configure, and compare
// algorithms uniformly instead of hand-rolling a driver per option
// struct. Inspired by how the LCA literature treats algorithms as
// uniformly-queryable black boxes.
//
// The pieces:
//  * Instance      — a graph, optional edge weights, optional known
//                    bipartition. One input type for all solvers.
//  * SolverConfig  — string key/value configuration (parsed with
//                    util/options' kv grammar) plus the two cross-
//                    cutting knobs every algorithm shares: the seed and
//                    the ThreadPool.
//  * Capabilities  — what a solver accepts (bipartite/general/weighted)
//                    and what its output means (distributed/exact/
//                    maximal/primitive).
//  * SolveResult   — Matching + NetStats + wall time + named scalar
//                    metrics (iterations, phases, ...).
//  * MatchingSolver — the interface. `solve` is non-virtual: it
//                    validates the config keys and instance shape,
//                    times the run, then delegates to `run`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps::api {

/// One problem instance, consumable by every solver. Weighted solvers
/// require weights; unweighted solvers ignore them.
class Instance {
 public:
  Instance() = default;

  static Instance unweighted(Graph g);
  static Instance weighted(WeightedGraph wg);

  /// Attach a known bipartition (side[v] in {0,1}); solvers that need
  /// one then skip the O(n+m) recomputation.
  Instance& with_side(std::vector<std::uint8_t> side);

  const Graph& graph() const noexcept { return wg_.graph; }
  /// An explicit flag, not weights.empty(): a weighted instance that
  /// happens to have zero edges is still weighted.
  bool has_weights() const noexcept { return weighted_; }
  /// Throws std::logic_error when the instance is unweighted.
  const WeightedGraph& weighted_graph() const;

  const std::optional<std::vector<std::uint8_t>>& side() const noexcept {
    return side_;
  }
  /// The attached side, or a freshly computed bipartition, or nullopt
  /// when the graph is not bipartite.
  std::optional<std::vector<std::uint8_t>> bipartition() const;

  /// Like bipartition().has_value() but without copying the side
  /// vector. O(1) when a side is attached, one BFS otherwise.
  bool is_bipartite() const;

 private:
  WeightedGraph wg_;  // weights unused when !weighted_
  bool weighted_ = false;
  std::optional<std::vector<std::uint8_t>> side_;
};

/// String key/value configuration plus the two universal knobs. Keys
/// are solver-specific (see MatchingSolver::config_keys); values parse
/// on access with util/options' scalar grammar.
class SolverConfig {
 public:
  SolverConfig() = default;

  /// Parse a `k1=v1,k2=v2` list (util/options kv grammar); the reserved
  /// keys `seed` and `shards` set those knobs directly.
  static SolverConfig parse(const std::string& spec);

  SolverConfig& set(const std::string& key, const std::string& value);
  SolverConfig& seed(std::uint64_t s) noexcept {
    seed_ = s;
    seed_set_ = true;
    return *this;
  }
  /// Shard count for the round engine: 0 = auto (size to the detected
  /// L2 cache), 1 = single-shard, k = at most k shards. Universal like
  /// seed/pool — every engine-backed solver forwards it to
  /// SyncNetwork::set_shards; results are bit-identical for any value.
  SolverConfig& shards(unsigned s) noexcept {
    shards_ = s;
    return *this;
  }
  /// True once the seed was set explicitly (via seed(), set("seed",..),
  /// or a `seed=` entry in parse()); lets callers layer defaults under
  /// an explicit config seed instead of clobbering it.
  bool seed_was_set() const noexcept { return seed_set_; }
  SolverConfig& pool(ThreadPool* p) noexcept {
    pool_ = p;
    return *this;
  }

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::uint64_t seed() const noexcept { return seed_; }
  unsigned shards() const noexcept { return shards_; }
  ThreadPool* pool() const noexcept { return pool_; }
  const std::map<std::string, std::string>& entries() const noexcept {
    return values_;
  }

  /// Canonical `k1=v1,k2=v2,seed=s` form (for logs and JSON echoes).
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
  std::uint64_t seed_ = 1;
  bool seed_set_ = false;
  unsigned shards_ = 0;  // 0 = auto-size to the L2 cache
  ThreadPool* pool_ = nullptr;
};

/// What a solver accepts and what its result means.
struct Capabilities {
  bool bipartite = false;    // accepts bipartite instances
  bool general = false;      // accepts non-bipartite instances
  bool weighted = false;     // optimizes weight; requires weights
  bool distributed = false;  // NetStats rounds/bits are meaningful
  // The two result guarantees below describe runs at the solver's
  // default budget; an explicit truncating cap (max_phases,
  // max_iterations, ...) voids them, just as it zeroes guarantee().
  bool exact = false;        // returns an optimum (within its domain)
  bool maximal = false;      // result is guaranteed maximal
  bool primitive = false;    // not a matching solver (e.g. pipelined_max)
};

struct SolveResult {
  Matching matching;
  NetStats stats;
  double wall_ms = 0.0;  // filled by MatchingSolver::solve
  bool converged = true;
  /// Solver-specific scalars (iterations, phases, num_classes, ...).
  std::map<std::string, double> metrics;
};

class MatchingSolver {
 public:
  virtual ~MatchingSolver() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Config keys this solver understands (beyond the universal
  /// seed/pool); solve() rejects anything else so typos fail loudly.
  virtual std::vector<std::string> config_keys() const = 0;

  /// Worst-case approximation guarantee under `config` (1 = exact,
  /// 0 = none stated / not applicable).
  virtual double guarantee(const SolverConfig& config) const = 0;

  /// Throws std::invalid_argument on config keys this solver does not
  /// understand. Called by solve(); also usable up front by harnesses
  /// that do expensive work (oracle runs) before solving.
  void validate_config(const SolverConfig& config) const;

  /// validate_config plus the instance-shape checks (weights present
  /// for weighted solvers). Everything solve() rejects, without running.
  void validate(const Instance& instance, const SolverConfig& config) const;

  /// Validates config keys and instance shape (weights present for
  /// weighted solvers), times the run, and delegates to run().
  /// Throws std::invalid_argument on unknown keys or shape mismatch.
  SolveResult solve(const Instance& instance, const SolverConfig& config) const;

 protected:
  virtual SolveResult run(const Instance& instance,
                          const SolverConfig& config) const = 0;
};

}  // namespace lps::api
