#include "runtime/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "runtime/shard.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define LPS_SIMD_X86 1
#include <immintrin.h>
#else
#define LPS_SIMD_X86 0
#endif

namespace lps::simd {

namespace {

std::atomic<int>& forced_scalar_flag() {
  static std::atomic<int> flag{[] {
    const char* e = std::getenv("LPS_FORCE_SCALAR");
    return (e != nullptr && e[0] != '\0' &&
            !(e[0] == '0' && e[1] == '\0'))
               ? 1
               : 0;
  }()};
  return flag;
}

// ---- scalar reference paths (always compiled, always reachable) ----

bool any_eq_u8_scalar(const std::uint8_t* p, std::size_t n,
                      std::uint8_t v) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == v) return true;
  }
  return false;
}

bool any_ne_u8_scalar(const std::uint8_t* p, std::size_t n,
                      std::uint8_t v) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != v) return true;
  }
  return false;
}

std::size_t count_eq_u8_scalar(const std::uint8_t* p, std::size_t n,
                               std::uint8_t v) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += p[i] == v ? 1 : 0;
  }
  return total;
}

void mask_eq_u8_scalar(const std::uint8_t* p, std::size_t n,
                       std::uint8_t v, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = p[i] == v ? 1 : 0;
  }
}

std::size_t mask_positive_f64_scalar(const double* x, std::size_t n,
                                     std::uint8_t* out) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t keep = x[i] > 0.0 ? 1 : 0;
    out[i] = keep;
    total += keep;
  }
  return total;
}

/// Strict total order (w desc, id asc) shared by every argmax path.
bool beats(double wa, std::uint32_t ida, double wb, std::uint32_t idb) {
  return wa > wb || (wa == wb && ida < idb);
}

std::size_t argmax_masked_f64_scalar(const double* w,
                                     const std::uint32_t* id,
                                     const std::uint8_t* alive,
                                     std::size_t n) {
  std::size_t best = npos;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] == 0) continue;
    if (best == npos || beats(w[i], id[i], w[best], id[best])) best = i;
  }
  return best;
}

void sub2_gather_f64_scalar(const double* w, const double* sub,
                            const std::uint32_t* eu,
                            const std::uint32_t* ev, double* out,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = w[i] - sub[eu[i]] - sub[ev[i]];
  }
}

#if LPS_SIMD_X86

// ---- SSE2 paths (baseline on x86-64, no target attribute needed) ----

bool any_eq_u8_sse2(const std::uint8_t* p, std::size_t n,
                    std::uint8_t v) {
  const __m128i vv = _mm_set1_epi8(static_cast<char>(v));
  const std::size_t blk = block_bytes();
  const std::size_t vend = n & ~std::size_t{15};
  for (std::size_t base = 0; base < vend; base += blk) {
    const std::size_t stop = std::min(vend, base + blk);
    __m128i acc = _mm_setzero_si128();
    for (std::size_t i = base; i < stop; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
      acc = _mm_or_si128(acc, _mm_cmpeq_epi8(x, vv));
    }
    if (_mm_movemask_epi8(acc) != 0) return true;
  }
  return any_eq_u8_scalar(p + vend, n - vend, v);
}

bool any_ne_u8_sse2(const std::uint8_t* p, std::size_t n,
                    std::uint8_t v) {
  const __m128i vv = _mm_set1_epi8(static_cast<char>(v));
  const std::size_t blk = block_bytes();
  const std::size_t vend = n & ~std::size_t{15};
  for (std::size_t base = 0; base < vend; base += blk) {
    const std::size_t stop = std::min(vend, base + blk);
    __m128i acc = _mm_set1_epi8(static_cast<char>(0xFF));
    for (std::size_t i = base; i < stop; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
      acc = _mm_and_si128(acc, _mm_cmpeq_epi8(x, vv));
    }
    if (_mm_movemask_epi8(acc) != 0xFFFF) return true;
  }
  return any_ne_u8_scalar(p + vend, n - vend, v);
}

std::size_t count_eq_u8_sse2(const std::uint8_t* p, std::size_t n,
                             std::uint8_t v) {
  const __m128i vv = _mm_set1_epi8(static_cast<char>(v));
  const __m128i zero = _mm_setzero_si128();
  const std::size_t vend = n & ~std::size_t{15};
  std::size_t total = 0;
  std::size_t i = 0;
  while (i < vend) {
    // cmpeq yields 0 or -1 per byte; subtracting accumulates per-byte
    // counts that stay < 256 for at most 255 vectors before a flush.
    const std::size_t stop = std::min(vend, i + std::size_t{255} * 16);
    __m128i acc = zero;
    for (; i < stop; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
      acc = _mm_sub_epi8(acc, _mm_cmpeq_epi8(x, vv));
    }
    const __m128i sad = _mm_sad_epu8(acc, zero);
    total += static_cast<std::size_t>(_mm_cvtsi128_si64(
        _mm_add_epi64(sad, _mm_srli_si128(sad, 8))));
  }
  return total + count_eq_u8_scalar(p + vend, n - vend, v);
}

void mask_eq_u8_sse2(const std::uint8_t* p, std::size_t n,
                     std::uint8_t v, std::uint8_t* out) {
  const __m128i vv = _mm_set1_epi8(static_cast<char>(v));
  const __m128i one = _mm_set1_epi8(1);
  const std::size_t vend = n & ~std::size_t{15};
  for (std::size_t i = 0; i < vend; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(_mm_cmpeq_epi8(x, vv), one));
  }
  mask_eq_u8_scalar(p + vend, n - vend, v, out + vend);
}

std::size_t mask_positive_f64_sse2(const double* x, std::size_t n,
                                   std::uint8_t* out) {
  const __m128d zero = _mm_setzero_pd();
  const std::size_t vend = n & ~std::size_t{1};
  std::size_t total = 0;
  for (std::size_t i = 0; i < vend; i += 2) {
    const int m = _mm_movemask_pd(_mm_cmpgt_pd(_mm_loadu_pd(x + i), zero));
    out[i] = static_cast<std::uint8_t>(m & 1);
    out[i + 1] = static_cast<std::uint8_t>((m >> 1) & 1);
    total += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(m)));
  }
  return total + mask_positive_f64_scalar(x + vend, n - vend, out + vend);
}

// ---- AVX2 paths (runtime-dispatched; compiled with a per-function
// target attribute so the rest of the binary stays baseline ISA) ----

__attribute__((target("avx2"))) bool any_eq_u8_avx2(
    const std::uint8_t* p, std::size_t n, std::uint8_t v) {
  const __m256i vv = _mm256_set1_epi8(static_cast<char>(v));
  const std::size_t blk = block_bytes();
  const std::size_t vend = n & ~std::size_t{31};
  for (std::size_t base = 0; base < vend; base += blk) {
    const std::size_t stop = std::min(vend, base + blk);
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t i = base; i < stop; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      acc = _mm256_or_si256(acc, _mm256_cmpeq_epi8(x, vv));
    }
    if (_mm256_movemask_epi8(acc) != 0) return true;
  }
  return any_eq_u8_scalar(p + vend, n - vend, v);
}

__attribute__((target("avx2"))) bool any_ne_u8_avx2(
    const std::uint8_t* p, std::size_t n, std::uint8_t v) {
  const __m256i vv = _mm256_set1_epi8(static_cast<char>(v));
  const std::size_t blk = block_bytes();
  const std::size_t vend = n & ~std::size_t{31};
  for (std::size_t base = 0; base < vend; base += blk) {
    const std::size_t stop = std::min(vend, base + blk);
    __m256i acc = _mm256_set1_epi8(static_cast<char>(0xFF));
    for (std::size_t i = base; i < stop; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      acc = _mm256_and_si256(acc, _mm256_cmpeq_epi8(x, vv));
    }
    if (_mm256_movemask_epi8(acc) != -1) return true;
  }
  return any_ne_u8_scalar(p + vend, n - vend, v);
}

__attribute__((target("avx2"))) std::size_t count_eq_u8_avx2(
    const std::uint8_t* p, std::size_t n, std::uint8_t v) {
  const __m256i vv = _mm256_set1_epi8(static_cast<char>(v));
  const __m256i zero = _mm256_setzero_si256();
  const std::size_t vend = n & ~std::size_t{31};
  std::size_t total = 0;
  std::size_t i = 0;
  while (i < vend) {
    const std::size_t stop = std::min(vend, i + std::size_t{255} * 32);
    __m256i acc = zero;
    for (; i < stop; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      acc = _mm256_sub_epi8(acc, _mm256_cmpeq_epi8(x, vv));
    }
    const __m256i sad = _mm256_sad_epu8(acc, zero);
    const __m128i lo = _mm256_castsi256_si128(sad);
    const __m128i hi = _mm256_extracti128_si256(sad, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    total += static_cast<std::size_t>(_mm_cvtsi128_si64(
        _mm_add_epi64(sum, _mm_srli_si128(sum, 8))));
  }
  return total + count_eq_u8_scalar(p + vend, n - vend, v);
}

__attribute__((target("avx2"))) void mask_eq_u8_avx2(
    const std::uint8_t* p, std::size_t n, std::uint8_t v,
    std::uint8_t* out) {
  const __m256i vv = _mm256_set1_epi8(static_cast<char>(v));
  const __m256i one = _mm256_set1_epi8(1);
  const std::size_t vend = n & ~std::size_t{31};
  for (std::size_t i = 0; i < vend; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(_mm256_cmpeq_epi8(x, vv), one));
  }
  mask_eq_u8_scalar(p + vend, n - vend, v, out + vend);
}

__attribute__((target("avx2"))) std::size_t mask_positive_f64_avx2(
    const double* x, std::size_t n, std::uint8_t* out) {
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t vend = n & ~std::size_t{3};
  std::size_t total = 0;
  for (std::size_t i = 0; i < vend; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_GT_OQ));
    out[i] = static_cast<std::uint8_t>(m & 1);
    out[i + 1] = static_cast<std::uint8_t>((m >> 1) & 1);
    out[i + 2] = static_cast<std::uint8_t>((m >> 2) & 1);
    out[i + 3] = static_cast<std::uint8_t>((m >> 3) & 1);
    total += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(m)));
  }
  return total + mask_positive_f64_scalar(x + vend, n - vend, out + vend);
}

__attribute__((target("avx2"))) std::size_t argmax_masked_f64_avx2(
    const double* w, const std::uint32_t* id, const std::uint8_t* alive,
    std::size_t n) {
  const std::size_t vend = n & ~std::size_t{3};
  // Per-lane running best. Empty lanes hold (-inf, INT64_MAX, -1):
  // any alive candidate beats them (greater weight, or equal -inf
  // weight with a smaller id), so no separate validity mask is needed.
  __m256d best_w = _mm256_set1_pd(-__builtin_huge_val());
  __m256i best_id = _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL);
  __m256i best_ix = _mm256_set1_epi64x(-1);
  const __m256i izero = _mm256_setzero_si256();
  __m256i cur_ix = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i ix_step = _mm256_set1_epi64x(4);
  for (std::size_t i = 0; i < vend; i += 4) {
    const __m256d cw = _mm256_loadu_pd(w + i);
    std::uint32_t abytes = 0;
    std::memcpy(&abytes, alive + i, 4);
    const __m256i alanes = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(abytes)));
    const __m256i alive_m = _mm256_cmpgt_epi64(alanes, izero);
    const __m256i cid = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(id + i)));
    const __m256d gt = _mm256_cmp_pd(cw, best_w, _CMP_GT_OQ);
    const __m256d eq = _mm256_cmp_pd(cw, best_w, _CMP_EQ_OQ);
    const __m256i id_lt = _mm256_cmpgt_epi64(best_id, cid);
    const __m256i better = _mm256_or_si256(
        _mm256_castpd_si256(gt),
        _mm256_and_si256(_mm256_castpd_si256(eq), id_lt));
    const __m256i take = _mm256_and_si256(better, alive_m);
    best_w = _mm256_blendv_pd(best_w, cw, _mm256_castsi256_pd(take));
    best_id = _mm256_blendv_epi8(best_id, cid, take);
    best_ix = _mm256_blendv_epi8(best_ix, cur_ix, take);
    cur_ix = _mm256_add_epi64(cur_ix, ix_step);
  }
  // Horizontal reduce under the same total order, then fold in the
  // scalar tail. The order is strict (distinct ids), so the reduction
  // order cannot change the winner.
  alignas(32) double lane_w[4];
  alignas(32) std::int64_t lane_id[4];
  alignas(32) std::int64_t lane_ix[4];
  _mm256_store_pd(lane_w, best_w);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_id), best_id);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ix), best_ix);
  std::size_t best = npos;
  for (int l = 0; l < 4; ++l) {
    if (lane_ix[l] < 0) continue;
    const std::size_t ix = static_cast<std::size_t>(lane_ix[l]);
    if (best == npos || beats(lane_w[l], static_cast<std::uint32_t>(lane_id[l]),
                              w[best], id[best])) {
      best = ix;
    }
  }
  for (std::size_t i = vend; i < n; ++i) {
    if (alive[i] == 0) continue;
    if (best == npos || beats(w[i], id[i], w[best], id[best])) best = i;
  }
  return best;
}

__attribute__((target("avx2"))) void sub2_gather_f64_avx2(
    const double* w, const double* sub, const std::uint32_t* eu,
    const std::uint32_t* ev, double* out, std::size_t n) {
  const std::size_t vend = n & ~std::size_t{3};
  for (std::size_t i = 0; i < vend; i += 4) {
    const __m128i iu =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(eu + i));
    const __m128i iv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ev + i));
    const __m256d su = _mm256_i32gather_pd(sub, iu, 8);
    const __m256d sv = _mm256_i32gather_pd(sub, iv, 8);
    const __m256d r =
        _mm256_sub_pd(_mm256_sub_pd(_mm256_loadu_pd(w + i), su), sv);
    _mm256_storeu_pd(out + i, r);
  }
  sub2_gather_f64_scalar(w + vend, sub, eu + vend, ev + vend, out + vend,
                         n - vend);
}

#endif  // LPS_SIMD_X86

}  // namespace

Level detected_level() {
  static const Level level = [] {
#if LPS_SIMD_X86
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
    return Level::kScalar;
  }();
  return level;
}

Level active_level() {
  return forced_scalar_flag().load(std::memory_order_relaxed) != 0
             ? Level::kScalar
             : detected_level();
}

void force_scalar(bool on) {
  forced_scalar_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse2:
      return "sse2";
    default:
      return "scalar";
  }
}

std::size_t block_bytes() {
  static const std::size_t bytes = [] {
    const CacheInfo& cache = detect_cache();
    std::size_t b = cache.l1d_bytes / 2;
    b = std::clamp(b, std::size_t{4} << 10, std::size_t{1} << 20);
    const std::size_t line = std::max<std::size_t>(cache.line_bytes, 64);
    b -= b % line;
    b &= ~std::size_t{63};  // whole max-width vectors
    return std::max(b, std::size_t{4} << 10);
  }();
  return bytes;
}

bool any_eq_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v) {
#if LPS_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      return any_eq_u8_avx2(p, n, v);
    case Level::kSse2:
      return any_eq_u8_sse2(p, n, v);
    default:
      break;
  }
#endif
  return any_eq_u8_scalar(p, n, v);
}

bool any_ne_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v) {
#if LPS_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      return any_ne_u8_avx2(p, n, v);
    case Level::kSse2:
      return any_ne_u8_sse2(p, n, v);
    default:
      break;
  }
#endif
  return any_ne_u8_scalar(p, n, v);
}

std::size_t count_eq_u8(const std::uint8_t* p, std::size_t n,
                        std::uint8_t v) {
#if LPS_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      return count_eq_u8_avx2(p, n, v);
    case Level::kSse2:
      return count_eq_u8_sse2(p, n, v);
    default:
      break;
  }
#endif
  return count_eq_u8_scalar(p, n, v);
}

void mask_eq_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v,
                std::uint8_t* out) {
#if LPS_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      mask_eq_u8_avx2(p, n, v, out);
      return;
    case Level::kSse2:
      mask_eq_u8_sse2(p, n, v, out);
      return;
    default:
      break;
  }
#endif
  mask_eq_u8_scalar(p, n, v, out);
}

std::size_t mask_positive_f64(const double* x, std::size_t n,
                              std::uint8_t* out) {
#if LPS_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      return mask_positive_f64_avx2(x, n, out);
    case Level::kSse2:
      return mask_positive_f64_sse2(x, n, out);
    default:
      break;
  }
#endif
  return mask_positive_f64_scalar(x, n, out);
}

std::size_t argmax_masked_f64(const double* w, const std::uint32_t* id,
                              const std::uint8_t* alive, std::size_t n) {
#if LPS_SIMD_X86
  // SSE2 lacks the 64-bit compares and blends this needs; it shares the
  // scalar path, which the total order makes equally correct.
  if (active_level() == Level::kAvx2) {
    return argmax_masked_f64_avx2(w, id, alive, n);
  }
#endif
  return argmax_masked_f64_scalar(w, id, alive, n);
}

void sub2_gather_f64(const double* w, const double* sub,
                     const std::uint32_t* eu, const std::uint32_t* ev,
                     double* out, std::size_t n) {
#if LPS_SIMD_X86
  // Gathers are AVX2-only; SSE2 shares the (bit-identical) scalar path.
  if (active_level() == Level::kAvx2) {
    sub2_gather_f64_avx2(w, sub, eu, ev, out, n);
    return;
  }
#endif
  sub2_gather_f64_scalar(w, sub, eu, ev, out, n);
}

}  // namespace lps::simd
