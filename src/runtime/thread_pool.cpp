#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hpp"

namespace lps {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = threads;
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(unsigned worker) {
  // Label the thread in trace exports; registers the buffer eagerly so
  // the label survives even if recording starts mid-run.
  telemetry::Tracer::global().set_thread_label("pool-worker-" +
                                               std::to_string(worker));
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned, std::size_t, std::size_t)>* job =
        nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      ++active_;
    }
    for (;;) {
      const std::size_t start =
          next_.fetch_add(job_grain_, std::memory_order_relaxed);
      if (start >= job_end_) break;
      (*job)(worker, start, std::min(start + job_grain_, job_end_));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_workers(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (workers_.empty() || end - begin <= grain) {
    fn(0, begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    next_.store(begin, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread participates in the same chunk queue as worker 0.
  for (;;) {
    const std::size_t start = next_.fetch_add(grain, std::memory_order_relaxed);
    if (start >= end) break;
    fn(0, start, std::min(start + grain, end));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_workers(begin, end, grain,
                       [&fn](unsigned, std::size_t b, std::size_t e) {
                         fn(b, e);
                       });
}

}  // namespace lps
