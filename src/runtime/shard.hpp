// Shard planning for the sharded round engine (DESIGN.md §11).
//
// A shard is a contiguous, power-of-two-aligned range of vertex ids, so
// shard lookup is a single shift and a shard's slices of every
// vertex-indexed array (CSR rows, mailbox bookkeeping, active stamps,
// per-node solver state) are contiguous byte ranges. The auto plan
// sizes shards so one shard's engine working set fits comfortably in
// the detected L2 cache: the per-round mailbox counting sort and the
// step loop then stay inside one shard's working set, and only the
// boundary exchange (the shard-binning pass) walks memory proportional
// to cross-shard traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/storage.hpp"

namespace lps {

/// Detected cache sizes, with conservative fallbacks when sysfs is
/// unavailable (non-Linux, sandboxes).
struct CacheInfo {
  std::size_t l1d_bytes = 32u << 10;  // fallback: 32 KiB
  std::size_t line_bytes = 64;        // fallback: 64 B
  std::size_t l2_bytes = 1u << 20;    // fallback: 1 MiB
  std::size_t l3_bytes = 8u << 20;    // fallback: 8 MiB
};

/// Reads /sys/devices/system/cpu/cpu0/cache once and caches the result.
const CacheInfo& detect_cache();

/// Uncached probe against an arbitrary sysfs-style cache directory
/// (".../cache"; index<i> subdirs with level/type/size files). Exists so
/// tests can exercise both the parse and the fallback paths; production
/// code goes through detect_cache().
CacheInfo detect_cache_at(const std::string& cache_dir);

/// Bytes of engine + typical solver state touched per vertex per round;
/// used by the auto plan. Mailbox bookkeeping (~24B) + active stamp +
/// CSR offsets + a few adjacency entries.
inline constexpr std::size_t kEngineBytesPerVertex = 64;

/// A partition of [0, n) into `count` contiguous ranges of width
/// 2^shift (the last may be shorter).
struct ShardPlan {
  NodeId n = 0;
  unsigned shift = 32;  // shard_of(v) == v >> shift
  unsigned count = 1;

  unsigned shard_of(NodeId v) const noexcept {
    return static_cast<unsigned>(v >> shift);
  }
  NodeId shard_begin(unsigned s) const noexcept {
    return static_cast<NodeId>(static_cast<std::uint64_t>(s) << shift);
  }
  NodeId shard_end(unsigned s) const noexcept {
    const std::uint64_t e = static_cast<std::uint64_t>(s + 1) << shift;
    return e < n ? static_cast<NodeId>(e) : n;
  }
};

/// Plan shards for an n-vertex graph. requested == 0 picks the count
/// from the detected L2 size (targeting ~half of L2 per shard at
/// `bytes_per_vertex`); requested >= 1 forces (at most) that many
/// shards. Counts are clamped to [1, 4096] and shard width is a power
/// of two >= 1024 so tiny graphs are never oversharded.
ShardPlan plan_shards(NodeId n, unsigned requested,
                      std::size_t bytes_per_vertex = kEngineBytesPerVertex);

}  // namespace lps
