// SyncNetwork<M>: the synchronous message-passing model of the paper's
// Section 2, executable.
//
//   "in each time step, processors send (possibly different) messages to
//    neighbors, receive messages from neighbors, and perform some local
//    computation."
//
// Faithfulness points:
//  * Lock-step rounds. A message sent in round r is delivered at the
//    start of round r+1, and nothing else is ever delivered.
//  * One message per edge per direction per round (sending twice on the
//    same channel in one round throws): this is the model under which
//    the paper's CONGEST bit bounds are stated.
//  * Every message is metered in bits via a caller-supplied measure, so
//    LOCAL-vs-CONGEST claims (O(|V|+|E|) vs O(log n) bits) become
//    measurable quantities in `stats()`.
//  * Per-(node, round) RNG substreams: the execution is a deterministic
//    function of the seed, independent of node iteration order — which
//    also makes thread-pool execution AND any shard count bit-identical
//    to sequential single-shard execution.
//
// Cost model of the implementation (not of the simulated protocols): a
// round costs O(stepped nodes + messages in flight), NOT O(n + m), and
// the constant stays flat as n grows because all per-round work is
// confined to cache-sized vertex shards (DESIGN.md §11):
//
//  * Epoch-stamped channels. Each directed channel (edge, direction) has
//    a round-stamp instead of a std::optional slot; "two sends on one
//    channel in one round" is a stamp comparison and there is no
//    O(m) per-round reset sweep. Payloads ride in per-worker send lists
//    sized by actual traffic, each tagged at send time with its
//    receiver and the receiver-side incidence position (so delivery
//    never touches the graph).
//  * Sharded mailbox delivery. Vertices are partitioned into contiguous
//    power-of-two shards sized to the L2 cache (runtime/shard.hpp). A
//    round's sends are first counting-sorted by destination shard (the
//    boundary-exchange phase — the only pass that walks cross-shard
//    traffic), then each shard's slice is counting-sorted by receiver
//    and each inbox put into the receiver's incidence order. All
//    vertex-indexed bookkeeping accesses in the second phase fall
//    inside one shard's contiguous range, so they stay L2-resident at
//    any graph size. Inbox construction touches only real messages,
//    never the whole graph.
//  * Active-set scheduling. A node is stepped in a round iff it has
//    incoming messages, called ctx.keep_active() in the previous round,
//    or was activated for the round (activate(); the first round
//    defaults to every node unless restrict_initial_active() was
//    called). Active nodes are bucketed per shard and stepped shard by
//    shard, so node state and CSR rows are walked in shard order.
//    Protocols whose spontaneous sends cannot be expressed this way opt
//    out with step_all_nodes(), restoring the exact old
//    every-node-every-round semantics. Because nodes draw from
//    per-(node, round) substreams and an unstepped node would neither
//    send nor mutate state, an execution under active-set scheduling is
//    bit-identical to a step_all_nodes() execution whenever the protocol
//    keeps alive every node that might act without an incoming message.
//
// A node program is any callable `void step(Ctx& ctx)`; persistent node
// state lives in arrays owned by the algorithm object (indexed by node
// id). During a parallel round a node may only touch its own state and
// its own outgoing channels; all algorithms in src/core follow this.
//
// M must be default-constructible and movable. The bit meter is a
// template parameter so protocol meters (usually a constant or a small
// struct) are statically dispatched; the default falls back to
// std::function for ad-hoc lambdas.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "faults/injector.hpp"
#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace lps {

/// Fallback meter when none is supplied: every message costs its wire
/// width, sizeof(M) * 8 bits.
template <typename M>
struct DefaultBitMeter {
  std::uint64_t operator()(const M&) const noexcept {
    return std::uint64_t{sizeof(M) * 8};
  }
};

template <typename M, typename Meter = std::function<std::uint64_t(const M&)>>
class SyncNetwork {
 public:
  /// A delivered message: sender, the edge it traveled on, payload. The
  /// payload pointer is valid for the round the message is delivered in.
  struct Incoming {
    NodeId from;
    EdgeId edge;
    const M* payload;
  };

  using BitMeter = std::function<std::uint64_t(const M&)>;

 private:
  struct PerWorker;  // defined below; Ctx holds a pointer to its worker

 public:
  /// Per-node, per-round execution context.
  class Ctx {
   public:
    NodeId id() const noexcept { return id_; }
    std::uint64_t round() const noexcept { return net_->round_; }
    const Graph& graph() const noexcept { return *net_->graph_; }
    Rng& rng() noexcept { return rng_; }
    std::span<const Incoming> inbox() const noexcept { return inbox_; }

    /// Send along edge e to the other endpoint (delivered next round).
    void send(EdgeId e, M msg) {
      net_->enqueue(id_, e, std::move(msg), *worker_);
    }

    /// Send a copy of msg to every neighbor.
    void send_all(const M& msg) {
      for (const Graph::Incidence& inc : graph().neighbors(id_)) {
        send(inc.edge, msg);
      }
    }

    /// Stay in the next round's active set even without incoming
    /// messages. Call it whenever this node might act spontaneously next
    /// round; a no-op under step_all_nodes().
    void keep_active() {
      if (!net_->step_all_) worker_->wake.push_back(id_);
    }

   private:
    friend class SyncNetwork;
    SyncNetwork* net_ = nullptr;
    NodeId id_ = kInvalidNode;
    Rng rng_{0};
    std::span<const Incoming> inbox_;
    PerWorker* worker_ = nullptr;
  };

  SyncNetwork(const Graph& g, std::uint64_t seed, Meter meter = Meter{})
      : graph_(&g),
        seed_(seed),
        meter_(std::move(meter)),
        plan_(plan_shards(g.num_nodes(), /*requested=*/0)),
        slot_stamp_(2 * static_cast<std::size_t>(g.num_edges()), kNever),
        rcv_slot_(2 * static_cast<std::size_t>(g.num_edges())),
        inbox_stamp_(g.num_nodes(), kNever),
        inbox_off_(g.num_nodes()),
        inbox_cur_(g.num_nodes()),
        inbox_cnt_(g.num_nodes()),
        active_stamp_(g.num_nodes(), kNever),
        shard_active_(plan_.count) {
    if constexpr (std::is_same_v<Meter, BitMeter>) {
      if (!meter_) meter_ = DefaultBitMeter<M>{};
    }
    // Directed channels are indexed by CSR *arc*: the channel on which v
    // sends along its i-th incidence is arc offsets[v] + i. Senders then
    // stamp and read channel state at positions inside their own row —
    // shard-local by construction — instead of at edge-table positions
    // that are random relative to vertex order. Precompute, per arc
    // v -> to, the position of v in to's row (the receiver-side
    // incidence position: the canonical inbox sort key).
    const GraphStore& s = g.store();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint64_t base = s.offsets[v];
      const std::uint64_t end = s.offsets[v + 1];
      for (std::uint64_t a = base; a < end; ++a) {
        const NodeId to = s.adj_to[a];
        // Position of v in to's (sorted) row, by binary search.
        const NodeId* row = s.adj_to.data() + s.offsets[to];
        const NodeId* hit =
            std::lower_bound(row, s.adj_to.data() + s.offsets[to + 1], v);
        rcv_slot_[a] = static_cast<std::uint32_t>(hit - row);
      }
    }
  }

  /// Optional: step nodes with a thread pool (nullptr = sequential).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Repartition the vertex set: 0 = auto (cache-sized shards, the
  /// default), 1 = the pre-shard single-partition layout, k = at most k
  /// contiguous shards. Any value produces bit-identical executions;
  /// callable between rounds.
  void set_shards(unsigned requested) {
    plan_ = plan_shards(graph_->num_nodes(), requested);
    shard_active_.assign(plan_.count, {});
  }

  /// The number of vertex shards the mailbox and scheduler operate on.
  unsigned shards() const noexcept { return plan_.count; }
  const ShardPlan& shard_plan() const noexcept { return plan_; }

  /// Opt out of active-set scheduling: step every node every round, the
  /// exact semantics of the original engine. For protocols whose
  /// spontaneous sends cannot be expressed with keep_active()/activate().
  void step_all_nodes(bool on = true) noexcept { step_all_ = on; }

  /// Queue v for the next run_round's active set (on top of message
  /// receivers and keep_active callers). Callable between rounds only.
  void activate(NodeId v) { pending_activations_.push_back(v); }

  /// Drop the first round's every-node default: round 0 then steps only
  /// activate()d nodes (plus receivers — vacuous in round 0).
  void restrict_initial_active() noexcept { initial_restricted_ = true; }

  /// Attach a message-fault injector (nullptr = fault-free, the
  /// default; the injector is not owned and must outlive the network).
  /// Faults apply at the channel exchange: sends still succeed and are
  /// metered, but delivery may drop, duplicate, or delay the message.
  /// Fates are a pure function of (injector seed, channel, round), so
  /// executions stay bit-identical across thread and shard counts. A
  /// no-op when the library is built with -DLPS_FAULTS=0.
  void set_message_faults(faults::MessageFaultInjector* injector) noexcept {
#if LPS_FAULTS
    faults_ = injector;
#else
    (void)injector;
#endif
  }

  const NetStats& stats() const noexcept { return stats_; }
  std::uint64_t round() const noexcept { return round_; }

  /// Messages delivered in the most recent round.
  std::uint64_t last_round_deliveries() const noexcept {
    return delivered_last_round_;
  }

  /// Nodes stepped in the most recent round (== n when stepping all).
  std::uint64_t last_round_stepped() const noexcept {
    return stepped_last_round_;
  }

  /// Execute one synchronous round: deliver everything sent last round,
  /// step the round's active set (or every node), collect sends for the
  /// next round.
  template <typename Step>
  void run_round(Step&& step) {
    const Graph& g = *graph_;
    ensure_workers();
    ++stats_.rounds;

    // Telemetry gates, resolved once per round: two relaxed loads when
    // compiled in, constexpr false (whole blocks dead) when compiled out.
    const bool tmetrics = telemetry::enabled();
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    const bool ttrace = tracer.recording();
    const bool tel = tmetrics || ttrace;
    const std::uint64_t this_round = round_;
    const std::uint64_t t_round = tel ? telemetry::now_ns() : 0;

    build_inboxes(tmetrics, ttrace);
    delivered_last_round_ = deliveries_.size();

    const bool all = step_all_ || (round_ == 0 && !initial_restricted_);
    if (all) {
      for (PerWorker& w : workers_) w.wake.clear();
      pending_activations_.clear();
    } else {
      active_.clear();
      for (std::vector<NodeId>& sa : shard_active_) sa.clear();
      for (const std::vector<NodeId>& rs : shard_receivers_) {
        for (NodeId v : rs) mark_active(v);
      }
      for (PerWorker& w : workers_) {
        for (NodeId v : w.wake) mark_active(v);
        w.wake.clear();
      }
      for (NodeId v : pending_activations_) mark_active(v);
      pending_activations_.clear();
      // Flatten in shard order: the step loop then walks node state and
      // CSR rows one cache-sized shard at a time.
      for (const std::vector<NodeId>& sa : shard_active_) {
        active_.insert(active_.end(), sa.begin(), sa.end());
      }
    }
    const std::size_t count = all ? g.num_nodes() : active_.size();
    stepped_last_round_ = count;

    const std::uint64_t t_step = tel ? telemetry::now_ns() : 0;
    auto process = [&](unsigned worker, std::size_t begin, std::size_t end) {
      PerWorker& pw = workers_[worker];
      const std::uint64_t t_chunk = tel ? telemetry::now_ns() : 0;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId node = all ? static_cast<NodeId>(i) : active_[i];
        Ctx ctx;
        ctx.net_ = this;
        ctx.id_ = node;
        ctx.rng_ = Rng::substream(seed_, std::uint64_t{node}, round_);
        ctx.inbox_ = inbox_of(node);
        ctx.worker_ = &pw;
        step(ctx);
      }
      if (tel) pw.busy_ns += telemetry::now_ns() - t_chunk;
    };
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->parallel_for_workers(0, count, 256, process);
    } else {
      process(0, 0, count);
    }
    const std::uint64_t t_step_end = tel ? telemetry::now_ns() : 0;

    // One stat merge per round (per-worker slots; no mutex anywhere).
    std::uint64_t sent = 0;
    std::uint64_t bits = 0;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      PerWorker& w = workers_[wi];
      sent += w.stats.messages;
      bits += w.stats.total_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, w.stats.max_message_bits);
      w.stats = NetStats{};
      if (tmetrics && w.busy_ns != 0) {
        telemetry::EngineMetrics::get().worker_busy_ns.add(wi, w.busy_ns);
      }
      w.busy_ns = 0;  // unconditional: no stale carry if telemetry toggles
    }
    stats_.messages += sent;
    stats_.total_bits += bits;
    pending_ = sent;
#if LPS_FAULTS
    // Held-back messages count as in flight: run(stop_when_silent) must
    // not declare the network silent while deliveries are still due.
    pending_ += delayed_.size();
#endif
    delivered_total_ += delivered_last_round_;
    ++round_;

    // Structured round-boundary event + live progress snapshot. Both
    // paths only observe engine state (never feed back into it), so
    // executions stay bit-identical with them on or off.
    telemetry::EventLog& elog = telemetry::EventLog::global();
    if (elog.recording()) {
      elog.emit(telemetry::EventKind::kRound, this_round,
                delivered_last_round_, sent, stepped_last_round_);
    }
    telemetry::ProgressBoard& board = telemetry::ProgressBoard::global();
    if (board.publishing()) {
      board.publish(round_, delivered_total_, stepped_last_round_,
                    telemetry::now_ns());
    }

    if (tel) {
      const std::uint64_t t_end = telemetry::now_ns();
      if (tmetrics) {
        telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
        em.rounds.add(1);
        em.messages_delivered.add(delivered_last_round_);
        em.round_ns.record(t_end - t_round);
        em.step_ns.record(t_step_end - t_step);
        em.messages_per_round.push(delivered_last_round_);
      }
      if (ttrace) {
        const auto r = static_cast<double>(this_round);
        tracer.emit("engine.step", "engine", t_step, t_step_end - t_step,
                    {{"round", r},
                     {"stepped", static_cast<double>(stepped_last_round_)}});
        tracer.emit(
            "engine.round", "engine", t_round, t_end - t_round,
            {{"round", r},
             {"delivered", static_cast<double>(delivered_last_round_)},
             {"sent", static_cast<double>(sent)}});
      }
    }
  }

  /// Run up to max_rounds; with stop_when_silent, stop after a round in
  /// which no node sent any message AND nothing is pending (for purely
  /// message-driven protocols further rounds are no-ops). Returns the
  /// number of rounds executed.
  template <typename Step>
  std::uint64_t run(std::uint64_t max_rounds, bool stop_when_silent,
                    Step&& step) {
    std::uint64_t executed = 0;
    for (; executed < max_rounds; ++executed) {
      run_round(step);
      if (stop_when_silent && pending_ == 0) {
        ++executed;
        break;
      }
    }
    return executed;
  }

 private:
  static constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);

  /// A payload in flight. Sender-side sends are fully resolved at
  /// enqueue time — receiver, edge, and receiver-side incidence position
  /// ride along — so the delivery phases never consult the graph.
  struct SendRec {
    std::uint32_t key;  // position in the receiver's incidence list
    std::uint32_t seq;  // round the message was sent (inbox tiebreak)
    NodeId from;
    NodeId to;
    EdgeId edge;
    M msg;
  };

  /// A delivered message being staged into a receiver's mailbox range;
  /// `key` is the position of the arrival edge in the receiver's
  /// incidence list (the canonical inbox sort key). `seq` breaks ties
  /// when fault injection lands several messages from one channel in
  /// one round (a delayed message catching up with a fresh one): the
  /// older send sorts first, on any thread or shard count. Fault-free
  /// rounds never have equal keys in one inbox, so the tiebreak is
  /// vacuous there.
  struct Delivery {
    std::uint32_t key;
    std::uint32_t seq;
    NodeId from;
    NodeId to;
    EdgeId edge;
    M payload;
  };

  /// Per-worker accumulators, cache-line separated. Only the worker that
  /// owns the struct touches it during a round.
  struct alignas(64) PerWorker {
    std::vector<SendRec> sends;
    std::vector<NodeId> wake;
    NetStats stats;
    std::uint64_t busy_ns = 0;  // step-loop time this round (telemetry)
  };

  void enqueue(NodeId from, EdgeId e, M msg, PerWorker& w) {
    // Resolve the arc (from, e) by scanning the sender's own row — the
    // step function was just iterating it, so it is cache-hot, and the
    // resulting channel index is local to the sender's shard.
    const GraphStore& s = graph_->store();
    const std::uint64_t base = s.offsets[from];
    const std::uint64_t end = s.offsets[from + 1];
    std::uint64_t arc = base;
    while (arc < end && s.adj_edge[arc] != e) ++arc;
    if (arc == end) {
      throw std::logic_error("SyncNetwork::send: sender not an endpoint");
    }
    if (slot_stamp_[arc] == round_) {
      throw std::logic_error(
          "SyncNetwork::send: two messages on one channel in one round");
    }
    slot_stamp_[arc] = round_;
    w.stats.note_message(meter_(msg));
    w.sends.push_back(SendRec{rcv_slot_[arc],
                              static_cast<std::uint32_t>(round_), from,
                              s.adj_to[arc], e, std::move(msg)});
  }

  void ensure_workers() {
    const std::size_t want =
        (pool_ != nullptr && pool_->num_threads() > 1) ? pool_->num_threads()
                                                       : 1;
    if (workers_.size() < want) workers_.resize(want);
  }

  void mark_active(NodeId v) {
    if (active_stamp_[v] != round_) {
      active_stamp_[v] = round_;
      shard_active_[plan_.shard_of(v)].push_back(v);
    }
  }

#if LPS_FAULTS
  /// Apply message fates to last round's sends, serially, before the
  /// counting-sort phases see them. Each message is decided exactly once
  /// (at its first delivery attempt); a delayed message is re-injected
  /// verbatim in its due round. Re-injected and duplicated records ride
  /// in worker 0's list — which list carries a record never matters,
  /// because the per-inbox (key, seq) sort fixes the final order.
  void inject_message_faults() {
    telemetry::EventLog& elog = telemetry::EventLog::global();
    const bool tevents = elog.recording();
    for (PerWorker& w : workers_) {
      const std::size_t n_sends = w.sends.size();
      std::size_t out = 0;
      for (std::size_t i = 0; i < n_sends; ++i) {
        SendRec& rec = w.sends[i];
        const faults::MessageFate fate =
            faults_->decide(rec.edge, rec.from, round_);
        if (fate.drop) {
          if (tevents) {
            elog.emit(telemetry::EventKind::kFaultDrop, round_, rec.edge,
                      rec.from);
          }
          continue;
        }
        if (fate.delay > 0) {
          if (tevents) {
            elog.emit(telemetry::EventKind::kFaultDelay, round_, rec.edge,
                      rec.from, fate.delay);
          }
          delayed_.push_back(DelayedRec{round_ + fate.delay, std::move(rec)});
          continue;
        }
        if (fate.dup) {
          if constexpr (std::is_copy_constructible_v<M>) {
            if (tevents) {
              elog.emit(telemetry::EventKind::kFaultDup, round_, rec.edge,
                        rec.from);
            }
            dup_buf_.push_back(rec);
          }
        }
        if (out != i) w.sends[out] = std::move(rec);
        ++out;
      }
      w.sends.resize(out);
    }
    for (SendRec& rec : dup_buf_) workers_[0].sends.push_back(std::move(rec));
    dup_buf_.clear();
    if (!delayed_.empty()) {
      std::size_t keep = 0;
      for (DelayedRec& d : delayed_) {
        if (d.due <= round_) {
          workers_[0].sends.push_back(std::move(d.rec));
        } else {
          delayed_[keep++] = std::move(d);
        }
      }
      delayed_.resize(keep);
    }
  }
#endif

  /// Merge last round's per-worker send lists into contiguous
  /// per-receiver inbox ranges, in two counting-sort phases:
  ///
  ///  1. Boundary exchange: scatter every send into its destination
  ///     shard's slice of `scratch_` (counting sort on shard id — the
  ///     only pass whose memory touches are cross-shard).
  ///  2. Per shard: counting-sort the shard's slice by receiver into
  ///     `deliveries_` and put each inbox range into incidence order.
  ///     Every vertex-indexed access (stamps, counts, offsets) falls in
  ///     the shard's contiguous id range, which is sized to L2.
  ///
  /// O(messages + active shards). Shard slices are disjoint in every
  /// array they touch, so phase 2 runs shard-parallel under a pool.
  void build_inboxes(bool tmetrics, bool ttrace) {
    const bool tel = tmetrics || ttrace;
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    telemetry::EventLog& elog = telemetry::EventLog::global();
    const bool tevents = elog.recording();
#if LPS_FAULTS
    // Fault seam: one branch per round when compiled in but off; the
    // serial pass mutates only per-worker send lists plus the delayed
    // queue, before any counting begins.
    if (faults_ != nullptr && faults_->message_faults()) {
      inject_message_faults();
    }
#endif
    std::size_t total = 0;
    for (const PerWorker& w : workers_) total += w.sends.size();
    deliveries_.clear();
    inbox_entries_.clear();
    if (shard_receivers_.size() != plan_.count) {
      shard_receivers_.assign(plan_.count, {});
    }
    for (std::vector<NodeId>& rs : shard_receivers_) rs.clear();
    if (total == 0) return;

    const std::uint64_t t_p1 = tel ? telemetry::now_ns() : 0;
    const unsigned num_shards = plan_.count;
    // Phase 1: bin by destination shard.
    shard_cnt_.assign(num_shards + 1, 0);
    for (const PerWorker& w : workers_) {
      for (const SendRec& rec : w.sends) {
        ++shard_cnt_[plan_.shard_of(rec.to) + 1];
      }
    }
    for (unsigned s = 0; s < num_shards; ++s) {
      shard_cnt_[s + 1] += shard_cnt_[s];
    }
    shard_off_ = shard_cnt_;  // keep range boundaries; shard_cnt_ cursors
    scratch_.resize(total);
    for (PerWorker& w : workers_) {
      for (SendRec& rec : w.sends) {
        Delivery& d = scratch_[shard_cnt_[plan_.shard_of(rec.to)]++];
        d.key = rec.key;
        d.seq = rec.seq;
        d.from = rec.from;
        d.to = rec.to;
        d.edge = rec.edge;
        d.payload = std::move(rec.msg);
      }
      w.sends.clear();
    }
    const std::uint64_t t_p1_end = tel ? telemetry::now_ns() : 0;
    if (tmetrics) {
      telemetry::EngineMetrics::get().exchange_p1_ns.record(t_p1_end - t_p1);
    }
    if (ttrace) {
      tracer.emit("engine.exchange.p1", "engine", t_p1, t_p1_end - t_p1,
                  {{"round", static_cast<double>(round_)},
                   {"msgs", static_cast<double>(total)}});
    }
    if (tevents) {
      elog.emit(telemetry::EventKind::kExchange, round_, /*phase=*/1,
                /*shard=*/0, total);
    }

    // Phase 2: within each shard, counting-sort by receiver. A shard's
    // deliveries occupy exactly its slice [shard_off_[s], shard_off_[s+1])
    // of deliveries_, so shards are independent.
    deliveries_.resize(total);
    const std::uint64_t tag = round_;
    auto build_shard = [&](unsigned s) {
      const std::size_t sb = shard_off_[s];
      const std::size_t se = shard_off_[s + 1];
      if (sb == se) return;
      const std::uint64_t t_s0 = tel ? telemetry::now_ns() : 0;
      std::vector<NodeId>& recv = shard_receivers_[s];
      for (std::size_t i = sb; i < se; ++i) {
        const NodeId to = scratch_[i].to;
        if (inbox_stamp_[to] != tag) {
          inbox_stamp_[to] = tag;
          inbox_cnt_[to] = 0;
          recv.push_back(to);
        }
        ++inbox_cnt_[to];
      }
      std::size_t off = sb;
      for (NodeId r : recv) {
        inbox_off_[r] = off;
        inbox_cur_[r] = off;
        off += inbox_cnt_[r];
      }
      for (std::size_t i = sb; i < se; ++i) {
        deliveries_[inbox_cur_[scratch_[i].to]++] = std::move(scratch_[i]);
      }
      const std::uint64_t t_s1 = tel ? telemetry::now_ns() : 0;
      for (NodeId r : recv) {
        const auto begin = deliveries_.begin() +
                           static_cast<std::ptrdiff_t>(inbox_off_[r]);
        std::sort(begin, begin + static_cast<std::ptrdiff_t>(inbox_cnt_[r]),
                  [](const Delivery& a, const Delivery& b) {
                    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
                  });
      }
#if LPS_FAULTS
      if (faults_ != nullptr && faults_->reorder()) {
        // Deterministic per-(receiver, round) Fisher-Yates over the
        // sorted inbox: the permutation depends on neither thread nor
        // shard assignment, so perturbed executions stay reproducible.
        for (NodeId r : recv) {
          const std::uint32_t cnt = inbox_cnt_[r];
          if (cnt < 2) continue;
          Rng rr = faults_->reorder_rng(r, round_);
          Delivery* base = deliveries_.data() + inbox_off_[r];
          for (std::uint32_t i = cnt; i > 1; --i) {
            std::swap(base[i - 1], base[rr.below(i)]);
          }
          faults_->note_reordered();
        }
      }
#endif
      if (tel) {
        const std::uint64_t t_s2 = telemetry::now_ns();
        if (tmetrics) {
          telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
          em.exchange_p2_ns.record(t_s1 - t_s0);
          em.inbox_sort_ns.record(t_s2 - t_s1);
          em.shard_exchange_ns.add(s, t_s2 - t_s0);
        }
        if (ttrace) {
          const auto rd = static_cast<double>(round_);
          const auto sh = static_cast<double>(s);
          tracer.emit("engine.exchange.p2", "engine", t_s0, t_s1 - t_s0,
                      {{"shard", sh},
                       {"round", rd},
                       {"msgs", static_cast<double>(se - sb)}});
          tracer.emit("engine.inbox.sort", "engine", t_s1, t_s2 - t_s1,
                      {{"shard", sh}, {"round", rd}});
        }
      }
      if (tevents) {
        // Safe shard-parallel: events land in per-thread buffers.
        elog.emit(telemetry::EventKind::kExchange, round_, /*phase=*/2, s,
                  se - sb);
      }
    };
    if (pool_ != nullptr && pool_->num_threads() > 1 && num_shards > 1) {
      pool_->parallel_for_workers(
          0, num_shards, 1,
          [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
              build_shard(static_cast<unsigned>(s));
            }
          });
    } else {
      for (unsigned s = 0; s < num_shards; ++s) build_shard(s);
    }

    const std::uint64_t t_dl = tel ? telemetry::now_ns() : 0;
    inbox_entries_.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      inbox_entries_[i] =
          Incoming{deliveries_[i].from, deliveries_[i].edge,
                   &deliveries_[i].payload};
    }
    if (tel) {
      const std::uint64_t t_dl_end = telemetry::now_ns();
      if (tmetrics) {
        telemetry::EngineMetrics::get().deliver_ns.record(t_dl_end - t_dl);
      }
      if (ttrace) {
        tracer.emit("engine.deliver", "engine", t_dl, t_dl_end - t_dl,
                    {{"round", static_cast<double>(round_)},
                     {"msgs", static_cast<double>(total)}});
      }
    }
  }

  std::span<const Incoming> inbox_of(NodeId v) const {
    if (inbox_entries_.empty() || inbox_stamp_[v] != round_) return {};
    return {inbox_entries_.data() + inbox_off_[v], inbox_cnt_[v]};
  }

  const Graph* graph_;
  std::uint64_t seed_;
  Meter meter_;
  ThreadPool* pool_ = nullptr;
  ShardPlan plan_;

  // Epoch-stamped directed channels (double-send detection) and the
  // precomputed receiver-side incidence position per channel.
  std::vector<std::uint64_t> slot_stamp_;  // 2m; == round of last send
  std::vector<std::uint32_t> rcv_slot_;    // 2m

  // This round's mailbox: staged deliveries grouped by shard then
  // receiver, plus the per-receiver range bookkeeping (all stamped by
  // round, so none of it is ever swept).
  std::vector<Delivery> scratch_;     // shard-binned staging
  std::vector<Delivery> deliveries_;  // receiver-grouped, inbox-ordered
  std::vector<Incoming> inbox_entries_;
  std::vector<std::vector<NodeId>> shard_receivers_;
  std::vector<std::size_t> shard_cnt_;  // shards+1; reused as cursors
  std::vector<std::size_t> shard_off_;  // shards+1
  std::vector<std::uint64_t> inbox_stamp_;  // n
  std::vector<std::size_t> inbox_off_;      // n
  std::vector<std::size_t> inbox_cur_;      // n
  std::vector<std::uint32_t> inbox_cnt_;    // n

  // Active-set scheduling state, bucketed per shard.
  std::vector<NodeId> active_;
  std::vector<std::uint64_t> active_stamp_;  // n
  std::vector<NodeId> pending_activations_;
  std::vector<std::vector<NodeId>> shard_active_;
  bool step_all_ = false;
  bool initial_restricted_ = false;

  std::vector<PerWorker> workers_;

#if LPS_FAULTS
  /// A message held back by a delay fault, due for delivery at the
  /// start of round `due`.
  struct DelayedRec {
    std::uint64_t due;
    SendRec rec;
  };
  faults::MessageFaultInjector* faults_ = nullptr;  // not owned
  std::vector<DelayedRec> delayed_;
  std::vector<SendRec> dup_buf_;
#endif

  std::uint64_t round_ = 0;
  std::uint64_t pending_ = 0;  // messages awaiting delivery next round
  std::uint64_t delivered_last_round_ = 0;
  std::uint64_t delivered_total_ = 0;  // cumulative (progress board)
  std::uint64_t stepped_last_round_ = 0;
  NetStats stats_;
};

}  // namespace lps
