// SyncNetwork<M>: the synchronous message-passing model of the paper's
// Section 2, executable.
//
//   "in each time step, processors send (possibly different) messages to
//    neighbors, receive messages from neighbors, and perform some local
//    computation."
//
// Faithfulness points:
//  * Lock-step rounds. A message sent in round r is delivered at the
//    start of round r+1, and nothing else is ever delivered.
//  * One message per edge per direction per round (sending twice on the
//    same channel in one round throws): this is the model under which
//    the paper's CONGEST bit bounds are stated.
//  * Every message is metered in bits via a caller-supplied measure, so
//    LOCAL-vs-CONGEST claims (O(|V|+|E|) vs O(log n) bits) become
//    measurable quantities in `stats()`.
//  * Per-(node, round) RNG substreams: the execution is a deterministic
//    function of the seed, independent of node iteration order — which
//    also makes thread-pool execution bit-identical to sequential.
//
// Cost model of the implementation (not of the simulated protocols): a
// round costs O(stepped nodes + messages in flight), NOT O(n + m). Three
// mechanisms make that true (DESIGN.md §9):
//
//  * Epoch-stamped channels. Each directed channel (edge, direction) has
//    a round-stamp instead of a std::optional slot; "two sends on one
//    channel in one round" is a stamp comparison and there is no
//    O(m) per-round reset sweep. Payloads ride in per-worker send lists
//    sized by actual traffic.
//  * Mailbox delivery. Send lists are counting-sorted by receiver into
//    contiguous per-receiver inbox ranges, then each range is put into
//    the receiver's incidence order (the same order the old full
//    neighbors() scan produced, which protocols and the lca re-executor
//    rely on for RNG-draw determinism). Inbox construction touches only
//    real messages, never the whole graph.
//  * Active-set scheduling. A node is stepped in a round iff it has
//    incoming messages, called ctx.keep_active() in the previous round,
//    or was activated for the round (activate(); the first round
//    defaults to every node unless restrict_initial_active() was
//    called). Protocols whose spontaneous sends cannot be expressed this
//    way opt out with step_all_nodes(), restoring the exact old
//    every-node-every-round semantics. Because nodes draw from
//    per-(node, round) substreams and an unstepped node would neither
//    send nor mutate state, an execution under active-set scheduling is
//    bit-identical to a step_all_nodes() execution whenever the protocol
//    keeps alive every node that might act without an incoming message.
//
// A node program is any callable `void step(Ctx& ctx)`; persistent node
// state lives in arrays owned by the algorithm object (indexed by node
// id). During a parallel round a node may only touch its own state and
// its own outgoing channels; all algorithms in src/core follow this.
//
// M must be default-constructible and movable. The bit meter is a
// template parameter so protocol meters (usually a constant or a small
// struct) are statically dispatched; the default falls back to
// std::function for ad-hoc lambdas.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace lps {

/// Fallback meter when none is supplied: every message costs its wire
/// width, sizeof(M) * 8 bits.
template <typename M>
struct DefaultBitMeter {
  std::uint64_t operator()(const M&) const noexcept {
    return std::uint64_t{sizeof(M) * 8};
  }
};

template <typename M, typename Meter = std::function<std::uint64_t(const M&)>>
class SyncNetwork {
 public:
  /// A delivered message: sender, the edge it traveled on, payload. The
  /// payload pointer is valid for the round the message is delivered in.
  struct Incoming {
    NodeId from;
    EdgeId edge;
    const M* payload;
  };

  using BitMeter = std::function<std::uint64_t(const M&)>;

 private:
  struct PerWorker;  // defined below; Ctx holds a pointer to its worker

 public:
  /// Per-node, per-round execution context.
  class Ctx {
   public:
    NodeId id() const noexcept { return id_; }
    std::uint64_t round() const noexcept { return net_->round_; }
    const Graph& graph() const noexcept { return *net_->graph_; }
    Rng& rng() noexcept { return rng_; }
    std::span<const Incoming> inbox() const noexcept { return inbox_; }

    /// Send along edge e to the other endpoint (delivered next round).
    void send(EdgeId e, M msg) {
      net_->enqueue(id_, e, std::move(msg), *worker_);
    }

    /// Send a copy of msg to every neighbor.
    void send_all(const M& msg) {
      for (const Graph::Incidence& inc : graph().neighbors(id_)) {
        send(inc.edge, msg);
      }
    }

    /// Stay in the next round's active set even without incoming
    /// messages. Call it whenever this node might act spontaneously next
    /// round; a no-op under step_all_nodes().
    void keep_active() {
      if (!net_->step_all_) worker_->wake.push_back(id_);
    }

   private:
    friend class SyncNetwork;
    SyncNetwork* net_ = nullptr;
    NodeId id_ = kInvalidNode;
    Rng rng_{0};
    std::span<const Incoming> inbox_;
    PerWorker* worker_ = nullptr;
  };

  SyncNetwork(const Graph& g, std::uint64_t seed, Meter meter = Meter{})
      : graph_(&g),
        seed_(seed),
        meter_(std::move(meter)),
        slot_stamp_(2 * static_cast<std::size_t>(g.num_edges()), kNever),
        rcv_slot_(2 * static_cast<std::size_t>(g.num_edges())),
        inbox_stamp_(g.num_nodes(), kNever),
        inbox_off_(g.num_nodes()),
        inbox_cur_(g.num_nodes()),
        inbox_cnt_(g.num_nodes()),
        active_stamp_(g.num_nodes(), kNever) {
    if constexpr (std::is_same_v<Meter, BitMeter>) {
      if (!meter_) meter_ = DefaultBitMeter<M>{};
    }
    // The channel on which neighbors(v)[i].to sends to v delivers into
    // position i of v's inbox; precompute that position per directed
    // channel so per-receiver mailbox ranges can be put into incidence
    // order without scanning adjacency.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        rcv_slot_[slot_of(nbrs[i].edge, nbrs[i].to)] =
            static_cast<std::uint32_t>(i);
      }
    }
  }

  /// Optional: step nodes with a thread pool (nullptr = sequential).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Opt out of active-set scheduling: step every node every round, the
  /// exact semantics of the original engine. For protocols whose
  /// spontaneous sends cannot be expressed with keep_active()/activate().
  void step_all_nodes(bool on = true) noexcept { step_all_ = on; }

  /// Queue v for the next run_round's active set (on top of message
  /// receivers and keep_active callers). Callable between rounds only.
  void activate(NodeId v) { pending_activations_.push_back(v); }

  /// Drop the first round's every-node default: round 0 then steps only
  /// activate()d nodes (plus receivers — vacuous in round 0).
  void restrict_initial_active() noexcept { initial_restricted_ = true; }

  const NetStats& stats() const noexcept { return stats_; }
  std::uint64_t round() const noexcept { return round_; }

  /// Messages delivered in the most recent round.
  std::uint64_t last_round_deliveries() const noexcept {
    return delivered_last_round_;
  }

  /// Nodes stepped in the most recent round (== n when stepping all).
  std::uint64_t last_round_stepped() const noexcept {
    return stepped_last_round_;
  }

  /// Execute one synchronous round: deliver everything sent last round,
  /// step the round's active set (or every node), collect sends for the
  /// next round.
  template <typename Step>
  void run_round(Step&& step) {
    const Graph& g = *graph_;
    ensure_workers();
    ++stats_.rounds;

    build_inboxes();
    delivered_last_round_ = deliveries_.size();

    const bool all = step_all_ || (round_ == 0 && !initial_restricted_);
    if (all) {
      for (PerWorker& w : workers_) w.wake.clear();
      pending_activations_.clear();
    } else {
      active_.clear();
      for (NodeId v : receivers_) mark_active(v);
      for (PerWorker& w : workers_) {
        for (NodeId v : w.wake) mark_active(v);
        w.wake.clear();
      }
      for (NodeId v : pending_activations_) mark_active(v);
      pending_activations_.clear();
    }
    const std::size_t count = all ? g.num_nodes() : active_.size();
    stepped_last_round_ = count;

    auto process = [&](unsigned worker, std::size_t begin, std::size_t end) {
      PerWorker& pw = workers_[worker];
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId node = all ? static_cast<NodeId>(i) : active_[i];
        Ctx ctx;
        ctx.net_ = this;
        ctx.id_ = node;
        ctx.rng_ = Rng::substream(seed_, std::uint64_t{node}, round_);
        ctx.inbox_ = inbox_of(node);
        ctx.worker_ = &pw;
        step(ctx);
      }
    };
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->parallel_for_workers(0, count, 256, process);
    } else {
      process(0, 0, count);
    }

    // One stat merge per round (per-worker slots; no mutex anywhere).
    std::uint64_t sent = 0;
    std::uint64_t bits = 0;
    for (PerWorker& w : workers_) {
      sent += w.stats.messages;
      bits += w.stats.total_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, w.stats.max_message_bits);
      w.stats = NetStats{};
    }
    stats_.messages += sent;
    stats_.total_bits += bits;
    pending_ = sent;
    ++round_;
  }

  /// Run up to max_rounds; with stop_when_silent, stop after a round in
  /// which no node sent any message AND nothing is pending (for purely
  /// message-driven protocols further rounds are no-ops). Returns the
  /// number of rounds executed.
  template <typename Step>
  std::uint64_t run(std::uint64_t max_rounds, bool stop_when_silent,
                    Step&& step) {
    std::uint64_t executed = 0;
    for (; executed < max_rounds; ++executed) {
      run_round(step);
      if (stop_when_silent && pending_ == 0) {
        ++executed;
        break;
      }
    }
    return executed;
  }

 private:
  static constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);

  /// A payload in flight, tagged with the directed channel it was sent
  /// on. Lives in the sender's worker list until delivery.
  struct SendRec {
    std::uint32_t slot;
    M msg;
  };

  /// A delivered message being staged into a receiver's mailbox range;
  /// `key` is the position of the arrival edge in the receiver's
  /// incidence list (the canonical inbox sort key).
  struct Delivery {
    std::uint32_t key;
    NodeId from;
    EdgeId edge;
    M payload;
  };

  /// Per-worker accumulators, cache-line separated. Only the worker that
  /// owns the struct touches it during a round.
  struct alignas(64) PerWorker {
    std::vector<SendRec> sends;
    std::vector<NodeId> wake;
    NetStats stats;
  };

  /// Directed channel index: 2e + 1 when `sender` is edge(e).v, 2e when
  /// it is edge(e).u.
  std::size_t slot_of(EdgeId e, NodeId sender) const {
    return 2 * static_cast<std::size_t>(e) +
           (graph_->edge(e).v == sender ? 1 : 0);
  }

  void enqueue(NodeId from, EdgeId e, M msg, PerWorker& w) {
    const Edge& ed = graph_->edge(e);
    if (ed.u != from && ed.v != from) {
      throw std::logic_error("SyncNetwork::send: sender not an endpoint");
    }
    const std::size_t slot = slot_of(e, from);
    if (slot_stamp_[slot] == round_) {
      throw std::logic_error(
          "SyncNetwork::send: two messages on one channel in one round");
    }
    slot_stamp_[slot] = round_;
    w.stats.note_message(meter_(msg));
    w.sends.push_back(SendRec{static_cast<std::uint32_t>(slot),
                              std::move(msg)});
  }

  void ensure_workers() {
    const std::size_t want =
        (pool_ != nullptr && pool_->num_threads() > 1) ? pool_->num_threads()
                                                       : 1;
    if (workers_.size() < want) workers_.resize(want);
  }

  void mark_active(NodeId v) {
    if (active_stamp_[v] != round_) {
      active_stamp_[v] = round_;
      active_.push_back(v);
    }
  }

  /// Merge last round's per-worker send lists into contiguous
  /// per-receiver inbox ranges: count per receiver, prefix offsets over
  /// the receivers actually hit, scatter payloads, then order each range
  /// by the receiver's incidence position. O(messages + receivers).
  void build_inboxes() {
    receivers_.clear();
    std::size_t total = 0;
    for (const PerWorker& w : workers_) total += w.sends.size();
    deliveries_.clear();
    inbox_entries_.clear();
    if (total == 0) return;

    const std::uint64_t tag = round_;
    for (const PerWorker& w : workers_) {
      for (const SendRec& rec : w.sends) {
        const NodeId to = receiver_of(rec.slot);
        if (inbox_stamp_[to] != tag) {
          inbox_stamp_[to] = tag;
          inbox_cnt_[to] = 0;
          receivers_.push_back(to);
        }
        ++inbox_cnt_[to];
      }
    }
    std::size_t off = 0;
    for (NodeId r : receivers_) {
      inbox_off_[r] = off;
      inbox_cur_[r] = off;
      off += inbox_cnt_[r];
    }
    deliveries_.resize(total);
    for (PerWorker& w : workers_) {
      for (SendRec& rec : w.sends) {
        const EdgeId e = static_cast<EdgeId>(rec.slot >> 1);
        const Edge& ed = graph_->edge(e);
        const NodeId from = (rec.slot & 1) ? ed.v : ed.u;
        const NodeId to = (rec.slot & 1) ? ed.u : ed.v;
        Delivery& d = deliveries_[inbox_cur_[to]++];
        d.key = rcv_slot_[rec.slot];
        d.from = from;
        d.edge = e;
        d.payload = std::move(rec.msg);
      }
      w.sends.clear();
    }
    for (NodeId r : receivers_) {
      const auto begin = deliveries_.begin() + inbox_off_[r];
      std::sort(begin, begin + inbox_cnt_[r],
                [](const Delivery& a, const Delivery& b) {
                  return a.key < b.key;
                });
    }
    inbox_entries_.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      inbox_entries_[i] =
          Incoming{deliveries_[i].from, deliveries_[i].edge,
                   &deliveries_[i].payload};
    }
  }

  NodeId receiver_of(std::uint32_t slot) const {
    const Edge& ed = graph_->edge(static_cast<EdgeId>(slot >> 1));
    return (slot & 1) ? ed.u : ed.v;
  }

  std::span<const Incoming> inbox_of(NodeId v) const {
    if (inbox_entries_.empty() || inbox_stamp_[v] != round_) return {};
    return {inbox_entries_.data() + inbox_off_[v], inbox_cnt_[v]};
  }

  const Graph* graph_;
  std::uint64_t seed_;
  Meter meter_;
  ThreadPool* pool_ = nullptr;

  // Epoch-stamped directed channels (double-send detection) and the
  // precomputed receiver-side incidence position per channel.
  std::vector<std::uint64_t> slot_stamp_;  // 2m; == round of last send
  std::vector<std::uint32_t> rcv_slot_;    // 2m

  // This round's mailbox: staged deliveries grouped by receiver, plus
  // the per-receiver range bookkeeping (all stamped by round, so none of
  // it is ever swept).
  std::vector<Delivery> deliveries_;
  std::vector<Incoming> inbox_entries_;
  std::vector<NodeId> receivers_;
  std::vector<std::uint64_t> inbox_stamp_;  // n
  std::vector<std::size_t> inbox_off_;      // n
  std::vector<std::size_t> inbox_cur_;      // n
  std::vector<std::uint32_t> inbox_cnt_;    // n

  // Active-set scheduling state.
  std::vector<NodeId> active_;
  std::vector<std::uint64_t> active_stamp_;  // n
  std::vector<NodeId> pending_activations_;
  bool step_all_ = false;
  bool initial_restricted_ = false;

  std::vector<PerWorker> workers_;

  std::uint64_t round_ = 0;
  std::uint64_t pending_ = 0;  // messages awaiting delivery next round
  std::uint64_t delivered_last_round_ = 0;
  std::uint64_t stepped_last_round_ = 0;
  NetStats stats_;
};

}  // namespace lps
