// SyncNetwork<M>: the synchronous message-passing model of the paper's
// Section 2, executable.
//
//   "in each time step, processors send (possibly different) messages to
//    neighbors, receive messages from neighbors, and perform some local
//    computation."
//
// Faithfulness points:
//  * Lock-step rounds. A message sent in round r is delivered at the
//    start of round r+1, and nothing else is ever delivered.
//  * One message per edge per direction per round (sending twice on the
//    same channel in one round throws): this is the model under which
//    the paper's CONGEST bit bounds are stated.
//  * Every message is metered in bits via a caller-supplied measure, so
//    LOCAL-vs-CONGEST claims (O(|V|+|E|) vs O(log n) bits) become
//    measurable quantities in `stats()`.
//  * Per-(node, round) RNG substreams: the execution is a deterministic
//    function of the seed, independent of node iteration order — which
//    also makes thread-pool execution AND any shard count bit-identical
//    to sequential single-shard execution.
//
// Cost model of the implementation (not of the simulated protocols): a
// round costs O(stepped nodes + messages in flight), NOT O(n + m), and
// the constant stays flat as n grows because all per-round work is
// confined to cache-sized vertex shards (DESIGN.md §11):
//
//  * Epoch-stamped channels. Each directed channel (edge, direction) has
//    a round-stamp instead of a std::optional slot; "two sends on one
//    channel in one round" is a stamp comparison and there is no
//    O(m) per-round reset sweep.
//  * Structure-of-arrays message staging (DESIGN.md §15). A message in
//    flight is not a struct: its receiver, its receiver-side incidence
//    position (the inbox sort key), and its payload ride in parallel
//    typed columns, per worker at send time and per shard slice after
//    the exchange. Sender id and edge id are never stored at all — an
//    inbox entry's key names the arc offsets[to] + key, whose adj_to /
//    adj_edge entries are exactly the sender and the edge, so the
//    InboxView proxy re-derives both from the receiver's own (cache-
//    hot) CSR row at read time. The counting-sort passes therefore move
//    8–12 bytes + sizeof(M) per message instead of a 32-byte-plus
//    struct, and the inbox scan is a linear sweep over two contiguous
//    typed arrays.
//  * Sharded mailbox delivery. Vertices are partitioned into contiguous
//    power-of-two shards sized to the L2 cache (runtime/shard.hpp). A
//    round's sends are first counting-sorted by destination shard (the
//    boundary-exchange phase — the only pass that walks cross-shard
//    traffic), then each shard's slice is counting-sorted by receiver
//    and each inbox put into the receiver's incidence order. All
//    vertex-indexed bookkeeping accesses in the second phase fall
//    inside one shard's contiguous range, so they stay L2-resident at
//    any graph size. Inbox construction touches only real messages,
//    never the whole graph.
//  * Active-set scheduling. A node is stepped in a round iff it has
//    incoming messages, called ctx.keep_active() in the previous round,
//    or was activated for the round (activate(); the first round
//    defaults to every node unless restrict_initial_active() was
//    called). Active nodes are bucketed per shard and stepped shard by
//    shard, so node state and CSR rows are walked in shard order.
//    Protocols whose spontaneous sends cannot be expressed this way opt
//    out with step_all_nodes(), restoring the exact old
//    every-node-every-round semantics. Because nodes draw from
//    per-(node, round) substreams and an unstepped node would neither
//    send nor mutate state, an execution under active-set scheduling is
//    bit-identical to a step_all_nodes() execution whenever the protocol
//    keeps alive every node that might act without an incoming message.
//
// A node program is any callable `void step(Ctx& ctx)`; persistent node
// state lives in arrays owned by the algorithm object (indexed by node
// id). During a parallel round a node may only touch its own state and
// its own outgoing channels; all algorithms in src/core follow this.
//
// M must be default-constructible and movable. The bit meter is a
// template parameter so protocol meters (usually a constant or a small
// struct) are statically dispatched; the default falls back to
// std::function for ad-hoc lambdas.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <numeric>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "faults/injector.hpp"
#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace lps {

/// Fallback meter when none is supplied: every message costs its wire
/// width, sizeof(M) * 8 bits.
template <typename M>
struct DefaultBitMeter {
  std::uint64_t operator()(const M&) const noexcept {
    return std::uint64_t{sizeof(M) * 8};
  }
};

template <typename M, typename Meter = std::function<std::uint64_t(const M&)>>
class SyncNetwork {
 public:
  /// A delivered message: sender, the edge it traveled on, payload, and
  /// the arrival edge's position in the receiver's incidence list
  /// (`slot` — so handlers can index per-slot state directly instead of
  /// scanning their row for the edge). The payload pointer is valid for
  /// the round the message is delivered in.
  struct Incoming {
    NodeId from;
    EdgeId edge;
    const M* payload;
    std::uint32_t slot;
  };

  /// Proxy over one receiver's slice of the delivery columns: `keys`
  /// (incidence positions, ascending) and `payloads`. `from` and `edge`
  /// are not stored anywhere — each is re-derived from the receiver's
  /// CSR row at the arc the key names, so iteration materializes
  /// Incoming values on the fly from contiguous typed arrays.
  class InboxView {
   public:
    InboxView() = default;
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    Incoming operator[](std::size_t i) const noexcept {
      const std::uint32_t k = keys_[i];
      return Incoming{row_to_[k], row_edge_[k], payloads_ + i, k};
    }

    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = Incoming;
      using difference_type = std::ptrdiff_t;
      using pointer = const Incoming*;
      using reference = Incoming;
      iterator() = default;
      Incoming operator*() const noexcept { return (*view_)[i_]; }
      iterator& operator++() noexcept {
        ++i_;
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator t = *this;
        ++i_;
        return t;
      }
      bool operator==(const iterator& o) const noexcept { return i_ == o.i_; }
      bool operator!=(const iterator& o) const noexcept { return i_ != o.i_; }

     private:
      friend class InboxView;
      iterator(const InboxView* v, std::size_t i) : view_(v), i_(i) {}
      const InboxView* view_ = nullptr;
      std::size_t i_ = 0;
    };
    iterator begin() const noexcept { return iterator(this, 0); }
    iterator end() const noexcept { return iterator(this, size_); }

    /// Raw column access, for handlers that want the linear sweep.
    const std::uint32_t* keys() const noexcept { return keys_; }
    const M* payloads() const noexcept { return payloads_; }

   private:
    friend class SyncNetwork;
    InboxView(const std::uint32_t* keys, const M* payloads,
              const NodeId* row_to, const EdgeId* row_edge, std::size_t n)
        : keys_(keys),
          payloads_(payloads),
          row_to_(row_to),
          row_edge_(row_edge),
          size_(n) {}
    const std::uint32_t* keys_ = nullptr;
    const M* payloads_ = nullptr;
    const NodeId* row_to_ = nullptr;    // receiver's adj_to row base
    const EdgeId* row_edge_ = nullptr;  // receiver's adj_edge row base
    std::size_t size_ = 0;
  };

  using BitMeter = std::function<std::uint64_t(const M&)>;

 private:
  struct PerWorker;  // defined below; Ctx holds a pointer to its worker

 public:
  /// Per-node, per-round execution context.
  class Ctx {
   public:
    NodeId id() const noexcept { return id_; }
    std::uint64_t round() const noexcept { return net_->round_; }
    const Graph& graph() const noexcept { return *net_->graph_; }
    /// The node's per-(node, round) substream, derived on first use —
    /// steps that never draw (most receivers, most rounds of most
    /// protocols) skip the hash entirely; the stream is the same either
    /// way, so laziness cannot perturb an execution.
    Rng& rng() noexcept {
      if (!rng_ready_) {
        rng_ = Rng::substream(net_->seed_, std::uint64_t{id_}, net_->round_);
        rng_ready_ = true;
      }
      return rng_;
    }
    const InboxView& inbox() const noexcept { return inbox_; }

    /// Send along edge e to the other endpoint (delivered next round).
    void send(EdgeId e, M msg) {
      net_->enqueue(id_, e, std::move(msg), *worker_);
    }

    /// Send a copy of msg to every neighbor (one row walk, no per-edge
    /// arc lookup).
    void send_all(const M& msg) { net_->enqueue_all(id_, msg, *worker_); }

    /// Stay in the next round's active set even without incoming
    /// messages. Call it whenever this node might act spontaneously next
    /// round; a no-op under step_all_nodes().
    void keep_active() {
      if (!net_->step_all_) worker_->wake.push_back(id_);
    }

   private:
    friend class SyncNetwork;
    SyncNetwork* net_ = nullptr;
    NodeId id_ = kInvalidNode;
    Rng rng_{0};
    bool rng_ready_ = false;
    InboxView inbox_;
    PerWorker* worker_ = nullptr;
  };

  SyncNetwork(const Graph& g, std::uint64_t seed, Meter meter = Meter{})
      : graph_(&g),
        seed_(seed),
        meter_(std::move(meter)),
        plan_(plan_shards(g.num_nodes(), /*requested=*/0)),
        arc_meta_(2 * static_cast<std::size_t>(g.num_edges()),
                  ArcMeta{kNeverEpoch, 0}),
        inbox_meta_(g.num_nodes(), InboxMeta{kNeverEpoch, 0, 0, 0}),
        active_stamp_(g.num_nodes(), kNeverEpoch),
        shard_active_(plan_.count) {
    if constexpr (std::is_same_v<Meter, BitMeter>) {
      if (!meter_) meter_ = DefaultBitMeter<M>{};
    }
    // Directed channels are indexed by CSR *arc*: the channel on which v
    // sends along its i-th incidence is arc offsets[v] + i. Senders then
    // stamp and read channel state at positions inside their own row —
    // shard-local by construction — instead of at edge-table positions
    // that are random relative to vertex order. Precompute, per arc
    // v -> to, the position of v in to's row (the receiver-side
    // incidence position: the canonical inbox sort key); it shares a
    // cache line with the channel's send stamp, so the send path reads
    // one per-arc location, not two.
    const GraphStore& s = g.store();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint64_t base = s.offsets[v];
      const std::uint64_t end = s.offsets[v + 1];
      for (std::uint64_t a = base; a < end; ++a) {
        const NodeId to = s.adj_to[a];
        // Position of v in to's (sorted) row, by binary search.
        const NodeId* row = s.adj_to.data() + s.offsets[to];
        const NodeId* hit =
            std::lower_bound(row, s.adj_to.data() + s.offsets[to + 1], v);
        arc_meta_[a].slot = static_cast<std::uint32_t>(hit - row);
      }
    }
  }

  /// Optional: step nodes with a thread pool (nullptr = sequential).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Repartition the vertex set: 0 = auto (cache-sized shards, the
  /// default), 1 = the pre-shard single-partition layout, k = at most k
  /// contiguous shards. Any value produces bit-identical executions;
  /// callable between rounds.
  void set_shards(unsigned requested) {
    plan_ = plan_shards(graph_->num_nodes(), requested);
    shard_active_.assign(plan_.count, {});
  }

  /// The number of vertex shards the mailbox and scheduler operate on.
  unsigned shards() const noexcept { return plan_.count; }
  const ShardPlan& shard_plan() const noexcept { return plan_; }

  /// Opt out of active-set scheduling: step every node every round, the
  /// exact semantics of the original engine. For protocols whose
  /// spontaneous sends cannot be expressed with keep_active()/activate().
  void step_all_nodes(bool on = true) noexcept { step_all_ = on; }

  /// Queue v for the next run_round's active set (on top of message
  /// receivers and keep_active callers). Callable between rounds only.
  void activate(NodeId v) { pending_activations_.push_back(v); }

  /// Drop the first round's every-node default: round 0 then steps only
  /// activate()d nodes (plus receivers — vacuous in round 0).
  void restrict_initial_active() noexcept { initial_restricted_ = true; }

  /// Attach a message-fault injector (nullptr = fault-free, the
  /// default; the injector is not owned and must outlive the network).
  /// Faults apply at the channel exchange: sends still succeed and are
  /// metered, but delivery may drop, duplicate, or delay the message.
  /// Fates are a pure function of (injector seed, channel, round), so
  /// executions stay bit-identical across thread and shard counts. A
  /// no-op when the library is built with -DLPS_FAULTS=0.
  void set_message_faults(faults::MessageFaultInjector* injector) noexcept {
#if LPS_FAULTS
    faults_ = injector;
    seq_on_ = injector != nullptr && injector->message_faults();
    // The seq column is maintained only while message faults are on; if
    // the injector is attached between rounds with sends still staged,
    // backfill their seqs (all were sent in the round just executed).
    if (seq_on_) {
      const auto sent_round =
          static_cast<std::uint32_t>(round_ == 0 ? 0 : round_ - 1);
      for (PerWorker& w : workers_) {
        w.send_seq.resize(w.send_to.size(), sent_round);
      }
    }
#else
    (void)injector;
#endif
  }

  const NetStats& stats() const noexcept { return stats_; }
  std::uint64_t round() const noexcept { return round_; }

  /// Messages delivered in the most recent round.
  std::uint64_t last_round_deliveries() const noexcept {
    return delivered_last_round_;
  }

  /// Nodes stepped in the most recent round (== n when stepping all).
  std::uint64_t last_round_stepped() const noexcept {
    return stepped_last_round_;
  }

  /// Execute one synchronous round: deliver everything sent last round,
  /// step the round's active set (or every node), collect sends for the
  /// next round.
  template <typename Step>
  void run_round(Step&& step) {
    const Graph& g = *graph_;
    ensure_workers();
    ++stats_.rounds;

    // Telemetry gates, resolved once per round: two relaxed loads when
    // compiled in, constexpr false (whole blocks dead) when compiled out.
    const bool tmetrics = telemetry::enabled();
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    const bool ttrace = tracer.recording();
    const bool tel = tmetrics || ttrace;
    const std::uint64_t this_round = round_;
    const std::uint64_t t_round = tel ? telemetry::now_ns() : 0;

    build_inboxes(tmetrics, ttrace);
    delivered_last_round_ = dlv_key_.size();

    const bool all = step_all_ || (round_ == 0 && !initial_restricted_);
    if (all) {
      for (PerWorker& w : workers_) w.wake.clear();
      pending_activations_.clear();
    } else {
      active_.clear();
      for (std::vector<NodeId>& sa : shard_active_) sa.clear();
      for (const std::vector<NodeId>& rs : shard_receivers_) {
        for (NodeId v : rs) mark_active(v);
      }
      for (PerWorker& w : workers_) {
        for (NodeId v : w.wake) mark_active(v);
        w.wake.clear();
      }
      for (NodeId v : pending_activations_) mark_active(v);
      pending_activations_.clear();
      // Flatten in shard order: the step loop then walks node state and
      // CSR rows one cache-sized shard at a time.
      for (const std::vector<NodeId>& sa : shard_active_) {
        active_.insert(active_.end(), sa.begin(), sa.end());
      }
    }
    const std::size_t count = all ? g.num_nodes() : active_.size();
    stepped_last_round_ = count;

    const std::uint64_t t_step = tel ? telemetry::now_ns() : 0;
    auto process = [&](unsigned worker, std::size_t begin, std::size_t end) {
      PerWorker& pw = workers_[worker];
      const std::uint64_t t_chunk = tel ? telemetry::now_ns() : 0;
      // One Ctx per chunk, reset per node: constructing the embedded Rng
      // runs the xoshiro seeding expansion, pure waste for steps that
      // never draw (rng() re-seeds from the substream on first use).
      Ctx ctx;
      ctx.net_ = this;
      ctx.worker_ = &pw;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId node = all ? static_cast<NodeId>(i) : active_[i];
        ctx.id_ = node;
        ctx.rng_ready_ = false;
        ctx.inbox_ = inbox_of(node);
        step(ctx);
      }
      if (tel) pw.busy_ns += telemetry::now_ns() - t_chunk;
    };
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->parallel_for_workers(0, count, 256, process);
    } else {
      process(0, 0, count);
    }
    const std::uint64_t t_step_end = tel ? telemetry::now_ns() : 0;

    // One stat merge per round (per-worker slots; no mutex anywhere).
    std::uint64_t sent = 0;
    std::uint64_t bits = 0;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      PerWorker& w = workers_[wi];
      sent += w.stats.messages;
      bits += w.stats.total_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, w.stats.max_message_bits);
      w.stats = NetStats{};
      if (tmetrics && w.busy_ns != 0) {
        telemetry::EngineMetrics::get().worker_busy_ns.add(wi, w.busy_ns);
      }
      w.busy_ns = 0;  // unconditional: no stale carry if telemetry toggles
    }
    stats_.messages += sent;
    stats_.total_bits += bits;
    pending_ = sent;
#if LPS_FAULTS
    // Held-back messages count as in flight: run(stop_when_silent) must
    // not declare the network silent while deliveries are still due.
    pending_ += delayed_.size();
#endif
    delivered_total_ += delivered_last_round_;
    ++round_;

    // Structured round-boundary event + live progress snapshot. Both
    // paths only observe engine state (never feed back into it), so
    // executions stay bit-identical with them on or off.
    telemetry::EventLog& elog = telemetry::EventLog::global();
    if (elog.recording()) {
      elog.emit(telemetry::EventKind::kRound, this_round,
                delivered_last_round_, sent, stepped_last_round_);
    }
    telemetry::ProgressBoard& board = telemetry::ProgressBoard::global();
    if (board.publishing()) {
      board.publish(round_, delivered_total_, stepped_last_round_,
                    telemetry::now_ns());
    }

    if (tel) {
      const std::uint64_t t_end = telemetry::now_ns();
      if (tmetrics) {
        telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
        em.rounds.add(1);
        em.messages_delivered.add(delivered_last_round_);
        em.round_ns.record(t_end - t_round);
        em.step_ns.record(t_step_end - t_step);
        em.messages_per_round.push(delivered_last_round_);
      }
      if (ttrace) {
        const auto r = static_cast<double>(this_round);
        tracer.emit("engine.step", "engine", t_step, t_step_end - t_step,
                    {{"round", r},
                     {"stepped", static_cast<double>(stepped_last_round_)}});
        tracer.emit(
            "engine.round", "engine", t_round, t_end - t_round,
            {{"round", r},
             {"delivered", static_cast<double>(delivered_last_round_)},
             {"sent", static_cast<double>(sent)}});
      }
    }
  }

  /// Run up to max_rounds; with stop_when_silent, stop after a round in
  /// which no node sent any message AND nothing is pending (for purely
  /// message-driven protocols further rounds are no-ops). Returns the
  /// number of rounds executed.
  template <typename Step>
  std::uint64_t run(std::uint64_t max_rounds, bool stop_when_silent,
                    Step&& step) {
    std::uint64_t executed = 0;
    for (; executed < max_rounds; ++executed) {
      run_round(step);
      if (stop_when_silent && pending_ == 0) {
        ++executed;
        break;
      }
    }
    return executed;
  }

 private:
  // Round stamps in the hot bookkeeping are 32-bit epochs: the low word
  // of round_. kNeverEpoch doubles as "never touched"; a live stamp
  // could only alias it in round 2^32 - 1 (decades of rounds at any
  // realistic rate), accepted in exchange for halving the stamp
  // footprint in the per-arc and per-receiver metadata.
  static constexpr std::uint32_t kNeverEpoch =
      static_cast<std::uint32_t>(-1);
  std::uint32_t epoch() const noexcept {
    return static_cast<std::uint32_t>(round_);
  }

  /// Per-arc channel metadata, packed so the send path touches one
  /// 8-byte record per arc: the round of the channel's last send
  /// (double-send detection) and the receiver-side incidence position
  /// (the inbox sort key).
  struct ArcMeta {
    std::uint32_t stamp;
    std::uint32_t slot;
  };

  /// Per-receiver inbox bookkeeping, packed into 16 bytes so the
  /// exchange's counting passes and inbox_of() touch one cache line
  /// fragment per receiver instead of four separate arrays. `off` and
  /// `cur` index the delivery columns: per-round deliveries must fit in
  /// 32 bits (≥ 4.2B messages/round is far beyond the 2m channel bound
  /// for any graph this engine addresses).
  struct InboxMeta {
    std::uint32_t stamp;
    std::uint32_t cnt;
    std::uint32_t off;
    std::uint32_t cur;
  };

  /// Per-worker accumulators, cache-line separated. Only the worker that
  /// owns the struct touches it during a round.
  ///
  /// Outbound sends are parallel columns, fully resolved at enqueue
  /// time: `send_to[i]` is message i's receiver, `send_key[i]` the
  /// receiver-side incidence position of its arrival arc (which also
  /// determines sender and edge — see InboxView), `send_msg[i]` the
  /// payload. `send_seq` (the send round, the inbox tiebreak when fault
  /// injection lands two messages from one channel in one round) is
  /// populated only while message faults are active: fault-free inboxes
  /// never repeat a key, so the column would be dead weight in the
  /// exchange sweeps.
  struct alignas(64) PerWorker {
    std::vector<NodeId> send_to;
    std::vector<std::uint32_t> send_key;
    std::vector<std::uint32_t> send_seq;
    std::vector<M> send_msg;
    std::vector<NodeId> wake;
    NetStats stats;
    std::uint64_t busy_ns = 0;  // step-loop time this round (telemetry)
  };

  void enqueue(NodeId from, EdgeId e, M msg, PerWorker& w) {
    // Resolve the arc (from, e) by scanning the sender's own row — the
    // step function was just iterating it, so it is cache-hot, and the
    // resulting channel index is local to the sender's shard.
    const GraphStore& s = graph_->store();
    const std::uint64_t base = s.offsets[from];
    const std::uint64_t end = s.offsets[from + 1];
    std::uint64_t arc = base;
    while (arc < end && s.adj_edge[arc] != e) ++arc;
    if (arc == end) {
      throw std::logic_error("SyncNetwork::send: sender not an endpoint");
    }
    ArcMeta& am = arc_meta_[arc];
    if (am.stamp == epoch()) {
      throw std::logic_error(
          "SyncNetwork::send: two messages on one channel in one round");
    }
    am.stamp = epoch();
    w.stats.note_message(meter_(msg));
    w.send_to.push_back(s.adj_to[arc]);
    w.send_key.push_back(am.slot);
#if LPS_FAULTS
    if (seq_on_) w.send_seq.push_back(static_cast<std::uint32_t>(round_));
#endif
    w.send_msg.push_back(std::move(msg));
  }

  /// send_all: one pass over the sender's row, no per-edge arc lookup.
  void enqueue_all(NodeId from, const M& msg, PerWorker& w) {
    const GraphStore& s = graph_->store();
    const std::uint64_t base = s.offsets[from];
    const std::uint64_t end = s.offsets[from + 1];
    for (std::uint64_t arc = base; arc < end; ++arc) {
      ArcMeta& am = arc_meta_[arc];
      if (am.stamp == epoch()) {
        throw std::logic_error(
            "SyncNetwork::send: two messages on one channel in one round");
      }
      am.stamp = epoch();
      w.stats.note_message(meter_(msg));
      w.send_to.push_back(s.adj_to[arc]);
      w.send_key.push_back(am.slot);
#if LPS_FAULTS
      if (seq_on_) w.send_seq.push_back(static_cast<std::uint32_t>(round_));
#endif
      w.send_msg.push_back(msg);
    }
  }

  void ensure_workers() {
    const std::size_t want =
        (pool_ != nullptr && pool_->num_threads() > 1) ? pool_->num_threads()
                                                       : 1;
    if (workers_.size() < want) workers_.resize(want);
  }

  void mark_active(NodeId v) {
    if (active_stamp_[v] != epoch()) {
      active_stamp_[v] = epoch();
      shard_active_[plan_.shard_of(v)].push_back(v);
    }
  }

#if LPS_FAULTS
  /// A message pulled out of the normal flow by a fault (delayed, or a
  /// duplicate awaiting re-injection). Cold path, so a plain struct.
  struct PendingRec {
    std::uint64_t due;  // round at whose exchange it re-enters
    NodeId to;
    std::uint32_t key;
    std::uint32_t seq;
    M msg;
  };

  void push_pending(PendingRec&& rec) {
    PerWorker& w = workers_[0];
    w.send_to.push_back(rec.to);
    w.send_key.push_back(rec.key);
    w.send_seq.push_back(rec.seq);
    w.send_msg.push_back(std::move(rec.msg));
  }

  /// Apply message fates to last round's sends, serially, before the
  /// counting-sort phases see them. Each message is decided exactly once
  /// (at its first delivery attempt); a delayed message is re-injected
  /// verbatim in its due round. Re-injected and duplicated records ride
  /// in worker 0's columns — which worker carries a record never
  /// matters, because the per-inbox (key, seq) sort fixes the final
  /// order. The fate is keyed on (edge, sender, round); both derive
  /// from the receiver-side arc named by the message's key.
  void inject_message_faults() {
    const GraphStore& s = graph_->store();
    telemetry::EventLog& elog = telemetry::EventLog::global();
    const bool tevents = elog.recording();
    for (PerWorker& w : workers_) {
      const std::size_t n_sends = w.send_to.size();
      std::size_t out = 0;
      for (std::size_t i = 0; i < n_sends; ++i) {
        const NodeId to = w.send_to[i];
        const std::uint32_t key = w.send_key[i];
        const std::uint64_t arc = s.offsets[to] + key;
        const EdgeId edge = s.adj_edge[arc];
        const NodeId from = s.adj_to[arc];
        const faults::MessageFate fate = faults_->decide(edge, from, round_);
        if (fate.drop) {
          if (tevents) {
            elog.emit(telemetry::EventKind::kFaultDrop, round_, edge, from);
          }
          continue;
        }
        if (fate.delay > 0) {
          if (tevents) {
            elog.emit(telemetry::EventKind::kFaultDelay, round_, edge, from,
                      fate.delay);
          }
          delayed_.push_back(PendingRec{round_ + fate.delay, to, key,
                                        w.send_seq[i],
                                        std::move(w.send_msg[i])});
          continue;
        }
        if (fate.dup) {
          if constexpr (std::is_copy_constructible_v<M>) {
            if (tevents) {
              elog.emit(telemetry::EventKind::kFaultDup, round_, edge, from);
            }
            dup_buf_.push_back(
                PendingRec{round_, to, key, w.send_seq[i], w.send_msg[i]});
          }
        }
        if (out != i) {
          w.send_to[out] = to;
          w.send_key[out] = key;
          w.send_seq[out] = w.send_seq[i];
          w.send_msg[out] = std::move(w.send_msg[i]);
        }
        ++out;
      }
      w.send_to.resize(out);
      w.send_key.resize(out);
      w.send_seq.resize(out);
      w.send_msg.resize(out);
    }
    for (PendingRec& rec : dup_buf_) push_pending(std::move(rec));
    dup_buf_.clear();
    if (!delayed_.empty()) {
      std::size_t keep = 0;
      for (PendingRec& d : delayed_) {
        if (d.due <= round_) {
          push_pending(std::move(d));
        } else {
          delayed_[keep++] = std::move(d);
        }
      }
      delayed_.resize(keep);
    }
  }
#endif

  /// Put one inbox range [off, off + cnt) of the delivery columns into
  /// incidence order: ascending key, ties (possible only under message
  /// faults, where colliding records are bit-identical copies) broken
  /// by ascending seq. Small inboxes use an insertion sort that co-moves
  /// the columns; large ones sort a permutation and apply it, keeping
  /// the worst case O(cnt log cnt).
  void sort_inbox(std::size_t off, std::uint32_t cnt, bool with_seq) {
    if (cnt < 2) return;
    std::uint32_t* keys = dlv_key_.data() + off;
    M* msgs = dlv_msg_.data() + off;
    std::uint32_t* seqs = with_seq ? dlv_seq_.data() + off : nullptr;
    constexpr std::uint32_t kInsertionMax = 32;
    if (cnt <= kInsertionMax) {
      for (std::uint32_t i = 1; i < cnt; ++i) {
        const std::uint32_t k = keys[i];
        const std::uint32_t q = with_seq ? seqs[i] : 0;
        if (keys[i - 1] < k || (keys[i - 1] == k && (!with_seq || seqs[i - 1] <= q))) {
          continue;  // already in place — the common case
        }
        M m = std::move(msgs[i]);
        std::uint32_t j = i;
        for (; j > 0 && (keys[j - 1] > k ||
                         (keys[j - 1] == k && with_seq && seqs[j - 1] > q));
             --j) {
          keys[j] = keys[j - 1];
          if (with_seq) seqs[j] = seqs[j - 1];
          msgs[j] = std::move(msgs[j - 1]);
        }
        keys[j] = k;
        if (with_seq) seqs[j] = q;
        msgs[j] = std::move(m);
      }
      return;
    }
    std::vector<std::uint32_t> order(cnt);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (keys[a] != keys[b]) return keys[a] < keys[b];
                return with_seq && seqs[a] < seqs[b];
              });
    std::vector<std::uint32_t> tmp_k(cnt);
    std::vector<M> tmp_m(cnt);
    for (std::uint32_t i = 0; i < cnt; ++i) {
      tmp_k[i] = keys[order[i]];
      tmp_m[i] = std::move(msgs[order[i]]);
    }
    std::move(tmp_k.begin(), tmp_k.end(), keys);
    std::move(tmp_m.begin(), tmp_m.end(), msgs);
    if (with_seq) {
      for (std::uint32_t i = 0; i < cnt; ++i) tmp_k[i] = seqs[order[i]];
      std::move(tmp_k.begin(), tmp_k.end(), seqs);
    }
  }

  /// Merge last round's per-worker send columns into contiguous
  /// per-receiver inbox ranges, in two counting-sort phases:
  ///
  ///  1. Boundary exchange: scatter every send into its destination
  ///     shard's slice of the scratch columns (counting sort on shard
  ///     id — the only pass whose memory touches are cross-shard).
  ///  2. Per shard: counting-sort the shard's slice by receiver into
  ///     the delivery columns and put each inbox range into incidence
  ///     order. Every vertex-indexed access (stamps, counts, offsets)
  ///     falls in the shard's contiguous id range, which is sized to L2.
  ///
  /// Both passes are linear sweeps over the typed columns: per message
  /// they move {to, key[, seq]} plus the payload and nothing else.
  /// O(messages + active shards). Shard slices are disjoint in every
  /// array they touch, so phase 2 runs shard-parallel under a pool.
  void build_inboxes(bool tmetrics, bool ttrace) {
    const bool tel = tmetrics || ttrace;
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    telemetry::EventLog& elog = telemetry::EventLog::global();
    const bool tevents = elog.recording();
#if LPS_FAULTS
    // Fault seam: one branch per round when compiled in but off; the
    // serial pass mutates only per-worker send columns plus the delayed
    // queue, before any counting begins.
    if (faults_ != nullptr && faults_->message_faults()) {
      inject_message_faults();
    }
    const bool with_seq = seq_on_;
#else
    constexpr bool with_seq = false;
#endif
    std::size_t total = 0;
    for (const PerWorker& w : workers_) total += w.send_to.size();
    dlv_key_.clear();
    dlv_seq_.clear();
    dlv_msg_.clear();
    if (shard_receivers_.size() != plan_.count) {
      shard_receivers_.assign(plan_.count, {});
    }
    for (std::vector<NodeId>& rs : shard_receivers_) rs.clear();
    if (total == 0) return;

    const std::uint64_t t_p1 = tel ? telemetry::now_ns() : 0;
    const unsigned num_shards = plan_.count;
    // Phase 1: bin by destination shard.
    shard_cnt_.assign(num_shards + 1, 0);
    for (const PerWorker& w : workers_) {
      for (const NodeId to : w.send_to) {
        ++shard_cnt_[plan_.shard_of(to) + 1];
      }
    }
    for (unsigned s = 0; s < num_shards; ++s) {
      shard_cnt_[s + 1] += shard_cnt_[s];
    }
    shard_off_ = shard_cnt_;  // keep range boundaries; shard_cnt_ cursors
    scr_to_.resize(total);
    scr_key_.resize(total);
    if (with_seq) scr_seq_.resize(total);
    scr_msg_.resize(total);
    for (PerWorker& w : workers_) {
      const std::size_t k = w.send_to.size();
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t pos = shard_cnt_[plan_.shard_of(w.send_to[i])]++;
        scr_to_[pos] = w.send_to[i];
        scr_key_[pos] = w.send_key[i];
        if (with_seq) scr_seq_[pos] = w.send_seq[i];
        scr_msg_[pos] = std::move(w.send_msg[i]);
      }
      w.send_to.clear();
      w.send_key.clear();
      w.send_seq.clear();
      w.send_msg.clear();
    }
    const std::uint64_t t_p1_end = tel ? telemetry::now_ns() : 0;
    if (tmetrics) {
      telemetry::EngineMetrics::get().exchange_p1_ns.record(t_p1_end - t_p1);
    }
    if (ttrace) {
      tracer.emit("engine.exchange.p1", "engine", t_p1, t_p1_end - t_p1,
                  {{"round", static_cast<double>(round_)},
                   {"msgs", static_cast<double>(total)}});
    }
    if (tevents) {
      elog.emit(telemetry::EventKind::kExchange, round_, /*phase=*/1,
                /*shard=*/0, total);
    }

    // Phase 2: within each shard, counting-sort by receiver. A shard's
    // deliveries occupy exactly its slice [shard_off_[s], shard_off_[s+1])
    // of the delivery columns, so shards are independent.
    dlv_key_.resize(total);
    if (with_seq) dlv_seq_.resize(total);
    dlv_msg_.resize(total);
    const std::uint32_t tag = epoch();
    auto build_shard = [&](unsigned s) {
      const std::size_t sb = shard_off_[s];
      const std::size_t se = shard_off_[s + 1];
      if (sb == se) return;
      const std::uint64_t t_s0 = tel ? telemetry::now_ns() : 0;
      std::vector<NodeId>& recv = shard_receivers_[s];
      for (std::size_t i = sb; i < se; ++i) {
        InboxMeta& im = inbox_meta_[scr_to_[i]];
        if (im.stamp != tag) {
          im.stamp = tag;
          im.cnt = 0;
          recv.push_back(scr_to_[i]);
        }
        ++im.cnt;
      }
      std::uint32_t off = static_cast<std::uint32_t>(sb);
      for (NodeId r : recv) {
        InboxMeta& im = inbox_meta_[r];
        im.off = off;
        im.cur = off;
        off += im.cnt;
      }
      for (std::size_t i = sb; i < se; ++i) {
        const std::size_t pos = inbox_meta_[scr_to_[i]].cur++;
        dlv_key_[pos] = scr_key_[i];
        if (with_seq) dlv_seq_[pos] = scr_seq_[i];
        dlv_msg_[pos] = std::move(scr_msg_[i]);
      }
      const std::uint64_t t_s1 = tel ? telemetry::now_ns() : 0;
      for (NodeId r : recv) {
        sort_inbox(inbox_meta_[r].off, inbox_meta_[r].cnt, with_seq);
      }
#if LPS_FAULTS
      if (faults_ != nullptr && faults_->reorder()) {
        // Deterministic per-(receiver, round) Fisher-Yates over the
        // sorted inbox: the permutation depends on neither thread nor
        // shard assignment, so perturbed executions stay reproducible.
        for (NodeId r : recv) {
          const std::uint32_t cnt = inbox_meta_[r].cnt;
          if (cnt < 2) continue;
          Rng rr = faults_->reorder_rng(r, round_);
          const std::size_t base = inbox_meta_[r].off;
          for (std::uint32_t i = cnt; i > 1; --i) {
            const std::uint32_t j = rr.below(i);
            std::swap(dlv_key_[base + i - 1], dlv_key_[base + j]);
            if (with_seq) std::swap(dlv_seq_[base + i - 1], dlv_seq_[base + j]);
            std::swap(dlv_msg_[base + i - 1], dlv_msg_[base + j]);
          }
          faults_->note_reordered();
        }
      }
#endif
      if (tel) {
        const std::uint64_t t_s2 = telemetry::now_ns();
        if (tmetrics) {
          telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
          em.exchange_p2_ns.record(t_s1 - t_s0);
          em.inbox_sort_ns.record(t_s2 - t_s1);
          em.shard_exchange_ns.add(s, t_s2 - t_s0);
        }
        if (ttrace) {
          const auto rd = static_cast<double>(round_);
          const auto sh = static_cast<double>(s);
          tracer.emit("engine.exchange.p2", "engine", t_s0, t_s1 - t_s0,
                      {{"shard", sh},
                       {"round", rd},
                       {"msgs", static_cast<double>(se - sb)}});
          tracer.emit("engine.inbox.sort", "engine", t_s1, t_s2 - t_s1,
                      {{"shard", sh}, {"round", rd}});
        }
      }
      if (tevents) {
        // Safe shard-parallel: events land in per-thread buffers.
        elog.emit(telemetry::EventKind::kExchange, round_, /*phase=*/2, s,
                  se - sb);
      }
    };
    if (pool_ != nullptr && pool_->num_threads() > 1 && num_shards > 1) {
      pool_->parallel_for_workers(
          0, num_shards, 1,
          [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
              build_shard(static_cast<unsigned>(s));
            }
          });
    } else {
      for (unsigned s = 0; s < num_shards; ++s) build_shard(s);
    }
    // No materialization pass follows: inbox_of() hands out views over
    // the delivery columns directly.
  }

  InboxView inbox_of(NodeId v) const {
    const InboxMeta& im = inbox_meta_[v];
    if (dlv_key_.empty() || im.stamp != epoch()) return {};
    const GraphStore& s = graph_->store();
    const std::uint64_t base = s.offsets[v];
    return InboxView(dlv_key_.data() + im.off, dlv_msg_.data() + im.off,
                     s.adj_to.data() + base, s.adj_edge.data() + base,
                     im.cnt);
  }

  const Graph* graph_;
  std::uint64_t seed_;
  Meter meter_;
  ThreadPool* pool_ = nullptr;
  ShardPlan plan_;

  // Epoch-stamped directed channels (double-send detection) fused with
  // the precomputed receiver-side incidence position per channel.
  std::vector<ArcMeta> arc_meta_;  // 2m

  // This round's mailbox, as parallel columns: shard-binned staging
  // (scr_*) then receiver-grouped, inbox-ordered deliveries (dlv_*),
  // plus the per-receiver range bookkeeping (all stamped by round, so
  // none of it is ever swept). The seq columns stay empty unless
  // message faults are active.
  std::vector<NodeId> scr_to_;
  std::vector<std::uint32_t> scr_key_;
  std::vector<std::uint32_t> scr_seq_;
  std::vector<M> scr_msg_;
  std::vector<std::uint32_t> dlv_key_;
  std::vector<std::uint32_t> dlv_seq_;
  std::vector<M> dlv_msg_;
  std::vector<std::vector<NodeId>> shard_receivers_;
  std::vector<std::size_t> shard_cnt_;  // shards+1; reused as cursors
  std::vector<std::size_t> shard_off_;  // shards+1
  std::vector<InboxMeta> inbox_meta_;   // n

  // Active-set scheduling state, bucketed per shard.
  std::vector<NodeId> active_;
  std::vector<std::uint32_t> active_stamp_;  // n
  std::vector<NodeId> pending_activations_;
  std::vector<std::vector<NodeId>> shard_active_;
  bool step_all_ = false;
  bool initial_restricted_ = false;

  std::vector<PerWorker> workers_;

#if LPS_FAULTS
  faults::MessageFaultInjector* faults_ = nullptr;  // not owned
  bool seq_on_ = false;  // maintain seq columns (message faults active)
  std::vector<PendingRec> delayed_;
  std::vector<PendingRec> dup_buf_;
#endif

  std::uint64_t round_ = 0;
  std::uint64_t pending_ = 0;  // messages awaiting delivery next round
  std::uint64_t delivered_last_round_ = 0;
  std::uint64_t delivered_total_ = 0;  // cumulative (progress board)
  std::uint64_t stepped_last_round_ = 0;
  NetStats stats_;
};

}  // namespace lps
