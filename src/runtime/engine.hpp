// SyncNetwork<M>: the synchronous message-passing model of the paper's
// Section 2, executable.
//
//   "in each time step, processors send (possibly different) messages to
//    neighbors, receive messages from neighbors, and perform some local
//    computation."
//
// Faithfulness points:
//  * Lock-step rounds. A message sent in round r is delivered at the
//    start of round r+1, and nothing else is ever delivered.
//  * One message per edge per direction per round (sending twice on the
//    same channel in one round throws): this is the model under which
//    the paper's CONGEST bit bounds are stated.
//  * Every message is metered in bits via a caller-supplied measure, so
//    LOCAL-vs-CONGEST claims (O(|V|+|E|) vs O(log n) bits) become
//    measurable quantities in `stats()`.
//  * Per-(node, round) RNG substreams: the execution is a deterministic
//    function of the seed, independent of node iteration order — which
//    also makes thread-pool execution bit-identical to sequential.
//
// A node program is any callable `void step(Ctx& ctx)`; persistent node
// state lives in arrays owned by the algorithm object (indexed by node
// id). During a parallel round a node may only touch its own state and
// its own outgoing channels; all algorithms in src/core follow this.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace lps {

template <typename M>
class SyncNetwork {
 public:
  /// A delivered message: sender, the edge it traveled on, payload.
  struct Incoming {
    NodeId from;
    EdgeId edge;
    const M* payload;
  };

  using BitMeter = std::function<std::uint64_t(const M&)>;

  /// Per-node, per-round execution context.
  class Ctx {
   public:
    NodeId id() const noexcept { return id_; }
    std::uint64_t round() const noexcept { return net_->round_; }
    const Graph& graph() const noexcept { return *net_->graph_; }
    Rng& rng() noexcept { return rng_; }
    std::span<const Incoming> inbox() const noexcept { return inbox_; }

    /// Send along edge e to the other endpoint (delivered next round).
    void send(EdgeId e, M msg) {
      net_->enqueue(id_, e, std::move(msg), *stats_);
    }

    /// Send a copy of msg to every neighbor.
    void send_all(const M& msg) {
      for (const Graph::Incidence& inc : graph().neighbors(id_)) {
        send(inc.edge, msg);
      }
    }

   private:
    friend class SyncNetwork;
    SyncNetwork* net_ = nullptr;
    NodeId id_ = kInvalidNode;
    Rng rng_{0};
    std::span<const Incoming> inbox_;
    NetStats* stats_ = nullptr;
  };

  SyncNetwork(const Graph& g, std::uint64_t seed, BitMeter meter = {})
      : graph_(&g),
        seed_(seed),
        meter_(meter ? std::move(meter)
                     : [](const M&) { return std::uint64_t{sizeof(M) * 8}; }),
        current_(2 * static_cast<std::size_t>(g.num_edges())),
        next_(2 * static_cast<std::size_t>(g.num_edges())) {}

  /// Optional: step nodes with a thread pool (nullptr = sequential).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  const NetStats& stats() const noexcept { return stats_; }
  std::uint64_t round() const noexcept { return round_; }

  /// Messages delivered in the most recent round.
  std::uint64_t last_round_deliveries() const noexcept {
    return delivered_last_round_;
  }

  /// Execute one synchronous round: deliver everything sent last round,
  /// call step(ctx) on every node, collect sends for the next round.
  template <typename Step>
  void run_round(Step&& step) {
    ++stats_.rounds;
    std::swap(current_, next_);
    for (auto& slot : next_) slot.reset();
    delivered_last_round_ = pending_;
    pending_ = 0;

    const Graph& g = *graph_;
    auto process_range = [&](std::size_t begin, std::size_t end) {
      std::vector<Incoming> inbox;
      NetStats local;
      for (std::size_t v = begin; v < end; ++v) {
        const NodeId node = static_cast<NodeId>(v);
        inbox.clear();
        for (const Graph::Incidence& inc : g.neighbors(node)) {
          const auto& slot = current_[slot_index(inc.edge, inc.to)];
          if (slot.has_value()) {
            inbox.push_back({inc.to, inc.edge, &*slot});
          }
        }
        Ctx ctx;
        ctx.net_ = this;
        ctx.id_ = node;
        ctx.rng_ = Rng::substream(seed_, std::uint64_t{node}, round_);
        ctx.inbox_ = std::span<const Incoming>(inbox.data(), inbox.size());
        ctx.stats_ = &local;
        step(ctx);
      }
      merge_worker_stats(local);
    };

    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->parallel_for(0, g.num_nodes(), 256, process_range);
    } else {
      process_range(0, g.num_nodes());
    }
    stats_.messages += round_messages_;
    stats_.total_bits += round_bits_;
    pending_ = round_messages_;
    round_messages_ = 0;
    round_bits_ = 0;
    ++round_;
  }

  /// Run up to max_rounds; with stop_when_silent, stop after a round in
  /// which no node sent any message AND nothing is pending (for purely
  /// message-driven protocols further rounds are no-ops). Returns the
  /// number of rounds executed.
  template <typename Step>
  std::uint64_t run(std::uint64_t max_rounds, bool stop_when_silent,
                    Step&& step) {
    std::uint64_t executed = 0;
    for (; executed < max_rounds; ++executed) {
      run_round(step);
      if (stop_when_silent && pending_ == 0) {
        ++executed;
        break;
      }
    }
    return executed;
  }

 private:
  std::size_t slot_index(EdgeId e, NodeId sender) const {
    return 2 * static_cast<std::size_t>(e) +
           (graph_->edge(e).v == sender ? 1 : 0);
  }

  void enqueue(NodeId from, EdgeId e, M msg, NetStats& local) {
    const Edge& ed = graph_->edge(e);
    if (ed.u != from && ed.v != from) {
      throw std::logic_error("SyncNetwork::send: sender not an endpoint");
    }
    auto& slot = next_[slot_index(e, from)];
    if (slot.has_value()) {
      throw std::logic_error(
          "SyncNetwork::send: two messages on one channel in one round");
    }
    local.note_message(meter_(msg));
    slot.emplace(std::move(msg));
  }

  void merge_worker_stats(const NetStats& local) {
    // Called once per worker chunk batch; guarded when parallel.
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      round_messages_ += local.messages;
      round_bits_ += local.total_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, local.max_message_bits);
    } else {
      round_messages_ += local.messages;
      round_bits_ += local.total_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, local.max_message_bits);
    }
  }

  const Graph* graph_;
  std::uint64_t seed_;
  BitMeter meter_;
  ThreadPool* pool_ = nullptr;

  std::vector<std::optional<M>> current_;  // delivered this round
  std::vector<std::optional<M>> next_;     // sent this round
  std::uint64_t round_ = 0;
  std::uint64_t pending_ = 0;  // messages awaiting delivery next round
  std::uint64_t delivered_last_round_ = 0;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_bits_ = 0;
  NetStats stats_;
  std::mutex stats_mutex_;
};

}  // namespace lps
