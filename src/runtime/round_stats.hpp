// Accounting for synchronous executions: round counts and message/bit
// meters. These numbers are what the benches compare against the paper's
// O(log n) round and O(log n)-bit message claims.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace lps {

struct NetStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;

  void note_message(std::uint64_t bits) noexcept {
    ++messages;
    total_bits += bits;
    max_message_bits = std::max(max_message_bits, bits);
  }

  /// Combine counters (parallel workers, or algorithm phases).
  void merge(const NetStats& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    total_bits += other.total_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
  }

  /// Merge message counters but scale the round cost: used when an
  /// overlay round (e.g. one MIS round on the conflict graph C_M(l))
  /// costs `multiplier` physical rounds on G (Lemma 3.3).
  void merge_scaled_rounds(const NetStats& other,
                           std::uint64_t multiplier) noexcept {
    rounds += other.rounds * multiplier;
    messages += other.messages;
    total_bits += other.total_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
  }
};

// Per-round traces live in src/telemetry (Tracer spans + the
// engine.messages_per_round series); the old RoundTrace struct that sat
// here is subsumed by that layer.

}  // namespace lps
