// Minimal fixed-size thread pool with a chunked parallel_for. The
// synchronous round executor uses it to step nodes concurrently; results
// are bit-identical to sequential execution because nodes only write
// their own state and their own outgoing channel slots, and every node's
// randomness comes from a (seed, node, round) substream.
//
// Workers have stable indices (the calling thread is always worker 0,
// pool threads are 1..num_threads-1) so callers can keep contention-free
// per-worker accumulators instead of locking a shared one per chunk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lps {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency(); threads == 1 runs
  /// everything inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const noexcept { return num_threads_; }

  /// Calls fn(chunk_begin, chunk_end) over [begin, end) split into
  /// chunks of `grain`; blocks until all chunks complete. The calling
  /// thread participates. fn must be safe to call concurrently on
  /// disjoint ranges.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_for, but fn additionally receives the stable index of
  /// the worker executing the chunk (0 = calling thread, 1..T-1 = pool
  /// threads). At most one chunk per worker runs at a time, so fn may
  /// mutate per-worker state indexed by that id without synchronization.
  void parallel_for_workers(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(unsigned, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(unsigned worker);

  unsigned num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned, std::size_t, std::size_t)>* job_ =
      nullptr;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace lps
