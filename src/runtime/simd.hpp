// Portable fixed-width vector helpers for the dense per-shard solver
// sweeps (DESIGN.md §15).
//
// Every kernel here has three implementations — scalar, SSE2, AVX2 —
// selected once per process by runtime dispatch (cpuid), never by
// compile flags, so one binary runs everywhere x86-64 and the scalar
// path stays compiled and testable on any host. `LPS_FORCE_SCALAR=1`
// (env) or `force_scalar(true)` (programmatic, for in-process identity
// tests) pins the scalar path.
//
// Bit-identity rule: a kernel may only be added here if its vector
// path produces bit-identical results to its scalar path on every
// input. For the predicate/count/mask kernels that is automatic (the
// reductions are order-independent: OR, integer add, exact per-element
// compares). The argmax kernel reduces under a strict total order
// (weight desc, id asc — callers must pass distinct ids and non-NaN
// weights), so lane order cannot change the winner. Kernels with
// order-dependent floating-point reductions (sums, dot products) must
// tree-reduce both paths identically or stay out of this header.
//
// Scans early-exit at block granularity; the block size is derived from
// the detected L1d size (runtime::detect_cache) so a miss costs at most
// one cache-resident sweep.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lps::simd {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best level this CPU supports (cpuid, cached after first call).
Level detected_level();

/// Level kernels actually run at: detected_level() unless scalar is
/// forced via LPS_FORCE_SCALAR=1 or force_scalar(true).
Level active_level();

/// Pin (or unpin) the scalar path for this process. Overrides the
/// LPS_FORCE_SCALAR environment setting; used by identity tests to
/// compare scalar vs vectorized runs inside one binary.
void force_scalar(bool on);

const char* level_name(Level level);

/// Early-exit granularity for the any_* scans: half the detected L1d
/// size, clamped to [4 KiB, 1 MiB] and rounded down to a multiple of
/// the detected line size.
std::size_t block_bytes();

// ---- byte-predicate kernels (solver state scans) ----

/// Any p[i] == v?
bool any_eq_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v);

/// Any p[i] != v?
bool any_ne_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v);

/// Number of i with p[i] == v.
std::size_t count_eq_u8(const std::uint8_t* p, std::size_t n,
                        std::uint8_t v);

/// out[i] = (p[i] == v) ? 1 : 0. `out` must not alias `p`.
void mask_eq_u8(const std::uint8_t* p, std::size_t n, std::uint8_t v,
                std::uint8_t* out);

// ---- f64 kernels (gain comparison / argmax) ----

/// out[i] = (x[i] > 0.0) ? 1 : 0; returns the number of positives.
/// `out` must not alias `x`.
std::size_t mask_positive_f64(const double* x, std::size_t n,
                              std::uint8_t* out);

/// Index of the best slot under (w desc, id asc) among slots with
/// alive[i] != 0; npos when none is alive. Callers guarantee distinct
/// ids among alive slots and non-NaN weights — the comparator is then
/// a strict total order, so scalar and vector reductions agree
/// bit-for-bit regardless of lane order.
std::size_t argmax_masked_f64(const double* w, const std::uint32_t* id,
                              const std::uint8_t* alive, std::size_t n);

/// out[i] = w[i] - sub[eu[i]] - sub[ev[i]]. Exact per-element IEEE
/// subtraction (no reassociation), so scalar and gather paths are
/// bit-identical. Indices must be < 2^31 and in-bounds for `sub`;
/// `out` may alias `w` but not `sub`.
void sub2_gather_f64(const double* w, const double* sub,
                     const std::uint32_t* eu, const std::uint32_t* ev,
                     double* out, std::size_t n);

}  // namespace lps::simd
