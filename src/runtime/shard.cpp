#include "runtime/shard.hpp"

#include <algorithm>
#include <fstream>
#include <string>

namespace lps {

namespace {

/// Parse one /sys cache "size" file ("2048K", "32M", ...); 0 on failure.
std::size_t read_cache_size(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t value = 0;
  in >> value;
  if (!in) return 0;
  char suffix = '\0';
  in >> suffix;
  if (suffix == 'K' || suffix == 'k') value <<= 10;
  if (suffix == 'M' || suffix == 'm') value <<= 20;
  return value;
}

int read_cache_level(const std::string& path) {
  std::ifstream in(path);
  int level = -1;
  in >> level;
  return in ? level : -1;
}

/// Parse a plain integer file (coherency_line_size); 0 on failure.
std::size_t read_cache_uint(const std::string& path) {
  std::ifstream in(path);
  std::size_t value = 0;
  in >> value;
  return in ? value : 0;
}

/// First word of the cache "type" file ("Data", "Instruction",
/// "Unified"); empty on failure.
std::string read_cache_type(const std::string& path) {
  std::ifstream in(path);
  std::string type;
  in >> type;
  return in ? type : std::string();
}

}  // namespace

CacheInfo detect_cache_at(const std::string& cache_dir) {
  CacheInfo info;
  const std::string base = cache_dir + "/index";
  for (int i = 0; i < 8; ++i) {
    const std::string dir = base + std::to_string(i);
    const int level = read_cache_level(dir + "/level");
    if (level < 0) break;
    const std::size_t size = read_cache_size(dir + "/size");
    if (size == 0) continue;
    if (level == 1) {
      // L1 splits into instruction and data halves; only the data (or a
      // unified) cache bounds the streaming working set.
      const std::string type = read_cache_type(dir + "/type");
      if (type == "Instruction") continue;
      info.l1d_bytes = size;
      const std::size_t line = read_cache_uint(dir + "/coherency_line_size");
      if (line != 0) info.line_bytes = line;
    }
    if (level == 2) info.l2_bytes = size;
    if (level == 3) info.l3_bytes = size;
  }
  return info;
}

const CacheInfo& detect_cache() {
  static const CacheInfo info =
      detect_cache_at("/sys/devices/system/cpu/cpu0/cache");
  return info;
}

ShardPlan plan_shards(NodeId n, unsigned requested,
                      std::size_t bytes_per_vertex) {
  ShardPlan plan;
  plan.n = n;
  if (n == 0) {
    plan.shift = 32;
    plan.count = 1;
    return plan;
  }
  unsigned want;
  if (requested == 0) {
    // Auto: shards sized to ~half of L2 so bookkeeping plus adjacency
    // and solver state fit with room to spare.
    const std::size_t target = std::max<std::size_t>(
        detect_cache().l2_bytes / 2, std::size_t{64} << 10);
    const std::size_t per_shard = std::max<std::size_t>(
        target / std::max<std::size_t>(bytes_per_vertex, 1), 1024);
    want = static_cast<unsigned>(
        std::min<std::size_t>((n + per_shard - 1) / per_shard, 4096));
  } else {
    want = std::min(requested, 4096u);
  }
  want = std::max(want, 1u);
  // Power-of-two shard width >= 1024, wide enough that
  // ceil(n / width) <= want.
  unsigned shift = 10;
  while ((static_cast<std::uint64_t>(n) + (std::uint64_t{1} << shift) - 1) >>
             shift >
         want) {
    ++shift;
  }
  plan.shift = shift;
  plan.count = static_cast<unsigned>(
      (static_cast<std::uint64_t>(n) + (std::uint64_t{1} << shift) - 1) >>
      shift);
  return plan;
}

}  // namespace lps
