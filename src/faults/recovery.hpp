// Graph-layer fault epochs + the recovery protocol, driven through a
// dynamic maintainer.
//
// A FaultSession owns the clock of a fault experiment: each epoch it
// (1) injects — crashes a seeded sample of live vertices (the whole
//     incidence list goes down atomically via kRemoveVertex) and lets
//     the adaptive adversary delete a seeded sample of *currently
//     matched* edges (it reads the maintained matching: adaptive, but
//     still a pure function of the seed);
// (2) recovers — revives vertices whose downtime expired
//     (kReviveVertex), re-inserts every saved edge whose endpoints are
//     both back, and flushes the maintainer (the repair maintainer
//     treats the revived set as its dirty-set, escalating to a rebuild
//     when the batch is large). Recovery is the timed section; its
//     latency lands in the "faults.recovery_ns" histogram;
// (3) audits — proves the matching valid (check_matching +
//     check_invariants) and records its size against the fault-free
//     baseline captured at session start.
//
// Crashed edges are link-flap state, not lost topology: every edge a
// crash or the adversary takes out is parked in a pending list and
// re-inserted as soon as both endpoints are alive, so the session
// measures *recovery*, not permanent shrinkage. The schedule is a pure
// function of (plan, seed): two sessions with equal seeds crash the
// same vertices and delete the same edges, on any machine.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/matcher.hpp"
#include "faults/fault_plan.hpp"

namespace lps::faults {

/// What one fault epoch did and what state it left behind.
struct EpochReport {
  std::uint32_t epoch = 0;
  std::uint32_t crashed = 0;       // vertices crashed this epoch
  std::uint32_t revived = 0;       // vertices revived this epoch
  std::uint32_t adversarial = 0;   // matched edges the adversary deleted
  std::uint32_t reinserted = 0;    // parked edges re-inserted this epoch
  std::uint64_t recovery_ns = 0;   // timed recovery section
  std::uint64_t recourse = 0;      // matched-edge flips over the epoch
  std::size_t matching_size = 0;   // at epoch end (post recovery)
  double ratio = 1.0;              // matching_size / baseline
  bool valid = false;              // audit passed at epoch end
};

/// Aggregate over a session: per-epoch reports plus the degradation
/// metrics the benches gate on.
struct SessionResult {
  std::vector<EpochReport> epochs;
  std::size_t baseline_size = 0;  // fault-free matching size at start
  bool all_valid = true;          // every epoch-end audit passed
  double min_ratio = 1.0;         // worst epoch-end ratio
  /// Terminal heal: after the last epoch everything due is revived and
  /// re-inserted, then the maintainer flushes — did it re-attain?
  bool final_valid = true;
  double final_ratio = 1.0;
  std::uint64_t final_recovery_ns = 0;
  // Totals across epochs (including the terminal heal where noted).
  std::uint64_t crashed = 0;
  std::uint64_t revived = 0;        // includes terminal heal
  std::uint64_t adversarial = 0;
  std::uint64_t reinserted = 0;     // includes terminal heal
  std::uint64_t total_recourse = 0;
  std::uint64_t recovery_p50_ns = 0;  // over per-epoch recovery times
  std::uint64_t recovery_p99_ns = 0;
};

/// Runs `plan.epochs` fault epochs against `matcher` (which must
/// already hold the fault-free state the session is measured against).
/// The matcher is mutated in place; the session borrows it.
class FaultSession {
 public:
  FaultSession(dynamic::DynamicMatcher& matcher, FaultPlan plan,
               std::uint64_t seed);

  SessionResult run();

 private:
  struct ParkedEdge {
    NodeId u;
    NodeId v;
    double w;
  };
  struct Downed {
    NodeId v;
    std::uint64_t up_epoch;  // first epoch whose recovery may revive v
  };

  /// Crash a seeded sample of live vertices; park their edges.
  void inject_crashes(std::uint32_t epoch, EpochReport& report);
  /// Delete a seeded sample of currently-matched edges; park them.
  void inject_adversarial(std::uint32_t epoch, EpochReport& report);
  /// Revive due vertices, re-insert eligible parked edges, flush.
  /// `heal_all` ignores downtime (the terminal heal). Returns ns.
  std::uint64_t recover(std::uint64_t epoch, bool heal_all,
                        EpochReport* report);
  /// check_matching + check_invariants; false (never throws) on audit
  /// failure so the session reports instead of aborting the run.
  bool audit() const;

  dynamic::DynamicMatcher& matcher_;
  FaultPlan plan_;
  std::uint64_t seed_;
  std::vector<ParkedEdge> parked_;
  std::vector<Downed> down_;
  std::size_t baseline_ = 0;
};

}  // namespace lps::faults
