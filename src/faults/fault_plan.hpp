// Fault plans: the parsed form of a fault-injection spec string.
//
// A plan is written like a generator spec — `name:key=value,...` — and
// describes two independent fault families:
//
//   * message-layer faults, applied at the round engine's channel
//     exchange (drop / duplicate / bounded delay / inbox reorder);
//   * graph-layer faults, applied through the dynamic maintainers
//     (vertex crash/recover flaps and an adaptive adversary deleting
//     currently-matched edges), organized into `epochs` fault epochs.
//
// Plans only describe faults; injection lives in injector.hpp (message
// layer) and recovery.hpp (graph layer + recovery protocol). Parsing is
// always available — even in -DLPS_FAULTS=OFF builds a malformed spec
// fails loudly — while injection compiles out.
#pragma once

#include <cstdint>
#include <string>

namespace lps::faults {

/// Parsed fault-injection plan. All probabilities are per-message
/// (message layer) or per-epoch fractions (graph layer).
struct FaultPlan {
  std::string name = "none";

  // --- message layer (engine channel exchange) ---
  /// Probability a message is silently dropped.
  double drop = 0.0;
  /// Probability a message is delivered twice in the same round.
  double dup = 0.0;
  /// Probability a message is delayed (only when delay_rounds > 0).
  double delay_p = 0.0;
  /// Maximum extra rounds a delayed message is held (uniform in
  /// [1, delay_rounds]).
  std::uint32_t delay_rounds = 0;
  /// Shuffle each receiver's inbox deterministically every round.
  bool reorder = false;

  // --- graph layer (fault epochs through the dynamic maintainers) ---
  /// Fraction of live vertices crashed per epoch (>0 crashes >=1).
  double flap = 0.0;
  /// Epochs a crashed vertex stays down before it is revived.
  std::uint32_t down_epochs = 1;
  /// Fraction of currently-matched edges the adaptive adversary
  /// deletes per epoch (>0 deletes >=1 while the matching is nonempty).
  double adversarial = 0.0;
  /// Number of fault epochs the recovery session runs.
  std::uint32_t epochs = 0;

  /// Any fault the engine's message exchange must apply.
  bool message_faults() const noexcept {
    return drop > 0.0 || dup > 0.0 || (delay_rounds > 0 && delay_p > 0.0) ||
           reorder;
  }
  /// Any fault the graph-layer recovery session must drive.
  bool graph_faults() const noexcept {
    return flap > 0.0 || adversarial > 0.0;
  }
  bool any() const noexcept { return message_faults() || graph_faults(); }

  /// Canonical spec string that re-parses to this plan.
  std::string to_spec() const;
};

/// Parse an explicit `name:key=value,...` plan. Keys: drop, dup, delay
/// (max extra rounds), delay_p, reorder, flap, down, adversarial,
/// epochs. Throws std::invalid_argument on unknown keys or values out
/// of range (probabilities must lie in [0,1] and drop+delay_p+dup <= 1
/// so one uniform draw decides each message's fate).
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace lps::faults
