#include "faults/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "telemetry/event_log.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace lps::faults {

namespace {

constexpr std::uint64_t kCrashSalt = 0xc7a5'4f1a'b001'd0e5ULL;
constexpr std::uint64_t kAdversarySalt = 0xade5'a27e'5a1e'c7edULL;

std::uint64_t clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// floor(frac * universe), but at least one while any fault is asked
/// for and the universe is nonempty — a 1% plan on a small graph still
/// injects something.
std::size_t sample_count(double frac, std::size_t universe) {
  if (frac <= 0.0 || universe == 0) return 0;
  const auto want = static_cast<std::size_t>(frac * static_cast<double>(universe));
  return std::min(universe, std::max<std::size_t>(1, want));
}

/// First `count` entries of a seeded partial Fisher-Yates over `pool`.
template <typename T>
void partial_shuffle(std::vector<T>& pool, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(
                                  rng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

FaultSession::FaultSession(dynamic::DynamicMatcher& matcher, FaultPlan plan,
                           std::uint64_t seed)
    : matcher_(matcher), plan_(std::move(plan)), seed_(seed) {}

void FaultSession::inject_crashes(std::uint32_t epoch, EpochReport& report) {
  const dynamic::DynamicGraph& g = matcher_.graph();
  std::vector<NodeId> live;
  live.reserve(g.num_live_nodes());
  for (NodeId v = 0; v < g.node_slots(); ++v) {
    if (g.node_alive(v)) live.push_back(v);
  }
  const std::size_t count = sample_count(plan_.flap, live.size());
  if (count == 0) return;
  Rng rng = Rng::substream(seed_, kCrashSalt, std::uint64_t{epoch});
  partial_shuffle(live, count, rng);
  telemetry::EventLog& elog = telemetry::EventLog::global();
  const bool tevents = elog.recording();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId v = live[i];
    // Park the incidence list before it goes down with the vertex; a
    // neighbor crashed earlier this epoch already parked the shared
    // edge, so each edge is parked exactly once.
    for (const dynamic::Arc& a : g.neighbors(v)) {
      parked_.push_back(ParkedEdge{v, a.to, g.weight(a.edge)});
    }
    down_.push_back(Downed{v, std::uint64_t{epoch} + plan_.down_epochs});
    if (tevents) elog.emit(telemetry::EventKind::kCrash, epoch, v, epoch);
    matcher_.apply({dynamic::UpdateKind::kRemoveVertex, v});
    ++report.crashed;
  }
}

void FaultSession::inject_adversarial(std::uint32_t epoch,
                                      EpochReport& report) {
  std::vector<EdgeId> matched = matcher_.matching_edges();
  const std::size_t count = sample_count(plan_.adversarial, matched.size());
  if (count == 0) return;
  Rng rng = Rng::substream(seed_, kAdversarySalt, std::uint64_t{epoch});
  partial_shuffle(matched, count, rng);
  const dynamic::DynamicGraph& g = matcher_.graph();
  telemetry::EventLog& elog = telemetry::EventLog::global();
  const bool tevents = elog.recording();
  for (std::size_t i = 0; i < count; ++i) {
    const Edge ed = g.edge(matched[i]);
    parked_.push_back(ParkedEdge{ed.u, ed.v, g.weight(matched[i])});
    if (tevents) {
      elog.emit(telemetry::EventKind::kAdversarialCut, epoch, ed.u, ed.v,
                epoch);
    }
    matcher_.apply({dynamic::UpdateKind::kDeleteEdge, ed.u, ed.v});
    ++report.adversarial;
  }
}

std::uint64_t FaultSession::recover(std::uint64_t epoch, bool heal_all,
                                    EpochReport* report) {
  const std::uint64_t t0 = clock_ns();
  telemetry::EventLog& elog = telemetry::EventLog::global();
  const bool tevents = elog.recording();
  std::size_t keep = 0;
  for (Downed& d : down_) {
    if (heal_all || d.up_epoch <= epoch) {
      matcher_.apply({dynamic::UpdateKind::kReviveVertex, d.v});
      if (tevents) {
        elog.emit(telemetry::EventKind::kRevive, epoch, d.v, epoch);
      }
      if (report != nullptr) ++report->revived;
    } else {
      down_[keep++] = d;
    }
  }
  down_.resize(keep);

  const dynamic::DynamicGraph& g = matcher_.graph();
  keep = 0;
  for (const ParkedEdge& pe : parked_) {
    if (!g.node_alive(pe.u) || !g.node_alive(pe.v)) {
      parked_[keep++] = pe;  // an endpoint is still down; try next epoch
      continue;
    }
    // Both endpoints crashing in one epoch parks the shared edge once,
    // but an edge can be parked twice across overlapping crash+
    // adversary events — re-insert at most once.
    if (g.find_edge(pe.u, pe.v) == kInvalidEdge) {
      matcher_.apply(
          {dynamic::UpdateKind::kInsertEdge, pe.u, pe.v, pe.w});
      if (tevents) {
        elog.emit(telemetry::EventKind::kReinsert, epoch, pe.u, pe.v, epoch);
      }
      if (report != nullptr) ++report->reinserted;
    }
  }
  parked_.resize(keep);

  matcher_.flush();
  const std::uint64_t ns = clock_ns() - t0;
  if (telemetry::enabled()) {
    telemetry::MetricsRegistry::global()
        .histogram("faults.recovery_ns")
        .record(ns);
  }
  return ns;
}

bool FaultSession::audit() const {
  try {
    matcher_.check_matching();
    matcher_.graph().check_invariants();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

SessionResult FaultSession::run() {
  SessionResult result;
  baseline_ = matcher_.matching_size();
  result.baseline_size = baseline_;
  const double base =
      baseline_ > 0 ? static_cast<double>(baseline_) : 1.0;

  std::vector<std::uint64_t> recovery_times;
  recovery_times.reserve(plan_.epochs);
  for (std::uint32_t epoch = 0; epoch < plan_.epochs; ++epoch) {
    EpochReport report;
    report.epoch = epoch;
    const std::uint64_t recourse0 = matcher_.stats().recourse;

    inject_crashes(epoch, report);
    inject_adversarial(epoch, report);
    report.recovery_ns = recover(epoch, /*heal_all=*/false, &report);

    report.recourse = matcher_.stats().recourse - recourse0;
    report.matching_size = matcher_.matching_size();
    report.ratio =
        baseline_ > 0 ? static_cast<double>(report.matching_size) / base : 1.0;
    report.valid = audit();

    result.all_valid = result.all_valid && report.valid;
    result.min_ratio = std::min(result.min_ratio, report.ratio);
    result.crashed += report.crashed;
    result.revived += report.revived;
    result.adversarial += report.adversarial;
    result.reinserted += report.reinserted;
    result.total_recourse += report.recourse;
    recovery_times.push_back(report.recovery_ns);
    result.epochs.push_back(report);
  }

  // Terminal heal: revive everything still down, restore every parked
  // edge, and let the maintainer settle — the self-healing claim.
  EpochReport heal;
  result.final_recovery_ns = recover(plan_.epochs, /*heal_all=*/true, &heal);
  result.revived += heal.revived;
  result.reinserted += heal.reinserted;
  result.final_valid = audit();
  result.final_ratio =
      baseline_ > 0 ? static_cast<double>(matcher_.matching_size()) / base
                    : 1.0;

  result.recovery_p50_ns = percentile_ns(recovery_times, 0.50);
  result.recovery_p99_ns = percentile_ns(recovery_times, 0.99);
  return result;
}

}  // namespace lps::faults
