#include "faults/scenarios.hpp"

#include <stdexcept>

namespace lps::faults {

const std::vector<FaultScenario>& fault_scenarios() {
  static const std::vector<FaultScenario> kScenarios = {
      {"drop10", "drop10:drop=0.1", true,
       "10% of messages silently dropped at the channel exchange"},
      {"dup5", "dup5:dup=0.05", false,
       "5% of messages delivered twice in their round"},
      {"delay4", "delay4:delay=4,delay_p=0.25", false,
       "25% of messages held back 1-4 extra rounds"},
      {"reorder", "reorder:reorder=true", false,
       "every inbox shuffled deterministically each round"},
      {"flap1", "flap1:flap=0.01,down=1,epochs=4", true,
       "1% of live vertices crash per epoch, revive one epoch later"},
      {"advdel", "advdel:adversarial=0.05,epochs=4", false,
       "adaptive adversary deletes 5% of currently-matched edges per epoch"},
      {"chaos",
       "chaos:drop=0.1,dup=0.05,delay=4,delay_p=0.2,reorder=true,"
       "flap=0.01,adversarial=0.02,epochs=4",
       true, "every fault family at once"},
  };
  return kScenarios;
}

bool is_fault_preset(const std::string& name) {
  for (const FaultScenario& s : fault_scenarios()) {
    if (name == s.name) return true;
  }
  return false;
}

FaultPlan make_fault_plan(const std::string& spec) {
  if (spec.empty()) return FaultPlan{};
  if (spec.find(':') == std::string::npos) {
    for (const FaultScenario& s : fault_scenarios()) {
      if (spec == s.name) return parse_fault_plan(s.spec);
    }
    std::string known;
    for (const FaultScenario& s : fault_scenarios()) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    throw std::invalid_argument("fault plan: unknown preset '" + spec +
                                "' (known: " + known +
                                "; or pass an explicit 'name:key=value,...')");
  }
  return parse_fault_plan(spec);
}

}  // namespace lps::faults
