#include "faults/fault_plan.hpp"

#include <sstream>
#include <stdexcept>

#include "util/options.hpp"

namespace lps::faults {

namespace {

double require_prob(SpecArgs& args, const std::string& key, double fallback) {
  const double p = args.get_double(key, fallback);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault plan: '" + key +
                                "' must lie in [0,1], got " +
                                std::to_string(p));
  }
  return p;
}

std::int64_t require_range(SpecArgs& args, const std::string& key,
                           std::int64_t fallback, std::int64_t lo,
                           std::int64_t hi) {
  const std::int64_t v = args.get_int(key, fallback);
  if (v < lo || v > hi) {
    throw std::invalid_argument(
        "fault plan: '" + key + "' must lie in [" + std::to_string(lo) + "," +
        std::to_string(hi) + "], got " + std::to_string(v));
  }
  return v;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument(
        "fault plan: expected 'name:key=value,...', got '" + spec + "'");
  }
  FaultPlan plan;
  plan.name = spec.substr(0, colon);
  SpecArgs args("fault plan", plan.name, spec.substr(colon + 1));

  plan.drop = require_prob(args, "drop", 0.0);
  plan.dup = require_prob(args, "dup", 0.0);
  plan.delay_rounds = static_cast<std::uint32_t>(
      require_range(args, "delay", 0, 0, 64));
  // A plan that bounds the delay implies some messages are delayed.
  plan.delay_p =
      require_prob(args, "delay_p", plan.delay_rounds > 0 ? 0.25 : 0.0);
  if (plan.delay_p > 0.0 && plan.delay_rounds == 0) {
    throw std::invalid_argument(
        "fault plan: 'delay_p' needs 'delay' (max extra rounds) > 0");
  }
  plan.reorder = parse_bool_value("reorder", args.get("reorder", "false"));
  plan.flap = require_prob(args, "flap", 0.0);
  plan.down_epochs =
      static_cast<std::uint32_t>(require_range(args, "down", 1, 1, 1024));
  plan.adversarial = require_prob(args, "adversarial", 0.0);
  plan.epochs = static_cast<std::uint32_t>(require_range(
      args, "epochs", plan.graph_faults() ? 4 : 0, 0, 1 << 20));
  args.check_all_used();

  // One uniform draw decides each message's fate, so the per-message
  // fault probabilities must partition [0,1].
  if (plan.drop + plan.delay_p + plan.dup > 1.0) {
    throw std::invalid_argument(
        "fault plan: drop + delay_p + dup must not exceed 1");
  }
  if (plan.graph_faults() && plan.epochs == 0) {
    throw std::invalid_argument(
        "fault plan: graph faults (flap/adversarial) need epochs > 0");
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream os;
  os << name << ':';
  bool first = true;
  const auto emit = [&](const std::string& kv) {
    if (!first) os << ',';
    os << kv;
    first = false;
  };
  if (drop > 0.0) emit("drop=" + std::to_string(drop));
  if (dup > 0.0) emit("dup=" + std::to_string(dup));
  if (delay_rounds > 0) {
    emit("delay=" + std::to_string(delay_rounds));
    emit("delay_p=" + std::to_string(delay_p));
  }
  if (reorder) emit("reorder=true");
  if (flap > 0.0) emit("flap=" + std::to_string(flap));
  if (flap > 0.0 && down_epochs != 1) emit("down=" + std::to_string(down_epochs));
  if (adversarial > 0.0) emit("adversarial=" + std::to_string(adversarial));
  if (epochs > 0) emit("epochs=" + std::to_string(epochs));
  if (first) emit("epochs=0");
  return os.str();
}

}  // namespace lps::faults
