// Message-fault injector: the engine-side half of the fault layer.
//
// The SyncNetwork consults one injector at its channel exchange. Every
// message's fate — drop, duplicate, or bounded delay — is a pure
// function of (injector seed, channel arc, sender, delivery round), so
// the injected schedule is bit-identical across thread counts and
// shard counts: the adversary is seeded, not scheduled. Inbox
// reordering likewise derives a per-(receiver, round) generator, so
// the same permutation is applied no matter which shard sorts the
// inbox.
//
// Like telemetry, the whole layer compiles out: with -DLPS_FAULTS=0
// make_message_injector() still *validates* the spec (typos fail
// loudly everywhere) but always returns nullptr, and the engine's
// injection seam is dead code.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "faults/fault_plan.hpp"
#include "graph/storage.hpp"
#include "util/rng.hpp"

#ifndef LPS_FAULTS
#define LPS_FAULTS 1
#endif

namespace lps::faults {

/// Fate of one in-flight message. At most one fault applies per
/// message (one uniform draw against cumulative probabilities), so
/// drop/delay/dup rates compose without correlation surprises.
struct MessageFate {
  bool drop = false;
  bool dup = false;
  std::uint32_t delay = 0;  // extra rounds to hold the message; 0 = deliver
};

/// Injection counters, readable after a run for reporting.
struct InjectorCounters {
  std::uint64_t decided = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered_inboxes = 0;
};

class MessageFaultInjector {
 public:
  MessageFaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(splitmix64(seed ^ kFateSalt)) {}

  bool message_faults() const noexcept { return plan_.message_faults(); }
  bool reorder() const noexcept { return plan_.reorder; }
  const FaultPlan& plan() const noexcept { return plan_; }

  /// Fate of the message travelling on channel `edge` from `from`, due
  /// for delivery in `round`. Called serially by the engine (once per
  /// message, at its first delivery attempt; a delayed message is not
  /// re-decided when it is released).
  MessageFate decide(EdgeId edge, NodeId from, std::uint64_t round) noexcept {
    ++counters_.decided;
    MessageFate fate;
    Rng rng = Rng::substream(seed_, std::uint64_t{edge} << 32 | from, round);
    const double u = rng.uniform01();
    double acc = plan_.drop;
    if (u < acc) {
      fate.drop = true;
      ++counters_.dropped;
      return fate;
    }
    if (plan_.delay_rounds > 0) {
      acc += plan_.delay_p;
      if (u < acc) {
        fate.delay = 1 + static_cast<std::uint32_t>(rng.below(plan_.delay_rounds));
        ++counters_.delayed;
        return fate;
      }
    }
    if (u < acc + plan_.dup) {
      fate.dup = true;
      ++counters_.duplicated;
    }
    return fate;
  }

  /// Deterministic generator for shuffling `receiver`'s inbox in
  /// `round`; depends on neither thread nor shard assignment.
  Rng reorder_rng(NodeId receiver, std::uint64_t round) const noexcept {
    return Rng::substream(seed_, kReorderSalt ^ receiver, round);
  }

  /// Count one shuffled inbox (called from shard-parallel delivery).
  void note_reordered() noexcept {
    reordered_.fetch_add(1, std::memory_order_relaxed);
  }

  InjectorCounters counters() const {
    InjectorCounters c = counters_;
    c.reordered_inboxes = reordered_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  static constexpr std::uint64_t kFateSalt = 0xfa17'1e55'c0de'd00dULL;
  static constexpr std::uint64_t kReorderSalt = 0x5bu ^ 0x9e3779b97f4a7c15ULL;

  FaultPlan plan_;
  std::uint64_t seed_;
  InjectorCounters counters_;  // mutated serially in decide()
  std::atomic<std::uint64_t> reordered_{0};
};

/// Parse `spec` (a registered preset name or an explicit plan; see
/// scenarios.hpp) and build an injector when the plan carries
/// message-layer faults. Returns nullptr for the empty spec, for plans
/// with graph faults only, and always under -DLPS_FAULTS=0 — but the
/// spec is validated unconditionally, so malformed specs fail loudly
/// even in fault-off builds.
std::unique_ptr<MessageFaultInjector> make_message_injector(
    const std::string& spec, std::uint64_t seed);

}  // namespace lps::faults
