#include "faults/injector.hpp"

#include "faults/scenarios.hpp"

namespace lps::faults {

std::unique_ptr<MessageFaultInjector> make_message_injector(
    const std::string& spec, std::uint64_t seed) {
  // Parse unconditionally: a malformed spec must fail loudly even when
  // injection is compiled out or the plan has no message faults.
  FaultPlan plan = make_fault_plan(spec);
#if LPS_FAULTS
  if (!plan.message_faults()) return nullptr;
  return std::make_unique<MessageFaultInjector>(std::move(plan), seed);
#else
  (void)seed;
  return nullptr;
#endif
}

}  // namespace lps::faults
