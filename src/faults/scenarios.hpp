// Failure-scenario registry: named fault profiles, table-driven in the
// bench_theorems style. Benches and tests iterate fault_scenarios() so
// coverage grows as a cross-product (maintainer x oracle x profile)
// instead of one bespoke bench per failure idea; `smoke` marks the
// subset CI runs under sanitizers.
//
// make_fault_plan() is the single entry point for every fault spec in
// the system: a bare name resolves a registered preset, anything with a
// ':' parses as an explicit `name:key=value,...` plan (fault_plan.hpp).
#pragma once

#include <string>
#include <vector>

#include "faults/fault_plan.hpp"

namespace lps::faults {

/// One registered failure profile.
struct FaultScenario {
  const char* name;
  const char* spec;
  bool smoke;  // part of the CI sanitizer smoke subset
  const char* description;
};

/// The registry, in presentation order. Profiles stay within the
/// acceptance envelope: drop <= 10%, dup <= 5%, delay <= 4 rounds,
/// 1% vertex flaps, adversarial delete-matched.
const std::vector<FaultScenario>& fault_scenarios();

/// True when `name` matches a registered scenario.
bool is_fault_preset(const std::string& name);

/// Resolve `spec` into a plan: "" -> the inert plan, a bare registered
/// name -> its preset, otherwise an explicit `name:key=value,...` plan.
/// Throws std::invalid_argument on unknown presets or malformed plans.
FaultPlan make_fault_plan(const std::string& spec);

}  // namespace lps::faults
