#include "dynamic/switch_adapter.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace lps::dynamic {

DynamicGraph make_port_graph(std::size_t ports) {
  return DynamicGraph(static_cast<NodeId>(2 * ports));
}

SwitchReplayMetrics replay_switch(DynamicMatcher& matcher,
                                  const SwitchReplayConfig& config) {
  const std::size_t n = config.ports;
  if (matcher.graph().node_slots() != 2 * n ||
      matcher.graph().num_live_nodes() != 2 * n ||
      matcher.graph().num_live_edges() != 0) {
    throw std::invalid_argument(
        "replay_switch: matcher must start from make_port_graph(ports)");
  }
  const auto lambda = traffic_matrix(config.pattern, n, config.load);
  Rng rng(config.seed);

  std::vector<std::vector<std::uint32_t>> occupancy(
      n, std::vector<std::uint32_t>(n, 0));
  SwitchReplayMetrics metrics;
  std::uint64_t matched_served = 0;
  const std::uint64_t recourse_before = matcher.stats().recourse;

  const auto output_node = [n](std::size_t j) {
    return static_cast<NodeId>(n + j);
  };

  for (std::uint64_t slot = 0; slot < config.slots; ++slot) {
    // Arrivals: a VOQ going 0 -> 1 inserts its request edge.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (lambda[i][j] > 0.0 && rng.bernoulli(lambda[i][j])) {
          ++metrics.arrived;
          if (occupancy[i][j]++ == 0) {
            matcher.apply({UpdateKind::kInsertEdge, static_cast<NodeId>(i),
                           output_node(j)});
            ++metrics.updates;
          }
        }
      }
    }
    // Service: the maintained matching IS the crossbar schedule. A
    // served VOQ draining to empty deletes its edge (after the scan, so
    // the matching is not mutated mid-iteration).
    std::vector<std::pair<std::size_t, std::size_t>> drained;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId mate = matcher.mate(static_cast<NodeId>(i));
      if (mate == kInvalidNode) continue;
      const std::size_t j = static_cast<std::size_t>(mate) - n;
      // The edge exists only while the VOQ is nonempty, so there is
      // always a cell to serve.
      ++metrics.delivered;
      ++matched_served;
      if (--occupancy[i][j] == 0) drained.emplace_back(i, j);
    }
    for (const auto& [i, j] : drained) {
      matcher.apply({UpdateKind::kDeleteEdge, static_cast<NodeId>(i),
                     output_node(j)});
      ++metrics.updates;
    }
  }

  metrics.recourse = matcher.stats().recourse - recourse_before;
  metrics.normalized_throughput =
      metrics.arrived > 0 ? static_cast<double>(metrics.delivered) /
                                static_cast<double>(metrics.arrived)
                          : 1.0;
  metrics.mean_matching = config.slots > 0
                              ? static_cast<double>(matched_served) /
                                    static_cast<double>(config.slots)
                              : 0.0;
  metrics.updates_per_slot = config.slots > 0
                                 ? static_cast<double>(metrics.updates) /
                                       static_cast<double>(config.slots)
                                 : 0.0;
  metrics.recourse_per_update =
      metrics.updates > 0 ? static_cast<double>(metrics.recourse) /
                                static_cast<double>(metrics.updates)
                          : 0.0;
  return metrics;
}

}  // namespace lps::dynamic
