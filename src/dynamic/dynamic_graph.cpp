#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lps::dynamic {

namespace {
void require_weight(double w, const char* who) {
  if (!(w > 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument(std::string(who) +
                                ": weight must be positive and finite");
  }
}

std::shared_ptr<const GraphStore> isolated_store(NodeId n) {
  auto s = std::make_shared<GraphStore>();
  s->n = n;
  s->offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  return s;
}
}  // namespace

DynamicGraph::DynamicGraph() : DynamicGraph(0) {}

DynamicGraph::DynamicGraph(NodeId n)
    : base_(isolated_store(n)),
      node_alive_(n, 1),
      overlay_of_(n, -1),
      live_nodes_(n) {}

DynamicGraph DynamicGraph::from_graph(const Graph& g,
                                      const std::vector<double>* weights) {
  if (weights != nullptr && weights->size() != g.num_edges()) {
    throw std::invalid_argument("DynamicGraph::from_graph: weight size");
  }
  if (weights != nullptr) {
    for (double w : *weights) {
      require_weight(w, "DynamicGraph::from_graph");
    }
  }
  DynamicGraph out;
  out.base_ = g.store_ptr();  // zero-copy: the overlay reads g's columns
  const GraphStore& s = *out.base_;
  out.node_alive_.assign(s.n, 1);
  out.overlay_of_.assign(s.n, -1);
  out.live_nodes_ = s.n;
  const EdgeId m = s.num_edges();
  out.edge_u_ = s.edge_u;
  out.edge_v_ = s.edge_v;
  out.edge_w_.assign(m, 1.0);
  if (weights != nullptr) {
    out.edge_w_ = *weights;
  } else if (!s.edge_weight.empty()) {
    out.edge_w_ = s.edge_weight;
  }
  out.edge_alive_.assign(m, 1);
  out.live_edges_ = m;
  return out;
}

void DynamicGraph::require_live_node(NodeId v, const char* who) const {
  if (!node_alive(v)) {
    throw std::invalid_argument(std::string(who) + ": dead or unknown node " +
                                std::to_string(v));
  }
}

void DynamicGraph::require_live_edge(EdgeId e, const char* who) const {
  if (!edge_alive(e)) {
    throw std::invalid_argument(std::string(who) + ": dead or unknown edge " +
                                std::to_string(e));
  }
}

Edge DynamicGraph::edge(EdgeId e) const {
  require_live_edge(e, "DynamicGraph::edge");
  return {edge_u_[e], edge_v_[e]};
}

double DynamicGraph::weight(EdgeId e) const {
  require_live_edge(e, "DynamicGraph::weight");
  return edge_w_[e];
}

NodeId DynamicGraph::other_endpoint(EdgeId e, NodeId v) const {
  require_live_edge(e, "DynamicGraph::other_endpoint");
  return edge_u_[e] == v ? edge_v_[e] : edge_u_[e];
}

EdgeId DynamicGraph::find_edge(NodeId u, NodeId v) const {
  if (!node_alive(u) || !node_alive(v)) return kInvalidEdge;
  if (degree(u) > degree(v)) std::swap(u, v);
  const NeighborView nbrs = neighbors(u);
  const NodeId* begin = nbrs.to_data();
  const NodeId* end = begin + nbrs.size();
  const NodeId* it = std::lower_bound(begin, end, v);
  if (it != end && *it == v) {
    return nbrs.edge_data()[it - begin];
  }
  return kInvalidEdge;
}

NodeId DynamicGraph::add_vertex() {
  node_alive_.push_back(1);
  // New vertices have no base row; give them an (empty) overlay row so
  // neighbors() never indexes past the base offsets array.
  overlay_of_.push_back(static_cast<std::int32_t>(overlay_.size()));
  overlay_.emplace_back();
  overlay_live_ = overlay_.size();
  ++live_nodes_;
  pristine_ = false;
  return static_cast<NodeId>(node_alive_.size() - 1);
}

void DynamicGraph::remove_vertex(NodeId v) {
  require_live_node(v, "DynamicGraph::remove_vertex");
  // Snapshot the incident edge ids first: delete_edge mutates v's row.
  std::vector<EdgeId> incident;
  const NeighborView nbrs = neighbors(v);
  incident.reserve(nbrs.size());
  for (const Arc& a : nbrs) incident.push_back(a.edge);
  for (EdgeId e : incident) delete_edge(e);
  node_alive_[v] = 0;
  --live_nodes_;
  pristine_ = false;
}

void DynamicGraph::revive_vertex(NodeId v) {
  if (v >= node_alive_.size()) {
    throw std::invalid_argument(
        "DynamicGraph::revive_vertex: unallocated vertex id");
  }
  if (node_alive_[v] != 0) {
    throw std::invalid_argument(
        "DynamicGraph::revive_vertex: vertex is alive");
  }
  // A dead vertex's row is always empty (remove_vertex deleted every
  // incident edge, materializing the row if it had base edges), so the
  // sorted-incidence invariant holds trivially on revival.
  node_alive_[v] = 1;
  ++live_nodes_;
  pristine_ = false;
}

std::int32_t DynamicGraph::materialize(NodeId v) {
  std::int32_t ov = overlay_of_[v];
  if (ov >= 0) return ov;
  ov = static_cast<std::int32_t>(overlay_.size());
  overlay_.emplace_back();
  OverlayRow& row = overlay_.back();
  const NeighborView base_row = base_->row(v);
  row.to.assign(base_row.to_data(), base_row.to_data() + base_row.size());
  row.edge.assign(base_row.edge_data(),
                  base_row.edge_data() + base_row.size());
  overlay_of_[v] = ov;
  overlay_live_ = overlay_.size();
  return ov;
}

void DynamicGraph::arc_insert(NodeId v, NodeId to, EdgeId e) {
  OverlayRow& row = overlay_[materialize(v)];
  const auto it = std::lower_bound(row.to.begin(), row.to.end(), to);
  const std::size_t pos = static_cast<std::size_t>(it - row.to.begin());
  row.to.insert(it, to);
  row.edge.insert(row.edge.begin() + static_cast<std::ptrdiff_t>(pos), e);
}

void DynamicGraph::arc_erase(NodeId v, NodeId to) {
  OverlayRow& row = overlay_[materialize(v)];
  const auto it = std::lower_bound(row.to.begin(), row.to.end(), to);
  const std::size_t pos = static_cast<std::size_t>(it - row.to.begin());
  row.to.erase(it);
  row.edge.erase(row.edge.begin() + static_cast<std::ptrdiff_t>(pos));
}

EdgeId DynamicGraph::insert_edge(NodeId u, NodeId v, double w) {
  require_live_node(u, "DynamicGraph::insert_edge");
  require_live_node(v, "DynamicGraph::insert_edge");
  if (u == v) {
    throw std::invalid_argument("DynamicGraph::insert_edge: self-loop");
  }
  require_weight(w, "DynamicGraph::insert_edge");
  if (u > v) std::swap(u, v);
  if (find_edge(u, v) != kInvalidEdge) {
    throw std::invalid_argument("DynamicGraph::insert_edge: duplicate edge (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
  }
  EdgeId id;
  if (!free_edges_.empty()) {
    id = free_edges_.back();
    free_edges_.pop_back();
  } else {
    id = static_cast<EdgeId>(edge_u_.size());
    edge_u_.emplace_back();
    edge_v_.emplace_back();
    edge_w_.emplace_back();
    edge_alive_.emplace_back();
  }
  edge_u_[id] = u;
  edge_v_[id] = v;
  edge_w_[id] = w;
  edge_alive_[id] = 1;
  arc_insert(u, v, id);
  arc_insert(v, u, id);
  ++live_edges_;
  pristine_ = false;
  return id;
}

void DynamicGraph::delete_edge(EdgeId e) {
  require_live_edge(e, "DynamicGraph::delete_edge");
  const NodeId u = edge_u_[e];
  const NodeId v = edge_v_[e];
  arc_erase(u, v);
  arc_erase(v, u);
  edge_alive_[e] = 0;
  free_edges_.push_back(e);
  --live_edges_;
  pristine_ = false;
}

void DynamicGraph::set_weight(EdgeId e, double w) {
  require_live_edge(e, "DynamicGraph::set_weight");
  require_weight(w, "DynamicGraph::set_weight");
  edge_w_[e] = w;
}

Snapshot DynamicGraph::snapshot() const {
  Snapshot out;
  const NodeId slots = node_slots();
  if (structurally_pristine()) {
    // Zero-copy bridge: the registry reads the very columns we overlay.
    out.graph = Graph(base_);
    out.shared_store = true;
    out.weights = edge_w_;
    out.node_to_dynamic.resize(slots);
    out.dynamic_to_node.resize(slots);
    for (NodeId v = 0; v < slots; ++v) {
      out.node_to_dynamic[v] = v;
      out.dynamic_to_node[v] = v;
    }
    out.edge_to_dynamic.resize(live_edges_);
    for (EdgeId e = 0; e < live_edges_; ++e) out.edge_to_dynamic[e] = e;
    return out;
  }
  out.dynamic_to_node.assign(slots, kInvalidNode);
  out.node_to_dynamic.reserve(live_nodes_);
  for (NodeId v = 0; v < slots; ++v) {
    if (!node_alive_[v]) continue;
    out.dynamic_to_node[v] = static_cast<NodeId>(out.node_to_dynamic.size());
    out.node_to_dynamic.push_back(v);
  }
  std::vector<Edge> edges;
  edges.reserve(live_edges_);
  out.edge_to_dynamic.reserve(live_edges_);
  out.weights.reserve(live_edges_);
  for (EdgeId e = 0; e < edge_u_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    edges.push_back(
        {out.dynamic_to_node[edge_u_[e]], out.dynamic_to_node[edge_v_[e]]});
    out.edge_to_dynamic.push_back(e);
    out.weights.push_back(edge_w_[e]);
  }
  out.graph = Graph(static_cast<NodeId>(out.node_to_dynamic.size()),
                    std::move(edges));
  return out;
}

void DynamicGraph::compact() {
  const NodeId slots = node_slots();
  auto fresh = std::make_shared<GraphStore>();
  fresh->n = slots;
  fresh->offsets.assign(static_cast<std::size_t>(slots) + 1, 0);
  for (NodeId v = 0; v < slots; ++v) {
    fresh->offsets[v + 1] = fresh->offsets[v] + degree(v);
  }
  const std::size_t arcs = fresh->offsets[slots];
  fresh->adj_to.resize(arcs);
  fresh->adj_edge.resize(arcs);
  for (NodeId v = 0; v < slots; ++v) {
    const NeighborView row = neighbors(v);
    std::copy(row.to_data(), row.to_data() + row.size(),
              fresh->adj_to.data() + fresh->offsets[v]);
    std::copy(row.edge_data(), row.edge_data() + row.size(),
              fresh->adj_edge.data() + fresh->offsets[v]);
    fresh->max_degree =
        std::max(fresh->max_degree, static_cast<NodeId>(row.size()));
  }
  base_ = std::move(fresh);
  overlay_.clear();
  overlay_live_ = 0;
  overlay_of_.assign(slots, -1);
}

void DynamicGraph::check_invariants() const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("DynamicGraph::check_invariants: " + what);
  };
  const NodeId slots = node_slots();
  if (overlay_of_.size() != slots) fail("overlay map size");
  if (edge_u_.size() != edge_v_.size() || edge_u_.size() != edge_w_.size() ||
      edge_u_.size() != edge_alive_.size()) {
    fail("edge column sizes");
  }
  if (overlay_live_ != overlay_.size()) fail("overlay row count");
  NodeId live_n = 0;
  std::size_t arc_count = 0;
  for (NodeId v = 0; v < slots; ++v) {
    const std::int32_t ov = overlay_of_[v];
    if (ov >= 0 && static_cast<std::size_t>(ov) >= overlay_.size()) {
      fail("overlay index out of range for node " + std::to_string(v));
    }
    if (ov >= 0 && overlay_[ov].to.size() != overlay_[ov].edge.size()) {
      fail("overlay columns of node " + std::to_string(v) + " disagree");
    }
    if (node_alive_[v]) ++live_n;
    const NeighborView nbrs = neighbors(v);
    if (!node_alive_[v] && !nbrs.empty()) {
      fail("dead node " + std::to_string(v) + " has arcs");
    }
    arc_count += nbrs.size();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Arc a = nbrs[i];
      if (i > 0 && nbrs[i - 1].to >= a.to) {
        fail("incidence of node " + std::to_string(v) + " not sorted");
      }
      if (a.edge >= edge_u_.size() || !edge_alive_[a.edge]) {
        fail("arc to dead edge " + std::to_string(a.edge));
      }
      const NodeId eu = edge_u_[a.edge];
      const NodeId ev = edge_v_[a.edge];
      const NodeId expect_to = eu == v ? ev : eu;
      if ((eu != v && ev != v) || expect_to != a.to) {
        fail("arc/edge endpoint mismatch at edge " + std::to_string(a.edge));
      }
    }
  }
  if (live_n != live_nodes_) fail("live node count");
  EdgeId live_m = 0;
  for (EdgeId e = 0; e < edge_u_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    ++live_m;
    if (edge_u_[e] >= edge_v_[e]) {
      fail("edge " + std::to_string(e) + " not normalized");
    }
    if (!node_alive(edge_u_[e]) || !node_alive(edge_v_[e])) {
      fail("edge " + std::to_string(e) + " touches a dead node");
    }
    if (!(edge_w_[e] > 0.0) || !std::isfinite(edge_w_[e])) {
      fail("edge " + std::to_string(e) + " has a bad weight");
    }
    // The mirror arcs must both exist and name this edge.
    if (find_edge(edge_u_[e], edge_v_[e]) != e) {
      fail("find_edge misses edge " + std::to_string(e));
    }
  }
  if (live_m != live_edges_) fail("live edge count");
  if (arc_count != 2 * static_cast<std::size_t>(live_edges_)) {
    fail("arc count != 2 * live edges");
  }
  if (free_edges_.size() != edge_u_.size() - live_edges_) {
    fail("free list size");
  }
}

}  // namespace lps::dynamic
