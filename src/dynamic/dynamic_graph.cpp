#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lps::dynamic {

namespace {
void require_weight(double w, const char* who) {
  if (!(w > 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument(std::string(who) +
                                ": weight must be positive and finite");
  }
}
}  // namespace

DynamicGraph::DynamicGraph(NodeId n)
    : adj_(n), node_alive_(n, 1), live_nodes_(n) {}

DynamicGraph DynamicGraph::from_graph(const Graph& g,
                                      const std::vector<double>* weights) {
  if (weights != nullptr && weights->size() != g.num_edges()) {
    throw std::invalid_argument("DynamicGraph::from_graph: weight size");
  }
  DynamicGraph out(g.num_nodes());
  out.edges_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    out.edges_[e] = {ed.u, ed.v, weights ? (*weights)[e] : 1.0, 1};
    if (weights) require_weight((*weights)[e], "DynamicGraph::from_graph");
  }
  out.live_edges_ = g.num_edges();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    out.adj_[v].reserve(nbrs.size());
    // Graph's incidence lists are already sorted by neighbor id, so the
    // dynamic invariant holds by construction.
    for (const Graph::Incidence& inc : nbrs) {
      out.adj_[v].push_back({inc.to, inc.edge});
    }
  }
  return out;
}

void DynamicGraph::require_live_node(NodeId v, const char* who) const {
  if (!node_alive(v)) {
    throw std::invalid_argument(std::string(who) + ": dead or unknown node " +
                                std::to_string(v));
  }
}

void DynamicGraph::require_live_edge(EdgeId e, const char* who) const {
  if (!edge_alive(e)) {
    throw std::invalid_argument(std::string(who) + ": dead or unknown edge " +
                                std::to_string(e));
  }
}

Edge DynamicGraph::edge(EdgeId e) const {
  require_live_edge(e, "DynamicGraph::edge");
  return {edges_[e].u, edges_[e].v};
}

double DynamicGraph::weight(EdgeId e) const {
  require_live_edge(e, "DynamicGraph::weight");
  return edges_[e].weight;
}

NodeId DynamicGraph::other_endpoint(EdgeId e, NodeId v) const {
  require_live_edge(e, "DynamicGraph::other_endpoint");
  return edges_[e].u == v ? edges_[e].v : edges_[e].u;
}

EdgeId DynamicGraph::find_edge(NodeId u, NodeId v) const {
  if (!node_alive(u) || !node_alive(v)) return kInvalidEdge;
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto& nbrs = adj_[u];
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Arc& a, NodeId target) { return a.to < target; });
  if (it != nbrs.end() && it->to == v) return it->edge;
  return kInvalidEdge;
}

NodeId DynamicGraph::add_vertex() {
  adj_.emplace_back();
  node_alive_.push_back(1);
  ++live_nodes_;
  return static_cast<NodeId>(adj_.size() - 1);
}

void DynamicGraph::remove_vertex(NodeId v) {
  require_live_node(v, "DynamicGraph::remove_vertex");
  // Snapshot the incident edge ids first: delete_edge mutates adj_[v].
  std::vector<EdgeId> incident;
  incident.reserve(adj_[v].size());
  for (const Arc& a : adj_[v]) incident.push_back(a.edge);
  for (EdgeId e : incident) delete_edge(e);
  node_alive_[v] = 0;
  --live_nodes_;
}

void DynamicGraph::arc_insert(NodeId v, Arc a) {
  auto& nbrs = adj_[v];
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), a.to,
      [](const Arc& x, NodeId target) { return x.to < target; });
  nbrs.insert(it, a);
}

void DynamicGraph::arc_erase(NodeId v, NodeId to) {
  auto& nbrs = adj_[v];
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), to,
      [](const Arc& x, NodeId target) { return x.to < target; });
  nbrs.erase(it);
}

EdgeId DynamicGraph::insert_edge(NodeId u, NodeId v, double w) {
  require_live_node(u, "DynamicGraph::insert_edge");
  require_live_node(v, "DynamicGraph::insert_edge");
  if (u == v) {
    throw std::invalid_argument("DynamicGraph::insert_edge: self-loop");
  }
  require_weight(w, "DynamicGraph::insert_edge");
  if (u > v) std::swap(u, v);
  if (find_edge(u, v) != kInvalidEdge) {
    throw std::invalid_argument("DynamicGraph::insert_edge: duplicate edge (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
  }
  EdgeId id;
  if (!free_edges_.empty()) {
    id = free_edges_.back();
    free_edges_.pop_back();
  } else {
    id = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  edges_[id] = {u, v, w, 1};
  arc_insert(u, {v, id});
  arc_insert(v, {u, id});
  ++live_edges_;
  return id;
}

void DynamicGraph::delete_edge(EdgeId e) {
  require_live_edge(e, "DynamicGraph::delete_edge");
  const EdgeRec rec = edges_[e];
  arc_erase(rec.u, rec.v);
  arc_erase(rec.v, rec.u);
  edges_[e].alive = 0;
  free_edges_.push_back(e);
  --live_edges_;
}

void DynamicGraph::set_weight(EdgeId e, double w) {
  require_live_edge(e, "DynamicGraph::set_weight");
  require_weight(w, "DynamicGraph::set_weight");
  edges_[e].weight = w;
}

Snapshot DynamicGraph::snapshot() const {
  Snapshot out;
  out.dynamic_to_node.assign(adj_.size(), kInvalidNode);
  out.node_to_dynamic.reserve(live_nodes_);
  for (NodeId v = 0; v < adj_.size(); ++v) {
    if (!node_alive_[v]) continue;
    out.dynamic_to_node[v] = static_cast<NodeId>(out.node_to_dynamic.size());
    out.node_to_dynamic.push_back(v);
  }
  std::vector<Edge> edges;
  edges.reserve(live_edges_);
  out.edge_to_dynamic.reserve(live_edges_);
  out.weights.reserve(live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edges_[e].alive) continue;
    edges.push_back(
        {out.dynamic_to_node[edges_[e].u], out.dynamic_to_node[edges_[e].v]});
    out.edge_to_dynamic.push_back(e);
    out.weights.push_back(edges_[e].weight);
  }
  out.graph = Graph(static_cast<NodeId>(out.node_to_dynamic.size()),
                    std::move(edges));
  return out;
}

void DynamicGraph::check_invariants() const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("DynamicGraph::check_invariants: " + what);
  };
  if (adj_.size() != node_alive_.size()) fail("node table sizes");
  NodeId live_n = 0;
  std::size_t arc_count = 0;
  for (NodeId v = 0; v < adj_.size(); ++v) {
    if (node_alive_[v]) ++live_n;
    if (!node_alive_[v] && !adj_[v].empty()) {
      fail("dead node " + std::to_string(v) + " has arcs");
    }
    arc_count += adj_[v].size();
    for (std::size_t i = 0; i < adj_[v].size(); ++i) {
      const Arc& a = adj_[v][i];
      if (i > 0 && adj_[v][i - 1].to >= a.to) {
        fail("incidence of node " + std::to_string(v) + " not sorted");
      }
      if (a.edge >= edges_.size() || !edges_[a.edge].alive) {
        fail("arc to dead edge " + std::to_string(a.edge));
      }
      const EdgeRec& rec = edges_[a.edge];
      const NodeId expect_to = rec.u == v ? rec.v : rec.u;
      if ((rec.u != v && rec.v != v) || expect_to != a.to) {
        fail("arc/edge endpoint mismatch at edge " + std::to_string(a.edge));
      }
    }
  }
  if (live_n != live_nodes_) fail("live node count");
  EdgeId live_m = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edges_[e].alive) continue;
    ++live_m;
    const EdgeRec& rec = edges_[e];
    if (rec.u >= rec.v) fail("edge " + std::to_string(e) + " not normalized");
    if (!node_alive(rec.u) || !node_alive(rec.v)) {
      fail("edge " + std::to_string(e) + " touches a dead node");
    }
    if (!(rec.weight > 0.0) || !std::isfinite(rec.weight)) {
      fail("edge " + std::to_string(e) + " has a bad weight");
    }
    // The mirror arcs must both exist and name this edge.
    if (find_edge(rec.u, rec.v) != e) {
      fail("find_edge misses edge " + std::to_string(e));
    }
  }
  if (live_m != live_edges_) fail("live edge count");
  if (arc_count != 2 * static_cast<std::size_t>(live_edges_)) {
    fail("arc count != 2 * live edges");
  }
  if (free_edges_.size() != edges_.size() - live_edges_) {
    fail("free list size");
  }
}

}  // namespace lps::dynamic
