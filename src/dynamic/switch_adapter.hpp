// Bridge from the switch workload (src/switch) to the dynamic matching
// engine: VOQ traffic replayed as an update stream.
//
// The static schedulers rebuild their matching from scratch every
// timeslot even though consecutive slots differ by a handful of
// arrivals/departures. Here the request graph lives in a DynamicMatcher
// instead: a VOQ (input i, output j) going nonempty inserts the edge
// (i, ports + j), a VOQ draining to empty deletes it, and each slot the
// crossbar simply *serves the maintained matching* — the previous
// slot's matching is reused and only locally repaired, which is the
// whole point of the subsystem.
//
// The replay is closed-loop (service depends on the maintained
// matching, which depends on past service), so it drives the matcher
// directly rather than pre-materializing an UpdateTrace.
#pragma once

#include <cstdint>

#include "dynamic/matcher.hpp"
#include "switch/traffic.hpp"

namespace lps::dynamic {

struct SwitchReplayConfig {
  std::size_t ports = 16;
  std::uint64_t slots = 20000;
  double load = 0.8;
  TrafficPattern pattern = TrafficPattern::kUniform;
  std::uint64_t seed = 1;
};

struct SwitchReplayMetrics {
  std::uint64_t arrived = 0;
  std::uint64_t delivered = 0;
  /// Graph updates the traffic induced (VOQ empty/nonempty edges).
  std::uint64_t updates = 0;
  /// Matched-edge flips across the whole replay (from the maintainer).
  std::uint64_t recourse = 0;
  /// delivered / arrived over the whole run (1.0 = the switch kept up).
  double normalized_throughput = 0.0;
  /// Mean matched pairs served per slot.
  double mean_matching = 0.0;
  double updates_per_slot = 0.0;
  double recourse_per_update = 0.0;
};

/// Make the bipartite port graph a replay expects: 2 * ports live
/// vertices (inputs 0..ports-1, outputs ports..2*ports-1), no edges.
DynamicGraph make_port_graph(std::size_t ports);

/// Replay `config.slots` slots of Bernoulli VOQ traffic through
/// `matcher`, whose graph must be an edgeless port graph for
/// `config.ports` (throws std::invalid_argument otherwise).
SwitchReplayMetrics replay_switch(DynamicMatcher& matcher,
                                  const SwitchReplayConfig& config);

}  // namespace lps::dynamic
