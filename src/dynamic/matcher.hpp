// Fully dynamic matching maintainers: ingest an ordered update stream
// and keep an approximate matching alive with bounded per-update work,
// instead of re-solving from scratch after every change.
//
// Two maintainers behind one interface:
//
//  * greedy  — maximality-guarded greedy (GreedyDynamicMatcher). The
//    invariant is that the matching is always *maximal*, so its matched
//    vertices form a vertex cover and the matching is a 2-approximation
//    at every instant. Inserts are O(1) (match iff both endpoints
//    free); deleting a matched edge rescans the two freed endpoints in
//    O(deg) for new partners, which is exactly the work needed to
//    restore the cover.
//
//  * repair  — lazy maintainer with periodic repair
//    (RepairDynamicMatcher). Updates do only O(1) bookkeeping (cheap
//    greedy matches on insert, unmatch on delete) and mark the touched
//    vertices dirty; every `interval` updates a repair pass runs
//    bounded alternating-path searches (length <= 2k-1, k =
//    ceil(1/eps)-1) from the dirty free vertices, the local moves that
//    push the matching back toward (1 - eps) — the LCA observation that
//    answers need only be recomputed in the locally affected region.
//    When churn has dirtied more than `rebuild_frac` of the graph the
//    pass escalates: it snapshots and re-solves through the existing
//    solver registry (`rebuild=<solver>`), adopting the result.
//
//  * scratch — the baseline the other two are measured against: after
//    every update, snapshot and re-solve through the registry
//    (`solver=<name>`, default greedy_mcm). Its per-update cost is a
//    full solve; benches sample it rather than stream through it.
//
// The headline metric is *recourse*: matched-edge flips (an edge
// entering or leaving the matching) per update. A scratch re-solve can
// flip everything; the maintainers flip O(1) amortized.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/stream.hpp"

namespace lps::dynamic {

struct MaintainerStats {
  std::uint64_t updates = 0;
  /// Matched-edge flips: every edge that enters or leaves the matching
  /// counts one (an augmenting path of k edges costs k flips).
  std::uint64_t recourse = 0;
  std::uint64_t repairs = 0;        // repair passes run (repair only)
  std::uint64_t augmentations = 0;  // augmenting paths applied
  std::uint64_t rebuilds = 0;       // registry re-solves (repair/scratch)
};

class DynamicMatcher {
 public:
  explicit DynamicMatcher(DynamicGraph g);
  virtual ~DynamicMatcher() = default;

  virtual std::string name() const = 0;

  /// Apply one update: mutate the graph, then restore the maintainer's
  /// matching invariant. Throws std::invalid_argument on updates that
  /// do not apply (deleting an absent edge, dead vertices, ...).
  void apply(const Update& update);
  void apply_trace(const UpdateTrace& trace);

  /// Finalize pending lazy work (the repair maintainer runs a last
  /// repair pass); no-op for eager maintainers.
  virtual void flush() {}

  const DynamicGraph& graph() const noexcept { return g_; }
  const MaintainerStats& stats() const noexcept { return stats_; }

  std::size_t matching_size() const noexcept { return size_; }
  bool is_free(NodeId v) const { return match_[v] == kInvalidEdge; }
  EdgeId matched_edge(NodeId v) const { return match_[v]; }
  NodeId mate(NodeId v) const {
    return is_free(v) ? kInvalidNode : g_.other_endpoint(match_[v], v);
  }
  bool in_matching(EdgeId e) const {
    return g_.edge_alive(e) && match_[g_.edge(e).u] == e;
  }
  /// Matched edge ids, each once, ascending.
  std::vector<EdgeId> matching_edges() const;

  /// Full audit: every matched edge live, both endpoints agreeing, no
  /// shared endpoints, size consistent. O(n). Throws std::logic_error.
  void check_matching() const;

 protected:
  // Update hooks; the graph mutation itself is owned by apply().
  virtual void on_insert(EdgeId e) = 0;
  /// Called after edge (u, v) was deleted; was_matched tells whether
  /// apply() had to unmatch it first.
  virtual void on_deleted(NodeId u, NodeId v, bool was_matched) = 0;
  /// Called after vertex v (and its incident edges) were removed;
  /// former_mate is the vertex freed by the removal (or kInvalidNode).
  virtual void on_vertex_removed(NodeId v, NodeId former_mate) = 0;
  /// Called after a removed vertex came back to life (isolated; its
  /// edges re-enter as ordinary inserts). Default: nothing to do — a
  /// degree-0 vertex never violates a matching invariant.
  virtual void on_vertex_revived(NodeId) {}
  /// Called once per update after the kind-specific hook (lazy
  /// maintainers schedule periodic work here).
  virtual void after_update() {}

  DynamicGraph& mutable_graph() noexcept { return g_; }

  /// Counted mutations (stats_.recourse tracks each flip).
  void match(EdgeId e);
  void unmatch(EdgeId e);
  /// Uncounted mutations for tentative search steps; the caller settles
  /// the recourse bill for the net change itself.
  void raw_match(EdgeId e);
  void raw_unmatch(EdgeId e);

  /// Snapshot, solve through the registry, and adopt the result as the
  /// current matching; recourse is billed as the symmetric difference.
  /// Counts one rebuild in stats_.
  void adopt_registry_solution(const std::string& solver, std::uint64_t seed);

  MaintainerStats stats_;

 private:
  DynamicGraph g_;
  std::vector<EdgeId> match_;  // per vertex slot; kInvalidEdge = free
  std::size_t size_ = 0;
};

class GreedyDynamicMatcher final : public DynamicMatcher {
 public:
  explicit GreedyDynamicMatcher(DynamicGraph g);
  std::string name() const override { return "greedy"; }

 protected:
  void on_insert(EdgeId e) override;
  void on_deleted(NodeId u, NodeId v, bool was_matched) override;
  void on_vertex_removed(NodeId v, NodeId former_mate) override;

 private:
  /// Scan v's incidence for a free partner and match the first; the
  /// O(deg) move that restores maximality around a freed vertex.
  void rematch_scan(NodeId v);
};

class RepairDynamicMatcher final : public DynamicMatcher {
 public:
  struct Options {
    double eps = 0.2;          // target (1 - eps); path cap 2k-1
    std::uint64_t interval = 32;  // updates between repair passes
    /// Registry solver for the escalation re-solve ("" = never).
    std::string rebuild;
    double rebuild_frac = 0.25;  // dirty fraction triggering escalation
  };

  RepairDynamicMatcher(DynamicGraph g, Options options);
  std::string name() const override { return "repair"; }
  void flush() override { repair(); }

  int path_cap() const noexcept { return path_cap_; }

 protected:
  void on_insert(EdgeId e) override;
  void on_deleted(NodeId u, NodeId v, bool was_matched) override;
  void on_vertex_removed(NodeId v, NodeId former_mate) override;
  /// Crash/recover batches are dirty-sets: a revived vertex's
  /// neighborhood is exactly where augmenting paths reopen.
  void on_vertex_revived(NodeId v) override;
  void after_update() override;

 private:
  void mark_dirty(NodeId v);
  void repair();
  /// Re-solve through the registry and adopt the result (recourse =
  /// symmetric difference).
  void rebuild_via_registry();
  /// Alternating-path DFS from free vertex u with at most `remaining`
  /// edges; applies the path and returns its length, or -1.
  int augment_from(NodeId u, int remaining);

  Options options_;
  int path_cap_;
  std::uint64_t since_repair_ = 0;
  std::vector<NodeId> dirty_;
  std::vector<std::uint8_t> dirty_flag_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_cur_ = 0;
};

/// Baseline: re-solve from scratch through the solver registry after
/// every update. `solver` must name a registered cardinality solver.
class ScratchRematchMatcher final : public DynamicMatcher {
 public:
  ScratchRematchMatcher(DynamicGraph g, std::string solver,
                        std::uint64_t seed);
  std::string name() const override { return "scratch"; }

 protected:
  void on_insert(EdgeId e) override;
  void on_deleted(NodeId u, NodeId v, bool was_matched) override;
  void on_vertex_removed(NodeId v, NodeId former_mate) override;

 private:
  void resolve();

  std::string solver_;
  std::uint64_t seed_;
};

/// Factory: "greedy" | "repair" | "scratch", configured by the same kv
/// grammar as solver configs. Keys: repair accepts eps, interval,
/// rebuild, rebuild_frac; scratch accepts solver, seed. Unknown names
/// and keys throw std::invalid_argument.
std::unique_ptr<DynamicMatcher> make_matcher(
    const std::string& name, DynamicGraph g,
    const std::map<std::string, std::string>& config = {});

}  // namespace lps::dynamic
