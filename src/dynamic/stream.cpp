#include "dynamic/stream.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dynamic/matcher.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace lps::dynamic {

const char* to_string(UpdateKind k) {
  switch (k) {
    case UpdateKind::kInsertEdge: return "insert_edge";
    case UpdateKind::kDeleteEdge: return "delete_edge";
    case UpdateKind::kAddVertex: return "add_vertex";
    case UpdateKind::kRemoveVertex: return "remove_vertex";
    case UpdateKind::kSetWeight: return "set_weight";
    case UpdateKind::kReviveVertex: return "revive_vertex";
  }
  return "?";
}

namespace {

std::uint64_t pair_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Generator-side mirror of the graph a consumer will reconstruct from
/// the trace: guarantees every emitted update is applicable (inserts of
/// absent edges between live vertices, deletes of live edges) and
/// supports the uniform random picks the families need.
class Shadow {
 public:
  explicit Shadow(NodeId n) : g_(n) {
    live_nodes_.reserve(n);
    node_pos_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      node_pos_.push_back(live_nodes_.size());
      live_nodes_.push_back(v);
    }
  }

  const DynamicGraph& graph() const { return g_; }
  std::size_t live_edge_count() const { return live_.size(); }
  std::size_t live_node_count() const { return live_nodes_.size(); }

  NodeId random_live_node(Rng& rng) const {
    return live_nodes_[rng.below(live_nodes_.size())];
  }

  Edge random_live_edge(Rng& rng) const {
    return live_[rng.below(live_.size())];
  }

  /// Uniformly random absent edge between live vertices, or nullopt
  /// when `attempts` rejection draws all collide (dense graph).
  std::optional<Edge> random_absent_edge(Rng& rng, int attempts = 64) const {
    if (live_nodes_.size() < 2) return std::nullopt;
    for (int i = 0; i < attempts; ++i) {
      const NodeId u = random_live_node(rng);
      const NodeId v = random_live_node(rng);
      if (u == v || g_.find_edge(u, v) != kInvalidEdge) continue;
      return Edge{std::min(u, v), std::max(u, v)};
    }
    return std::nullopt;
  }

  void insert(NodeId u, NodeId v, double w) {
    g_.insert_edge(u, v, w);
    index_[pair_key(u, v)] = live_.size();
    live_.push_back({std::min(u, v), std::max(u, v)});
  }

  void erase(NodeId u, NodeId v) {
    g_.delete_edge(g_.find_edge(u, v));
    drop_from_live(u, v);
  }

  NodeId add_vertex() {
    const NodeId v = g_.add_vertex();
    node_pos_.push_back(live_nodes_.size());
    live_nodes_.push_back(v);
    return v;
  }

  /// Removes the vertex; returns its former incident edges (the trace
  /// consumer implicitly deletes them too, so the shadow must).
  std::vector<Edge> remove_vertex(NodeId v) {
    std::vector<Edge> incident;
    for (const Arc a : g_.neighbors(v)) {
      incident.push_back({std::min(v, a.to), std::max(v, a.to)});
    }
    g_.remove_vertex(v);
    for (const Edge& e : incident) drop_from_live(e.u, e.v);
    // Swap-with-back through the position index (same O(1) scheme as
    // drop_from_live uses for edges).
    const std::size_t pos = node_pos_[v];
    live_nodes_[pos] = live_nodes_.back();
    node_pos_[live_nodes_[pos]] = pos;
    live_nodes_.pop_back();
    return incident;
  }

 private:
  void drop_from_live(NodeId u, NodeId v) {
    const auto it = index_.find(pair_key(u, v));
    const std::size_t pos = it->second;
    index_.erase(it);
    if (pos + 1 != live_.size()) {
      live_[pos] = live_.back();
      index_[pair_key(live_[pos].u, live_[pos].v)] = pos;
    }
    live_.pop_back();
  }

  DynamicGraph g_;
  std::vector<Edge> live_;                            // live edges, unordered
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> live_ pos
  std::vector<NodeId> live_nodes_;
  std::vector<std::size_t> node_pos_;  // node id -> live_nodes_ position
};

struct WeightModel {
  double lo = 1.0;
  double hi = 1.0;
  double draw(Rng& rng) const {
    return lo == hi ? lo : lo + (hi - lo) * rng.uniform01();
  }
};

WeightModel weight_model(SpecArgs& args) {
  WeightModel w;
  w.lo = args.get_double("wlo", 1.0);
  w.hi = args.get_double("whi", w.lo);
  if (!(w.lo > 0.0) || w.hi < w.lo) {
    throw std::invalid_argument("update stream: need 0 < wlo <= whi");
  }
  return w;
}

void emit_insert(StreamSpec& out, Shadow& shadow, NodeId u, NodeId v,
                 double w) {
  shadow.insert(u, v, w);
  out.trace.push_back({UpdateKind::kInsertEdge, std::min(u, v),
                       std::max(u, v), w});
}

void emit_delete(StreamSpec& out, Shadow& shadow, NodeId u, NodeId v) {
  shadow.erase(u, v);
  out.trace.push_back(
      {UpdateKind::kDeleteEdge, std::min(u, v), std::max(u, v), 1.0});
}

/// `m0` initial inserts shared by churn/adversarial.
void build_initial(StreamSpec& out, Shadow& shadow, std::uint64_t m0,
                   const WeightModel& w, Rng& rng) {
  for (std::uint64_t i = 0; i < m0; ++i) {
    const auto e = shadow.random_absent_edge(rng);
    if (!e.has_value()) {
      throw std::invalid_argument(
          "update stream: m0 too dense for the vertex count");
    }
    emit_insert(out, shadow, e->u, e->v, w.draw(rng));
  }
}

StreamSpec churn_stream(SpecArgs& args, Rng& rng) {
  const NodeId n = static_cast<NodeId>(args.require_int("n"));
  const std::uint64_t m0 = static_cast<std::uint64_t>(args.get_int("m0", 0));
  const std::uint64_t updates =
      static_cast<std::uint64_t>(args.require_int("updates"));
  const double insert_frac = args.get_double("insert", 0.5);
  const double vertex_frac = args.get_double("vertex", 0.0);
  const double reweight_frac = args.get_double("reweight", 0.0);
  const WeightModel w = weight_model(args);
  args.check_all_used();
  if (n < 2) throw std::invalid_argument("churn: need n >= 2");

  StreamSpec out;
  out.initial_nodes = n;
  out.trace.reserve(m0 + updates);
  Shadow shadow(n);
  build_initial(out, shadow, m0, w, rng);
  out.bootstrap = out.trace.size();
  for (std::uint64_t i = 0; i < updates; ++i) {
    const double roll = rng.uniform01();
    if (roll < vertex_frac) {
      // Split vertex ops evenly between add and remove; removals keep a
      // floor of live vertices so edge ops stay feasible.
      if (rng.coin() || shadow.live_node_count() <= std::max<NodeId>(4, n / 4)) {
        shadow.add_vertex();
        out.trace.push_back({UpdateKind::kAddVertex});
      } else {
        const NodeId v = shadow.random_live_node(rng);
        shadow.remove_vertex(v);
        out.trace.push_back({UpdateKind::kRemoveVertex, v});
      }
      continue;
    }
    if (roll < vertex_frac + reweight_frac && shadow.live_edge_count() > 0) {
      const Edge e = shadow.random_live_edge(rng);
      out.trace.push_back({UpdateKind::kSetWeight, e.u, e.v, w.draw(rng)});
      continue;
    }
    const bool do_insert =
        shadow.live_edge_count() == 0 || rng.uniform01() < insert_frac;
    if (do_insert) {
      const auto e = shadow.random_absent_edge(rng);
      if (e.has_value()) {
        emit_insert(out, shadow, e->u, e->v, w.draw(rng));
        continue;
      }
      // Graph saturated: fall through to a delete.
    }
    const Edge e = shadow.random_live_edge(rng);
    emit_delete(out, shadow, e.u, e.v);
  }
  return out;
}

StreamSpec window_stream(SpecArgs& args, Rng& rng) {
  const NodeId n = static_cast<NodeId>(args.require_int("n"));
  const std::uint64_t updates =
      static_cast<std::uint64_t>(args.require_int("updates"));
  const std::uint64_t window =
      static_cast<std::uint64_t>(args.require_int("window"));
  const WeightModel w = weight_model(args);
  args.check_all_used();
  if (n < 2 || window == 0) {
    throw std::invalid_argument("window: need n >= 2 and window >= 1");
  }
  StreamSpec out;
  out.initial_nodes = n;
  Shadow shadow(n);
  std::deque<Edge> fifo;
  for (std::uint64_t i = 0; i < updates; ++i) {
    const auto e = shadow.random_absent_edge(rng);
    if (e.has_value()) {
      emit_insert(out, shadow, e->u, e->v, w.draw(rng));
      fifo.push_back(*e);
    }
    while (fifo.size() > window) {
      const Edge old = fifo.front();
      fifo.pop_front();
      emit_delete(out, shadow, old.u, old.v);
    }
  }
  return out;
}

StreamSpec pa_stream(SpecArgs& args, Rng& rng) {
  const NodeId n0 = static_cast<NodeId>(args.require_int("n0"));
  const std::uint64_t updates =
      static_cast<std::uint64_t>(args.require_int("updates"));
  const int attach = static_cast<int>(args.get_int("attach", 2));
  const WeightModel w = weight_model(args);
  args.check_all_used();
  if (n0 < 2 || attach < 1) {
    throw std::invalid_argument("pa: need n0 >= 2 and attach >= 1");
  }
  StreamSpec out;
  out.initial_nodes = n0;
  Shadow shadow(n0);
  // Endpoint pool for degree+1-proportional sampling: every vertex once
  // (the +1 smoothing) plus each edge endpoint once per incidence.
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < n0; ++v) pool.push_back(v);
  for (std::uint64_t i = 0; i < updates; ++i) {
    const NodeId v = shadow.add_vertex();
    out.trace.push_back({UpdateKind::kAddVertex});
    pool.push_back(v);
    for (int a = 0; a < attach; ++a) {
      NodeId target = kInvalidNode;
      for (int tries = 0; tries < 32; ++tries) {
        const NodeId cand = pool[rng.below(pool.size())];
        if (cand != v && shadow.graph().node_alive(cand) &&
            shadow.graph().find_edge(v, cand) == kInvalidEdge) {
          target = cand;
          break;
        }
      }
      if (target == kInvalidNode) continue;
      emit_insert(out, shadow, v, target, w.draw(rng));
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return out;
}

StreamSpec adversarial_stream(SpecArgs& args, Rng& rng) {
  const NodeId n = static_cast<NodeId>(args.require_int("n"));
  const std::uint64_t m0 = static_cast<std::uint64_t>(args.get_int("m0", 0));
  const std::uint64_t updates =
      static_cast<std::uint64_t>(args.require_int("updates"));
  const double insert_frac = args.get_double("insert", 0.5);
  const WeightModel w = weight_model(args);
  args.check_all_used();
  if (n < 2) throw std::invalid_argument("adversarial: need n >= 2");

  StreamSpec out;
  out.initial_nodes = n;
  Shadow shadow(n);
  // The adversary watches a shadow greedy maintainer and aims every
  // delete at an edge the maintainer currently has matched — the move
  // that forces an O(deg) repair, and repeated, the worst case for
  // recourse. (Maintainers under test are seeded identically, so the
  // greedy one really does hold these edges when the delete lands.)
  GreedyDynamicMatcher victim{DynamicGraph(n)};
  const auto forward = [&](const Update& up) { victim.apply(up); };
  build_initial(out, shadow, m0, w, rng);
  out.bootstrap = out.trace.size();
  for (std::size_t i = 0; i < out.trace.size(); ++i) forward(out.trace[i]);
  for (std::uint64_t i = 0; i < updates; ++i) {
    const bool do_insert =
        shadow.live_edge_count() == 0 || rng.uniform01() < insert_frac;
    if (do_insert) {
      const auto e = shadow.random_absent_edge(rng);
      if (e.has_value()) {
        emit_insert(out, shadow, e->u, e->v, w.draw(rng));
        forward(out.trace.back());
        continue;
      }
    }
    // Pick a matched victim edge by rejection over random live vertices;
    // fall back to any live edge when the matching is tiny.
    Edge target = shadow.random_live_edge(rng);
    for (int tries = 0; tries < 32; ++tries) {
      const NodeId v = shadow.random_live_node(rng);
      if (!victim.is_free(v)) {
        const Edge ed = victim.graph().edge(victim.matched_edge(v));
        target = ed;
        break;
      }
    }
    emit_delete(out, shadow, target.u, target.v);
    forward(out.trace.back());
  }
  return out;
}

}  // namespace

StreamSpec make_update_stream(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string kv =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  SpecArgs args("update stream", family, kv);
  Rng rng(seed);
  if (family == "churn") return churn_stream(args, rng);
  if (family == "window") return window_stream(args, rng);
  if (family == "pa") return pa_stream(args, rng);
  if (family == "adversarial") return adversarial_stream(args, rng);
  throw std::invalid_argument("unknown update stream family '" + family +
                              "' in spec '" + spec +
                              "' (churn | window | pa | adversarial)");
}

}  // namespace lps::dynamic
