// Mutable graph overlay for the fully dynamic matching subsystem —
// now a copy-on-write overlay over the same columnar GraphStore the
// static solvers, the LCA oracles, and the sharded round engine read
// (DESIGN.md §11).
//
// `graph::Graph` is a frozen CSR view: perfect for the solvers, the
// engine, and the oracles, but a serving system sees *changing* traffic
// (edges appearing and disappearing every timeslot in the switch
// workload). DynamicGraph layers mutability on top of the flat base
// columns instead of keeping a second vector-of-vectors copy:
//
//  * Base: a shared_ptr<const GraphStore> — the adjacency rows of every
//    unmodified vertex are read straight from the base columns (zero
//    duplication with any static Graph holding the same store).
//  * Overlay: the first mutation touching a vertex copies its row out
//    of the base into a columnar overlay row (to/edge columns); later
//    mutations edit the overlay in place. Memory grows with churn, not
//    with n.
//  * Edge table: columnar (edge_u_/edge_v_/edge_w_/edge_alive_),
//    seeded from the base store's endpoint columns and extended by
//    inserts; ids are recycled through a free list so unbounded update
//    streams do not grow the table without bound.
//
// The sorted-incidence invariant of the static Graph (each vertex's
// incidence list ascending by neighbor id) is preserved under every
// update, so find_edge stays a binary search and iteration order stays
// canonical across the static/dynamic boundary.
//
// Vertex ids are never reused (a removed vertex's slot stays dead) so
// stream generators can name vertices stably. `snapshot()` compacts the
// live subgraph into a `Graph` (+ weights + id maps) to feed the
// existing solver registry; when the graph is structurally untouched
// since construction the snapshot *shares the base store* — a refcount
// bump instead of an O(n + m) copy. `compact()` folds the overlay back
// into a fresh flat base when churn has accumulated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace lps::dynamic {

/// Entry in a vertex's dynamic incidence list; the same Incidence the
/// static Graph yields (same fields, same sorted-by-neighbor invariant).
using Arc = Incidence;

/// A snapshot plus the id maps back into the DynamicGraph that produced
/// it (snapshot node i == dynamic node node_to_dynamic[i], and likewise
/// for edges). dynamic_to_node is kInvalidNode for dead/unmapped slots.
struct Snapshot {
  Graph graph;
  std::vector<double> weights;          // per snapshot edge id
  std::vector<NodeId> node_to_dynamic;  // snapshot node -> dynamic node
  std::vector<EdgeId> edge_to_dynamic;  // snapshot edge -> dynamic edge
  std::vector<NodeId> dynamic_to_node;  // dynamic node -> snapshot node
  /// True when `graph` shares the dynamic base store (no copy was made).
  bool shared_store = false;
};

class DynamicGraph {
 public:
  DynamicGraph();
  /// Start with `n` live, isolated vertices.
  explicit DynamicGraph(NodeId n);
  /// Seed from a static graph — shares its columnar store (no adjacency
  /// copy); `weights` (when non-null) must have one entry per edge.
  static DynamicGraph from_graph(const Graph& g,
                                 const std::vector<double>* weights = nullptr);

  // ----------------------------------------------------------- shape --
  /// One past the largest vertex id ever allocated (dead slots counted).
  NodeId node_slots() const noexcept {
    return static_cast<NodeId>(node_alive_.size());
  }
  /// One past the largest edge id currently allocatable.
  EdgeId edge_slots() const noexcept {
    return static_cast<EdgeId>(edge_u_.size());
  }
  NodeId num_live_nodes() const noexcept { return live_nodes_; }
  EdgeId num_live_edges() const noexcept { return live_edges_; }

  bool node_alive(NodeId v) const {
    return v < node_alive_.size() && node_alive_[v] != 0;
  }
  bool edge_alive(EdgeId e) const {
    return e < edge_alive_.size() && edge_alive_[e] != 0;
  }

  /// Endpoints of a live edge, normalized u < v (throws on dead ids).
  Edge edge(EdgeId e) const;
  double weight(EdgeId e) const;
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  NodeId degree(NodeId v) const {
    const std::int32_t ov = overlay_of_[v];
    return ov >= 0 ? static_cast<NodeId>(overlay_[ov].to.size())
                   : base_->degree(v);
  }
  /// Sorted-by-neighbor incidence row: the base store's columns for
  /// untouched vertices, the overlay row otherwise.
  NeighborView neighbors(NodeId v) const {
    const std::int32_t ov = overlay_of_[v];
    if (ov < 0) return base_->row(v);
    const OverlayRow& row = overlay_[ov];
    return {row.to.data(), row.edge.data(), row.to.size()};
  }

  /// Edge id connecting u and v, or kInvalidEdge. Binary search over
  /// the smaller endpoint's row: O(log min degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  // --------------------------------------------------------- updates --
  /// New live isolated vertex; ids are never recycled.
  NodeId add_vertex();
  /// Deletes all incident edges, then kills the vertex. O(sum of
  /// endpoint degrees). Throws std::invalid_argument on dead ids.
  void remove_vertex(NodeId v);
  /// Bring a removed vertex back to life under its old id, isolated
  /// (remove_vertex deleted its incident edges; re-inserting them is
  /// the caller's recovery protocol — see faults/recovery.hpp). O(1).
  /// Throws std::invalid_argument on unallocated or live ids.
  void revive_vertex(NodeId v);
  /// Insert (u, v) with weight `w` (> 0, finite). O(deg(u) + deg(v)).
  /// Throws std::invalid_argument on self-loops, dead endpoints,
  /// duplicate edges, or bad weights. Edge ids are recycled.
  EdgeId insert_edge(NodeId u, NodeId v, double w = 1.0);
  /// Delete a live edge by id. O(deg(u) + deg(v)).
  void delete_edge(EdgeId e);
  /// Re-weight a live edge (w > 0, finite). Does not dirty the
  /// structure (snapshot sharing stays possible).
  void set_weight(EdgeId e, double w);

  // --------------------------------------------------------- bridges --
  /// Compact the live subgraph into a static Graph + weights + id maps
  /// (solver registry food). O(live n + live m) — except when the graph
  /// is structurally untouched since from_graph(), where the snapshot
  /// shares the base store and only the weight column is copied.
  Snapshot snapshot() const;

  /// Fold the overlay back into a fresh flat base store (identity ids,
  /// dead vertices become empty rows). O(n + m); call when churn has
  /// accumulated and read-heavy phases are coming.
  void compact();

  /// Number of vertices whose rows currently live in the overlay (0
  /// right after construction, from_graph, or compact()).
  std::size_t overlay_rows() const noexcept { return overlay_live_; }

  /// True while snapshot() can share the base store (no structural
  /// mutation since from_graph on a store with endpoint columns).
  bool structurally_pristine() const noexcept {
    return pristine_ && base_->num_edges() == live_edges_;
  }

  /// Full structural audit: mirror arcs, sorted incidence, live counts,
  /// edge table consistency, overlay bookkeeping. O(n + m); the soak
  /// tests call this after every update. Throws std::logic_error naming
  /// the violation.
  void check_invariants() const;

 private:
  struct OverlayRow {
    std::vector<NodeId> to;
    std::vector<EdgeId> edge;
  };

  void require_live_node(NodeId v, const char* who) const;
  void require_live_edge(EdgeId e, const char* who) const;
  /// Copy v's base row into the overlay on first mutation; returns the
  /// overlay row index.
  std::int32_t materialize(NodeId v);
  /// Insert {to, edge} into v's (overlay) row / remove it. O(deg(v)).
  void arc_insert(NodeId v, NodeId to, EdgeId e);
  void arc_erase(NodeId v, NodeId to);

  std::shared_ptr<const GraphStore> base_;
  // Columnar edge table (parallel arrays, id-indexed, recycled).
  std::vector<NodeId> edge_u_;
  std::vector<NodeId> edge_v_;
  std::vector<double> edge_w_;
  std::vector<std::uint8_t> edge_alive_;
  std::vector<EdgeId> free_edges_;  // dead edge ids available for reuse

  std::vector<std::uint8_t> node_alive_;
  std::vector<std::int32_t> overlay_of_;  // node -> overlay row or -1
  std::vector<OverlayRow> overlay_;
  std::size_t overlay_live_ = 0;

  NodeId live_nodes_ = 0;
  EdgeId live_edges_ = 0;
  bool pristine_ = true;  // no structural mutation since from_graph
};

}  // namespace lps::dynamic
