// Mutable graph overlay for the fully dynamic matching subsystem.
//
// `graph::Graph` is a frozen CSR snapshot: perfect for the solvers, the
// engine, and the oracles, but a serving system sees *changing* traffic
// (edges appearing and disappearing every timeslot in the switch
// workload). DynamicGraph is the mutable counterpart: adjacency lists
// that support O(deg) edge insertion/deletion and vertex addition/
// removal while preserving the sorted-incidence invariant the static
// Graph documents (each vertex's incidence list ascending by neighbor
// id), so find_edge stays a binary search and iteration order stays
// canonical across the static/dynamic boundary.
//
// Edge ids are recycled through a free list so unbounded update streams
// do not grow the edge table without bound; vertex ids are never reused
// (a removed vertex's slot stays dead) so stream generators can name
// vertices stably. `snapshot()` compacts the live subgraph into a
// `Graph` (+ weights + id maps) to feed the existing solver registry —
// the bridge the periodic-repair maintainer and the solve-from-scratch
// baselines cross.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lps::dynamic {

/// Entry in a vertex's dynamic incidence list; mirrors Graph::Incidence
/// (same fields, same sorted-by-neighbor invariant).
struct Arc {
  NodeId to;
  EdgeId edge;
};

/// A snapshot plus the id maps back into the DynamicGraph that produced
/// it (snapshot node i == dynamic node node_to_dynamic[i], and likewise
/// for edges). dynamic_to_node is kInvalidNode for dead/unmapped slots.
struct Snapshot {
  Graph graph;
  std::vector<double> weights;          // per snapshot edge id
  std::vector<NodeId> node_to_dynamic;  // snapshot node -> dynamic node
  std::vector<EdgeId> edge_to_dynamic;  // snapshot edge -> dynamic edge
  std::vector<NodeId> dynamic_to_node;  // dynamic node -> snapshot node
};

class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Start with `n` live, isolated vertices.
  explicit DynamicGraph(NodeId n);
  /// Seed from a static graph (all vertices/edges live, ids preserved);
  /// `weights` (when non-null) must have one entry per edge.
  static DynamicGraph from_graph(const Graph& g,
                                 const std::vector<double>* weights = nullptr);

  // ----------------------------------------------------------- shape --
  /// One past the largest vertex id ever allocated (dead slots counted).
  NodeId node_slots() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  /// One past the largest edge id currently allocatable.
  EdgeId edge_slots() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }
  NodeId num_live_nodes() const noexcept { return live_nodes_; }
  EdgeId num_live_edges() const noexcept { return live_edges_; }

  bool node_alive(NodeId v) const {
    return v < adj_.size() && node_alive_[v] != 0;
  }
  bool edge_alive(EdgeId e) const {
    return e < edges_.size() && edges_[e].alive != 0;
  }

  /// Endpoints of a live edge, normalized u < v (throws on dead ids).
  Edge edge(EdgeId e) const;
  double weight(EdgeId e) const;
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(adj_[v].size());
  }
  /// Sorted-by-neighbor incidence list (the PR 3 invariant, maintained
  /// under every update).
  std::span<const Arc> neighbors(NodeId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  /// Edge id connecting u and v, or kInvalidEdge. Binary search over
  /// the smaller endpoint's list: O(log min degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  // --------------------------------------------------------- updates --
  /// New live isolated vertex; ids are never recycled.
  NodeId add_vertex();
  /// Deletes all incident edges, then kills the vertex. O(sum of
  /// endpoint degrees). Throws std::invalid_argument on dead ids.
  void remove_vertex(NodeId v);
  /// Insert (u, v) with weight `w` (> 0, finite). O(deg(u) + deg(v)).
  /// Throws std::invalid_argument on self-loops, dead endpoints,
  /// duplicate edges, or bad weights. Edge ids are recycled.
  EdgeId insert_edge(NodeId u, NodeId v, double w = 1.0);
  /// Delete a live edge by id. O(deg(u) + deg(v)).
  void delete_edge(EdgeId e);
  /// Re-weight a live edge (w > 0, finite).
  void set_weight(EdgeId e, double w);

  // --------------------------------------------------------- bridges --
  /// Compact the live subgraph into a static Graph + weights + id maps
  /// (solver registry food). O(live n + live m).
  Snapshot snapshot() const;

  /// Full structural audit: mirror arcs, sorted incidence, live counts,
  /// edge table consistency. O(n + m); the soak tests call this after
  /// every update. Throws std::logic_error naming the violation.
  void check_invariants() const;

 private:
  void require_live_node(NodeId v, const char* who) const;
  void require_live_edge(EdgeId e, const char* who) const;
  /// Insert {to, edge} into v's sorted list / remove it. O(deg(v)).
  void arc_insert(NodeId v, Arc a);
  void arc_erase(NodeId v, NodeId to);

  struct EdgeRec {
    NodeId u = kInvalidNode;  // normalized u < v while alive
    NodeId v = kInvalidNode;
    double weight = 1.0;
    std::uint8_t alive = 0;
  };

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::uint8_t> node_alive_;
  std::vector<EdgeRec> edges_;
  std::vector<EdgeId> free_edges_;  // dead edge ids available for reuse
  NodeId live_nodes_ = 0;
  EdgeId live_edges_ = 0;
};

}  // namespace lps::dynamic
