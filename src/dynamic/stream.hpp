// Update streams: the input language of the dynamic matching engine.
//
// An UpdateTrace is an ordered list of graph mutations addressed by
// endpoints (not edge ids — ids are internal to DynamicGraph and get
// recycled). Generators produce seeded, deterministic traces covering
// the churn regimes a serving system sees:
//
//   churn:n=1024,m0=2048,updates=10000[,insert=0.5][,vertex=0.02]
//          [,reweight=0][,wlo=1,whi=1]
//       uniform edge churn over a fixed vertex set: each op inserts a
//       uniformly random absent edge (prob `insert`) or deletes a
//       uniformly random live edge; `vertex` diverts that fraction of
//       ops to add_vertex/remove_vertex pairs, `reweight` to weight
//       changes. The trace starts with m0 inserts building the initial
//       graph.
//   window:n=4096,updates=20000,window=4096[,wlo,whi]
//       sliding-window stream: every op inserts a fresh random edge and
//       the oldest edge beyond the window is deleted (FIFO) — the
//       classic streaming model where edge lifetime is bounded.
//   pa:n0=16,updates=5000,attach=2[,wlo,whi]
//       preferential attachment: each op adds a vertex and `attach`
//       edges whose endpoints are sampled proportional to degree+1 —
//       grows hubs, the adversary of O(deg) update bounds.
//   adversarial:n=256,m0=512,updates=10000[,insert=0.5]
//       delete-matched adversary: tracks a shadow greedy maintainer and
//       always deletes an edge the maintainer currently has matched
//       (falling back to any live edge), forcing worst-case recourse.
//
// All families reject unknown keys, mirroring the generator-spec
// grammar of api::make_instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lps::dynamic {

enum class UpdateKind : std::uint8_t {
  kInsertEdge,
  kDeleteEdge,
  kAddVertex,
  kRemoveVertex,
  kSetWeight,
  /// Bring a removed vertex back (isolated) under its old id — the
  /// recover half of a crash/recover flap (faults/recovery.hpp).
  kReviveVertex,
};

const char* to_string(UpdateKind k);

/// One mutation. Edge ops name endpoints (u, v); kRemoveVertex and
/// kReviveVertex name the vertex in `u`; kAddVertex carries no operands
/// (the new vertex gets the next fresh id).
struct Update {
  UpdateKind kind = UpdateKind::kInsertEdge;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double weight = 1.0;  // kInsertEdge / kSetWeight
};

using UpdateTrace = std::vector<Update>;

/// The vertex-id universe a trace starts from: traces assume a
/// DynamicGraph with exactly `initial_nodes` live vertices and no edges.
struct StreamSpec {
  NodeId initial_nodes = 0;
  /// Leading trace entries that merely build the initial graph (the m0
  /// inserts of churn/adversarial). Consumers measuring steady-state
  /// churn throughput should treat trace[0..bootstrap) as warm-up, not
  /// workload; window/pa streams have no warm-up phase (bootstrap = 0).
  std::size_t bootstrap = 0;
  UpdateTrace trace;
};

/// Build a trace from a `family:k=v,...` spec (see header comment).
/// All randomness derives from `seed`. Throws std::invalid_argument on
/// unknown families/keys or infeasible parameters.
StreamSpec make_update_stream(const std::string& spec, std::uint64_t seed);

}  // namespace lps::dynamic
