#include "dynamic/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "api/registry.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace lps::dynamic {

namespace {

/// Resolved once (static ref), recorded per update when metrics are on.
telemetry::Histogram& update_ns_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::global().histogram("dynamic.update_ns");
  return h;
}

}  // namespace

// ------------------------------------------------------ DynamicMatcher --

DynamicMatcher::DynamicMatcher(DynamicGraph g)
    : g_(std::move(g)), match_(g_.node_slots(), kInvalidEdge) {}

void DynamicMatcher::raw_match(EdgeId e) {
  const Edge ed = g_.edge(e);
  if (match_[ed.u] != kInvalidEdge || match_[ed.v] != kInvalidEdge) {
    throw std::logic_error("DynamicMatcher: matching a covered vertex");
  }
  match_[ed.u] = e;
  match_[ed.v] = e;
  ++size_;
}

void DynamicMatcher::raw_unmatch(EdgeId e) {
  const Edge ed = g_.edge(e);
  if (match_[ed.u] != e || match_[ed.v] != e) {
    throw std::logic_error("DynamicMatcher: unmatching a non-matched edge");
  }
  match_[ed.u] = kInvalidEdge;
  match_[ed.v] = kInvalidEdge;
  --size_;
}

void DynamicMatcher::match(EdgeId e) {
  raw_match(e);
  ++stats_.recourse;
}

void DynamicMatcher::unmatch(EdgeId e) {
  raw_unmatch(e);
  ++stats_.recourse;
}

void DynamicMatcher::apply(const Update& up) {
  const bool tmetrics = telemetry::enabled();
  const std::uint64_t t0 = tmetrics ? telemetry::now_ns() : 0;
  switch (up.kind) {
    case UpdateKind::kInsertEdge: {
      const EdgeId e = g_.insert_edge(up.u, up.v, up.weight);
      on_insert(e);
      break;
    }
    case UpdateKind::kDeleteEdge: {
      const EdgeId e = g_.find_edge(up.u, up.v);
      if (e == kInvalidEdge) {
        throw std::invalid_argument(
            "DynamicMatcher: delete of absent edge (" + std::to_string(up.u) +
            ", " + std::to_string(up.v) + ")");
      }
      const bool was_matched = in_matching(e);
      if (was_matched) unmatch(e);
      const Edge ed = g_.edge(e);
      g_.delete_edge(e);
      on_deleted(ed.u, ed.v, was_matched);
      break;
    }
    case UpdateKind::kAddVertex: {
      g_.add_vertex();
      match_.push_back(kInvalidEdge);
      break;
    }
    case UpdateKind::kRemoveVertex: {
      if (!g_.node_alive(up.u)) {
        throw std::invalid_argument("DynamicMatcher: remove of dead vertex " +
                                    std::to_string(up.u));
      }
      NodeId former_mate = kInvalidNode;
      if (match_[up.u] != kInvalidEdge) {
        former_mate = g_.other_endpoint(match_[up.u], up.u);
        unmatch(match_[up.u]);
      }
      g_.remove_vertex(up.u);
      on_vertex_removed(up.u, former_mate);
      break;
    }
    case UpdateKind::kSetWeight: {
      const EdgeId e = g_.find_edge(up.u, up.v);
      if (e == kInvalidEdge) {
        throw std::invalid_argument(
            "DynamicMatcher: reweight of absent edge (" +
            std::to_string(up.u) + ", " + std::to_string(up.v) + ")");
      }
      g_.set_weight(e, up.weight);
      break;
    }
    case UpdateKind::kReviveVertex: {
      g_.revive_vertex(up.u);  // throws on live/unallocated ids
      on_vertex_revived(up.u);
      break;
    }
  }
  ++stats_.updates;
  after_update();
  if (tmetrics) update_ns_histogram().record(telemetry::now_ns() - t0);
}

void DynamicMatcher::apply_trace(const UpdateTrace& trace) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool ttrace = tracer.recording();
  const std::uint64_t t0 = ttrace ? telemetry::now_ns() : 0;
  for (const Update& up : trace) apply(up);
  if (ttrace) {
    tracer.emit("dynamic.apply_trace", "dynamic", t0,
                telemetry::now_ns() - t0,
                {{"updates", static_cast<double>(trace.size())}});
  }
}

void DynamicMatcher::adopt_registry_solution(const std::string& solver,
                                             std::uint64_t seed) {
  ++stats_.rebuilds;
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool ttrace = tracer.recording();
  const std::uint64_t t0 = ttrace ? telemetry::now_ns() : 0;
  const std::size_t size_before = size_;
  const Snapshot snap = g_.snapshot();
  api::SolverConfig config;
  config.seed(seed);
  const api::SolveResult solved = api::SolverRegistry::global().at(solver).solve(
      api::Instance::unweighted(snap.graph), config);
  std::vector<std::uint8_t> keep(g_.edge_slots(), 0);
  for (const EdgeId e : solved.matching.edge_ids(snap.graph)) {
    keep[snap.edge_to_dynamic[e]] = 1;
  }
  for (const EdgeId e : matching_edges()) {
    if (!keep[e]) unmatch(e);
  }
  for (EdgeId se = 0; se < snap.edge_to_dynamic.size(); ++se) {
    const EdgeId e = snap.edge_to_dynamic[se];
    if (keep[e] && !in_matching(e)) match(e);
  }
  if (ttrace) {
    tracer.emit("dynamic.rebuild", "dynamic", t0, telemetry::now_ns() - t0,
                {{"edges", static_cast<double>(snap.graph.num_edges())},
                 {"size_before", static_cast<double>(size_before)},
                 {"size_after", static_cast<double>(size_)}});
  }
  telemetry::EventLog& elog = telemetry::EventLog::global();
  if (elog.recording()) {
    elog.emit(telemetry::EventKind::kRebuild, stats_.rebuilds, size_before,
              size_);
  }
}

std::vector<EdgeId> DynamicMatcher::matching_edges() const {
  std::vector<EdgeId> out;
  out.reserve(size_);
  for (NodeId v = 0; v < match_.size(); ++v) {
    const EdgeId e = match_[v];
    if (e != kInvalidEdge && g_.edge(e).u == v) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void DynamicMatcher::check_matching() const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("DynamicMatcher::check_matching: " + what);
  };
  if (match_.size() != g_.node_slots()) fail("match table size");
  std::size_t covered = 0;
  for (NodeId v = 0; v < match_.size(); ++v) {
    const EdgeId e = match_[v];
    if (e == kInvalidEdge) continue;
    if (!g_.node_alive(v)) fail("dead vertex " + std::to_string(v) + " matched");
    if (!g_.edge_alive(e)) {
      fail("matched edge " + std::to_string(e) + " is dead");
    }
    const Edge ed = g_.edge(e);
    if (ed.u != v && ed.v != v) {
      fail("vertex " + std::to_string(v) + " matched to a non-incident edge");
    }
    const NodeId other = ed.u == v ? ed.v : ed.u;
    if (match_[other] != e) {
      fail("endpoints of edge " + std::to_string(e) + " disagree");
    }
    ++covered;
  }
  if (covered != 2 * size_) fail("size inconsistent with match table");
}

// ------------------------------------------------- GreedyDynamicMatcher --

GreedyDynamicMatcher::GreedyDynamicMatcher(DynamicGraph g)
    : DynamicMatcher(std::move(g)) {
  // Establish maximality over whatever edges the seed graph carries.
  for (NodeId v = 0; v < graph().node_slots(); ++v) {
    if (graph().node_alive(v) && is_free(v)) rematch_scan(v);
  }
}

void GreedyDynamicMatcher::on_insert(EdgeId e) {
  const Edge ed = graph().edge(e);
  if (is_free(ed.u) && is_free(ed.v)) match(e);
}

void GreedyDynamicMatcher::on_deleted(NodeId u, NodeId v, bool was_matched) {
  // Deleting an unmatched edge cannot break maximality; deleting a
  // matched one frees both endpoints, each of which may now have a free
  // neighbor.
  if (!was_matched) return;
  rematch_scan(u);
  rematch_scan(v);
}

void GreedyDynamicMatcher::on_vertex_removed(NodeId /*v*/, NodeId former_mate) {
  if (former_mate != kInvalidNode) rematch_scan(former_mate);
}

void GreedyDynamicMatcher::rematch_scan(NodeId v) {
  if (!is_free(v)) return;
  for (const Arc a : graph().neighbors(v)) {
    if (is_free(a.to)) {
      match(a.edge);
      return;
    }
  }
}

// ------------------------------------------------- RepairDynamicMatcher --

RepairDynamicMatcher::RepairDynamicMatcher(DynamicGraph g, Options options)
    : DynamicMatcher(std::move(g)), options_(options) {
  if (!(options_.eps > 0.0) || options_.eps >= 1.0) {
    throw std::invalid_argument("repair: eps must be in (0, 1)");
  }
  if (options_.interval == 0) {
    throw std::invalid_argument("repair: interval must be >= 1");
  }
  // No augmenting path of length <= 2k-1 implies a k/(k+1) = (1-eps)
  // approximation; eps picks k = ceil(1/eps) - 1.
  const int k = std::max(1, static_cast<int>(std::ceil(1.0 / options_.eps)) - 1);
  path_cap_ = 2 * k - 1;
  dirty_flag_.assign(graph().node_slots(), 0);
  stamp_.assign(graph().node_slots(), 0);
  // Seed edges are handled like a burst of inserts that was never
  // repaired: greedy-match what's cheap, mark the rest dirty.
  for (NodeId v = 0; v < graph().node_slots(); ++v) {
    if (!graph().node_alive(v)) continue;
    if (is_free(v)) {
      for (const Arc a : graph().neighbors(v)) {
        if (is_free(a.to)) {
          match(a.edge);
          break;
        }
      }
    }
    if (is_free(v) && graph().degree(v) > 0) mark_dirty(v);
  }
}

void RepairDynamicMatcher::mark_dirty(NodeId v) {
  if (v >= dirty_flag_.size()) dirty_flag_.resize(v + 1, 0);
  if (dirty_flag_[v]) return;
  dirty_flag_[v] = 1;
  dirty_.push_back(v);
}

void RepairDynamicMatcher::on_insert(EdgeId e) {
  const Edge ed = graph().edge(e);
  if (is_free(ed.u) && is_free(ed.v)) {
    match(e);
    return;
  }
  // The new edge may open an augmenting path through its endpoints.
  mark_dirty(ed.u);
  mark_dirty(ed.v);
}

void RepairDynamicMatcher::on_deleted(NodeId u, NodeId v, bool was_matched) {
  if (!was_matched) return;
  mark_dirty(u);
  mark_dirty(v);
}

void RepairDynamicMatcher::on_vertex_removed(NodeId /*v*/, NodeId former_mate) {
  if (former_mate != kInvalidNode) mark_dirty(former_mate);
}

void RepairDynamicMatcher::on_vertex_revived(NodeId v) {
  // The vertex comes back isolated, but the recovery protocol is about
  // to re-insert its edges: seed the dirty set so the next repair pass
  // searches from here (and escalates to a rebuild if a crash batch
  // dirtied more than rebuild_frac of the graph).
  mark_dirty(v);
}

void RepairDynamicMatcher::after_update() {
  if (++since_repair_ >= options_.interval) repair();
}

void RepairDynamicMatcher::repair() {
  since_repair_ = 0;
  if (dirty_.empty()) return;
  ++stats_.repairs;
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool ttrace = tracer.recording();
  const std::uint64_t t0 = ttrace ? telemetry::now_ns() : 0;
  const std::uint64_t augs_before = stats_.augmentations;
  const std::size_t dirty_count = dirty_.size();
  stamp_.resize(graph().node_slots(), 0);
  if (!options_.rebuild.empty() &&
      graph().num_live_nodes() > 0 &&
      static_cast<double>(dirty_.size()) >
          options_.rebuild_frac *
              static_cast<double>(graph().num_live_nodes())) {
    rebuild_via_registry();
  } else {
    for (const NodeId v : dirty_) {
      if (!graph().node_alive(v) || !is_free(v)) continue;
      ++stamp_cur_;
      const int len = augment_from(v, path_cap_);
      if (len > 0) {
        stats_.recourse += static_cast<std::uint64_t>(len);
        ++stats_.augmentations;
      }
    }
  }
  for (const NodeId v : dirty_) {
    if (v < dirty_flag_.size()) dirty_flag_[v] = 0;
  }
  dirty_.clear();
  if (ttrace) {
    tracer.emit(
        "dynamic.repair", "dynamic", t0, telemetry::now_ns() - t0,
        {{"dirty", static_cast<double>(dirty_count)},
         {"augmentations",
          static_cast<double>(stats_.augmentations - augs_before)}});
  }
}

int RepairDynamicMatcher::augment_from(NodeId u, int remaining) {
  stamp_[u] = stamp_cur_;
  // Length-1 endings first: a free neighbor completes the path.
  for (const Arc a : graph().neighbors(u)) {
    if (stamp_[a.to] == stamp_cur_) continue;
    if (is_free(a.to)) {
      raw_match(a.edge);
      return 1;
    }
  }
  if (remaining < 3) return -1;
  // Otherwise step unmatched edge -> matched vertex, release its mate,
  // and recurse from the mate with two fewer edges of budget.
  for (const Arc a : graph().neighbors(u)) {
    const NodeId x = a.to;
    if (stamp_[x] == stamp_cur_ || is_free(x)) continue;
    const EdgeId matched = matched_edge(x);
    const NodeId w = graph().other_endpoint(matched, x);
    if (stamp_[w] == stamp_cur_) continue;
    stamp_[x] = stamp_cur_;
    raw_unmatch(matched);
    const int tail = augment_from(w, remaining - 2);
    if (tail >= 0) {
      raw_match(a.edge);
      return tail + 2;
    }
    raw_match(matched);  // dead end: restore and keep scanning
  }
  return -1;
}

void RepairDynamicMatcher::rebuild_via_registry() {
  adopt_registry_solution(options_.rebuild, 1);
}

// ------------------------------------------------- ScratchRematchMatcher --

ScratchRematchMatcher::ScratchRematchMatcher(DynamicGraph g, std::string solver,
                                             std::uint64_t seed)
    : DynamicMatcher(std::move(g)), solver_(std::move(solver)), seed_(seed) {
  const api::MatchingSolver& s = api::SolverRegistry::global().at(solver_);
  if (s.capabilities().primitive || s.capabilities().weighted) {
    throw std::invalid_argument(
        "scratch: solver must be a cardinality matching solver");
  }
  resolve();
}

void ScratchRematchMatcher::on_insert(EdgeId /*e*/) { resolve(); }
void ScratchRematchMatcher::on_deleted(NodeId, NodeId, bool) { resolve(); }
void ScratchRematchMatcher::on_vertex_removed(NodeId, NodeId) { resolve(); }

void ScratchRematchMatcher::resolve() { adopt_registry_solution(solver_, seed_); }

// ----------------------------------------------------------- factory --

std::unique_ptr<DynamicMatcher> make_matcher(
    const std::string& name, DynamicGraph g,
    const std::map<std::string, std::string>& config) {
  const auto reject_unknown = [&](std::initializer_list<const char*> known) {
    for (const auto& [key, _] : config) {
      if (std::find_if(known.begin(), known.end(), [&](const char* k) {
            return key == k;
          }) == known.end()) {
        throw std::invalid_argument("make_matcher: maintainer '" + name +
                                    "' does not understand key '" + key + "'");
      }
    }
  };
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = config.find(key);
    return it == config.end() ? fallback : it->second;
  };
  if (name == "greedy") {
    reject_unknown({});
    return std::make_unique<GreedyDynamicMatcher>(std::move(g));
  }
  if (name == "repair") {
    reject_unknown({"eps", "interval", "rebuild", "rebuild_frac"});
    RepairDynamicMatcher::Options options;
    options.eps = parse_double_value("eps", get("eps", "0.2"));
    options.interval = static_cast<std::uint64_t>(
        parse_int_value("interval", get("interval", "32")));
    options.rebuild = get("rebuild", "");
    options.rebuild_frac =
        parse_double_value("rebuild_frac", get("rebuild_frac", "0.25"));
    return std::make_unique<RepairDynamicMatcher>(std::move(g), options);
  }
  if (name == "scratch") {
    reject_unknown({"solver", "seed"});
    return std::make_unique<ScratchRematchMatcher>(
        std::move(g), get("solver", "greedy_mcm"),
        static_cast<std::uint64_t>(parse_int_value("seed", get("seed", "1"))));
  }
  throw std::invalid_argument("make_matcher: unknown maintainer '" + name +
                              "' (greedy | repair | scratch)");
}

}  // namespace lps::dynamic
