// Algorithm 1 (with Algorithm 2 as its Step 4): the generic
// (1-eps)-MCM for arbitrary graphs in the LOCAL model. Theorem 3.1:
// O(eps^-3 log n) rounds w.h.p., messages of O(|V|+|E|) bits.
//
// Phase structure, for l = 1, 3, ..., 2k-1 with k = ceil(1/eps):
//   1. Algorithm 2: every node gathers its radius-2l neighborhood
//      (collect_balls), message sizes metered.
//   2. Each free node enumerates the augmenting paths of length <= l it
//      leads, from its own view; the conflict graph C_M(l) follows.
//   3. Luby MIS on C_M(l); each conflict-graph round is charged l
//      physical rounds (Lemma 3.3's routing emulation).
//   4. The selected (pairwise disjoint) paths are flipped into M; the
//      application costs l rounds (Step 7 of Algorithm 1).
// After phase l the shortest augmenting path exceeds l (Lemma 3.4), so
// at termination |M| >= (1 - 1/(k+1)) |M*| (Lemma 3.5).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct GenericMcmOptions {
  double eps = 0.34;  // k = ceil(1/eps); eps = 0.34 -> k = 3, l up to 5
  std::uint64_t seed = 1;
  /// Abort if the number of enumerated augmenting paths exceeds this.
  std::size_t max_conflict_nodes = 4u << 20;
  /// Step 5's MIS subroutine: Luby [20] (default) or Alon–Babai–Itai
  /// [1] — the two options the paper's Lemma 3.3 proof names.
  bool use_abi_mis = false;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
  /// If true, assert the Lemma 3.4 invariant after every phase using the
  /// exact bounded-path oracle (test mode; exponential in l).
  bool check_invariants = false;
};

struct GenericPhaseInfo {
  int l = 0;
  std::size_t conflict_nodes = 0;
  std::size_t conflict_edges = 0;
  std::size_t selected_paths = 0;
  std::uint64_t mis_rounds = 0;
};

struct GenericMcmResult {
  Matching matching;
  NetStats stats;  // physical rounds, incl. the Lemma 3.3 overlay charge
  std::vector<GenericPhaseInfo> phases;
};

GenericMcmResult generic_mcm(const Graph& g, const GenericMcmOptions& opts);

}  // namespace lps
