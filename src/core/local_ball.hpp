// Algorithm 2: neighborhood exchange in the LOCAL model. In round i
// every node forwards what it learned in round i-1 (delta gossip: each
// edge description crosses each channel at most once, which keeps the
// measured message sizes within the paper's O(|V|+|E|) bound and makes
// memory proportional to total information flow).
//
// After `radius` rounds, node v's view contains every edge of G that has
// an endpoint within distance `radius` of v, each labeled with its
// matched-status at collection time — enough to enumerate augmenting
// paths of length <= radius and decide vertex freeness along them.
#pragma once

#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

/// An edge description as carried in gossip messages.
struct LabeledEdge {
  NodeId u;
  NodeId v;
  bool matched;
};

struct BallViews {
  /// view[v] = all labeled edges known to v, in discovery order.
  std::vector<std::vector<LabeledEdge>> view;
  NetStats stats;
};

BallViews collect_balls(const Graph& g, const Matching& m, int radius,
                        ThreadPool* pool = nullptr, unsigned shards = 0);

}  // namespace lps
