// Algorithm 5 (Section 4): (1/2 - eps)-MWM by reduction to a black-box
// delta-MWM. Each iteration:
//   1. computes the derived gain weights w_M (one exchange round);
//   2. runs the black box on G' = (V, E, w_M) restricted to edges with
//      positive gain (a max-weight matching never benefits from
//      non-positive edges), obtaining M';
//   3. flips M <- M ⊕ ∪_{e in M'} wrap(e) (Lemma 4.1 guarantees the
//      result is a matching with w >= w(M) + w_M(M')).
// After ceil(3/(2 delta) ln(2/eps)) iterations, Lemma 4.3 gives
// w(M_i) >= (1 - e^{-2 delta i / 3}) w(M*) / 2 >= (1/2 - eps) w(M*).
// Theorem 4.5 plugs in delta = 1/5; our default black box is class_mwm
// (see DESIGN.md §4 for the substitution).
#pragma once

#include <functional>
#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

/// A delta-MWM black box: returns a matching of the given weighted
/// graph; merges its round/bit accounting into *stats when non-null.
using MwmBlackBox = std::function<Matching(
    const WeightedGraph& wg, std::uint64_t seed, NetStats* stats)>;

/// The default black box: class_mwm (distributed, constant delta).
MwmBlackBox class_mwm_black_box(ThreadPool* pool = nullptr,
                                unsigned shards = 0);

/// A sequential greedy black box (delta = 1/2, zero rounds): used by
/// tests to validate the reduction independently of black-box quality.
MwmBlackBox greedy_black_box();

struct WeightedMwmOptions {
  double eps = 0.1;
  double delta = 0.2;  // assumed black-box quality (paper: 1/5)
  std::uint64_t seed = 1;
  MwmBlackBox black_box;              // empty = class_mwm_black_box()
  std::uint64_t max_iterations = 0;   // 0 = ceil(3/(2 delta) ln(2/eps))
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct WeightedMwmResult {
  Matching matching;
  NetStats stats;
  std::uint64_t iterations = 0;
  /// w(M_i) after every iteration — the Lemma 4.3 convergence curve.
  std::vector<double> weight_trajectory;
  /// True iff an iteration found no positive-gain edge (M is then
  /// locally optimal under length-3 augmentations) before the budget.
  bool converged_early = false;
};

WeightedMwmResult weighted_mwm(const WeightedGraph& wg,
                               const WeightedMwmOptions& opts = {});

/// Lemma 4.3's default iteration budget ceil(3/(2 delta) ln(2/eps)) —
/// the count weighted_mwm runs when max_iterations is 0.
std::uint64_t weighted_mwm_iteration_budget(double delta, double eps);

}  // namespace lps
