// Definition 3.1: the l-conflict graph C_M(l). Its nodes are augmenting
// paths of length <= l w.r.t. the current matching; two nodes are
// adjacent iff the paths share a graph vertex. Paths are enumerated by
// their leader (the endpoint with the smaller id, per Algorithm 2 step
// 3) from that leader's gossip view only — no global knowledge is used
// beyond what Algorithm 2 delivered to the node.
#pragma once

#include <cstddef>
#include <vector>

#include "core/local_ball.hpp"
#include "graph/matching.hpp"

namespace lps {

/// An augmenting path, with global node ids and resolved edge ids.
struct AugPath {
  std::vector<NodeId> nodes;  // nodes[0] is the leader (smaller endpoint)
  std::vector<EdgeId> edges;  // |nodes| - 1 entries
};

/// All augmenting paths of length <= max_len whose leader is `leader`,
/// enumerated from the leader's local view. Throws std::runtime_error
/// when more than max_paths would be produced (safety valve: |C_M(l)| is
/// n^{O(l)} in theory).
std::vector<AugPath> enumerate_paths_from_view(
    const Graph& g, const std::vector<LabeledEdge>& view, NodeId leader,
    int max_len, std::size_t max_paths);

struct ConflictGraphResult {
  std::vector<AugPath> paths;  // node i of `conflict` is paths[i]
  Graph conflict;
};

/// Build C_M(l) from the per-node views of Algorithm 2.
ConflictGraphResult build_conflict_graph(const Graph& g, const Matching& m,
                                         const BallViews& views, int max_len,
                                         std::size_t max_paths_total);

}  // namespace lps
