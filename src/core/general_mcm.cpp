#include "core/general_mcm.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lps {

std::uint64_t general_mcm_paper_budget(int k) {
  const double budget = std::pow(2.0, 2 * k + 1) *
                        (static_cast<double>(k) + 1.0) *
                        std::log(static_cast<double>(k));
  return static_cast<std::uint64_t>(std::ceil(budget));
}

GeneralMcmResult general_mcm(const Graph& g, const GeneralMcmOptions& opts) {
  if (opts.k < 2) {
    throw std::invalid_argument("general_mcm: k must be >= 2");
  }
  const NodeId n = g.num_nodes();
  const int l = 2 * opts.k - 1;

  GeneralMcmResult result;
  result.matching = Matching(n);
  result.paper_budget = general_mcm_paper_budget(opts.k);

  std::uint64_t budget = opts.max_iterations != 0 ? opts.max_iterations
                                                  : result.paper_budget;
  const std::uint64_t empty_streak_stop =
      opts.empty_streak_stop != 0
          ? opts.empty_streak_stop
          : (std::uint64_t{1} << (2 * opts.k + 1));

  std::vector<std::uint8_t> color(n, 0);
  std::vector<char> active_edge(g.num_edges(), 0);
  std::uint64_t empty_streak = 0;

  for (std::uint64_t iter = 0; iter < budget; ++iter) {
    // Line 3: every node colors itself red (0) or blue (1) uniformly.
    // Each node then tells its neighbors its color — one round, one bit
    // per message (accounted below); the colors themselves come from
    // per-(seed, iteration, node) substreams so the execution is
    // deterministic and order-independent.
    for (NodeId v = 0; v < n; ++v) {
      color[v] = Rng::substream(opts.seed, iter, std::uint64_t{v}).coin()
                     ? 1
                     : 0;
    }
    NetStats color_round;
    color_round.rounds = 1;
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < g.degree(v); ++i) color_round.note_message(1);
    }
    result.stats.merge(color_round);

    // Line 4: Ĝ. A vertex is in V̂ iff free or matched bichromatically;
    // an edge is in Ê iff bichromatic with both endpoints in V̂.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      if (color[ed.u] == color[ed.v]) {
        active_edge[e] = 0;
        continue;
      }
      auto in_v_hat = [&](NodeId v) {
        if (result.matching.is_free(v)) return true;
        const Edge& me = g.edge(result.matching.matched_edge(v));
        return color[me.u] != color[me.v];
      };
      active_edge[e] = in_v_hat(ed.u) && in_v_hat(ed.v) ? 1 : 0;
    }

    // Line 5-6: P <- Aug(Ĝ, M, 2k-1); M <- M ⊕ P. Side 0 = red.
    AugOptions aug_opts;
    aug_opts.seed = splitmix64(opts.seed ^ (iter * 0xc2b2ae3d27d4eb4fULL));
    aug_opts.max_iterations = opts.max_aug_iterations;
    aug_opts.pool = opts.pool;
    aug_opts.shards = opts.shards;
    AugResult aug =
        bipartite_aug(g, color, result.matching, l, active_edge, aug_opts);
    result.stats.merge(aug.stats);
    result.paths_applied += aug.paths_applied;
    ++result.iterations;

    if (opts.mode == GeneralMcmOptions::Mode::kAdaptive) {
      if (opts.oracle_optimum_size > 0) {
        const double target = (1.0 - 1.0 / static_cast<double>(opts.k)) *
                              static_cast<double>(opts.oracle_optimum_size);
        if (static_cast<double>(result.matching.size()) >= target) {
          result.stopped_early = true;
          break;
        }
      }
      empty_streak = aug.paths_applied == 0 ? empty_streak + 1 : 0;
      if (empty_streak >= empty_streak_stop) {
        result.stopped_early = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace lps
