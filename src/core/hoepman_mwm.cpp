#include "core/hoepman_mwm.hpp"

#include "runtime/engine.hpp"

namespace lps {

namespace {

enum class HoepType : std::uint8_t { kRequest, kDrop };

struct HoepMsg {
  HoepType type;
};

struct HoepBits {
  std::uint64_t operator()(const HoepMsg&) const noexcept { return 2; }
};

using HoepNet = SyncNetwork<HoepMsg, HoepBits>;

}  // namespace

HoepmanResult hoepman_mwm(const WeightedGraph& wg,
                          const HoepmanOptions& opts) {
  const Graph& g = wg.graph;
  const NodeId n = g.num_nodes();

  std::vector<EdgeId> matched_edge(n, kInvalidEdge);
  // alive[adj slot] per node, flattened (same layout as israeli_itai).
  std::vector<std::size_t> adj_offset(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    adj_offset[v + 1] = adj_offset[v] + g.degree(v);
  }
  std::vector<char> edge_alive(adj_offset[n], 1);
  std::vector<EdgeId> target(n, kInvalidEdge);

  // Deterministic heaviest-edge comparator: (weight, edge id).
  auto heavier = [&](EdgeId a, EdgeId b) {
    if (wg.weights[a] != wg.weights[b]) return wg.weights[a] > wg.weights[b];
    return a < b;
  };

  HoepNet net(g, /*seed=*/0, HoepBits{});
  net.set_thread_pool(opts.pool);
  net.set_shards(opts.shards);

  // Active-set contract: a free node pointing at a live target re-issues
  // its request every round, so it keeps itself alive; a node whose
  // alive set is empty halts (its alive set can only shrink, via drops,
  // which arrive as messages and wake it); matched nodes drop out.
  auto step = [&](HoepNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const auto nbrs = ctx.graph().neighbors(v);

    // 1. Process drops (edges leaving the game).
    for (const auto& in : ctx.inbox()) {
      if (in.payload->type != HoepType::kDrop) continue;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i].edge == in.edge) {
          edge_alive[adj_offset[v] + i] = 0;
          break;
        }
      }
    }
    if (matched_edge[v] != kInvalidEdge) return;

    // 2. Retarget to the heaviest alive edge.
    EdgeId best = kInvalidEdge;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!edge_alive[adj_offset[v] + i]) continue;
      if (best == kInvalidEdge || heavier(nbrs[i].edge, best)) {
        best = nbrs[i].edge;
      }
    }
    target[v] = best;
    if (best == kInvalidEdge) return;  // no candidates left: halt

    // 3. Mutual request on the target => matched.
    bool partner_requests = false;
    for (const auto& in : ctx.inbox()) {
      if (in.payload->type == HoepType::kRequest && in.edge == best) {
        partner_requests = true;
        break;
      }
    }
    if (partner_requests) {
      matched_edge[v] = best;
      // Confirm on the matched edge: if the partner pointed at us first
      // and we match on its standing request before ever requesting,
      // this message is what lets it match one round later (a matched
      // node ignores stray requests, so the symmetric case is safe).
      ctx.send(best, HoepMsg{HoepType::kRequest});
      // Drop every other edge.
      for (const auto& inc : nbrs) {
        if (inc.edge != best) ctx.send(inc.edge, HoepMsg{HoepType::kDrop});
      }
      return;
    }
    // 4. (Re)issue the request; persistent pointing keeps the protocol
    // symmetric: the round after both endpoints point at each other,
    // both see the partner's request.
    ctx.send(best, HoepMsg{HoepType::kRequest});
    ctx.keep_active();
  };

  const std::uint64_t max_rounds =
      opts.max_rounds != 0 ? opts.max_rounds : 4ull * n + 16;
  HoepmanResult result;
  const std::uint64_t used = net.run(max_rounds, /*stop_when_silent=*/true,
                                     step);
  result.converged = used < max_rounds || net.last_round_deliveries() == 0;
  result.stats = net.stats();
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId e = matched_edge[v];
    if (e != kInvalidEdge && g.edge(e).u == v) ids.push_back(e);
  }
  result.matching = Matching::from_edges(g, ids);
  return result;
}

}  // namespace lps
