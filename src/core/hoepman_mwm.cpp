#include "core/hoepman_mwm.hpp"

#include "runtime/engine.hpp"
#include "runtime/simd.hpp"

namespace lps {

namespace {

enum class HoepType : std::uint8_t { kRequest, kDrop };

struct HoepMsg {
  HoepType type;
};

struct HoepBits {
  std::uint64_t operator()(const HoepMsg&) const noexcept { return 2; }
};

using HoepNet = SyncNetwork<HoepMsg, HoepBits>;

}  // namespace

HoepmanResult hoepman_mwm(const WeightedGraph& wg,
                          const HoepmanOptions& opts) {
  const Graph& g = wg.graph;
  const NodeId n = g.num_nodes();

  std::vector<EdgeId> matched_edge(n, kInvalidEdge);
  // Per-arc state at CSR arc positions (offsets[v] + i for v's i-th
  // incidence) — the layout the engine's inbox slots index, so a kDrop
  // arrival clears its flag without scanning the row. The incident-edge
  // weight rides in a parallel column so retargeting is a masked argmax
  // over one contiguous slice.
  const GraphStore& store = g.store();
  const std::vector<std::uint64_t>& adj_offset = store.offsets;
  std::vector<std::uint8_t> edge_alive(adj_offset[n], 1);
  std::vector<double> inc_weight(adj_offset[n]);
  for (std::size_t a = 0; a < inc_weight.size(); ++a) {
    inc_weight[a] = wg.weights[store.adj_edge[a]];
  }
  std::vector<EdgeId> target(n, kInvalidEdge);

  HoepNet net(g, /*seed=*/0, HoepBits{});
  net.set_thread_pool(opts.pool);
  net.set_shards(opts.shards);

  // Active-set contract: a free node pointing at a live target re-issues
  // its request every round, so it keeps itself alive; a node whose
  // alive set is empty halts (its alive set can only shrink, via drops,
  // which arrive as messages and wake it); matched nodes drop out.
  auto step = [&](HoepNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const auto nbrs = ctx.graph().neighbors(v);

    // 1. Process drops (edges leaving the game); the inbox slot IS the
    // arc position, so each drop clears its flag directly.
    for (const auto& in : ctx.inbox()) {
      if (in.payload->type == HoepType::kDrop) {
        edge_alive[adj_offset[v] + in.slot] = 0;
      }
    }
    if (matched_edge[v] != kInvalidEdge) return;

    // 2. Retarget to the heaviest alive edge: masked argmax over this
    // node's arc slice under the strict total order (weight desc, edge
    // id asc) — the deterministic comparator the scalar loop used.
    const std::uint64_t base = adj_offset[v];
    const std::size_t best_slot = simd::argmax_masked_f64(
        inc_weight.data() + base, store.adj_edge.data() + base,
        edge_alive.data() + base, nbrs.size());
    const EdgeId best =
        best_slot == simd::npos ? kInvalidEdge : nbrs[best_slot].edge;
    target[v] = best;
    if (best == kInvalidEdge) return;  // no candidates left: halt

    // 3. Mutual request on the target => matched.
    bool partner_requests = false;
    for (const auto& in : ctx.inbox()) {
      if (in.payload->type == HoepType::kRequest && in.edge == best) {
        partner_requests = true;
        break;
      }
    }
    if (partner_requests) {
      matched_edge[v] = best;
      // Confirm on the matched edge: if the partner pointed at us first
      // and we match on its standing request before ever requesting,
      // this message is what lets it match one round later (a matched
      // node ignores stray requests, so the symmetric case is safe).
      ctx.send(best, HoepMsg{HoepType::kRequest});
      // Drop every other edge.
      for (const auto& inc : nbrs) {
        if (inc.edge != best) ctx.send(inc.edge, HoepMsg{HoepType::kDrop});
      }
      return;
    }
    // 4. (Re)issue the request; persistent pointing keeps the protocol
    // symmetric: the round after both endpoints point at each other,
    // both see the partner's request.
    ctx.send(best, HoepMsg{HoepType::kRequest});
    ctx.keep_active();
  };

  const std::uint64_t max_rounds =
      opts.max_rounds != 0 ? opts.max_rounds : 4ull * n + 16;
  HoepmanResult result;
  const std::uint64_t used = net.run(max_rounds, /*stop_when_silent=*/true,
                                     step);
  result.converged = used < max_rounds || net.last_round_deliveries() == 0;
  result.stats = net.stats();
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId e = matched_edge[v];
    if (e != kInvalidEdge && g.edge(e).u == v) ids.push_back(e);
  }
  result.matching = Matching::from_edges(g, ids);
  return result;
}

}  // namespace lps
