// Section 4's closing Remark: "(1-eps)-MWM can be obtained in
// O(eps^-4 log^2 n) time, using messages of linear size, by adapting the
// PRAM algorithm of Hougardy and Vinkemeier [14] to the distributed
// setting using Algorithm 2. Details are omitted..."
//
// This module supplies the adaptation. A *beta-augmentation* (after
// [14]/[24]) is an alternating path or cycle with at most `beta`
// unmatched edges whose flip M -> M ⊕ A keeps M a matching; its gain is
// the weight change. The paper's Lemma 4.2 (quoting [24]) implies that a
// matching with no positive beta-augmentation satisfies
//     w(M) >= beta/(beta+1) * w(M*),
// so iterating [enumerate -> select non-conflicting positive
// augmentations -> flip] to a fixed point yields a (1-eps)-MWM with
// beta = ceil(1/eps) - 1.
//
// Distributed realization follows Algorithm 2: each phase collects
// radius-2L balls (L = 2 beta + 1 bounds an augmentation's length),
// enumerates the augmentations it leads, and applies the *dominant* ones
// (strictly largest gain among all augmentations sharing a vertex, ties
// broken by a canonical key) — dominance makes the selected set
// vertex-disjoint without an MIS subroutine and guarantees the global
// best augmentation is always applied, so phases strictly improve until
// the fixed point. Messages are linear-size (whole neighborhoods), as
// the Remark says.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct BetaAugmentation {
  /// Edge set to flip; alternating path or cycle w.r.t. the matching.
  std::vector<EdgeId> edges;
  /// Vertices in walk order (cycles omit the repeated closing vertex).
  std::vector<NodeId> nodes;
  double gain = 0.0;
  bool is_cycle = false;
};

/// All positive-gain beta-augmentations w.r.t. m, deduplicated by edge
/// set. Exponential in beta; throws std::runtime_error past max_results.
std::vector<BetaAugmentation> enumerate_beta_augmentations(
    const WeightedGraph& wg, const Matching& m, int beta,
    std::size_t max_results);

struct LocalMwmOptions {
  int beta = 3;  // fixed point gives a beta/(beta+1)-approximation
  std::uint64_t max_phases = 0;  // 0 = auto (n + 16; each phase improves)
  std::size_t max_augmentations = 1u << 20;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct LocalMwmResult {
  Matching matching;
  NetStats stats;
  std::uint64_t phases = 0;
  /// True iff no positive beta-augmentation remains (the fixed point,
  /// certifying w(M) >= beta/(beta+1) w(M*) via Lemma 4.2).
  bool converged = false;
  std::vector<double> weight_trajectory;
};

LocalMwmResult local_mwm(const WeightedGraph& wg,
                         const LocalMwmOptions& opts = {});

}  // namespace lps
