#include "core/bipartite_counting.hpp"

#include <stdexcept>

#include "runtime/engine.hpp"

namespace lps {

namespace {

struct CountMessage {
  BigCounter count;
};

/// Bit meter: a real CONGEST implementation ships each count as
/// ceil(bits / chunk) chunks of O(log Delta) bits; we meter the full
/// serialized width so max_message_bits reflects Lemma 3.6's
/// O(l log Delta) bound.
struct CountBits {
  std::uint64_t operator()(const CountMessage& msg) const {
    return std::max<std::uint64_t>(msg.count.bit_size(), 1) + 2;
  }
};

using CountNet = SyncNetwork<CountMessage, CountBits>;

}  // namespace

CountingResult count_augmenting_paths(const Graph& g,
                                      const std::vector<std::uint8_t>& side,
                                      const Matching& m, int max_len,
                                      const std::vector<char>& active_edges,
                                      ThreadPool* pool, unsigned shards) {
  const NodeId n = g.num_nodes();
  if (side.size() != n) {
    throw std::invalid_argument("count_augmenting_paths: side size");
  }
  if (max_len < 1 || max_len % 2 == 0) {
    throw std::invalid_argument("count_augmenting_paths: max_len must be odd");
  }
  auto active = [&](EdgeId e) {
    return active_edges.empty() || active_edges[e];
  };

  CountingResult out;
  out.depth.assign(n, kUnreached);
  out.counts.assign(n, {});
  out.total.assign(n, BigCounter{});
  out.endpoint.assign(n, 0);

  CountNet net(g, /*seed=*/0, CountBits{});
  net.set_thread_pool(pool);
  net.set_shards(shards);

  // The BFS is message-driven: free X nodes launch in round 0 (everyone
  // is stepped by the initial-activation default, non-sources return
  // immediately) and afterwards only the frontier — nodes with arriving
  // counts — is stepped, so a counting pass costs O(n + reached + sent)
  // instead of O(n * l + m * l).
  auto step = [&](CountNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const auto nbrs = ctx.graph().neighbors(v);
    const std::uint64_t round = ctx.round();
    const bool is_x = side[v] == 0;
    const bool free = m.is_free(v);

    if (round == 0) {
      // Free X nodes start the BFS.
      if (is_x && free) {
        out.depth[v] = 0;
        out.total[v] = BigCounter(1);
        if (max_len >= 1) {
          for (const auto& inc : nbrs) {
            if (active(inc.edge)) {
              ctx.send(inc.edge, CountMessage{BigCounter(1)});
            }
          }
        }
      }
      return;
    }

    if (out.depth[v] != kUnreached) return;  // visited: discard arrivals
    bool any = false;
    for (const auto& in : ctx.inbox()) {
      if (!active(in.edge)) continue;
      if (!any) {
        any = true;
        out.depth[v] = static_cast<std::uint32_t>(round);
        out.counts[v].assign(nbrs.size(), BigCounter{});
      }
      // The inbox slot IS the incidence position: accumulate directly.
      out.counts[v][in.slot] = in.payload->count;
      out.total[v] += in.payload->count;
    }
    if (!any) return;

    const bool may_send = round + 1 <= static_cast<std::uint64_t>(max_len);
    if (!is_x) {
      // Y node: structural sanity — Y arrivals happen at odd rounds.
      if (round % 2 == 0) {
        throw std::logic_error("counting: Y node reached at even depth");
      }
      if (free) {
        out.endpoint[v] = 1;  // terminal: paths of length `round` end here
        return;
      }
      if (may_send) {
        const EdgeId mate_edge = m.matched_edge(v);
        if (active(mate_edge)) {
          ctx.send(mate_edge, CountMessage{out.total[v]});
        }
      }
    } else {
      // Matched X node (free X have depth 0): arrives via its mate.
      if (round % 2 != 0) {
        throw std::logic_error("counting: X node reached at odd depth");
      }
      if (may_send) {
        const EdgeId mate_edge = m.matched_edge(v);
        for (const auto& inc : nbrs) {
          if (inc.edge != mate_edge && active(inc.edge)) {
            ctx.send(inc.edge, CountMessage{out.total[v]});
          }
        }
      }
    }
  };

  // Rounds 0..max_len: sends in 0..max_len-1, deliveries in 1..max_len.
  for (int r = 0; r <= max_len; ++r) net.run_round(step);
  out.stats = net.stats();
  return out;
}

namespace {

/// DFS over alternating simple paths from free X nodes, counting those
/// that end at `target` with exactly `len` edges.
struct OracleSearch {
  const Graph& g;
  const std::vector<std::uint8_t>& side;
  const Matching& m;
  const std::vector<char>& active_edges;
  NodeId target;
  int len;
  std::vector<char> on_path;
  std::uint64_t found = 0;

  bool active(EdgeId e) const {
    return active_edges.empty() || active_edges[e];
  }

  void extend(NodeId cur, int used) {
    if (used == len) {
      if (cur == target) ++found;
      return;
    }
    const bool need_unmatched = (used % 2 == 0);
    if (need_unmatched) {
      for (const auto& inc : g.neighbors(cur)) {
        if (!active(inc.edge) || m.contains(g, inc.edge)) continue;
        if (on_path[inc.to]) continue;
        on_path[inc.to] = 1;
        extend(inc.to, used + 1);
        on_path[inc.to] = 0;
      }
    } else {
      const EdgeId e = m.matched_edge(cur);
      if (e == kInvalidEdge || !active(e)) return;
      const NodeId w = g.other_endpoint(e, cur);
      if (on_path[w]) return;
      on_path[w] = 1;
      extend(w, used + 1);
      on_path[w] = 0;
    }
  }
};

}  // namespace

std::uint64_t count_paths_oracle(const Graph& g,
                                 const std::vector<std::uint8_t>& side,
                                 const Matching& m, NodeId y, int len,
                                 const std::vector<char>& active_edges) {
  if (!m.is_free(y) || side[y] != 1) return 0;
  OracleSearch search{g,   side, m, active_edges, y,
                      len, std::vector<char>(g.num_nodes(), 0)};
  std::uint64_t total = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    if (side[x] != 0 || !m.is_free(x)) continue;
    search.found = 0;
    search.on_path[x] = 1;
    search.extend(x, 0);
    search.on_path[x] = 0;
    total += search.found;
  }
  return total;
}

}  // namespace lps
