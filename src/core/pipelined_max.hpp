// The bit-pipelined maximum of Lemma 3.7, as a standalone primitive.
//
// The paper: "To send a number of j log n bits over an edge, we break it
// into j chunks, and send the chunks one by one in a pipelining fashion
// ... The chunks are sent in decreasing order of significance. In each
// routing step, only chunks from qualifying edges are examined. Of them,
// the maximal chunk is transmitted in the next step, and the sources of
// other chunks are disqualified."
//
// Here: values sit at arbitrary nodes of a tree; the root must learn the
// maximum. Every value is padded to the same chunk count j; a node at
// depth d starts emitting its merged stream at round (D - d) where D is
// the tree depth, so child streams arrive exactly aligned with the
// parent's emission schedule. Total rounds: D + j + O(1) — versus
// D * j for store-and-forward of whole numbers — with every message a
// single chunk of `chunk_bits` bits.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "util/bigint.hpp"

namespace lps {

struct PipelinedMaxResult {
  BigCounter maximum;        // 0 if no node held a value
  bool any_value = false;
  NetStats stats;
  std::uint64_t tree_depth = 0;
  std::size_t chunk_count = 0;
};

/// Compute max over `values` (node -> value; nodes without entries hold
/// nothing) at `root` over the tree `g` (must be connected and acyclic;
/// checked). chunk_bits in [1, 32].
PipelinedMaxResult pipelined_max(const Graph& g, NodeId root,
                                 const std::vector<std::optional<BigCounter>>& values,
                                 int chunk_bits,
                                 ThreadPool* pool = nullptr,
                                 unsigned shards = 0);

}  // namespace lps
