#include "core/beta_augment.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/local_ball.hpp"

namespace lps {

namespace {

/// DFS enumerator over alternating walks. A completed walk qualifies as
/// an augmentation when flipping it preserves the matching property:
///  * interior vertices see exactly one matched walk edge (alternation);
///  * an endpoint whose walk edge is unmatched must be free (it gains a
///    matched edge); an endpoint whose walk edge is matched is fine (it
///    becomes free);
///  * a cycle must alternate across the closing vertex, i.e. the first
///    and last edges have different matched-status.
struct BetaEnumerator {
  const WeightedGraph& wg;
  const Matching& m;
  int beta;
  std::size_t max_results;
  std::vector<BetaAugmentation>* out;
  std::set<std::vector<EdgeId>>* seen;

  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  std::vector<char> on_walk;
  int unmatched_used = 0;
  double gain = 0.0;

  const Graph& g() const { return wg.graph; }

  void record(bool is_cycle) {
    if (gain <= 0.0) return;
    std::vector<EdgeId> key = edges;
    std::sort(key.begin(), key.end());
    if (!seen->insert(std::move(key)).second) return;
    if (out->size() >= max_results) {
      throw std::runtime_error(
          "enumerate_beta_augmentations: result cap exceeded");
    }
    BetaAugmentation aug;
    aug.edges = edges;
    aug.nodes = nodes;
    aug.gain = gain;
    aug.is_cycle = is_cycle;
    out->push_back(std::move(aug));
  }

  /// Extend from the current walk end; `last_matched` is the status of
  /// the walk's final edge (the next edge must have the opposite one).
  void extend(NodeId cur, bool last_matched) {
    // Path completion at the current end:
    //  * last edge matched: always a legal end (cur becomes free);
    //  * last edge unmatched: legal only if cur is free.
    if (last_matched || m.is_free(cur)) record(/*is_cycle=*/false);

    const bool next_matched = !last_matched;
    if (!next_matched && unmatched_used >= beta) return;
    for (const Graph::Incidence& inc : g().neighbors(cur)) {
      const bool is_matched = m.contains(g(), inc.edge);
      if (is_matched != next_matched) continue;
      if (inc.to == nodes.front()) {
        // Cycle closure: first and last edges must differ in status at
        // the shared vertex; the first edge's status is the status of
        // edges[0].
        const bool first_matched = m.contains(g(), edges.front());
        if (first_matched != is_matched && edges.size() >= 3) {
          edges.push_back(inc.edge);
          unmatched_used += is_matched ? 0 : 1;
          gain += is_matched ? -wg.weight(inc.edge) : wg.weight(inc.edge);
          record(/*is_cycle=*/true);
          gain -= is_matched ? -wg.weight(inc.edge) : wg.weight(inc.edge);
          unmatched_used -= is_matched ? 0 : 1;
          edges.pop_back();
        }
        continue;
      }
      if (on_walk[inc.to]) continue;
      edges.push_back(inc.edge);
      nodes.push_back(inc.to);
      on_walk[inc.to] = 1;
      unmatched_used += is_matched ? 0 : 1;
      gain += is_matched ? -wg.weight(inc.edge) : wg.weight(inc.edge);
      extend(inc.to, is_matched);
      gain -= is_matched ? -wg.weight(inc.edge) : wg.weight(inc.edge);
      unmatched_used -= is_matched ? 0 : 1;
      on_walk[inc.to] = 0;
      nodes.pop_back();
      edges.pop_back();
    }
  }

  void run_from(NodeId start) {
    nodes = {start};
    on_walk.assign(g().num_nodes(), 0);
    on_walk[start] = 1;
    // First edge unmatched: start must be free (it gains a mate).
    // First edge matched: any matched vertex may start (it loses one).
    for (const Graph::Incidence& inc : g().neighbors(start)) {
      const bool is_matched = m.contains(g(), inc.edge);
      if (!is_matched && !m.is_free(start)) continue;
      if (on_walk[inc.to]) continue;
      edges = {inc.edge};
      nodes.push_back(inc.to);
      on_walk[inc.to] = 1;
      unmatched_used = is_matched ? 0 : 1;
      gain = is_matched ? -wg.weight(inc.edge) : wg.weight(inc.edge);
      extend(inc.to, is_matched);
      on_walk[inc.to] = 0;
      nodes.pop_back();
      edges.clear();
    }
  }
};

}  // namespace

std::vector<BetaAugmentation> enumerate_beta_augmentations(
    const WeightedGraph& wg, const Matching& m, int beta,
    std::size_t max_results) {
  if (beta < 1) {
    throw std::invalid_argument("enumerate_beta_augmentations: beta >= 1");
  }
  std::vector<BetaAugmentation> out;
  std::set<std::vector<EdgeId>> seen;
  BetaEnumerator en{wg, m, beta, max_results, &out, &seen, {}, {}, {}, 0, 0.0};
  for (NodeId v = 0; v < wg.graph.num_nodes(); ++v) {
    en.run_from(v);
  }
  return out;
}

LocalMwmResult local_mwm(const WeightedGraph& wg,
                         const LocalMwmOptions& opts) {
  const Graph& g = wg.graph;
  if (opts.beta < 1) throw std::invalid_argument("local_mwm: beta >= 1");
  const int walk_cap = 2 * opts.beta + 1;

  LocalMwmResult result;
  result.matching = Matching(g.num_nodes());
  const std::uint64_t max_phases =
      opts.max_phases != 0 ? opts.max_phases
                           : static_cast<std::uint64_t>(g.num_nodes()) + 16;

  std::uint64_t id_bits = 1;
  while ((std::uint64_t{1} << id_bits) < g.num_nodes() + 1) ++id_bits;

  for (std::uint64_t phase = 0; phase < max_phases; ++phase) {
    ++result.phases;
    // Algorithm 2 machinery: every node learns its radius-2L ball; we
    // account the real gossip (the enumeration below then uses only
    // information available inside those balls — an augmentation of
    // length <= L is contained in the ball of any of its vertices).
    const BallViews views =
        collect_balls(g, result.matching, 2 * walk_cap, opts.pool,
                      opts.shards);
    result.stats.merge(views.stats);

    const std::vector<BetaAugmentation> augs = enumerate_beta_augmentations(
        wg, result.matching, opts.beta, opts.max_augmentations);
    if (augs.empty()) {
      result.converged = true;
      result.weight_trajectory.push_back(result.matching.weight(wg));
      break;
    }

    // Dominance selection: an augmentation is applied iff it has the
    // strictly largest (gain, tie-key) among all augmentations sharing
    // any vertex. Dominant augmentations are pairwise disjoint, and the
    // globally best one is always dominant => strict progress.
    auto key_less = [&](std::size_t a, std::size_t b) {
      if (augs[a].gain != augs[b].gain) return augs[a].gain < augs[b].gain;
      return augs[a].edges > augs[b].edges;  // deterministic tie-break
    };
    std::map<NodeId, std::size_t> best_at_vertex;
    for (std::size_t i = 0; i < augs.size(); ++i) {
      for (NodeId v : augs[i].nodes) {
        auto [it, inserted] = best_at_vertex.try_emplace(v, i);
        if (!inserted && key_less(it->second, i)) it->second = i;
      }
    }
    std::vector<EdgeId> to_flip;
    std::size_t applied = 0;
    for (std::size_t i = 0; i < augs.size(); ++i) {
      bool dominant = true;
      for (NodeId v : augs[i].nodes) {
        if (best_at_vertex.at(v) != i) {
          dominant = false;
          break;
        }
      }
      if (!dominant) continue;
      ++applied;
      to_flip.insert(to_flip.end(), augs[i].edges.begin(),
                     augs[i].edges.end());
    }
    result.matching.symmetric_difference(g, to_flip);
    result.weight_trajectory.push_back(result.matching.weight(wg));

    // Selection + application cost: leaders exchange augmentation
    // descriptions within distance 2L (already covered by the gossiped
    // views) and flip along at most L hops.
    NetStats apply;
    apply.rounds = static_cast<std::uint64_t>(walk_cap);
    for (std::size_t i = 0; i < applied; ++i) {
      for (int h = 0; h < walk_cap; ++h) {
        apply.note_message(id_bits);
      }
    }
    result.stats.merge(apply);
  }
  return result;
}

}  // namespace lps
