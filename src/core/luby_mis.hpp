// Luby's randomized maximal independent set (reference [20] of the
// paper; [1] is the Alon–Babai–Itai variant with the same structure).
// Algorithm 1 runs MIS on the conflict graph C_M(l) to select a maximal
// set of non-conflicting augmenting paths (Lemma 3.3).
//
// Phase (2 rounds):
//   stage 0: every live node broadcasts a fresh uniform 64-bit value.
//   stage 1: a live node whose value beats all received values (ties by
//            id) joins the MIS and broadcasts "selected"; on receiving
//            "selected" a node leaves the computation, and selected
//            nodes stop too.
// Isolated-by-elimination nodes (no live neighbors left) join the MIS
// automatically at stage 1 because they receive no competing values.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct MisOptions {
  std::uint64_t seed = 1;
  /// Cap on phases; 0 picks 40 + 12*ceil(log2(n+1)).
  std::uint64_t max_phases = 0;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
  /// Fault-injection spec ("" = fault-free): preset name or explicit
  /// `name:key=value,...` plan (src/faults), applied at the engine's
  /// channel exchange. After the round budget a resync loop restores a
  /// consistent state (message loss can admit two adjacent winners, or
  /// eliminate a node whose eliminator was itself demoted), re-opens
  /// the live region, and runs more phases. The returned set is
  /// independent under any fault rate; maximality is best-effort once
  /// messages can be lost.
  std::string faults;
  /// Cap on resync sweeps (each: reconcile + a burst of phases).
  std::uint32_t max_resyncs = 8;
};

struct MisResult {
  std::vector<char> in_mis;  // per node
  NetStats stats;
  bool converged = false;
  /// Resync sweeps that found inconsistencies; 0 in fault-free runs.
  std::uint32_t resyncs = 0;
};

MisResult luby_mis(const Graph& g, const MisOptions& opts = {});

/// The Alon–Babai–Itai variant (reference [1]; the paper's Lemma 3.3
/// proof uses "either [20] or [1]"). Phase (3 rounds):
///   stage 0: every live node marks itself with probability
///            1/(2 d(v)) (d = live degree; isolated live nodes always
///            mark) and broadcasts (marked, degree);
///   stage 1: of two adjacent marked nodes, the one with smaller
///            (degree, id) unmarks; surviving marked nodes join the MIS
///            and broadcast "selected";
///   stage 2: neighbors of selected nodes leave and broadcast "dead" so
///            survivors can maintain live degrees.
MisResult abi_mis(const Graph& g, const MisOptions& opts = {});

/// Verification helpers (used by tests and by Algorithm 1's assertions).
bool is_independent_set(const Graph& g, const std::vector<char>& in_set);
bool is_maximal_independent_set(const Graph& g, const std::vector<char>& in_set);

}  // namespace lps
