// Randomized distributed maximal matching in the style of Israeli & Itai
// (1986), reference [15] of the paper: the classical 1/2-MCM baseline in
// O(log n) rounds w.h.p. that the paper's Section 3 improves on.
//
// Protocol (3 rounds per phase):
//   stage 0: every free node flips a coin; heads-nodes ("proposers") send
//            a proposal to one free neighbor chosen uniformly at random.
//   stage 1: every free tails-node ("acceptor") that received proposals
//            picks one uniformly and sends an accept; it is now matched
//            and announces this to its other neighbors.
//   stage 2: a proposer receiving an accept is matched and announces.
// A node stops once it is matched or has no free neighbors; the run ends
// when the network goes silent, at which point the matching is maximal.
//
// The proposer/acceptor coin removes all accept conflicts (a proposer
// proposes to exactly one node, so it can receive at most one accept and
// never accepts itself).
#pragma once

#include <optional>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct IsraeliItaiOptions {
  std::uint64_t seed = 1;
  /// Hard cap on phases (3 rounds each); 0 picks 40 + 12*ceil(log2(n+1)).
  std::uint64_t max_phases = 0;
  /// Restrict the run to a logical subgraph: inactive edges are treated
  /// as absent. Empty = all edges active.
  std::vector<char> active_edges;
  /// Start from this matching instead of the empty one (its endpoints
  /// count as already matched).
  std::optional<Matching> initial;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto-size to the L2 cache, 1 =
  /// single shard). Bit-identical results for any value.
  unsigned shards = 0;
  /// Step every node every round instead of the active set (same
  /// execution bit for bit; costs O(n) per round instead of O(free
  /// nodes + traffic)). Exposed for the equivalence test.
  bool step_all_nodes = false;
  /// Fault-injection spec ("" = fault-free): a preset name or an
  /// explicit `name:key=value,...` plan (src/faults). Message faults
  /// apply at the engine's channel exchange; after the round budget a
  /// reconciliation/resync loop repairs half-committed handshakes (a
  /// dropped accept leaves an acceptor matched to a proposer that never
  /// learned of it) by freeing the disagreeing vertices, re-opening
  /// exactly their neighborhoods, and running more phases — never by
  /// restarting. The returned matching is valid under any fault rate;
  /// maximality is best-effort once messages can be lost.
  std::string faults;
  /// Cap on resync sweeps (each sweep: reconcile + a burst of phases).
  std::uint32_t max_resyncs = 8;
};

struct DistMatchingResult {
  Matching matching;
  NetStats stats;
  /// True iff the protocol went silent (matching maximal on the active
  /// subgraph) before the phase cap.
  bool converged = false;
  /// Resync sweeps that found (and repaired) half-committed handshakes;
  /// always 0 in fault-free runs.
  std::uint32_t resyncs = 0;
};

DistMatchingResult israeli_itai(const Graph& g,
                                const IsraeliItaiOptions& opts = {});

/// The phase budget used when max_phases == 0: 40 + 12 ceil(log2(n+1)),
/// comfortably past the O(log n) w.h.p. convergence point. Exported so
/// the lca oracle simulates exactly the budget the solver runs.
std::uint64_t israeli_itai_default_max_phases(NodeId n);

}  // namespace lps
