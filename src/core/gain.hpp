// Section 4 preliminaries: wrap(), the gain function g(), and the
// derived edge weights w_M. For an unmatched edge (r,s), wrap(r,s) is
// the length-<=3 augmenting structure {(M(r),r), (r,s), (s,M(s))} and
//   w_M(r,s) = g(wrap(r,s)) = w(r,s) - w(M(r),r) - w(s,M(s))
// (missing matched edges contribute 0); w_M is 0 on matched edges.
// Figure 2 of the paper is the worked example; it is reproduced verbatim
// in tests/ and bench/.
#pragma once

#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

/// Derived weights w_M for every edge. When `stats` is non-null, the
/// one-round exchange in which every matched node announces its matched
/// edge weight to its neighbors is executed on the synchronous runtime
/// and accounted there (each endpoint then computes w_M locally).
std::vector<double> gain_weights(const WeightedGraph& wg, const Matching& m,
                                 NetStats* stats = nullptr,
                                 ThreadPool* pool = nullptr,
                                 unsigned shards = 0);

/// wrap(e) w.r.t. m: e plus the matched edges at its endpoints.
/// Requires e unmatched (checked).
std::vector<EdgeId> wrap_edges(const Graph& g, const Matching& m, EdgeId e);

/// Lemma 4.1: M <- M ⊕ (∪_{e in m_prime} wrap(e)). m_prime must be a
/// matching of unmatched edges (checked); the result is validated to be
/// a matching.
void apply_wraps(const Graph& g, Matching& m,
                 const std::vector<EdgeId>& m_prime);

}  // namespace lps
