#include "core/israeli_itai.hpp"

#include <cmath>

#include "faults/injector.hpp"
#include "runtime/engine.hpp"
#include "runtime/simd.hpp"

namespace lps {

namespace {

enum class IiType : std::uint8_t { kPropose, kAccept, kMatched };

struct IiMessage {
  IiType type;
};

/// 2 bits of content; meter generously as one byte.
struct IiBits {
  std::uint64_t operator()(const IiMessage&) const noexcept { return 8; }
};

using IiNet = SyncNetwork<IiMessage, IiBits>;

}  // namespace

std::uint64_t israeli_itai_default_max_phases(NodeId n) {
  return 40 + 12 * static_cast<std::uint64_t>(
                       std::ceil(std::log2(static_cast<double>(n) + 1.0)));
}

DistMatchingResult israeli_itai(const Graph& g,
                                const IsraeliItaiOptions& opts) {
  const NodeId n = g.num_nodes();
  if (!opts.active_edges.empty() && opts.active_edges.size() != g.num_edges()) {
    throw std::invalid_argument("israeli_itai: active_edges size mismatch");
  }
  auto active = [&](EdgeId e) {
    return opts.active_edges.empty() || opts.active_edges[e];
  };

  // Persistent node state (owned here, indexed by node id; each node
  // touches only its own entries during a round).
  std::vector<EdgeId> matched_edge(n, kInvalidEdge);
  if (opts.initial) {
    if (opts.initial->num_nodes() != n) {
      throw std::invalid_argument("israeli_itai: initial matching size");
    }
    for (NodeId v = 0; v < n; ++v) {
      matched_edge[v] = opts.initial->matched_edge(v);
    }
  }
  // free_neighbor per arc, laid out at CSR arc positions (offsets[v] + i
  // for v's i-th incidence) — the same indexing the engine's inbox slots
  // use, so a kMatched arrival updates its flag without scanning the row.
  const std::vector<std::uint64_t>& adj_offset = g.store().offsets;
  std::vector<std::uint8_t> neighbor_free(adj_offset[n], 1);
  // Initialize neighbor liveness against the initial matching.
  {
    std::vector<std::uint8_t> is_matched(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (matched_edge[v] != kInvalidEdge) is_matched[v] = 1;
    }
    for (NodeId v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (is_matched[nbrs[i].to]) neighbor_free[adj_offset[v] + i] = 0;
      }
    }
  }
  std::vector<std::uint8_t> coin(n, 0);
  std::vector<EdgeId> proposal_edge(n, kInvalidEdge);
  // Set by a node at stage 0 when it is free and still sees a free
  // active neighbor; used for termination detection (a phase in which no
  // node had any candidate can never make progress again).
  std::vector<std::uint8_t> had_candidates(n, 0);

  IiNet net(g, opts.seed, IiBits{});
  net.set_thread_pool(opts.pool);
  net.set_shards(opts.shards);
  net.step_all_nodes(opts.step_all_nodes);
  const std::unique_ptr<faults::MessageFaultInjector> injector =
      faults::make_message_injector(opts.faults, opts.seed);
  if (injector != nullptr) net.set_message_faults(injector.get());

  const std::uint64_t max_phases = opts.max_phases != 0
                                       ? opts.max_phases
                                       : israeli_itai_default_max_phases(n);

  // Active-set contract: every free node keeps itself alive from stage
  // to stage (at stage 0 only while it still sees a live candidate — a
  // node whose neighbors all announced kMatched can never propose or be
  // proposed to again, the same freeze the lca oracle exploits).
  // Matched nodes drop out and are only woken by announcements, which
  // arrive as ordinary messages. This reproduces the step-everything
  // execution bit for bit: a node skipped here would neither send nor
  // mutate observable state if stepped.
  auto step = [&](IiNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const auto nbrs = ctx.graph().neighbors(v);
    const int stage = static_cast<int>(ctx.round() % 3);

    // Matched-announcements can arrive at any stage; process them first.
    // The inbox slot IS the arc position, so the flag update is direct.
    for (const auto& in : ctx.inbox()) {
      if (in.payload->type == IiType::kMatched) {
        neighbor_free[adj_offset[v] + in.slot] = 0;
      }
    }
    const bool free = matched_edge[v] == kInvalidEdge;

    if (stage == 0) {  // propose
      if (!free) return;
      coin[v] = ctx.rng().coin() ? 1 : 0;
      proposal_edge[v] = kInvalidEdge;
      // Count active free neighbors (for liveness tracking even when the
      // coin says "acceptor").
      std::uint32_t candidates = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (neighbor_free[adj_offset[v] + i] && active(nbrs[i].edge)) {
          ++candidates;
        }
      }
      had_candidates[v] = candidates > 0 ? 1 : 0;
      if (candidates > 0) ctx.keep_active();
      if (!coin[v] || candidates == 0) return;
      std::uint32_t pick = static_cast<std::uint32_t>(ctx.rng().below(candidates));
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (neighbor_free[adj_offset[v] + i] && active(nbrs[i].edge)) {
          if (pick == 0) {
            proposal_edge[v] = nbrs[i].edge;
            ctx.send(nbrs[i].edge, IiMessage{IiType::kPropose});
            break;
          }
          --pick;
        }
      }
    } else if (stage == 1) {  // accept
      if (free) ctx.keep_active();
      if (!free || coin[v]) return;
      std::vector<EdgeId> proposals;
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type == IiType::kPropose && active(in.edge)) {
          proposals.push_back(in.edge);
        }
      }
      if (proposals.empty()) return;
      const EdgeId chosen = proposals[ctx.rng().below(proposals.size())];
      matched_edge[v] = chosen;
      ctx.send(chosen, IiMessage{IiType::kAccept});
      for (const auto& inc : nbrs) {
        if (inc.edge != chosen) ctx.send(inc.edge, IiMessage{IiType::kMatched});
      }
    } else {  // stage 2: proposers learn their fate
      if (free) ctx.keep_active();
      if (!free || !coin[v] || proposal_edge[v] == kInvalidEdge) return;
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type == IiType::kAccept &&
            in.edge == proposal_edge[v]) {
          matched_edge[v] = proposal_edge[v];
          for (const auto& inc : nbrs) {
            if (inc.edge != proposal_edge[v]) {
              ctx.send(inc.edge, IiMessage{IiType::kMatched});
            }
          }
          break;
        }
      }
    }
  };

  bool converged = false;
  for (std::uint64_t phase = 0; phase < max_phases; ++phase) {
    std::fill(had_candidates.begin(), had_candidates.end(), 0);
    net.run_round(step);  // stage 0
    net.run_round(step);  // stage 1
    net.run_round(step);  // stage 2
    // `neighbor_free` flags only turn off on true matched-announcements,
    // so "no node saw a candidate" certifies maximality (stale flags can
    // only cause extra phases, never early termination).
    if (!simd::any_ne_u8(had_candidates.data(), n, 0)) {
      converged = true;
      break;
    }
  }

  // Resync under message faults: a dropped or belated accept leaves a
  // handshake half-committed — the acceptor believes it is matched on an
  // edge the proposer never claimed (or claimed differently). Reconcile
  // by freeing every vertex whose partner disagrees, refreshing the
  // free-flags in both directions around the freed region, and waking
  // exactly that neighborhood for a short burst of extra phases: local
  // repair, not a restart. Faults stay live during the burst, so sweep
  // until agreement or the budget runs out.
  std::uint32_t resyncs = 0;
  if (injector != nullptr) {
    for (std::uint32_t sweep = 0; sweep < opts.max_resyncs; ++sweep) {
      std::vector<NodeId> perturbed;
      for (NodeId v = 0; v < n; ++v) {
        const EdgeId e = matched_edge[v];
        if (e == kInvalidEdge) continue;
        if (matched_edge[g.other_endpoint(e, v)] != e) perturbed.push_back(v);
      }
      if (perturbed.empty()) break;
      ++resyncs;
      {
        telemetry::EventLog& elog = telemetry::EventLog::global();
        if (elog.recording()) {
          elog.emit(telemetry::EventKind::kResync, net.round(), sweep,
                    perturbed.size());
        }
      }
      for (const NodeId v : perturbed) {
        matched_edge[v] = kInvalidEdge;
        proposal_edge[v] = kInvalidEdge;
      }
      for (const NodeId v : perturbed) {
        net.activate(v);
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId w = nbrs[i].to;
          neighbor_free[adj_offset[v] + i] =
              matched_edge[w] == kInvalidEdge ? 1 : 0;
          // w's slot for v: v is free again (undoes a kMatched announce).
          const auto wnbrs = g.neighbors(w);
          for (std::size_t j = 0; j < wnbrs.size(); ++j) {
            if (wnbrs[j].to == v) {
              neighbor_free[adj_offset[w] + j] = 1;
              break;
            }
          }
          net.activate(w);
        }
      }
      constexpr std::uint64_t kResyncPhases = 8;
      for (std::uint64_t phase = 0; phase < kResyncPhases; ++phase) {
        std::fill(had_candidates.begin(), had_candidates.end(), 0);
        net.run_round(step);  // stage 0
        net.run_round(step);  // stage 1
        net.run_round(step);  // stage 2
        if (!simd::any_ne_u8(had_candidates.data(), n, 0)) break;
      }
    }
  }

  DistMatchingResult out;
  out.stats = net.stats();
  out.converged = converged;
  out.resyncs = resyncs;
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId e = matched_edge[v];
    if (e == kInvalidEdge || g.edge(e).u != v) continue;
    // Count the edge only when both endpoints claim it. Fault-free
    // executions always agree (the handshake is the agreement), so this
    // filter is vacuous there; under an exhausted resync budget it still
    // guarantees a valid matching: each vertex claims at most one edge,
    // so mutually-claimed edges can never share an endpoint.
    if (matched_edge[g.edge(e).v] == e) ids.push_back(e);
  }
  out.matching = Matching::from_edges(g, ids);
  return out;
}

}  // namespace lps
