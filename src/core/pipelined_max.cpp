#include "core/pipelined_max.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/engine.hpp"

namespace lps {

namespace {

struct ChunkMsg {
  std::uint32_t chunk;
};

struct ChunkBits {
  std::uint64_t bits;
  std::uint64_t operator()(const ChunkMsg&) const noexcept { return bits; }
};

using ChunkNet = SyncNetwork<ChunkMsg, ChunkBits>;

}  // namespace

PipelinedMaxResult pipelined_max(
    const Graph& g, NodeId root,
    const std::vector<std::optional<BigCounter>>& values, int chunk_bits,
    ThreadPool* pool, unsigned shards) {
  const NodeId n = g.num_nodes();
  if (chunk_bits < 1 || chunk_bits > 32) {
    throw std::invalid_argument("pipelined_max: chunk_bits out of range");
  }
  if (values.size() != n) {
    throw std::invalid_argument("pipelined_max: values size mismatch");
  }
  if (g.num_edges() + 1 != n) {
    throw std::invalid_argument("pipelined_max: graph is not a tree");
  }

  // BFS orientation toward the root.
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<NodeId> order{root};
  std::vector<char> seen(n, 0);
  seen[root] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      if (seen[inc.to]) continue;
      seen[inc.to] = 1;
      parent[inc.to] = v;
      parent_edge[inc.to] = inc.edge;
      depth[inc.to] = depth[v] + 1;
      order.push_back(inc.to);
    }
  }
  if (order.size() != n) {
    throw std::invalid_argument("pipelined_max: tree is not connected");
  }
  const std::uint32_t tree_depth =
      *std::max_element(depth.begin(), depth.end());

  // Pad every value to a common chunk count j.
  std::size_t max_bits = 1;
  bool any = false;
  for (const auto& v : values) {
    if (v.has_value()) {
      any = true;
      max_bits = std::max(max_bits, v->bit_size());
    }
  }
  const std::size_t j =
      (max_bits + static_cast<std::size_t>(chunk_bits) - 1) /
      static_cast<std::size_t>(chunk_bits);
  PipelinedMaxResult result;
  result.tree_depth = tree_depth;
  result.chunk_count = j;
  result.any_value = any;
  if (!any) return result;

  // Per-node chunk streams for the local value ("no value" = all-zero
  // stream marked absent so it can never win over a real value; we model
  // absence with a qualified flag).
  std::vector<std::vector<std::uint32_t>> own(n);
  std::vector<char> own_qualified(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (values[v].has_value()) {
      own[v] = values[v]->to_chunks(chunk_bits, j);
      own_qualified[v] = 1;
    }
  }

  // Per-child qualification flags at CSR arc positions (offsets[v] + i
  // for v's i-th incidence — the same indexing the engine's inbox slots
  // use), and the output stream each node emits (recorded at the root
  // to reassemble the max).
  const std::vector<std::uint64_t>& adj_offset = g.store().offsets;
  std::vector<std::uint8_t> child_qualified(adj_offset[n], 1);
  std::vector<std::vector<std::uint32_t>> emitted(n);

  ChunkNet net(g, 0, ChunkBits{static_cast<std::uint64_t>(chunk_bits)});
  net.set_thread_pool(pool);
  net.set_shards(shards);

  // Node at depth d emits chunk i at round (tree_depth - d) + i.
  //
  // Active-set contract: a node's first emission round is known up
  // front, so the caller activates each depth cohort at its window
  // start (restricting the round-0 default) and keep_active carries the
  // node through the rest of its j-chunk window; per-round cost tracks
  // the advancing wavefront instead of the whole tree.
  auto step = [&](ChunkNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const std::uint64_t round = ctx.round();
    const std::uint64_t start = tree_depth - depth[v];
    if (round < start || round >= start + j) return;
    if (round + 1 < start + j) ctx.keep_active();
    const std::size_t i = static_cast<std::size_t>(round - start);

    // Merge this position: own chunk (if still qualified) vs child
    // chunks that arrived this round from still-qualified children. The
    // inbox slot IS the child's arc position — no row scan.
    std::uint32_t best = 0;
    bool have = false;
    if (own_qualified[v]) {
      best = own[v][i];
      have = true;
    }
    std::vector<std::pair<std::size_t, std::uint32_t>> arrived;
    for (const auto& in : ctx.inbox()) {
      if (in.from == parent[v]) continue;
      const std::size_t arc = adj_offset[v] + in.slot;
      if (!child_qualified[arc]) continue;
      arrived.emplace_back(arc, in.payload->chunk);
      best = have ? std::max(best, in.payload->chunk) : in.payload->chunk;
      have = true;
    }
    if (!have) return;  // no qualified source reaches v
    // Disqualify losers at this position (MSB-first elimination).
    if (own_qualified[v] && own[v][i] < best) own_qualified[v] = 0;
    for (const auto& [arc, chunk] : arrived) {
      if (chunk < best) child_qualified[arc] = 0;
    }
    emitted[v].push_back(best);
    if (v != root) {
      ctx.send(parent_edge[v], ChunkMsg{best});
    }
  };

  // Bucket nodes by window start = tree_depth - depth (deepest first).
  std::vector<std::vector<NodeId>> starts(tree_depth + 1);
  for (NodeId v = 0; v < n; ++v) {
    starts[tree_depth - depth[v]].push_back(v);
  }
  net.restrict_initial_active();
  const std::uint64_t total_rounds = tree_depth + j + 1;
  for (std::uint64_t r = 0; r < total_rounds; ++r) {
    if (r < starts.size()) {
      for (NodeId v : starts[r]) net.activate(v);
    }
    net.run_round(step);
  }
  result.stats = net.stats();
  result.maximum = BigCounter::from_chunks(emitted[root], chunk_bits);
  return result;
}

}  // namespace lps
