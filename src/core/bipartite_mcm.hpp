// The bipartite CONGEST engine of Section 3.2:
//
//  * `bipartite_aug` — the subroutine Aug(H, M, l) used by Algorithm 4:
//    finds and applies a *maximal* set of vertex-disjoint augmenting
//    paths of length <= l, by iterating [Algorithm 3 counting -> token
//    selection (Lemma 3.7) -> traceback augmentation] until no free Y
//    node is reached. Every iteration augments at least one path (the
//    globally best token survives every meeting), and w.h.p. O(log N)
//    iterations suffice.
//
//  * `bipartite_mcm` — Theorem 3.8: the (1 - 1/(k+1))-MCM for bipartite
//    graphs, running Algorithm 1's phase loop l = 1, 3, ..., 2k-1 with
//    Aug as the per-phase engine. Messages are O(l log Delta + log n)
//    bits (counts, token values); rounds O(k^3 log Delta + k^2 log n).
//
// Token selection details (faithful to the paper, see DESIGN.md for the
// two documented substitutions — log-domain order-statistics sampling
// and staggered launches):
//  * every free Y node y with n_y > 0 paths draws the winner value of
//    its n_y paths and routes one token backwards, sampling each
//    backward edge with probability c_v[i]/n_v;
//  * tokens from depth-d(y) leaders launch at round l - d(y), so all
//    tokens cross a depth-d node in the same round and conflicts resolve
//    locally by keeping the best token;
//  * a token reaching a free X node traces back along its recorded
//    trail, flipping matched edges (the augmentation).
#pragma once

#include <vector>

#include "core/bipartite_counting.hpp"
#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct AugOptions {
  std::uint64_t seed = 1;
  /// Iteration cap; 0 = auto (generous multiple of log of the conflict
  /// graph size bound n * Delta^{(l+1)/2}).
  std::uint64_t max_iterations = 0;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct AugResult {
  std::size_t paths_applied = 0;
  std::uint64_t iterations = 0;
  NetStats stats;
  bool converged = false;  // no augmenting path of length <= l remains
};

/// Applies a maximal set of disjoint augmenting paths of length <=
/// max_len (odd) to `m` in place. `side` must 2-color the active
/// subgraph (side 0 = X); `active_edges` empty means all edges.
AugResult bipartite_aug(const Graph& g, const std::vector<std::uint8_t>& side,
                        Matching& m, int max_len,
                        const std::vector<char>& active_edges,
                        const AugOptions& opts = {});

struct BipartiteMcmOptions {
  int k = 3;  // target ratio 1 - 1/(k+1); paper states 1 - 1/k via l=2k-1
  std::uint64_t seed = 1;
  std::uint64_t max_iterations_per_phase = 0;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct BipartitePhaseInfo {
  int l = 0;
  std::uint64_t iterations = 0;
  std::size_t paths_applied = 0;
};

struct BipartiteMcmResult {
  Matching matching;
  NetStats stats;
  std::vector<BipartitePhaseInfo> phases;
  bool converged = false;
};

/// Theorem 3.8 driver on a bipartite graph.
BipartiteMcmResult bipartite_mcm(const Graph& g,
                                 const std::vector<std::uint8_t>& side,
                                 const BipartiteMcmOptions& opts = {});

}  // namespace lps
