#include "core/local_ball.hpp"

#include <unordered_set>

#include "runtime/engine.hpp"

namespace lps {

namespace {

struct GossipMessage {
  std::vector<LabeledEdge> edges;
};

/// Bits per edge description: two node ids of ceil(log2 n) bits plus
/// the matched flag (the serialization a real implementation would use).
struct GossipBits {
  std::uint64_t id_bits;
  std::uint64_t operator()(const GossipMessage& msg) const {
    return static_cast<std::uint64_t>(msg.edges.size()) * (2 * id_bits + 1);
  }
};

using GossipNet = SyncNetwork<GossipMessage, GossipBits>;

}  // namespace

BallViews collect_balls(const Graph& g, const Matching& m, int radius,
                        ThreadPool* pool, unsigned shards) {
  const NodeId n = g.num_nodes();
  std::uint64_t id_bits = 1;
  while ((std::uint64_t{1} << id_bits) < n) ++id_bits;

  BallViews out;
  out.view.assign(n, {});
  std::vector<std::unordered_set<std::uint64_t>> known(n);
  std::vector<std::vector<LabeledEdge>> delta(n);
  auto edge_key = [](const LabeledEdge& e) {
    return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
  };

  // Seed: every node knows its incident edges.
  for (NodeId v = 0; v < n; ++v) {
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      const Edge& ed = g.edge(inc.edge);
      const LabeledEdge le{ed.u, ed.v, m.contains(g, inc.edge)};
      if (known[v].insert(edge_key(le)).second) {
        out.view[v].push_back(le);
        delta[v].push_back(le);
      }
    }
  }

  GossipNet net(g, /*seed=*/0, GossipBits{id_bits});
  net.set_thread_pool(pool);
  net.set_shards(shards);

  // Purely message-driven after the round-0 seed flood (a node with no
  // arrivals has nothing fresh to forward), so the active-set default —
  // everyone in round 0, receivers afterwards — needs no keep_active.
  auto step = [&](GossipNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    // Absorb what neighbors forwarded last round.
    std::vector<LabeledEdge> fresh;
    for (const auto& in : ctx.inbox()) {
      for (const LabeledEdge& le : in.payload->edges) {
        if (known[v].insert(edge_key(le)).second) {
          out.view[v].push_back(le);
          fresh.push_back(le);
        }
      }
    }
    // Forward this round's delta (round 0 forwards the seed). A message
    // sent in round r is delivered in round r+1, so information from
    // distance d arrives during round d; sends are useful through round
    // radius-1 and round `radius` is receive-only.
    std::vector<LabeledEdge>& to_send =
        ctx.round() == 0 ? delta[v] : fresh;
    const bool may_send = ctx.round() < static_cast<std::uint64_t>(radius);
    if (!to_send.empty() && may_send) {
      ctx.send_all(GossipMessage{to_send});
    }
    if (ctx.round() != 0) delta[v] = std::move(fresh);
  };

  if (radius > 0) {
    for (int r = 0; r <= radius; ++r) net.run_round(step);
  }
  out.stats = net.stats();
  return out;
}

}  // namespace lps
