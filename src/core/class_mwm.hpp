// Constant-factor distributed MWM in O(log n + log(w_max/w_min)) rounds:
// the stand-in for the delta-MWM black box of reference [18]
// (Lotker–Patt-Shamir–Rosén, PODC'07) that Algorithm 5 consumes. See
// DESIGN.md §4 for the substitution rationale — Algorithm 5's analysis
// (Lemma 4.3) only needs *some* constant delta and O(log n) rounds.
//
// Construction:
//  1. Partition edges into geometric weight classes
//     C_i = { e : w(e) in [base^i, base^{i+1}) }.
//  2. Run Israeli–Itai maximal matching on every class simultaneously —
//     the classes partition the edge set, so the per-class protocols use
//     disjoint channels and compose in parallel (rounds = max over
//     classes, messages summed).
//  3. Survival sweep from the heaviest class down: an edge of M_i
//     survives iff no adjacent surviving edge lies in a strictly
//     heavier class. One round per class (survivors announce).
//
// The survivors form a matching whose weight is a constant fraction of
// the optimum (rounding to classes costs a factor base; cross-class
// kills cost a constant for geometric class weights); the benches
// measure delta ~= 0.5-0.65 on our workloads, comfortably above the 1/5
// the paper plugs into Algorithm 5.
#pragma once

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct ClassMwmOptions {
  std::uint64_t seed = 1;
  double class_base = 2.0;  // geometric class growth factor (> 1)
  std::uint64_t max_phases_per_class = 0;  // Israeli–Itai cap; 0 = auto
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct ClassMwmResult {
  Matching matching;
  NetStats stats;
  std::size_t num_classes = 0;
  bool converged = true;
};

ClassMwmResult class_mwm(const WeightedGraph& wg,
                         const ClassMwmOptions& opts = {});

}  // namespace lps
