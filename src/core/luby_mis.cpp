#include "core/luby_mis.hpp"

#include <algorithm>
#include <cmath>

#include "faults/injector.hpp"
#include "runtime/engine.hpp"
#include "runtime/simd.hpp"

namespace lps {

namespace {

enum class MisType : std::uint8_t { kValue, kSelected };

struct MisMessage {
  MisType type;
  std::uint64_t value;
};

/// Type bit + 64-bit value (the paper draws from [1, N^4], i.e.
/// O(log N) bits; 64 bits covers N up to 2^16 exactly and we treat the
/// value as the O(log N)-bit payload).
struct MisBits {
  std::uint64_t operator()(const MisMessage& m) const noexcept {
    return m.type == MisType::kValue ? 65 : 1;
  }
};

using MisNet = SyncNetwork<MisMessage, MisBits>;

enum class NodeState : std::uint8_t { kLive, kIn, kOut };

/// Convergence test, a dense byte scan: any node still kLive? The state
/// column is a contiguous u8 array, so this is one simd sweep with the
/// early-exit granularity picked by simd::block_bytes().
bool any_live_node(const std::vector<NodeState>& state) {
  return simd::any_eq_u8(reinterpret_cast<const std::uint8_t*>(state.data()),
                         state.size(),
                         static_cast<std::uint8_t>(NodeState::kLive));
}

/// Shared MIS reconciliation under message faults (luby + abi). Message
/// loss can admit two adjacent winners (a dropped value/mark hides the
/// competitor) or leave a node eliminated by a winner that is itself
/// being demoted. Each sweep restores a consistent closure — demote the
/// larger-id member of every adjacent kIn pair, then recompute kOut iff
/// dominated by a surviving kIn — wakes the live region, and re-runs
/// protocol phases via `run_burst`. Faults stay live during bursts, so
/// sweeps repeat up to `max_resyncs`; a final enforcement pass makes
/// independence unconditional even on an exhausted budget (maximality
/// is then best-effort). Returns the number of corrective sweeps.
template <typename Net, typename RunBurst>
std::uint32_t mis_resync(const Graph& g, std::vector<NodeState>& state,
                         Net& net, std::uint32_t max_resyncs,
                         RunBurst&& run_burst) {
  const NodeId n = g.num_nodes();
  std::uint32_t resyncs = 0;
  for (std::uint32_t sweep = 0; sweep < max_resyncs; ++sweep) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      if (state[e.u] == NodeState::kIn && state[e.v] == NodeState::kIn) {
        state[std::max(e.u, e.v)] = NodeState::kLive;
        changed = true;
      }
    }
    std::vector<NodeId> live;
    for (NodeId v = 0; v < n; ++v) {
      if (state[v] == NodeState::kIn) continue;
      bool dominated = false;
      for (const Graph::Incidence& inc : g.neighbors(v)) {
        if (state[inc.to] == NodeState::kIn) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        if (state[v] == NodeState::kLive) {
          state[v] = NodeState::kOut;
          changed = true;
        }
      } else {
        if (state[v] == NodeState::kOut) {
          state[v] = NodeState::kLive;
          changed = true;
        }
        if (state[v] == NodeState::kLive) live.push_back(v);
      }
    }
    // No live nodes after reconciliation: independent and maximal.
    if (live.empty()) break;
    if (changed) {
      ++resyncs;
      telemetry::EventLog& elog = telemetry::EventLog::global();
      if (elog.recording()) {
        elog.emit(telemetry::EventKind::kResync, net.round(), sweep,
                  live.size());
      }
    }
    for (const NodeId v : live) net.activate(v);
    run_burst();
  }
  // Unconditional independence, even when the sweep budget ran out with
  // faults still minting conflicts.
  for (const Edge& e : g.edges()) {
    if (state[e.u] == NodeState::kIn && state[e.v] == NodeState::kIn) {
      state[std::max(e.u, e.v)] = NodeState::kOut;
    }
  }
  return resyncs;
}

}  // namespace

MisResult luby_mis(const Graph& g, const MisOptions& opts) {
  const NodeId n = g.num_nodes();
  std::vector<NodeState> state(n, NodeState::kLive);
  std::vector<std::uint64_t> my_value(n, 0);

  MisNet net(g, opts.seed, MisBits{});
  net.set_thread_pool(opts.pool);
  net.set_shards(opts.shards);
  const std::unique_ptr<faults::MessageFaultInjector> injector =
      faults::make_message_injector(opts.faults, opts.seed);
  if (injector != nullptr) net.set_message_faults(injector.get());

  const std::uint64_t max_phases =
      opts.max_phases != 0
          ? opts.max_phases
          : 40 + 12 * static_cast<std::uint64_t>(
                          std::ceil(std::log2(static_cast<double>(n) + 1.0)));

  // Active-set contract: live nodes keep themselves alive every stage;
  // kIn/kOut nodes drop out and are only woken by kSelected arrivals.
  auto step = [&](MisNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const int stage = static_cast<int>(ctx.round() % 2);
    if (stage == 0) {
      // Handle eliminations decided at the end of the previous phase.
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type == MisType::kSelected &&
            state[v] == NodeState::kLive) {
          state[v] = NodeState::kOut;
        }
      }
      if (state[v] != NodeState::kLive) return;
      ctx.keep_active();
      my_value[v] = ctx.rng()();
      ctx.send_all(MisMessage{MisType::kValue, my_value[v]});
    } else {
      if (state[v] != NodeState::kLive) return;
      ctx.keep_active();
      bool win = true;
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type != MisType::kValue) continue;
        const std::uint64_t theirs = in.payload->value;
        if (theirs > my_value[v] || (theirs == my_value[v] && in.from < v)) {
          win = false;
          break;
        }
      }
      if (win) {
        state[v] = NodeState::kIn;
        ctx.send_all(MisMessage{MisType::kSelected, 0});
      }
    }
  };

  MisResult out;
  for (std::uint64_t phase = 0; phase < max_phases; ++phase) {
    net.run_round(step);
    net.run_round(step);
    if (!any_live_node(state)) {
      out.converged = true;
      break;
    }
  }
  if (injector != nullptr) {
    out.resyncs = mis_resync(g, state, net, opts.max_resyncs, [&] {
      for (std::uint64_t phase = 0; phase < 8; ++phase) {
        net.run_round(step);
        net.run_round(step);
        if (!any_live_node(state)) break;
      }
    });
  }
  out.stats = net.stats();
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (state[v] == NodeState::kIn) out.in_mis[v] = 1;
  }
  return out;
}

namespace {

enum class AbiType : std::uint8_t { kMark, kSelected, kDead };

struct AbiMessage {
  AbiType type;
  std::uint32_t degree;  // kMark only
};

struct AbiBits {
  std::uint64_t operator()(const AbiMessage& m) const noexcept {
    return m.type == AbiType::kMark ? 34 : 2;
  }
};

using AbiNet = SyncNetwork<AbiMessage, AbiBits>;

}  // namespace

MisResult abi_mis(const Graph& g, const MisOptions& opts) {
  const NodeId n = g.num_nodes();
  std::vector<NodeState> state(n, NodeState::kLive);
  std::vector<char> marked(n, 0);
  std::vector<std::uint32_t> live_degree(n);
  for (NodeId v = 0; v < n; ++v) live_degree[v] = g.degree(v);

  AbiNet net(g, opts.seed, AbiBits{});
  net.set_thread_pool(opts.pool);
  net.set_shards(opts.shards);
  const std::unique_ptr<faults::MessageFaultInjector> injector =
      faults::make_message_injector(opts.faults, opts.seed);
  if (injector != nullptr) net.set_message_faults(injector.get());

  const std::uint64_t max_phases =
      opts.max_phases != 0
          ? opts.max_phases
          : 60 + 16 * static_cast<std::uint64_t>(
                          std::ceil(std::log2(static_cast<double>(n) + 1.0)));

  // Active-set contract: live nodes keep themselves alive every stage
  // (even unmarked ones — they must reach the next stage 0 to redraw);
  // kIn/kOut nodes drop out and are only woken by kSelected/kDead
  // arrivals, under which their step mutates exactly what the inbox
  // dictates, same as when every node is stepped.
  auto step = [&](AbiNet::Ctx& ctx) {
    const NodeId v = ctx.id();
    const int stage = static_cast<int>(ctx.round() % 3);
    if (stage == 0) {
      // Consume deaths decided at stage 2 of the previous phase.
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type == AbiType::kDead && live_degree[v] > 0) {
          --live_degree[v];
        }
      }
      if (state[v] != NodeState::kLive) return;
      ctx.keep_active();
      const double p =
          live_degree[v] == 0 ? 1.0
                              : 1.0 / (2.0 * static_cast<double>(live_degree[v]));
      marked[v] = ctx.rng().bernoulli(p) ? 1 : 0;
      if (marked[v]) {
        ctx.send_all(AbiMessage{AbiType::kMark, live_degree[v]});
      }
    } else if (stage == 1) {
      if (state[v] == NodeState::kLive) ctx.keep_active();
      if (state[v] != NodeState::kLive || !marked[v]) return;
      // Unmark if a marked neighbor beats us by (degree, id).
      bool win = true;
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type != AbiType::kMark) continue;
        const std::uint32_t theirs = in.payload->degree;
        if (theirs > live_degree[v] ||
            (theirs == live_degree[v] && in.from > v)) {
          win = false;
          break;
        }
      }
      if (win) {
        state[v] = NodeState::kIn;
        ctx.send_all(AbiMessage{AbiType::kSelected, 0});
      }
    } else {  // stage 2: eliminations + death notices
      if (state[v] != NodeState::kLive) return;
      ctx.keep_active();
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type == AbiType::kSelected) {
          state[v] = NodeState::kOut;
          ctx.send_all(AbiMessage{AbiType::kDead, 0});
          return;
        }
      }
    }
  };

  MisResult out;
  for (std::uint64_t phase = 0; phase < max_phases; ++phase) {
    net.run_round(step);
    net.run_round(step);
    net.run_round(step);
    if (!any_live_node(state)) {
      out.converged = true;
      break;
    }
  }
  if (injector != nullptr) {
    // live_degree may be stale after reconciliation (dropped kDead
    // notices); it only biases marking probabilities and tie-breaks, so
    // the re-run stays correct, just possibly slower.
    out.resyncs = mis_resync(g, state, net, opts.max_resyncs, [&] {
      for (std::uint64_t phase = 0; phase < 8; ++phase) {
        net.run_round(step);
        net.run_round(step);
        net.run_round(step);
        if (!any_live_node(state)) break;
      }
    });
  }
  out.stats = net.stats();
  out.in_mis.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (state[v] == NodeState::kIn) out.in_mis[v] = 1;
  }
  return out;
}

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  for (const Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<char>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      if (in_set[inc.to]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace lps
