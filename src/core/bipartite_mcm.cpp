#include "core/bipartite_mcm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "runtime/engine.hpp"
#include "runtime/simd.hpp"
#include "util/rng.hpp"

namespace lps {

namespace {

enum class TokType : std::uint8_t { kToken, kConfirm };

struct TokenMessage {
  TokType type;
  /// Log-domain order statistic: D = ln(-ln u) - ln(n_y); smaller wins.
  double value = 0.0;
  NodeId leader = kInvalidNode;
};

/// The paper's token carries an O(l log Delta)-bit number plus a leader
/// id; we meter the value at 64 bits and the id at ceil(log2 n).
struct TokenBits {
  std::uint64_t id_bits;
  std::uint64_t operator()(const TokenMessage& m) const noexcept {
    return m.type == TokType::kToken ? 64 + id_bits + 1 : id_bits + 1;
  }
};

using TokenNet = SyncNetwork<TokenMessage, TokenBits>;

/// Draw the Lemma 3.7 winner value for a leader with n paths: the max of
/// n i.i.d. uniforms, represented order-faithfully in log-domain.
/// max(U_1..U_n) ~ U^(1/n); D = ln(-ln(U^(1/n))) = ln(-ln u) - ln n,
/// and u^(1/n) increasing in value  <=>  D decreasing, so smaller D wins.
double draw_winner_value(const BigCounter& n, Rng& rng) {
  const double u = rng.uniform01_open();
  const double ln_n = n.log2() * 0.6931471805599453;  // ln 2
  return std::log(-std::log(u)) - ln_n;
}

/// Sample an incidence slot with probability counts[i] / total.
std::size_t sample_slot(const std::vector<BigCounter>& counts,
                        const BigCounter& total, Rng& rng) {
  BigCounter r = BigCounter::sample_below(total, rng);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i].is_zero()) continue;
    if (r < counts[i]) return i;
    r -= counts[i];
  }
  throw std::logic_error("sample_slot: counts do not sum to total");
}

/// Per-iteration token state for one node.
struct TokenState {
  bool forwarded = false;
  NodeId forwarded_leader = kInvalidNode;
  EdgeId arrival_edge = kInvalidEdge;  // edge the winning token came in on
  EdgeId forward_edge = kInvalidEdge;  // edge it was sent out on
};

}  // namespace

AugResult bipartite_aug(const Graph& g, const std::vector<std::uint8_t>& side,
                        Matching& m, int max_len,
                        const std::vector<char>& active_edges,
                        const AugOptions& opts) {
  const NodeId n = g.num_nodes();
  if (max_len < 1 || max_len % 2 == 0) {
    throw std::invalid_argument("bipartite_aug: max_len must be odd");
  }
  std::uint64_t id_bits = 1;
  while ((std::uint64_t{1} << id_bits) < n + 1) ++id_bits;

  // Iteration budget: O(log N) w.h.p. where N <= n * Delta^{(l+1)/2}
  // (the paper's conflict-graph size bound), plus slack.
  std::uint64_t max_iterations = opts.max_iterations;
  if (max_iterations == 0) {
    const double log_n = std::log2(static_cast<double>(n) + 2.0);
    const double log_delta =
        std::log2(static_cast<double>(g.max_degree()) + 2.0);
    const double log_conflict =
        log_n + (static_cast<double>(max_len + 1) / 2.0) * log_delta;
    max_iterations =
        64 + static_cast<std::uint64_t>(16.0 * log_conflict);
  }

  AugResult result;
  const int l = max_len;

  for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
    // --- Phase 1: Algorithm 3 counting. ---
    CountingResult counting =
        count_augmenting_paths(g, side, m, l, active_edges, opts.pool,
                               opts.shards);
    result.stats.merge(counting.stats);
    ++result.iterations;

    // Dense byte scan over the endpoint column (free Y nodes reached).
    const bool any_endpoint = simd::any_ne_u8(
        reinterpret_cast<const std::uint8_t*>(counting.endpoint.data()), n, 0);
    if (!any_endpoint) {
      result.converged = true;
      break;
    }

    // --- Phase 2: token selection + traceback (Lemma 3.7). ---
    std::vector<TokenState> tok(n);
    std::vector<char> flipped(n, 0);
    std::vector<EdgeId> new_match_edge(n, kInvalidEdge);

    TokenNet net(g, splitmix64(opts.seed ^ (iter * 0x9e3779b97f4a7c15ULL)),
                 TokenBits{id_bits});
    net.set_thread_pool(opts.pool);
    net.set_shards(opts.shards);

    const std::uint64_t token_rounds = static_cast<std::uint64_t>(l);
    const std::uint64_t traceback_start = token_rounds + 1;

    // Active-set contract: depth-d nodes act spontaneously only at token
    // round l - d, so the driver loop below activates each depth cohort
    // at exactly that round; everything else is message-driven (tokens
    // arrive at a node in its action round, confirms walk back up), and
    // the depth-0 winners keep themselves alive across the one-round gap
    // between receiving the token and launching the traceback.
    auto step = [&](TokenNet::Ctx& ctx) {
      const NodeId v = ctx.id();
      const std::uint64_t round = ctx.round();
      const std::uint32_t d = counting.depth[v];

      if (round <= token_rounds) {
        // Token phase. Nodes at depth d act at round l - d: leaders
        // launch, interior nodes resolve arrivals and forward.
        if (d == kUnreached ||
            round != token_rounds - static_cast<std::uint64_t>(d)) {
          return;
        }
        const bool is_leader = counting.is_path_endpoint(v);
        double best_value = std::numeric_limits<double>::infinity();
        NodeId best_leader = kInvalidNode;
        EdgeId best_edge = kInvalidEdge;
        if (is_leader) {
          best_value = draw_winner_value(counting.total[v], ctx.rng());
          best_leader = v;
        } else {
          for (const auto& in : ctx.inbox()) {
            if (in.payload->type != TokType::kToken) continue;
            const double val = in.payload->value;
            const NodeId led = in.payload->leader;
            if (val < best_value ||
                (val == best_value && led < best_leader)) {
              best_value = val;
              best_leader = led;
              best_edge = in.edge;
            }
          }
          if (best_leader == kInvalidNode) return;  // no token reached v
        }
        tok[v].arrival_edge = best_edge;
        if (d == 0) {
          // Free X endpoint: the token wins; traceback starts next phase.
          tok[v].forwarded = true;  // marks "winning endpoint"
          tok[v].forwarded_leader = best_leader;
          ctx.keep_active();  // flips + confirms at traceback_start
          return;
        }
        // Choose the backward edge: Y samples by counts, X follows its
        // matched edge (which is exactly the single counted slot).
        const auto nbrs = ctx.graph().neighbors(v);
        const std::size_t slot =
            sample_slot(counting.counts[v], counting.total[v], ctx.rng());
        const EdgeId fwd = nbrs[slot].edge;
        tok[v].forwarded = true;
        tok[v].forwarded_leader = best_leader;
        tok[v].forward_edge = fwd;
        ctx.send(fwd, TokenMessage{TokType::kToken, best_value, best_leader});
        return;
      }

      // Traceback phase: round traceback_start + t handles depth-t nodes.
      if (d == kUnreached) return;
      const std::uint64_t my_round = traceback_start + d;
      if (round != my_round) return;
      if (d == 0) {
        // Winning free X endpoint: flip and send confirm up its trail.
        if (!tok[v].forwarded) return;
        flipped[v] = 1;
        new_match_edge[v] = tok[v].arrival_edge;
        ctx.send(tok[v].arrival_edge,
                 TokenMessage{TokType::kConfirm, 0.0, tok[v].forwarded_leader});
        return;
      }
      // Interior/leader node: accept a confirm only for the token we
      // actually forwarded, arriving back on our forward edge.
      for (const auto& in : ctx.inbox()) {
        if (in.payload->type != TokType::kConfirm) continue;
        if (!tok[v].forwarded || in.payload->leader != tok[v].forwarded_leader ||
            in.edge != tok[v].forward_edge) {
          continue;
        }
        flipped[v] = 1;
        // New matched edge: towards lower depth for odd-depth (Y) nodes,
        // towards higher depth for even-depth (X) nodes.
        new_match_edge[v] =
            (d % 2 == 1) ? tok[v].forward_edge : tok[v].arrival_edge;
        if (tok[v].arrival_edge != kInvalidEdge) {
          ctx.send(tok[v].arrival_edge,
                   TokenMessage{TokType::kConfirm, 0.0, in.payload->leader});
        }
        break;
      }
    };

    // Bucket reached nodes by action round l - depth for cohort
    // activation (cost: one pass over reached nodes per iteration).
    std::vector<std::vector<NodeId>> cohorts(token_rounds + 1);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t d = counting.depth[v];
      if (d != kUnreached && d <= token_rounds) {
        cohorts[token_rounds - d].push_back(v);
      }
    }
    net.restrict_initial_active();
    // Token rounds 0..l, traceback rounds l+1..2l+1.
    const std::uint64_t total_rounds = traceback_start + token_rounds + 1;
    for (std::uint64_t r = 0; r < total_rounds; ++r) {
      if (r < cohorts.size()) {
        for (NodeId v : cohorts[r]) net.activate(v);
      }
      net.run_round(step);
    }
    result.stats.merge(net.stats());

    // --- Apply the flips to the global matching. ---
    // Every path edge is reported by both of its endpoints (old matched
    // edges by both interior endpoints; new edges by both nodes pairing
    // up), so each toggled edge appears exactly twice.
    std::vector<EdgeId> toggles;
    for (NodeId v = 0; v < n; ++v) {
      if (!flipped[v]) continue;
      if (!m.is_free(v)) toggles.push_back(m.matched_edge(v));
      toggles.push_back(new_match_edge[v]);
    }
    std::sort(toggles.begin(), toggles.end());
    std::vector<EdgeId> unique_toggles;
    for (std::size_t i = 0; i < toggles.size();) {
      std::size_t j = i;
      while (j < toggles.size() && toggles[j] == toggles[i]) ++j;
      if (j - i != 2) {
        throw std::logic_error("bipartite_aug: inconsistent flip parity");
      }
      unique_toggles.push_back(toggles[i]);
      i = j;
    }
    if (unique_toggles.empty()) {
      throw std::logic_error(
          "bipartite_aug: an iteration with endpoints selected no path");
    }
    m.symmetric_difference(g, unique_toggles);
    // Each confirmed path has exactly one depth-0 endpoint.
    for (NodeId v = 0; v < n; ++v) {
      if (flipped[v] && counting.depth[v] == 0) ++result.paths_applied;
    }
  }
  return result;
}

BipartiteMcmResult bipartite_mcm(const Graph& g,
                                 const std::vector<std::uint8_t>& side,
                                 const BipartiteMcmOptions& opts) {
  if (opts.k < 1) throw std::invalid_argument("bipartite_mcm: k must be >= 1");
  BipartiteMcmResult result;
  result.matching = Matching(g.num_nodes());
  result.converged = true;
  for (int l = 1; l <= 2 * opts.k - 1; l += 2) {
    AugOptions aug_opts;
    aug_opts.seed = splitmix64(opts.seed ^ (0xb1ca00 + l));
    aug_opts.max_iterations = opts.max_iterations_per_phase;
    aug_opts.pool = opts.pool;
    aug_opts.shards = opts.shards;
    AugResult aug = bipartite_aug(g, side, result.matching, l, {}, aug_opts);
    result.stats.merge(aug.stats);
    result.phases.push_back({l, aug.iterations, aug.paths_applied});
    result.converged = result.converged && aug.converged;
  }
  return result;
}

}  // namespace lps
