// Hoepman's deterministic distributed 1/2-MWM (reference [11] of the
// paper: "a 1/2-MWM can be computed deterministically in O(n) time"),
// itself a distributed formulation of Preis's locally-heaviest-edge
// algorithm.
//
// Protocol (deterministic, no randomness at all):
//  * every free node points at its heaviest alive incident edge (ties
//    broken by edge id) and re-sends a request on it each round;
//  * when two nodes point at each other they both see the partner's
//    request while pointing — the edge joins the matching and both
//    endpoints send `drop` on all their other edges;
//  * a node whose pointed-at edge is dropped re-targets.
// The globally heaviest alive edge is always mutually pointed at, so
// progress is guaranteed; the increasing-weight path drives the protocol
// through Theta(n) rounds (the paper's motivation for preferring
// O(log n) randomized algorithms), which bench_theorems' BASE.b
// experiment demonstrates.
#pragma once

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {

struct HoepmanOptions {
  /// Round cap; 0 = 4n + 16.
  std::uint64_t max_rounds = 0;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct HoepmanResult {
  Matching matching;
  NetStats stats;
  bool converged = false;
};

HoepmanResult hoepman_mwm(const WeightedGraph& wg,
                          const HoepmanOptions& opts = {});

}  // namespace lps
