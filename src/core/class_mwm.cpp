#include "core/class_mwm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/israeli_itai.hpp"
#include "util/rng.hpp"

namespace lps {

ClassMwmResult class_mwm(const WeightedGraph& wg,
                         const ClassMwmOptions& opts) {
  const Graph& g = wg.graph;
  if (!(opts.class_base > 1.0)) {
    throw std::invalid_argument("class_mwm: class_base must be > 1");
  }
  ClassMwmResult result;
  result.matching = Matching(g.num_nodes());
  if (g.num_edges() == 0) return result;

  // Class index per edge, shifted to start at 0.
  const double log_base = std::log(opts.class_base);
  std::vector<int> cls(g.num_edges());
  int lo = std::numeric_limits<int>::max();
  int hi = std::numeric_limits<int>::min();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    cls[e] = static_cast<int>(std::floor(std::log(wg.weight(e)) / log_base));
    lo = std::min(lo, cls[e]);
    hi = std::max(hi, cls[e]);
  }
  const std::size_t num_classes = static_cast<std::size_t>(hi - lo + 1);
  result.num_classes = num_classes;

  // Step 2: per-class maximal matchings, composed in parallel (the
  // classes partition E, so their channel sets are disjoint: the round
  // count of the simultaneous run is the max over classes).
  std::vector<std::vector<EdgeId>> class_matchings(num_classes);
  std::uint64_t parallel_rounds = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::vector<char> mask(g.num_edges(), 0);
    bool nonempty = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (cls[e] == lo + static_cast<int>(c)) {
        mask[e] = 1;
        nonempty = true;
      }
    }
    if (!nonempty) continue;
    IsraeliItaiOptions ii;
    ii.seed = splitmix64(opts.seed ^ (0x11aa00 + c));
    ii.max_phases = opts.max_phases_per_class;
    ii.active_edges = std::move(mask);
    ii.pool = opts.pool;
    ii.shards = opts.shards;
    DistMatchingResult mm = israeli_itai(g, ii);
    result.converged = result.converged && mm.converged;
    class_matchings[c] = mm.matching.edge_ids(g);
    parallel_rounds = std::max(parallel_rounds, mm.stats.rounds);
    // Messages/bits add up across classes; rounds compose in parallel.
    NetStats msgs = mm.stats;
    msgs.rounds = 0;
    result.stats.merge(msgs);
  }
  result.stats.rounds += parallel_rounds;

  // Step 3: survival sweep, heaviest class first. One round per class:
  // the survivors of the current level announce themselves (O(log n)-bit
  // messages from both endpoints); edges of lighter classes die when
  // they hear an adjacent survivor. Within a level there are no
  // conflicts (each M_i is a matching), so endpoints are only marked
  // killed after the whole level is decided.
  std::vector<char> endpoint_killed(g.num_nodes(), 0);
  std::vector<EdgeId> survivors;
  NetStats sweep;
  sweep.rounds = num_classes;
  std::uint64_t id_bits = 1;
  while ((std::uint64_t{1} << id_bits) < g.num_nodes() + 1) ++id_bits;
  for (std::size_t c = num_classes; c-- > 0;) {
    std::vector<EdgeId> level;
    for (EdgeId e : class_matchings[c]) {
      const Edge& ed = g.edge(e);
      if (endpoint_killed[ed.u] || endpoint_killed[ed.v]) continue;
      level.push_back(e);
    }
    for (EdgeId e : level) {
      const Edge& ed = g.edge(e);
      endpoint_killed[ed.u] = 1;
      endpoint_killed[ed.v] = 1;
      // Announcements from both endpoints to all their neighbors.
      sweep.messages += g.degree(ed.u) + g.degree(ed.v);
      sweep.total_bits += (g.degree(ed.u) + g.degree(ed.v)) * id_bits;
      sweep.max_message_bits = std::max(sweep.max_message_bits, id_bits);
      survivors.push_back(e);
    }
  }
  result.stats.merge(sweep);
  result.matching = Matching::from_edges(g, survivors);
  return result;
}

}  // namespace lps
