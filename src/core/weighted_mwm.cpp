#include "core/weighted_mwm.hpp"

#include <cmath>
#include <stdexcept>

#include "core/class_mwm.hpp"
#include "core/gain.hpp"
#include "runtime/simd.hpp"
#include "seq/greedy.hpp"
#include "util/rng.hpp"

namespace lps {

MwmBlackBox class_mwm_black_box(ThreadPool* pool, unsigned shards) {
  return [pool, shards](const WeightedGraph& wg, std::uint64_t seed,
                        NetStats* stats) {
    ClassMwmOptions opts;
    opts.seed = seed;
    opts.pool = pool;
    opts.shards = shards;
    ClassMwmResult res = class_mwm(wg, opts);
    if (stats != nullptr) stats->merge(res.stats);
    return std::move(res.matching);
  };
}

MwmBlackBox greedy_black_box() {
  return [](const WeightedGraph& wg, std::uint64_t, NetStats*) {
    return greedy_mwm(wg);
  };
}

std::uint64_t weighted_mwm_iteration_budget(double delta, double eps) {
  return static_cast<std::uint64_t>(
      std::ceil(3.0 / (2.0 * delta) * std::log(2.0 / eps)));
}

WeightedMwmResult weighted_mwm(const WeightedGraph& wg,
                               const WeightedMwmOptions& opts) {
  if (!(opts.eps > 0.0) || opts.eps >= 1.0) {
    throw std::invalid_argument("weighted_mwm: eps must be in (0,1)");
  }
  if (!(opts.delta > 0.0) || opts.delta > 0.5) {
    throw std::invalid_argument("weighted_mwm: delta must be in (0, 1/2]");
  }
  const Graph& g = wg.graph;
  const MwmBlackBox black_box =
      opts.black_box ? opts.black_box
                     : class_mwm_black_box(opts.pool, opts.shards);
  const std::uint64_t iterations =
      opts.max_iterations != 0
          ? opts.max_iterations
          : weighted_mwm_iteration_budget(opts.delta, opts.eps);

  WeightedMwmResult result;
  result.matching = Matching(g.num_nodes());

  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    // Line 3: G' = (V, E, w_M). One exchange round, accounted.
    const std::vector<double> gains =
        gain_weights(wg, result.matching, &result.stats, opts.pool,
                     opts.shards);

    // Restrict to positive-gain edges: a maximum-weight matching never
    // gains from edges with w_M <= 0, and the class black box requires
    // positive weights.
    std::vector<char> keep_edge(g.num_edges(), 0);
    const std::size_t positive = simd::mask_positive_f64(
        gains.data(), g.num_edges(),
        reinterpret_cast<std::uint8_t*>(keep_edge.data()));
    ++result.iterations;
    if (positive == 0) {
      result.converged_early = true;
      result.weight_trajectory.push_back(result.matching.weight(wg));
      break;
    }
    Subgraph sub = induced_subgraph(g, {}, keep_edge);
    std::vector<double> sub_weights(sub.graph.num_edges());
    for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
      sub_weights[e] = gains[sub.edge_to_parent[e]];
    }
    WeightedGraph gprime =
        make_weighted(std::move(sub.graph), std::move(sub_weights));

    // Line 4: M' <- delta-MWM(G').
    const Matching m_prime = black_box(
        gprime, splitmix64(opts.seed ^ (iter * 0xa0761d6478bd642fULL)),
        &result.stats);

    // Line 5: M <- M ⊕ ∪ wrap(e). Applying the wraps takes O(1) rounds
    // (each M' edge's endpoints flip locally and notify their old
    // mates); account one round plus one O(log n)-bit message per
    // dropped edge endpoint.
    std::vector<EdgeId> parent_edges;
    parent_edges.reserve(m_prime.size());
    for (EdgeId e : m_prime.edge_ids(gprime.graph)) {
      parent_edges.push_back(sub.edge_to_parent[e]);
    }
    apply_wraps(g, result.matching, parent_edges);
    NetStats apply;
    apply.rounds = 1;
    std::uint64_t id_bits = 1;
    while ((std::uint64_t{1} << id_bits) < g.num_nodes() + 1) ++id_bits;
    for (std::size_t i = 0; i < 2 * parent_edges.size(); ++i) {
      apply.note_message(id_bits);
    }
    result.stats.merge(apply);
    result.weight_trajectory.push_back(result.matching.weight(wg));
  }
  return result;
}

}  // namespace lps
