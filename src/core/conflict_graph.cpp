#include "core/conflict_graph.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace lps {

namespace {

/// Local adjacency structure decoded from a gossip view.
struct LocalView {
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, bool>>> adj;
  std::unordered_set<NodeId> matched_nodes;

  explicit LocalView(const std::vector<LabeledEdge>& view) {
    for (const LabeledEdge& le : view) {
      adj[le.u].emplace_back(le.v, le.matched);
      adj[le.v].emplace_back(le.u, le.matched);
      if (le.matched) {
        matched_nodes.insert(le.u);
        matched_nodes.insert(le.v);
      }
    }
  }

  bool is_free(NodeId v) const { return matched_nodes.count(v) == 0; }
};

struct PathEnumerator {
  const Graph& g;
  const LocalView& view;
  NodeId leader;
  int max_len;
  std::size_t max_paths;
  std::vector<AugPath>* out;
  std::vector<NodeId> stack_nodes;
  std::unordered_set<NodeId> on_path;

  void record() {
    if (out->size() >= max_paths) {
      throw std::runtime_error(
          "enumerate_paths_from_view: path cap exceeded; shrink l or the "
          "instance");
    }
    AugPath p;
    p.nodes = stack_nodes;
    p.edges.reserve(p.nodes.size() - 1);
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      const EdgeId e = g.find_edge(p.nodes[i], p.nodes[i + 1]);
      if (e == kInvalidEdge) {
        throw std::logic_error("conflict graph: view edge missing in G");
      }
      p.edges.push_back(e);
    }
    out->push_back(std::move(p));
  }

  void extend(NodeId cur) {
    const int used = static_cast<int>(stack_nodes.size()) - 1;
    if (used >= max_len) return;
    const bool need_unmatched = (used % 2 == 0);
    const auto it = view.adj.find(cur);
    if (it == view.adj.end()) return;
    for (const auto& [to, matched] : it->second) {
      if (matched == need_unmatched) continue;  // wrong alternation parity
      if (on_path.count(to)) continue;
      stack_nodes.push_back(to);
      on_path.insert(to);
      if (need_unmatched && view.is_free(to)) {
        // Completed an augmenting path (odd length, both endpoints
        // free). The leader is the smaller endpoint.
        if (to > leader) record();
        // A free endpoint cannot be extended (no matched edge).
      } else {
        extend(to);
      }
      on_path.erase(to);
      stack_nodes.pop_back();
    }
  }
};

}  // namespace

std::vector<AugPath> enumerate_paths_from_view(
    const Graph& g, const std::vector<LabeledEdge>& view, NodeId leader,
    int max_len, std::size_t max_paths) {
  std::vector<AugPath> out;
  LocalView local(view);
  if (!local.is_free(leader)) return out;
  PathEnumerator en{g,       local,      leader, max_len,
                    max_paths, &out, {},     {}};
  en.stack_nodes.push_back(leader);
  en.on_path.insert(leader);
  en.extend(leader);
  return out;
}

ConflictGraphResult build_conflict_graph(const Graph& g, const Matching& m,
                                         const BallViews& views, int max_len,
                                         std::size_t max_paths_total) {
  ConflictGraphResult result;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!m.is_free(v)) continue;
    std::vector<AugPath> mine = enumerate_paths_from_view(
        g, views.view[v], v, max_len,
        max_paths_total - result.paths.size());
    for (AugPath& p : mine) result.paths.push_back(std::move(p));
  }
  // Conflicts: paths sharing any graph vertex.
  std::unordered_map<NodeId, std::vector<NodeId>> paths_at_vertex;
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    for (NodeId v : result.paths[i].nodes) {
      paths_at_vertex[v].push_back(static_cast<NodeId>(i));
    }
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> conflict_edges;
  for (const auto& [v, list] : paths_at_vertex) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        NodeId x = list[a], y = list[b];
        if (x > y) std::swap(x, y);
        if (seen.insert((static_cast<std::uint64_t>(x) << 32) | y).second) {
          conflict_edges.push_back({x, y});
        }
      }
    }
  }
  result.conflict = Graph(static_cast<NodeId>(result.paths.size()),
                          std::move(conflict_edges));
  return result;
}

}  // namespace lps
