#include "core/generic_mcm.hpp"

#include <cmath>
#include <stdexcept>

#include "core/conflict_graph.hpp"
#include "core/local_ball.hpp"
#include "core/luby_mis.hpp"
#include "util/rng.hpp"

namespace lps {

GenericMcmResult generic_mcm(const Graph& g, const GenericMcmOptions& opts) {
  if (!(opts.eps > 0.0) || opts.eps > 1.0) {
    throw std::invalid_argument("generic_mcm: eps must be in (0,1]");
  }
  const int k = static_cast<int>(std::ceil(1.0 / opts.eps));
  GenericMcmResult result;
  result.matching = Matching(g.num_nodes());

  std::uint64_t id_bits = 1;
  while ((std::uint64_t{1} << id_bits) < g.num_nodes() + 1) ++id_bits;

  for (int l = 1; l <= 2 * k - 1; l += 2) {
    // Step 4 (Algorithm 2): gather radius-2l views.
    BallViews views = collect_balls(g, result.matching, 2 * l, opts.pool, opts.shards);
    result.stats.merge(views.stats);

    // Conflict graph C_M(l) from the per-leader enumerations.
    ConflictGraphResult cg = build_conflict_graph(
        g, result.matching, views, l, opts.max_conflict_nodes);

    GenericPhaseInfo info;
    info.l = l;
    info.conflict_nodes = cg.paths.size();
    info.conflict_edges = cg.conflict.num_edges();

    if (!cg.paths.empty()) {
      // Step 5: MIS on the conflict graph. Each overlay round costs l
      // physical rounds on G (Lemma 3.3).
      MisOptions mis_opts;
      mis_opts.seed = splitmix64(opts.seed ^ (0x9e37u + l));
      mis_opts.pool = opts.pool;
      mis_opts.shards = opts.shards;
      MisResult mis = opts.use_abi_mis ? abi_mis(cg.conflict, mis_opts)
                                       : luby_mis(cg.conflict, mis_opts);
      if (!mis.converged) {
        throw std::runtime_error("generic_mcm: MIS did not converge");
      }
      result.stats.merge_scaled_rounds(
          mis.stats, static_cast<std::uint64_t>(l));
      info.mis_rounds = mis.stats.rounds;

      // Steps 6-7: flip the union of the selected paths.
      std::vector<EdgeId> to_flip;
      NetStats apply;
      for (std::size_t i = 0; i < cg.paths.size(); ++i) {
        if (!mis.in_mis[i]) continue;
        ++info.selected_paths;
        for (EdgeId e : cg.paths[i].edges) {
          to_flip.push_back(e);
          // Leader sends the flip decision along the path: one
          // O(log n)-bit message per path edge.
          apply.note_message(id_bits);
        }
      }
      apply.rounds = static_cast<std::uint64_t>(l);
      result.stats.merge(apply);
      result.matching.symmetric_difference(g, to_flip);
    }
    result.phases.push_back(info);

    if (opts.check_invariants) {
      // Lemma 3.4: after the phase, no augmenting path of length <= l.
      if (has_augmenting_path_leq(g, result.matching, l)) {
        throw std::logic_error(
            "generic_mcm: Lemma 3.4 invariant violated after phase");
      }
    }
  }
  return result;
}

}  // namespace lps
