// Algorithm 3: counting augmenting paths in bipartite graphs by a
// synchronized layered BFS from all free X-nodes (Section 3.2, Fig. 1).
//
// Round 0: every free X node sends 1 to all (active) neighbors.
// A node records the counts arriving in the *first* round it receives
// anything (c_v[i] per incident edge i; n_v = sum). Matched Y nodes
// forward n_v to their mate; X nodes forward n_v to their unmatched
// neighbors; free Y nodes are terminals (each completed arrival is an
// augmenting path). Later arrivals are discarded — they correspond to
// non-shortest paths through already-visited nodes (the "back-arrows"
// of Figure 1).
//
// Counts are BigCounters: Lemma 3.6 bounds n_v by Delta^{ceil(d/2)},
// far beyond 64 bits. Message sizes are metered at the serialized
// chunked width the paper's pipeline would use.
#pragma once

#include <vector>

#include "graph/matching.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "util/bigint.hpp"

namespace lps {

inline constexpr std::uint32_t kUnreached = 0xffffffffu;

struct CountingResult {
  /// d(v): the round of first arrival (free X nodes have 0); kUnreached
  /// if the BFS never reached the node within max_len rounds.
  std::vector<std::uint32_t> depth;
  /// counts[v][i] aligned with g.neighbors(v): paths arriving on edge i.
  std::vector<std::vector<BigCounter>> counts;
  /// n_v = sum over i of counts[v][i].
  std::vector<BigCounter> total;
  /// endpoint[v] == 1 iff v is a free Y node the BFS reached: each such
  /// node terminates n_v augmenting paths of length depth[v].
  std::vector<char> endpoint;
  NetStats stats;

  bool is_path_endpoint(NodeId v) const { return endpoint[v] != 0; }
};

/// Run the counting BFS for paths of length <= max_len (odd). `side`
/// 2-colors the active subgraph (side 0 = X); `active_edges` restricts
/// to a logical subgraph (empty = all edges). `m` is the current
/// matching; matched edges outside the active set must not exist between
/// two active-incident nodes (Algorithm 4 guarantees this for Ĝ).
CountingResult count_augmenting_paths(const Graph& g,
                                      const std::vector<std::uint8_t>& side,
                                      const Matching& m, int max_len,
                                      const std::vector<char>& active_edges,
                                      ThreadPool* pool = nullptr,
                                      unsigned shards = 0);

/// Brute-force oracle: the number of augmenting paths of length exactly
/// `len` w.r.t. m ending at free Y node `y`, restricted to active edges.
/// Exponential; used by tests and the Figure 1 bench to validate counts.
std::uint64_t count_paths_oracle(const Graph& g,
                                 const std::vector<std::uint8_t>& side,
                                 const Matching& m, NodeId y, int len,
                                 const std::vector<char>& active_edges);

}  // namespace lps
