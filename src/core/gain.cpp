#include "core/gain.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/engine.hpp"
#include "runtime/simd.hpp"

namespace lps {

std::vector<double> gain_weights(const WeightedGraph& wg, const Matching& m,
                                 NetStats* stats, ThreadPool* pool,
                                 unsigned shards) {
  const Graph& g = wg.graph;
  std::vector<double> gains(g.num_edges(), 0.0);

  if (stats != nullptr) {
    // One synchronous round: matched nodes announce w(v, M(v)). Round 0
    // steps everyone (the default initial activation); the delivery
    // round is message-driven, so only receivers are stepped.
    struct WeightMsg {
      double w;
    };
    struct WeightBits {
      std::uint64_t operator()(const WeightMsg&) const noexcept { return 64; }
    };
    using WeightNet = SyncNetwork<WeightMsg, WeightBits>;
    WeightNet net(g, 0, WeightBits{});
    net.set_thread_pool(pool);
    net.set_shards(shards);
    auto step = [&](WeightNet::Ctx& ctx) {
      const NodeId v = ctx.id();
      if (ctx.round() == 0 && !m.is_free(v)) {
        ctx.send_all(WeightMsg{wg.weight(m.matched_edge(v))});
      }
    };
    net.run_round(step);
    net.run_round(step);  // delivery round (receivers compute locally)
    stats->merge(net.stats());
  }

  // Columnar evaluation of w_M(e) = w(e) - w(u, M(u)) - w(v, M(v)):
  // gather-subtract over the store's endpoint columns against a
  // per-node mate-weight column. Free vertices contribute a literal
  // +0.0, an exact IEEE identity under subtraction, so the column needs
  // no mask and the result is bit-identical to the branching form
  // (operands are subtracted in the same u-then-v order).
  const GraphStore& s = g.store();
  std::vector<double> mate_w(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!m.is_free(v)) mate_w[v] = wg.weight(m.matched_edge(v));
  }
  simd::sub2_gather_f64(wg.weights.data(), mate_w.data(), s.edge_u.data(),
                        s.edge_v.data(), gains.data(), g.num_edges());
  // Matched edges carry zero gain by definition.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const EdgeId e = m.matched_edge(v);
    if (e != kInvalidEdge) gains[e] = 0.0;
  }
  return gains;
}

std::vector<EdgeId> wrap_edges(const Graph& g, const Matching& m, EdgeId e) {
  if (m.contains(g, e)) {
    throw std::invalid_argument("wrap_edges: e must be unmatched");
  }
  std::vector<EdgeId> out;
  const Edge& ed = g.edge(e);
  if (!m.is_free(ed.u)) out.push_back(m.matched_edge(ed.u));
  out.push_back(e);
  if (!m.is_free(ed.v)) out.push_back(m.matched_edge(ed.v));
  return out;
}

void apply_wraps(const Graph& g, Matching& m,
                 const std::vector<EdgeId>& m_prime) {
  if (!is_valid_matching(g, m_prime)) {
    throw std::invalid_argument("apply_wraps: m_prime is not a matching");
  }
  std::vector<EdgeId> toggles;
  for (EdgeId e : m_prime) {
    for (EdgeId t : wrap_edges(g, m, e)) toggles.push_back(t);
  }
  // Matched edges can appear in two wraps (adjacent to two m_prime
  // edges); the union keeps them once.
  std::sort(toggles.begin(), toggles.end());
  toggles.erase(std::unique(toggles.begin(), toggles.end()), toggles.end());
  m.symmetric_difference(g, toggles);
}

}  // namespace lps
