// Algorithm 4 (Section 3.3): (1-1/k)-MCM for general graphs by repeated
// random bipartition. Each iteration colors every vertex red or blue
// uniformly, forms the logical bipartite subgraph
//    V̂ = { free vertices } ∪ { endpoints of bichromatic matched edges }
//    Ê = bichromatic edges of E with both endpoints in V̂,
// and runs Aug(Ĝ, M, 2k-1) (the Section 3.2 engine). Observation 3.1
// makes every augmentation valid in G; Lemma 3.9/3.10 show that
// 2^{2k+1}(k+1) ln k iterations reach a (1-1/k)-approximation w.h.p.
// (Theorem 3.11).
//
// Besides the paper-faithful fixed budget we provide an adaptive mode
// (documented in DESIGN.md): stop early when an exact-MCM oracle
// certifies the target ratio, or after a long streak of iterations that
// found no augmenting path.
#pragma once

#include <vector>

#include "core/bipartite_mcm.hpp"
#include "graph/matching.hpp"

namespace lps {

struct GeneralMcmOptions {
  int k = 3;  // target ratio 1 - 1/k, k > 2 per the paper
  std::uint64_t seed = 1;

  enum class Mode { kPaper, kAdaptive };
  Mode mode = Mode::kAdaptive;

  /// Iteration override; 0 = the paper budget ceil(2^{2k+1} (k+1) ln k).
  std::uint64_t max_iterations = 0;
  /// Adaptive: stop after this many consecutive empty iterations
  /// (0 = auto: 2^{2k+1}).
  std::uint64_t empty_streak_stop = 0;
  /// Adaptive: optimum size for early exit once |M| >= (1-1/k)|M*|.
  std::size_t oracle_optimum_size = 0;

  std::uint64_t max_aug_iterations = 0;
  ThreadPool* pool = nullptr;
  /// Round-engine shard count (0 = auto, 1 = single shard); forwarded
  /// to every SyncNetwork this solver runs. Bit-identical for any value.
  unsigned shards = 0;
};

struct GeneralMcmResult {
  Matching matching;
  NetStats stats;
  std::uint64_t iterations = 0;
  std::uint64_t paper_budget = 0;
  std::size_t paths_applied = 0;
  bool stopped_early = false;
};

GeneralMcmResult general_mcm(const Graph& g, const GeneralMcmOptions& opts);

/// The paper's iteration budget 2^{2k+1}(k+1) ln k, rounded up.
std::uint64_t general_mcm_paper_budget(int k);

}  // namespace lps
