#include "lca/rank_greedy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace lps::lca {

Matching rank_greedy_matching(const Graph& g, std::uint64_t seed) {
  // Ranks are hashes: compute each once and sort the pairs rather than
  // re-hashing inside the comparator.
  std::vector<std::pair<std::uint64_t, EdgeId>> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    order[e] = {edge_rank(seed, e), e};
  }
  std::sort(order.begin(), order.end());
  Matching m(g.num_nodes());
  for (const auto& [rank, e] : order) {
    const Edge& ed = g.edge(e);
    if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(g, e);
  }
  return m;
}

namespace {

/// Default memo bound: generous enough that single-machine workloads
/// rarely evict, small enough to stay a real bound (~9 MB of entries).
constexpr std::size_t kDefaultEdgeMemo = std::size_t{1} << 20;

}  // namespace

RankGreedyOracle::RankGreedyOracle(const Graph& g, const OracleOptions& opts)
    : access_(g),
      seed_(opts.seed),
      memo_(opts.cache_capacity != 0 ? opts.cache_capacity
                                     : kDefaultEdgeMemo) {
  if (!opts.config.empty()) {
    throw std::invalid_argument(
        "rank_greedy_mcm oracle: no config keys accepted, got '" +
        opts.config.begin()->first + "'");
  }
}

std::vector<EdgeId> RankGreedyOracle::lower_ranked_neighbors(EdgeId e) {
  const Edge ed = access_.edge(e);
  const std::pair<std::uint64_t, EdgeId> mine{edge_rank(seed_, e), e};
  // One hash per adjacent edge, then sort the precomputed pairs.
  std::vector<std::pair<std::uint64_t, EdgeId>> lower;
  for (const NodeId endpoint : {ed.u, ed.v}) {
    for (const Graph::Incidence& inc : access_.neighbors(endpoint)) {
      if (inc.edge == e) continue;
      const std::pair<std::uint64_t, EdgeId> theirs{
          edge_rank(seed_, inc.edge), inc.edge};
      if (theirs < mine) lower.push_back(theirs);
    }
  }
  // No dedup needed: in a simple graph an adjacent edge shares exactly
  // one endpoint with e, so the two scans report disjoint sets.
  std::sort(lower.begin(), lower.end());
  std::vector<EdgeId> out;
  out.reserve(lower.size());
  for (const auto& [rank, id] : lower) out.push_back(id);
  return out;
}

bool RankGreedyOracle::evaluate(EdgeId root) {
  struct Frame {
    EdgeId e;
    std::vector<EdgeId> lower;
    std::size_t next = 0;
  };
  if (const auto hit = memo_.get(root)) return *hit;
  std::vector<Frame> stack;
  stack.push_back({root, lower_ranked_neighbors(root)});
  // The last fully-evaluated child, consulted by its parent directly so
  // a memo eviction between the child's put() and the parent's resume
  // can never force a re-push loop.
  EdgeId last_done = kInvalidEdge;
  bool last_result = false;
  while (!stack.empty()) {
    Frame& top = stack.back();
    bool resolved = false;
    while (top.next < top.lower.size()) {
      const EdgeId dep = top.lower[top.next];
      std::optional<bool> dep_in;
      if (dep == last_done) {
        dep_in = last_result;
      } else {
        dep_in = memo_.get(dep);
      }
      if (!dep_in.has_value()) {
        // Ranks strictly decrease down the chain, so dep is not already
        // on the stack and the walk terminates.
        stack.push_back({dep, lower_ranked_neighbors(dep)});
        resolved = true;  // resume the parent after dep completes
        break;
      }
      if (*dep_in) {
        // A lower-ranked adjacent edge is matched: e is excluded.
        memo_.put(top.e, false);
        last_done = top.e;
        last_result = false;
        stack.pop_back();
        resolved = true;
        break;
      }
      ++top.next;
    }
    if (resolved) continue;
    // Every lower-ranked adjacent edge is unmatched: e is matched.
    memo_.put(top.e, true);
    last_done = top.e;
    last_result = true;
    stack.pop_back();
  }
  // The root frame is pushed first and popped last, so the final
  // completed edge is always the root itself.
  return last_result;
}

NodeId RankGreedyOracle::matched_to(NodeId v) {
  ++queries_;
  // v's matched edge (if any) is the unique incident edge in M; probing
  // in ascending rank order resolves the cheap, likely-matched
  // candidates first.
  std::vector<std::pair<std::uint64_t, EdgeId>> incident;
  for (const Graph::Incidence& inc : access_.neighbors(v)) {
    incident.push_back({edge_rank(seed_, inc.edge), inc.edge});
  }
  std::sort(incident.begin(), incident.end());
  for (const auto& [rank, e] : incident) {
    if (evaluate(e)) return access_.graph().other_endpoint(e, v);
  }
  return kInvalidNode;
}

bool RankGreedyOracle::in_matching(EdgeId e) {
  ++queries_;
  return evaluate(e);
}

OracleStats RankGreedyOracle::stats() const {
  OracleStats s;
  s.queries = queries_;
  s.probes = access_.probes();
  s.cache_hits = memo_.hits();
  s.cache_misses = memo_.misses();
  return s;
}

}  // namespace lps::lca
