#include "lca/israeli_itai_oracle.hpp"

#include <stdexcept>
#include <vector>

#include "core/israeli_itai.hpp"
#include "util/options.hpp"

namespace lps::lca {

namespace {

constexpr std::size_t kDefaultMemo = std::size_t{1} << 20;

std::size_t memo_capacity(const OracleOptions& opts) {
  return opts.cache_capacity != 0 ? opts.cache_capacity : kDefaultMemo;
}

}  // namespace

IsraeliItaiOracle::IsraeliItaiOracle(const Graph& g,
                                     const OracleOptions& opts)
    : access_(g),
      seed_(opts.seed),
      max_phases_(0),
      node_(memo_capacity(opts)),
      s0_(memo_capacity(opts)),
      s1_(memo_capacity(opts)) {
  std::int64_t max_phases = 0;
  for (const auto& [key, value] : opts.config) {
    if (key == "max_phases") {
      max_phases = parse_int_value(key, value);
      if (max_phases < 0) {
        throw std::invalid_argument(
            "israeli_itai oracle: max_phases must be >= 0");
      }
    } else {
      throw std::invalid_argument(
          "israeli_itai oracle: unknown config key '" + key + "'");
    }
  }
  max_phases_ = static_cast<std::int32_t>(
      max_phases != 0 ? max_phases
                      : israeli_itai_default_max_phases(g.num_nodes()));
}

bool IsraeliItaiOracle::matched_by(NodeId v, std::int32_t p) {
  if (p < 0) return false;
  const NodeState st = ensure(v, p);
  return st.matched != kInvalidEdge && st.match_phase <= p;
}

IsraeliItaiOracle::Stage0 IsraeliItaiOracle::stage0(NodeId v,
                                                    std::int32_t p) {
  const std::uint64_t k = key(v, p);
  if (const auto hit = s0_.get(k)) return *hit;
  Stage0 s;
  if (!matched_by(v, p - 1)) {
    s.acted = true;
    // The same per-(node, round) substream the SyncNetwork hands the
    // global protocol at round 3p; draw order (coin, then pick) must
    // match israeli_itai.cpp's stage 0 exactly.
    Rng rng = Rng::substream(seed_, std::uint64_t{v},
                             static_cast<std::uint64_t>(3) * p);
    s.coin = rng.coin();
    const auto nbrs = access_.neighbors(v);
    std::vector<char> candidate(nbrs.size(), 0);
    std::uint32_t candidates = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // Phase-synchronized flags: v believes u free in phase p iff u is
      // unmatched through phase p-1 (announcements from phase q always
      // land before the stage-0 scan of phase q+1).
      if (!matched_by(nbrs[i].to, p - 1)) {
        candidate[i] = 1;
        ++candidates;
      }
    }
    s.saw_candidate = candidates > 0;
    if (s.coin && candidates > 0) {
      std::uint32_t pick = static_cast<std::uint32_t>(rng.below(candidates));
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!candidate[i]) continue;
        if (pick == 0) {
          s.proposal = nbrs[i].edge;
          break;
        }
        --pick;
      }
    }
  }
  s0_.put(k, s);
  return s;
}

IsraeliItaiOracle::Stage1 IsraeliItaiOracle::stage1(NodeId v,
                                                    std::int32_t p) {
  const std::uint64_t k = key(v, p);
  if (const auto hit = s1_.get(k)) return *hit;
  Stage1 s;
  const Stage0 mine = stage0(v, p);
  if (mine.acted && !mine.coin) {
    // Inbox order at stage 1 is v's incidence order: SyncNetwork's
    // mailbox sorts each receiver's deliveries by their position in
    // neighbors(v) (the engine's canonical-inbox-order guarantee, see
    // DESIGN.md §9), so the accept draw indexes proposals in exactly
    // that order. The global protocol's active-set scheduling never
    // changes the draw either: a node skipped by the scheduler would
    // neither propose nor accept if stepped.
    std::vector<EdgeId> proposals;
    for (const Graph::Incidence& inc : access_.neighbors(v)) {
      const Stage0 theirs = stage0(inc.to, p);
      if (theirs.acted && theirs.coin && theirs.proposal == inc.edge) {
        proposals.push_back(inc.edge);
      }
    }
    if (!proposals.empty()) {
      Rng rng = Rng::substream(seed_, std::uint64_t{v},
                               static_cast<std::uint64_t>(3) * p + 1);
      s.chosen = proposals[rng.below(proposals.size())];
    }
  }
  s1_.put(k, s);
  return s;
}

IsraeliItaiOracle::NodeState IsraeliItaiOracle::ensure(NodeId v,
                                                       std::int32_t p) {
  if (p >= max_phases_) p = max_phases_ - 1;
  NodeState st = node_.get(v).value_or(NodeState{});
  while (!st.resolved() && st.computed_through < p) {
    const std::int32_t q = st.computed_through + 1;
    const Stage0 s0 = stage0(v, q);
    if (!s0.saw_candidate) {
      // No free neighbor in phase q: flags only ever turn off and a
      // matched neighbor never proposes, so v can neither propose nor
      // receive a proposal in any phase >= q. Frozen free.
      st.free_forever = true;
      st.computed_through = q;
      node_.put(v, st);
      return st;
    }
    if (!s0.coin) {
      const Stage1 s1 = stage1(v, q);
      if (s1.chosen != kInvalidEdge) {
        st.matched = s1.chosen;
        st.match_phase = q;
      }
    } else if (s0.proposal != kInvalidEdge) {
      const Edge ed = access_.edge(s0.proposal);
      const NodeId target = ed.u == v ? ed.v : ed.u;
      const Stage1 accept = stage1(target, q);
      if (accept.chosen == s0.proposal) {
        st.matched = s0.proposal;
        st.match_phase = q;
      }
    }
    st.computed_through = q;
    // Publish after every phase so the recursion's own lookups of v
    // (neighbors evaluating their stage 0 against v's earlier phases)
    // hit the frontier instead of re-simulating it.
    node_.put(v, st);
  }
  return st;
}

IsraeliItaiOracle::NodeState IsraeliItaiOracle::resolve(NodeId v) {
  return ensure(v, max_phases_ - 1);
}

NodeId IsraeliItaiOracle::matched_to(NodeId v) {
  ++queries_;
  const NodeState st = resolve(v);
  return st.matched == kInvalidEdge
             ? kInvalidNode
             : access_.graph().other_endpoint(st.matched, v);
}

bool IsraeliItaiOracle::in_matching(EdgeId e) {
  ++queries_;
  const Edge ed = access_.edge(e);
  return resolve(ed.u).matched == e;
}

OracleStats IsraeliItaiOracle::stats() const {
  OracleStats s;
  s.queries = queries_;
  s.probes = access_.probes();
  s.cache_hits = node_.hits() + s0_.hits() + s1_.hits();
  s.cache_misses = node_.misses() + s0_.misses() + s1_.misses();
  return s;
}

}  // namespace lps::lca
