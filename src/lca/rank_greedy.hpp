// Greedy maximal matching over a seed-derived random edge order, in two
// equivalent forms:
//
//  * rank_greedy_matching — the global execution: scan edges by
//    increasing rank, add when both endpoints are free. A classical
//    1/2-approximate maximal matching.
//  * RankGreedyOracle — the Nguyen-Onak / Yoshida-Yamamoto-Ito local
//    simulation of the same fixpoint: e is matched iff no adjacent edge
//    of smaller rank is matched, evaluated by recursing only along
//    rank-decreasing chains. With random ranks the expected number of
//    probed edges per query is bounded by a function of the degree
//    alone — independent of n — which is the subsystem's headline
//    sublinear bound (bench_lca measures it).
//
// Both draw the rank of edge e as the first output of
// Rng::substream(seed, kRankGreedySalt, e), so the oracle's answers and
// the global matching are the same deterministic function of
// (graph, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/matching.hpp"
#include "lca/graph_access.hpp"
#include "lca/lru_cache.hpp"
#include "lca/oracle.hpp"
#include "util/rng.hpp"

namespace lps::lca {

inline constexpr std::uint64_t kRankGreedySalt = 0x1ca9afebull;

/// The random rank of edge e under `seed`; ties (negligible at 64 bits)
/// break by edge id, so the order is always total.
inline std::uint64_t edge_rank(std::uint64_t seed, EdgeId e) noexcept {
  return Rng::substream(seed, kRankGreedySalt, std::uint64_t{e})();
}

/// Precedes in the greedy scan order.
inline bool rank_less(std::uint64_t seed, EdgeId a, EdgeId b) noexcept {
  const std::uint64_t ra = edge_rank(seed, a);
  const std::uint64_t rb = edge_rank(seed, b);
  return ra != rb ? ra < rb : a < b;
}

/// The global execution: greedy over edges sorted by (rank, id).
Matching rank_greedy_matching(const Graph& g, std::uint64_t seed);

class RankGreedyOracle final : public MatchingOracle {
 public:
  RankGreedyOracle(const Graph& g, const OracleOptions& opts);

  std::string name() const override { return "rank_greedy_mcm"; }
  NodeId matched_to(NodeId v) override;
  bool in_matching(EdgeId e) override;
  OracleStats stats() const override;

 private:
  /// The memoized fixpoint: e matched iff every adjacent lower-rank
  /// edge is unmatched. Iterative (explicit stack): ranks strictly
  /// decrease down a dependency chain, so the walk terminates without
  /// bounding the C++ stack.
  bool evaluate(EdgeId e);

  /// Adjacent edges of strictly smaller rank, sorted by ascending rank
  /// (evaluating the smallest first fails fast: it is the likeliest to
  /// be matched). Metered.
  std::vector<EdgeId> lower_ranked_neighbors(EdgeId e);

  GraphAccess access_;
  std::uint64_t seed_;
  LruCache<EdgeId, bool> memo_;
  std::uint64_t queries_ = 0;
};

}  // namespace lps::lca
