#include "lca/batch.hpp"

#include <chrono>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace lps::lca {

BatchEngine::BatchEngine(const OracleFactory& factory, ThreadPool* pool)
    : pool_(pool) {
  const std::size_t workers =
      pool_ != nullptr && pool_->num_threads() > 1 ? pool_->num_threads() : 1;
  oracles_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    oracles_.push_back(factory());
    if (!oracles_.back()) {
      throw std::invalid_argument("BatchEngine: factory returned null");
    }
  }
  free_list_.reserve(workers);
  for (auto& oracle : oracles_) free_list_.push_back(oracle.get());
}

OracleStats BatchEngine::total_stats() const {
  OracleStats total;
  for (const auto& oracle : oracles_) total += oracle->stats();
  return total;
}

BatchStats BatchEngine::run(
    std::size_t count,
    const std::function<void(MatchingOracle&, std::size_t, std::size_t)>&
        fn) {
  BatchStats out;
  const OracleStats before = total_stats();
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool ttrace = tracer.recording();
  const std::uint64_t tb = ttrace ? telemetry::now_ns() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (pool_ != nullptr && pool_->num_threads() > 1 && count > 0) {
    // Chunks small enough that every worker stays busy, large enough
    // that free-list churn stays negligible next to query cost.
    const std::size_t grain =
        std::max<std::size_t>(1, count / (4 * oracles_.size()));
    pool_->parallel_for(0, count, grain,
                        [&](std::size_t begin, std::size_t end) {
                          MatchingOracle* oracle = nullptr;
                          {
                            std::lock_guard<std::mutex> lock(free_mutex_);
                            oracle = free_list_.back();
                            free_list_.pop_back();
                          }
                          fn(*oracle, begin, end);
                          std::lock_guard<std::mutex> lock(free_mutex_);
                          free_list_.push_back(oracle);
                        });
  } else {
    fn(*oracles_.front(), 0, count);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.oracle = total_stats();
  out.oracle -= before;
  if (ttrace) {
    tracer.emit("lca.batch", "lca", tb, telemetry::now_ns() - tb,
                {{"queries", static_cast<double>(count)},
                 {"probes", static_cast<double>(out.oracle.probes)}});
  }
  return out;
}

namespace {

/// Per-query instrumentation shared by the edge/node batch loops: a
/// lca.query_ns histogram sample when metrics are on, plus a per-query
/// span (with the oracle's probe delta as an arg) when tracing.
template <typename Query>
void instrumented_query(MatchingOracle& oracle, bool tmetrics, bool ttrace,
                        telemetry::Histogram* query_ns, double key,
                        const Query& query) {
  if (!tmetrics && !ttrace) {
    query();
    return;
  }
  const std::uint64_t probes_before = oracle.stats().probes;
  const std::uint64_t t0 = telemetry::now_ns();
  query();
  const std::uint64_t t1 = telemetry::now_ns();
  if (tmetrics) query_ns->record(t1 - t0);
  if (ttrace) {
    telemetry::Tracer::global().emit(
        "lca.query", "lca", t0, t1 - t0,
        {{"key", key},
         {"probes", static_cast<double>(oracle.stats().probes -
                                        probes_before)}});
  }
}

/// Resolved once per batch; the per-query path then branches on bools.
struct QueryTelemetry {
  bool tmetrics = telemetry::enabled();
  bool ttrace = telemetry::Tracer::global().recording();
  telemetry::Histogram* query_ns =
      tmetrics ? &telemetry::MetricsRegistry::global().histogram(
                     "lca.query_ns")
               : nullptr;
};

}  // namespace

EdgeBatchResult BatchEngine::query_edges(const std::vector<EdgeId>& edges) {
  EdgeBatchResult out;
  out.in_matching.assign(edges.size(), 0);
  const QueryTelemetry qt;
  out.stats = run(edges.size(), [&](MatchingOracle& oracle,
                                    std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      instrumented_query(oracle, qt.tmetrics, qt.ttrace, qt.query_ns,
                         static_cast<double>(edges[i]), [&] {
                           out.in_matching[i] =
                               oracle.in_matching(edges[i]) ? 1 : 0;
                         });
    }
  });
  return out;
}

NodeBatchResult BatchEngine::query_nodes(const std::vector<NodeId>& nodes) {
  NodeBatchResult out;
  out.matched_to.assign(nodes.size(), kInvalidNode);
  const QueryTelemetry qt;
  out.stats = run(nodes.size(), [&](MatchingOracle& oracle,
                                    std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      instrumented_query(oracle, qt.tmetrics, qt.ttrace, qt.query_ns,
                         static_cast<double>(nodes[i]), [&] {
                           out.matched_to[i] = oracle.matched_to(nodes[i]);
                         });
    }
  });
  return out;
}

}  // namespace lps::lca
