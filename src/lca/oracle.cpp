#include "lca/oracle.hpp"

#include <stdexcept>

#include "lca/israeli_itai_oracle.hpp"
#include "lca/rank_greedy.hpp"

namespace lps::lca {
namespace {

/// Single source of truth for the oracle inventory: make_oracle,
/// oracle_names, and has_oracle all read this table, so adding an
/// oracle is one entry (kept sorted by name).
struct OracleEntry {
  const char* name;
  std::unique_ptr<MatchingOracle> (*make)(const Graph&,
                                          const OracleOptions&);
};

template <typename O>
std::unique_ptr<MatchingOracle> construct(const Graph& g,
                                          const OracleOptions& opts) {
  return std::make_unique<O>(g, opts);
}

constexpr OracleEntry kOracles[] = {
    {"israeli_itai", construct<IsraeliItaiOracle>},
    {"rank_greedy_mcm", construct<RankGreedyOracle>},
};

}  // namespace

std::unique_ptr<MatchingOracle> make_oracle(const std::string& name,
                                            const Graph& g,
                                            const OracleOptions& opts) {
  for (const OracleEntry& entry : kOracles) {
    if (name == entry.name) return entry.make(g, opts);
  }
  std::string names;
  for (const std::string& known : oracle_names()) {
    if (!names.empty()) names += ", ";
    names += known;
  }
  throw std::invalid_argument("lca::make_oracle: no oracle named '" + name +
                              "' (have: " + names + ")");
}

std::vector<std::string> oracle_names() {
  std::vector<std::string> out;
  for (const OracleEntry& entry : kOracles) out.push_back(entry.name);
  return out;
}

bool has_oracle(const std::string& name) {
  for (const OracleEntry& entry : kOracles) {
    if (name == entry.name) return true;
  }
  return false;
}

}  // namespace lps::lca
