// Batch query engine: fan thousands of point queries across the
// runtime thread pool. Oracles are single-threaded by design (their LRU
// memos are unsynchronized), so the engine keeps a fleet of private
// oracle instances — one per pool thread — and hands each parallel_for
// chunk an exclusive instance from a free list. Correctness needs no
// coordination beyond that: every oracle answers from the same virtual
// global execution (same graph, same seed), so any instance may serve
// any query. Cache amortization happens per instance; the aggregated
// hit rate the engine reports reflects the sharded reality.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "lca/oracle.hpp"
#include "runtime/thread_pool.hpp"

namespace lps::lca {

/// One batch's outcome: per-query answers plus the cost deltas the
/// batch added on top of whatever the engine's oracles had cached.
struct BatchStats {
  OracleStats oracle;  // probes/queries/cache deltas for this batch
  double wall_ms = 0.0;
  double queries_per_sec() const noexcept {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(oracle.queries) /
                                (wall_ms / 1000.0);
  }
};

struct EdgeBatchResult {
  std::vector<char> in_matching;  // parallel to the query vector
  BatchStats stats;
};

struct NodeBatchResult {
  std::vector<NodeId> matched_to;  // parallel to the query vector
  BatchStats stats;
};

class BatchEngine {
 public:
  using OracleFactory = std::function<std::unique_ptr<MatchingOracle>()>;

  /// `pool == nullptr` (or a 1-thread pool) runs inline on one oracle.
  /// The factory is called once per worker, up front, so a throwing
  /// factory fails at construction rather than mid-batch.
  BatchEngine(const OracleFactory& factory, ThreadPool* pool = nullptr);

  EdgeBatchResult query_edges(const std::vector<EdgeId>& edges);
  NodeBatchResult query_nodes(const std::vector<NodeId>& nodes);

  /// Cumulative stats across all batches and oracle instances.
  OracleStats total_stats() const;

  std::size_t num_oracles() const noexcept { return oracles_.size(); }

 private:
  /// Runs fn(oracle, begin, end) over [0, count) in exclusive-oracle
  /// chunks; returns the batch stats (cost deltas + wall time).
  BatchStats run(std::size_t count,
                 const std::function<void(MatchingOracle&, std::size_t,
                                          std::size_t)>& fn);

  ThreadPool* pool_;
  std::vector<std::unique_ptr<MatchingOracle>> oracles_;
  std::mutex free_mutex_;
  std::vector<MatchingOracle*> free_list_;
};

}  // namespace lps::lca
