// The LCA cost model, executable: oracles read the graph only through
// this adapter, which meters every access in *probes* — the standard
// complexity measure of the local-computation-algorithms literature
// (Alon-Rubinfeld-Vardi; Reingold-Vardi). One probe corresponds to one
// unit answer a remote graph store could serve: a single incidence-list
// entry, a single edge record, or a single degree lookup. Scanning a
// vertex's full neighbor list therefore costs degree(v) probes, which
// keeps the meter honest on high-degree vertices.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lps::lca {

class GraphAccess {
 public:
  explicit GraphAccess(const Graph& g) noexcept : g_(&g) {}

  // Shape queries are free: n and m are global constants an LCA is
  // allowed to know up front.
  NodeId num_nodes() const noexcept { return g_->num_nodes(); }
  EdgeId num_edges() const noexcept { return g_->num_edges(); }

  /// One probe: the endpoints of a single edge record.
  Edge edge(EdgeId e) {
    ++probes_;
    return g_->edge(e);
  }

  /// One probe (edge record already fetched by the caller or not — the
  /// endpoint resolution itself is a store round-trip).
  NodeId other_endpoint(EdgeId e, NodeId v) {
    ++probes_;
    return g_->other_endpoint(e, v);
  }

  /// One probe: a degree counter lookup.
  NodeId degree(NodeId v) {
    ++probes_;
    return g_->degree(v);
  }

  /// degree(v) probes: the full incidence list, one probe per entry
  /// (an empty list still costs one probe to learn it is empty).
  NeighborView neighbors(NodeId v) {
    const NeighborView nbrs = g_->neighbors(v);
    probes_ += nbrs.empty() ? 1 : nbrs.size();
    return nbrs;
  }

  std::uint64_t probes() const noexcept { return probes_; }
  void reset_probes() noexcept { probes_ = 0; }

  /// The unmetered graph, for answer *construction* (not discovery):
  /// e.g. turning an already-evaluated matched edge id into a mate id.
  const Graph& graph() const noexcept { return *g_; }

 private:
  const Graph* g_;
  std::uint64_t probes_ = 0;
};

}  // namespace lps::lca
