// Local simulation of the registered israeli_itai solver: answers
// matched_to / in_matching by lazily re-executing the protocol inside
// the queried ball instead of stepping the whole network.
//
// Why this is possible: the SyncNetwork execution is a deterministic
// function of the seed — node v's randomness in round r is
// Rng::substream(seed, v, r), independent of every other node — and a
// node's state after round r depends only on its radius-r ball. The
// oracle evaluates exactly that dependency cone, memoized at
// (node, phase) granularity:
//
//   stage0(v, p)  coin + proposal of v in phase p   <- frees of N(v) at p-1
//   stage1(v, p)  accept decision of v in phase p   <- stage0 of N(v) at p
//   state(v)      matched edge / resolution         <- stage0/stage1 chains
//
// Phase-synchronized flags make the recursion exact: a kMatched
// announcement sent in phase q is always processed before the stage-0
// candidate scan of phase q+1, so "v believes u free in phase p" equals
// "u unmatched through phase p-1" — no stale-knowledge cases survive at
// phase granularity (DESIGN.md section 8 gives the argument).
//
// Termination/pruning: a matched node's state is frozen forever, and a
// free node all of whose neighbors are matched can never act again —
// both collapse every later phase to O(1). The dependency cone
// therefore only expands through regions that stay *active*, which is
// what keeps mean probes per query far below n (bench_lca measures the
// growth). The global run's early-exit-on-silence needs no special
// handling: after a silent phase no proposal is ever sent again, so
// simulating to the full phase budget yields the identical matching.
#pragma once

#include <cstdint>

#include "lca/graph_access.hpp"
#include "lca/lru_cache.hpp"
#include "lca/oracle.hpp"
#include "util/rng.hpp"

namespace lps::lca {

class IsraeliItaiOracle final : public MatchingOracle {
 public:
  /// Accepted config key: max_phases (0 or absent = the solver's
  /// default budget). Unknown keys throw std::invalid_argument.
  IsraeliItaiOracle(const Graph& g, const OracleOptions& opts);

  std::string name() const override { return "israeli_itai"; }
  NodeId matched_to(NodeId v) override;
  bool in_matching(EdgeId e) override;
  OracleStats stats() const override;

 private:
  /// Stage-0 action of v in phase p (coin flip and proposal), provided
  /// v is still free entering the phase. `acted == false` means v was
  /// already matched and drew nothing.
  struct Stage0 {
    bool acted = false;
    bool coin = false;               // heads = proposer
    bool saw_candidate = false;      // some neighbor still believed free
    EdgeId proposal = kInvalidEdge;  // edge proposed on (proposers only)
  };

  /// Stage-1 accept decision of v in phase p: the edge whose proposal v
  /// accepted (v matches on it), or kInvalidEdge.
  struct Stage1 {
    EdgeId chosen = kInvalidEdge;
  };

  /// Evaluation frontier of one node. `computed_through` phases are
  /// fully simulated; a resolution (matched, or provably free forever)
  /// freezes the record.
  struct NodeState {
    std::int32_t computed_through = -1;
    std::int32_t match_phase = -1;      // >= 0 once matched
    EdgeId matched = kInvalidEdge;
    bool free_forever = false;
    bool resolved() const noexcept {
      return matched != kInvalidEdge || free_forever;
    }
  };

  /// Advance v's simulation until phase p is covered or v resolves,
  /// recursing into neighbors' earlier phases as needed. Returns the
  /// (cached) state afterwards.
  NodeState ensure(NodeId v, std::int32_t p);

  /// Was v matched by the end of phase p (p < 0 => no)?
  bool matched_by(NodeId v, std::int32_t p);

  Stage0 stage0(NodeId v, std::int32_t p);
  Stage1 stage1(NodeId v, std::int32_t p);

  /// Final resolution of v after the full phase budget.
  NodeState resolve(NodeId v);

  static std::uint64_t key(NodeId v, std::int32_t p) noexcept {
    return (static_cast<std::uint64_t>(v) << 32) |
           static_cast<std::uint32_t>(p);
  }

  GraphAccess access_;
  std::uint64_t seed_;
  std::int32_t max_phases_;
  LruCache<NodeId, NodeState> node_;
  LruCache<std::uint64_t, Stage0> s0_;
  LruCache<std::uint64_t, Stage1> s1_;
  std::uint64_t queries_ = 0;
};

}  // namespace lps::lca
