// The local computation oracle subsystem: sublinear per-query matching
// answers without running a global algorithm.
//
// The paper's algorithms are local by construction — a node's output is
// a function of its radius-k ball — which is exactly the property local
// computation algorithms (LCAs) exploit: instead of one monolithic
// solve, a MatchingOracle answers point queries ("is edge e matched?",
// "whom is v matched to?") by simulating the registered global
// algorithm *only inside the queried ball*, reading the graph through a
// probe-metered GraphAccess adapter.
//
// Consistency contract: an oracle constructed with seed s answers every
// query as if one virtual global execution of its solver had run with
// seed s. All randomness is drawn from the same Rng::substream
// derivations the global solvers use, so the union of per-edge oracle
// answers equals the matching of `SolverRegistry::global()
// .at(oracle->solver()).solve(instance, config.seed(s))` exactly —
// tests/test_lca.cpp proves set equality per seed.
//
// Oracles memoize evaluated node/edge states in bounded LRU caches:
// correlated queries amortize (cache hits cost no probes), and eviction
// is always safe because every cached record is a pure function of
// (graph, seed). Oracles are therefore NOT thread-safe; the batch
// engine (batch.hpp) gives each worker a private instance instead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lps::lca {

/// Cumulative cost counters since construction. probes is the LCA cost
/// measure (see graph_access.hpp); cache hits/misses aggregate over all
/// of an oracle's internal memo tables.
struct OracleStats {
  std::uint64_t queries = 0;
  std::uint64_t probes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  double probes_per_query() const noexcept {
    return queries == 0 ? 0.0 : static_cast<double>(probes) /
                                    static_cast<double>(queries);
  }
  double cache_hit_rate() const noexcept {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  OracleStats& operator+=(const OracleStats& o) noexcept {
    queries += o.queries;
    probes += o.probes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    return *this;
  }
  OracleStats& operator-=(const OracleStats& o) noexcept {
    queries -= o.queries;
    probes -= o.probes;
    cache_hits -= o.cache_hits;
    cache_misses -= o.cache_misses;
    return *this;
  }
};

class MatchingOracle {
 public:
  virtual ~MatchingOracle() = default;

  /// Oracle name == the registry name of the global solver whose
  /// matching it reproduces (the pairing the runner's agreement audit
  /// keys on).
  virtual std::string name() const = 0;

  /// The mate of v in the virtual global execution, or kInvalidNode
  /// when v is free. Counts as one query.
  virtual NodeId matched_to(NodeId v) = 0;

  /// Whether edge e is in the virtual global execution's matching.
  /// Counts as one query.
  virtual bool in_matching(EdgeId e) = 0;

  virtual OracleStats stats() const = 0;
};

struct OracleOptions {
  std::uint64_t seed = 1;
  /// Per-memo-table entry bound; 0 picks a per-oracle default. The
  /// runner maps RunSpec::lca_cache here.
  std::size_t cache_capacity = 0;
  /// Solver-specific configuration, same key space as the solver's
  /// SolverConfig (israeli_itai: max_phases). Unknown keys throw.
  std::map<std::string, std::string> config;
};

/// Construct the oracle for a registered solver by name; throws
/// std::invalid_argument listing oracle_names() on an unknown name.
/// The graph must outlive the oracle.
std::unique_ptr<MatchingOracle> make_oracle(const std::string& name,
                                            const Graph& g,
                                            const OracleOptions& opts = {});

/// Solver names that have an LCA oracle, sorted.
std::vector<std::string> oracle_names();

bool has_oracle(const std::string& name);

}  // namespace lps::lca
