// Bounded LRU memo shared by the LCA oracles. Oracle answers are pure
// functions of (graph, seed), so eviction is always safe — a future
// query recomputes the evicted state bit-identically — and the bound
// turns the memo into an amortization knob (correlated queries hit,
// cold queries pay probes) instead of an unbounded memory commitment.
//
// Not thread-safe by design: the batch engine gives each worker its own
// oracle (and thus its own caches) rather than serializing on a lock.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace lps::lca {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// capacity == 0 disables caching entirely (every get misses).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return index_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Value copy on hit (entries are small POD records; returning a
  /// reference would dangle across the recursive computations that
  /// put() new entries and evict).
  std::optional<V> get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or overwrite; evicts the least-recently-used entry when
  /// over capacity.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lps::lca
