// Tests for the Matching type and the augmenting-path / symmetric
// difference oracles in src/graph/matching.*, which everything else
// (including the Lemma 3.4/3.5 validations) relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "seq/greedy.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(Matching, AddRemoveAndQueries) {
  Graph g = path_graph(5);  // edges 0:0-1, 1:1-2, 2:2-3, 3:3-4
  Matching m(5);
  EXPECT_EQ(m.size(), 0u);
  m.add(g, 0);
  EXPECT_TRUE(m.contains(g, 0));
  EXPECT_FALSE(m.is_free(0));
  EXPECT_EQ(m.mate(g, 0), 1u);
  EXPECT_EQ(m.mate(g, 2), kInvalidNode);
  EXPECT_THROW(m.add(g, 1), std::invalid_argument);  // endpoint 1 taken
  m.add(g, 2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.edge_ids(g), (std::vector<EdgeId>{0, 2}));
  m.remove(g, 0);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_THROW(m.remove(g, 0), std::invalid_argument);
}

TEST(Matching, FromEdgesValidates) {
  Graph g = path_graph(4);
  EXPECT_NO_THROW(Matching::from_edges(g, {0, 2}));
  EXPECT_THROW(Matching::from_edges(g, {0, 1}), std::invalid_argument);
}

TEST(Matching, SymmetricDifferenceAugmentsPath) {
  Graph g = path_graph(4);  // 0-1, 1-2, 2-3
  Matching m = Matching::from_edges(g, {1});
  m.symmetric_difference(g, {0, 1, 2});  // flip the augmenting path
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(g, 0));
  EXPECT_TRUE(m.contains(g, 2));
  EXPECT_FALSE(m.contains(g, 1));
}

TEST(Matching, SymmetricDifferenceRejectsNonMatching) {
  Graph g = path_graph(4);
  Matching m(4);
  EXPECT_THROW(m.symmetric_difference(g, {0, 1}), std::invalid_argument);
  EXPECT_THROW(m.symmetric_difference(g, {0, 0}), std::invalid_argument);
}

TEST(Matching, WeightSumsMatchedEdges) {
  WeightedGraph wg = make_weighted(path_graph(4), {1.0, 10.0, 100.0});
  Matching m = Matching::from_edges(wg.graph, {0, 2});
  EXPECT_DOUBLE_EQ(m.weight(wg), 101.0);
}

TEST(MatchingOracles, ValidityChecker) {
  Graph g = cycle_graph(6);
  EXPECT_TRUE(is_valid_matching(g, {0, 2, 4}));
  EXPECT_FALSE(is_valid_matching(g, {0, 1}));
  EXPECT_FALSE(is_valid_matching(g, {0, 99}));
  EXPECT_FALSE(is_valid_matching(g, {0, 0}));
}

TEST(MatchingOracles, MaximalityChecker) {
  Graph g = path_graph(5);
  EXPECT_FALSE(is_maximal_matching(g, Matching(5)));
  EXPECT_TRUE(is_maximal_matching(g, Matching::from_edges(g, {1, 3})));
  // {0-1} leaves 2-3 and 3-4 free-free.
  EXPECT_FALSE(is_maximal_matching(g, Matching::from_edges(g, {0})));
}

TEST(AugmentingSearch, FindsShortestLengths) {
  // Path of 6: M = {1-2, 3-4}: augmenting path is the whole path (len 5).
  Graph g = path_graph(6);
  Matching m = Matching::from_edges(g, {1, 3});
  EXPECT_FALSE(has_augmenting_path_leq(g, m, 3));
  EXPECT_TRUE(has_augmenting_path_leq(g, m, 5));
  EXPECT_EQ(shortest_augmenting_path_length(g, m, 9), 5);

  // Empty matching: single edges are length-1 augmenting paths.
  EXPECT_EQ(shortest_augmenting_path_length(g, Matching(6), 9), 1);

  // Perfect matching: no augmenting path at all.
  Matching perfect = Matching::from_edges(g, {0, 2, 4});
  EXPECT_EQ(shortest_augmenting_path_length(g, perfect, 11), -1);
}

TEST(AugmentingSearch, ReturnedPathIsValidAndApplies) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = erdos_renyi(24, 0.12, rng);
    Matching m = greedy_mcm(g);
    // Remove one edge to open augmenting opportunities sometimes.
    auto ids = m.edge_ids(g);
    if (!ids.empty()) m.remove(g, ids[0]);
    auto p = find_augmenting_path_bounded(g, m, 7);
    if (!p) continue;
    const std::size_t before = m.size();
    apply_augmenting_path(g, m, *p);  // validates alternation internally
    EXPECT_EQ(m.size(), before + 1);
  }
}

TEST(AugmentingSearch, ApplyRejectsBadPaths) {
  Graph g = path_graph(4);
  Matching m = Matching::from_edges(g, {1});
  EXPECT_THROW(apply_augmenting_path(g, m, {}), std::invalid_argument);
  EXPECT_THROW(apply_augmenting_path(g, m, {0, 1}), std::invalid_argument);
  EXPECT_THROW(apply_augmenting_path(g, m, {1}), std::invalid_argument);
  // Non-alternating: 0,2 are not adjacent edges.
  EXPECT_THROW(apply_augmenting_path(g, m, {0, 2, 1}), std::invalid_argument);
}

TEST(SymmetricDifferenceDecomposition, PathsAndCycles) {
  // Cycle of 6 with two disjoint perfect matchings = one alternating
  // 6-cycle.
  Graph g = cycle_graph(6);
  Matching a = Matching::from_edges(g, {0, 2, 4});
  // Edge ids: cycle_graph edges are 0:0-1,1:1-2,...,4:4-5,5:0-5.
  Matching b = Matching::from_edges(g, {1, 3, 5});
  auto comps = decompose_symmetric_difference(g, a, b);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, AlternatingComponent::Kind::kCycle);
  EXPECT_EQ(comps[0].edges.size(), 6u);

  // Path of 4: a={0-1}, b={1-2}: symmetric difference is a 2-edge path.
  Graph p = path_graph(4);
  Matching pa = Matching::from_edges(p, {0});
  Matching pb = Matching::from_edges(p, {1});
  auto pcomps = decompose_symmetric_difference(p, pa, pb);
  ASSERT_EQ(pcomps.size(), 1u);
  EXPECT_EQ(pcomps[0].kind, AlternatingComponent::Kind::kPath);
  EXPECT_EQ(pcomps[0].edges.size(), 2u);
  EXPECT_EQ(pcomps[0].nodes.size(), 3u);
}

TEST(SymmetricDifferenceDecomposition, IdenticalMatchingsEmpty) {
  Graph g = path_graph(6);
  Matching m = Matching::from_edges(g, {0, 2});
  EXPECT_TRUE(decompose_symmetric_difference(g, m, m).empty());
}

class SymDiffSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymDiffSweep, ComponentsPartitionSymmetricDifference) {
  Rng rng(GetParam());
  Graph g = erdos_renyi(40, 0.08, rng);
  Matching a = greedy_mcm(g);
  // Second matching from a different edge order: use weights shuffle.
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Matching b(g.num_nodes());
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    if (b.is_free(ed.u) && b.is_free(ed.v)) b.add(g, e);
  }
  auto comps = decompose_symmetric_difference(g, a, b);
  std::size_t total_edges = 0;
  for (const auto& c : comps) {
    total_edges += c.edges.size();
    // Every component alternates between a-edges and b-edges.
    for (std::size_t i = 0; i + 1 < c.edges.size(); ++i) {
      const bool in_a1 = a.contains(g, c.edges[i]);
      const bool in_a2 = a.contains(g, c.edges[i + 1]);
      EXPECT_NE(in_a1, in_a2);
    }
    if (c.kind == AlternatingComponent::Kind::kPath) {
      EXPECT_EQ(c.nodes.size(), c.edges.size() + 1);
    } else {
      EXPECT_EQ(c.nodes.size(), c.edges.size());
      EXPECT_EQ(c.edges.size() % 2, 0u);  // alternating cycles are even
    }
  }
  // Total = |A ⊕ B|.
  std::set<EdgeId> sym;
  for (EdgeId e : a.edge_ids(g)) sym.insert(e);
  for (EdgeId e : b.edge_ids(g)) {
    if (!sym.insert(e).second) sym.erase(e);
  }
  EXPECT_EQ(total_edges, sym.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymDiffSweep,
                         ::testing::Values(3u, 7u, 11u, 19u, 23u));

}  // namespace
}  // namespace lps
