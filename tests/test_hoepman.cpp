// Tests for Hoepman's deterministic distributed 1/2-MWM (reference [11]
// of the paper).
#include <gtest/gtest.h>

#include "core/hoepman_mwm.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/exact_small.hpp"
#include "seq/greedy.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(Hoepman, TrivialAndEmptyGraphs) {
  EXPECT_EQ(hoepman_mwm(WeightedGraph{Graph(0, {}), {}}).matching.size(), 0u);
  EXPECT_EQ(hoepman_mwm(WeightedGraph{Graph(3, {}), {}}).matching.size(), 0u);
  const WeightedGraph single = make_weighted(path_graph(2), {5.0});
  const HoepmanResult res = hoepman_mwm(single);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.matching.size(), 1u);
}

TEST(Hoepman, DeterministicNoSeedNeeded) {
  Rng rng(3);
  Graph g = erdos_renyi(60, 0.1, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 10.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  const HoepmanResult a = hoepman_mwm(wg);
  const HoepmanResult b = hoepman_mwm(wg);
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(Hoepman, EqualsGreedyOnDistinctWeights) {
  // With all-distinct weights, locally-heaviest selection = sorted
  // greedy; Hoepman's protocol computes exactly that matching.
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    Graph g = erdos_renyi(40, 0.1, rng);
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      w[e] = 1.0 + static_cast<double>(e) * 0.01;
    }
    rng.shuffle(w);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const HoepmanResult res = hoepman_mwm(wg);
    EXPECT_TRUE(res.converged);
    EXPECT_DOUBLE_EQ(res.matching.weight(wg), greedy_mwm(wg).weight(wg));
  }
}

TEST(Hoepman, HandlesEqualWeightsViaIdTieBreak) {
  Rng rng(7);
  Graph g = erdos_renyi(50, 0.12, rng);
  std::vector<double> w(g.num_edges(), 2.0);  // all ties
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  const HoepmanResult res = hoepman_mwm(wg);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(is_maximal_matching(wg.graph, res.matching));
}

class HoepmanSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HoepmanSweep, HalfApproximationAndMaximality) {
  Rng rng(GetParam());
  for (int t = 0; t < 8; ++t) {
    Graph g = erdos_renyi(16, 0.25, rng);
    if (g.num_edges() == 0) continue;
    auto w = integer_weights(g.num_edges(), 30, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const HoepmanResult res = hoepman_mwm(wg);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(is_maximal_matching(wg.graph, res.matching));
    const double opt = exact_mwm_small(wg).weight(wg);
    EXPECT_GE(res.matching.weight(wg) + 1e-9, 0.5 * opt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HoepmanSweep,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

TEST(Hoepman, IncreasingPathIsTheLinearTimeWorstCase) {
  // Weights 1 < 2 < ... force matches to resolve one by one from the
  // heavy end: rounds scale linearly with n (the O(n) in the paper's
  // related-work table), unlike the O(log n) randomized algorithms.
  const HoepmanResult small = hoepman_mwm(increasing_path(64));
  const HoepmanResult large = hoepman_mwm(increasing_path(256));
  EXPECT_TRUE(small.converged);
  EXPECT_TRUE(large.converged);
  // The matching is the unique locally-heaviest one: edges n-2, n-4, ...
  EXPECT_EQ(large.matching.size(), 128u);
  // Linear growth: quadrupling n at least triples the rounds.
  EXPECT_GE(large.stats.rounds, 3 * small.stats.rounds);
  EXPECT_GE(large.stats.rounds, 256u / 2);
}

TEST(Hoepman, MessagesAreConstantWidth) {
  Rng rng(11);
  Graph g = erdos_renyi(80, 0.08, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 5.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  const HoepmanResult res = hoepman_mwm(wg);
  EXPECT_LE(res.stats.max_message_bits, 2u);
}

}  // namespace
}  // namespace lps
