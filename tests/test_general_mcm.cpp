// Tests for Algorithm 4 (Theorem 3.11): the randomized reduction from
// general graphs to the bipartite engine, including Observations 3.1 and
// 3.2 and the iteration-budget arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "core/general_mcm.hpp"
#include "graph/generators.hpp"
#include "seq/blossom.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(GeneralMcm, PaperBudgetFormula) {
  // 2^{2k+1} (k+1) ln k.
  EXPECT_EQ(general_mcm_paper_budget(3),
            static_cast<std::uint64_t>(std::ceil(128 * 4 * std::log(3.0))));
  EXPECT_EQ(general_mcm_paper_budget(2),
            static_cast<std::uint64_t>(std::ceil(32 * 3 * std::log(2.0))));
}

TEST(GeneralMcm, RejectsSmallK) {
  GeneralMcmOptions opts;
  opts.k = 1;
  EXPECT_THROW(general_mcm(path_graph(4), opts), std::invalid_argument);
}

class GeneralSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralSweep, ReachesTargetRatioOnEr) {
  Rng rng(GetParam());
  const Graph g = erdos_renyi(60, 0.08, rng);
  const std::size_t opt = blossom_mcm(g).size();
  GeneralMcmOptions opts;
  opts.k = 3;
  opts.seed = GetParam() * 13 + 5;
  opts.mode = GeneralMcmOptions::Mode::kAdaptive;
  opts.oracle_optimum_size = opt;
  const GeneralMcmResult res = general_mcm(g, opts);
  EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
  // The oracle stop certifies (1-1/3)|M*|; w.h.p. reached well before
  // the paper budget.
  EXPECT_GE(3 * res.matching.size(), 2 * opt);
  EXPECT_LE(res.iterations, res.paper_budget);
}

TEST_P(GeneralSweep, OddCyclesAndCliques) {
  // Non-bipartite structures: the bipartite engine only sees
  // bichromatic subgraphs, yet the overall algorithm must still work.
  GeneralMcmOptions opts;
  opts.k = 3;
  opts.seed = GetParam() + 3;
  for (const Graph& g : {cycle_graph(9), complete_graph(11),
                         cycle_graph(15)}) {
    const std::size_t opt = blossom_mcm(g).size();
    GeneralMcmOptions o = opts;
    o.oracle_optimum_size = opt;
    const GeneralMcmResult res = general_mcm(g, o);
    EXPECT_GE(3 * res.matching.size(), 2 * opt)
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralSweep,
                         ::testing::Values(71u, 73u, 79u, 83u));

TEST(GeneralMcm, Observation32Statistics) {
  // An augmenting path of length l survives into Ĝ with probability
  // 2^{-l}: check the empirical frequency for a fixed 3-path.
  // Path x0-y0-x1-y1 with M = {y0-x1}: survives iff colors alternate.
  const Graph g = path_graph(4);
  Matching m = Matching::from_edges(g, {1});
  int survived = 0;
  const int kTrials = 4000;
  Rng rng(5);
  for (int t = 0; t < kTrials; ++t) {
    std::uint8_t c[4];
    for (int v = 0; v < 4; ++v) c[v] = rng.coin();
    bool ok = true;
    for (EdgeId e = 0; e < 3; ++e) {
      const Edge& ed = g.edge(e);
      ok = ok && (c[ed.u] != c[ed.v]);
    }
    (void)m;
    survived += ok;
  }
  // P = 2^{-3} = 0.125.
  EXPECT_NEAR(survived / static_cast<double>(kTrials), 0.125, 0.02);
}

TEST(GeneralMcm, EmptyStreakStopTerminates) {
  // On a graph that is already perfectly matched after a few rounds, the
  // adaptive mode must stop by the empty-streak rule without an oracle.
  Graph g = complete_graph(8);
  GeneralMcmOptions opts;
  opts.k = 2;
  opts.seed = 21;
  opts.mode = GeneralMcmOptions::Mode::kAdaptive;
  opts.empty_streak_stop = 10;
  const GeneralMcmResult res = general_mcm(g, opts);
  EXPECT_EQ(res.matching.size(), 4u);  // perfect on K8
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations, res.paper_budget);
}

TEST(GeneralMcm, PaperModeRunsFullBudgetWithOverride) {
  // Paper mode with a small explicit budget runs exactly that many
  // iterations (no early stop), still producing a valid matching.
  Rng rng(31);
  const Graph g = erdos_renyi(24, 0.15, rng);
  GeneralMcmOptions opts;
  opts.k = 2;
  opts.seed = 8;
  opts.mode = GeneralMcmOptions::Mode::kPaper;
  opts.max_iterations = 12;
  const GeneralMcmResult res = general_mcm(g, opts);
  EXPECT_EQ(res.iterations, 12u);
  EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
}

TEST(GeneralMcm, MatchingOnlyGrows) {
  // Augmentation never shrinks the matching: run with a tracked budget
  // and verify monotonicity via repeated short runs sharing a seed
  // prefix is impractical; instead assert the final size is at least
  // the size after one iteration.
  Rng rng(41);
  const Graph g = erdos_renyi(40, 0.1, rng);
  GeneralMcmOptions one;
  one.k = 3;
  one.seed = 99;
  one.mode = GeneralMcmOptions::Mode::kPaper;
  one.max_iterations = 1;
  GeneralMcmOptions many = one;
  many.max_iterations = 20;
  EXPECT_GE(general_mcm(g, many).matching.size(),
            general_mcm(g, one).matching.size());
}

}  // namespace
}  // namespace lps
