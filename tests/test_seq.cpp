// Cross-validation of the sequential matching substrate: Hopcroft–Karp
// vs blossom vs the exhaustive oracle, Hungarian vs the exhaustive
// oracle, greedy approximation guarantees.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/blossom.hpp"
#include "seq/exact_small.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

// ------------------------------------------------------------- greedy --

TEST(Greedy, McmIsMaximal) {
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    Graph g = erdos_renyi(50, 0.08, rng);
    const Matching m = greedy_mcm(g);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Greedy, MwmHalfApproxOnTrap) {
  const WeightedGraph wg = greedy_trap_path(10, 0.001);
  const Matching greedy = greedy_mwm(wg);
  // Greedy takes exactly the 10 middle edges (weight 10.01); the optimum
  // takes the 20 outer edges (weight 20): the 1/2 bound is tight.
  EXPECT_EQ(greedy.size(), 10u);
  EXPECT_NEAR(greedy.weight(wg), 10 * 1.001, 1e-9);
  const double ratio = greedy.weight(wg) / 20.0;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 0.51);
}

TEST(Greedy, MwmRespectsHalfBoundSmall) {
  Rng rng(5);
  for (int t = 0; t < 25; ++t) {
    Graph g = erdos_renyi(14, 0.3, rng);
    auto w = integer_weights(g.num_edges(), 20, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const double opt = exact_mwm_small(wg).weight(wg);
    EXPECT_GE(greedy_mwm(wg).weight(wg) + 1e-9, 0.5 * opt);
    EXPECT_GE(locally_heaviest_mwm(wg).weight(wg) + 1e-9, 0.5 * opt);
  }
}

TEST(Greedy, LocallyHeaviestIsMaximalAndValid) {
  Rng rng(7);
  for (int t = 0; t < 15; ++t) {
    Graph g = erdos_renyi(40, 0.1, rng);
    auto w = uniform_weights(g.num_edges(), 1.0, 9.0, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const Matching m = locally_heaviest_mwm(wg);
    EXPECT_TRUE(is_maximal_matching(wg.graph, m));
  }
}

TEST(Greedy, LocallyHeaviestEqualsGreedyWeightOnDistinctWeights) {
  // With all-distinct weights both algorithms pick the same matching.
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    Graph g = erdos_renyi(30, 0.15, rng);
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      w[e] = 1.0 + e * 0.001 + rng.uniform01() * 0.0001;
    }
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    EXPECT_DOUBLE_EQ(greedy_mwm(wg).weight(wg),
                     locally_heaviest_mwm(wg).weight(wg));
  }
}

// ----------------------------------------------------- exact_small ----

TEST(ExactSmall, KnownInstances) {
  // Path of 5: MCM = 2.
  EXPECT_EQ(exact_mcm_small(path_graph(5)).size(), 2u);
  // Odd cycle of 7: MCM = 3.
  EXPECT_EQ(exact_mcm_small(cycle_graph(7)).size(), 3u);
  // K4: perfect matching.
  EXPECT_EQ(exact_mcm_small(complete_graph(4)).size(), 2u);
  // Star: 1.
  EXPECT_EQ(exact_mcm_small(star_graph(8)).size(), 1u);
  // Empty graph edge cases.
  EXPECT_EQ(exact_mcm_small(Graph(0, {})).size(), 0u);
  EXPECT_EQ(exact_mcm_small(Graph(5, {})).size(), 0u);
}

TEST(ExactSmall, RejectsLargeGraphs) {
  EXPECT_THROW(exact_mcm_small(path_graph(31)), std::invalid_argument);
}

TEST(ExactSmall, MwmPrefersHeavyPairOverMiddle) {
  // Path a-b-c-d with weights 3, 5, 3: optimum takes the two outer.
  WeightedGraph wg = make_weighted(path_graph(4), {3, 5, 3});
  const Matching m = exact_mwm_small(wg);
  EXPECT_DOUBLE_EQ(m.weight(wg), 6.0);
  EXPECT_EQ(m.size(), 2u);
}

// ------------------------------------------------------ hopcroft-karp --

TEST(HopcroftKarp, KnownValues) {
  // Perfect matching in K_{4,4}.
  EXPECT_EQ(hopcroft_karp(complete_bipartite(4, 4)).size(), 4u);
  // K_{3,5}: 3.
  EXPECT_EQ(hopcroft_karp(complete_bipartite(3, 5)).size(), 3u);
  // Even cycle: perfect.
  EXPECT_EQ(hopcroft_karp(cycle_graph(10)).size(), 5u);
  // Path of 7 (6 edges): 3.
  EXPECT_EQ(hopcroft_karp(path_graph(7)).size(), 3u);
}

TEST(HopcroftKarp, RejectsBadSides) {
  Graph g = path_graph(3);
  EXPECT_THROW(hopcroft_karp(g, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(hopcroft_karp(g, {0, 1}), std::invalid_argument);
  EXPECT_THROW(hopcroft_karp(cycle_graph(5)), std::invalid_argument);
}

TEST(HopcroftKarp, NoAugmentingPathAtOptimum) {
  Rng rng(13);
  const auto bg = random_bipartite(25, 25, 0.1, rng);
  const Matching m = hopcroft_karp(bg.graph, bg.side);
  EXPECT_EQ(shortest_augmenting_path_length(bg.graph, m, 15), -1);
}

// ------------------------------------------------------------ blossom --

TEST(Blossom, HandlesOddStructures) {
  // Odd cycle: n/2 floor.
  EXPECT_EQ(blossom_mcm(cycle_graph(9)).size(), 4u);
  // Triangle with a pendant: 2.
  Graph g(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(blossom_mcm(g).size(), 2u);
  // Petersen graph has a perfect matching.
  Graph petersen(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                      {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
                      {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}});
  EXPECT_EQ(blossom_mcm(petersen).size(), 5u);
}

// ---------------------------------------------------------- hungarian --

TEST(Hungarian, AssignmentKnownMatrix) {
  // Optimal assignment: r0->c2 (11), r1->c1 (4), r2->c0 (9) = 24
  // (greedy picking 11, 5, 9 would reuse column 0 and is infeasible).
  const AssignmentResult r = max_weight_assignment({{7, 5, 11},
                                                    {5, 4, 1},
                                                    {9, 3, 2}});
  EXPECT_DOUBLE_EQ(r.total_profit, 24.0);
  EXPECT_EQ(r.row_to_col[0], 2);
  EXPECT_EQ(r.row_to_col[1], 1);
  EXPECT_EQ(r.row_to_col[2], 0);
}

TEST(Hungarian, AllowsUnassignedRows) {
  // One column, two rows: only the better row gets it.
  const AssignmentResult r = max_weight_assignment({{5}, {9}});
  EXPECT_EQ(r.row_to_col[0], -1);
  EXPECT_EQ(r.row_to_col[1], 0);
  EXPECT_DOUBLE_EQ(r.total_profit, 9);
}

TEST(Hungarian, RectangularAndZeroProfit) {
  const AssignmentResult r = max_weight_assignment({{0, 0, 3, 0}});
  EXPECT_EQ(r.row_to_col[0], 2);
  EXPECT_DOUBLE_EQ(r.total_profit, 3);
  EXPECT_THROW(max_weight_assignment({{-1.0}}), std::invalid_argument);
}

// --------------------------------------------- parameterized sweeps ----

class SeqCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqCrossValidation, HkEqualsBlossomEqualsExactOnBipartite) {
  Rng rng(GetParam());
  for (int t = 0; t < 8; ++t) {
    const auto bg = random_bipartite(8, 8, 0.25, rng);
    const std::size_t hk = hopcroft_karp(bg.graph, bg.side).size();
    const std::size_t bl = blossom_mcm(bg.graph).size();
    const std::size_t ex = exact_mcm_small(bg.graph).size();
    EXPECT_EQ(hk, ex);
    EXPECT_EQ(bl, ex);
  }
}

TEST_P(SeqCrossValidation, BlossomEqualsExactOnGeneral) {
  Rng rng(GetParam() ^ 0xabcd);
  for (int t = 0; t < 8; ++t) {
    const Graph g = erdos_renyi(16, 0.2, rng);
    EXPECT_EQ(blossom_mcm(g).size(), exact_mcm_small(g).size());
  }
}

TEST_P(SeqCrossValidation, BlossomLargeSelfConsistency) {
  Rng rng(GetParam() ^ 0x1234);
  const Graph g = erdos_renyi(120, 0.04, rng);
  const Matching m = blossom_mcm(g);
  // Optimality certificate we can check cheaply: no short augmenting
  // path exists (full certificate needs Tutte–Berge; length-9 bounded
  // search is a strong smoke check).
  EXPECT_EQ(shortest_augmenting_path_length(g, m, 9), -1);
}

TEST_P(SeqCrossValidation, HungarianEqualsExactMwm) {
  Rng rng(GetParam() ^ 0x7777);
  for (int t = 0; t < 6; ++t) {
    const auto bg = random_bipartite(7, 7, 0.4, rng);
    if (bg.graph.num_edges() == 0) continue;
    auto w = integer_weights(bg.graph.num_edges(), 30, rng);
    const WeightedGraph wg =
        make_weighted(Graph(bg.graph), std::move(w));
    const double hung = hungarian_mwm(wg, bg.side).weight(wg);
    const double exact = exact_mwm_small(wg).weight(wg);
    EXPECT_DOUBLE_EQ(hung, exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqCrossValidation,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u));

}  // namespace
}  // namespace lps
