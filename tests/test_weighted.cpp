// Tests for Section 4: the gain machinery (against the Figure 2
// arithmetic), Lemma 4.1, the class-based delta-MWM black box, and
// Algorithm 5 (Theorem 4.5).
#include <gtest/gtest.h>

#include "core/class_mwm.hpp"
#include "core/gain.hpp"
#include "core/weighted_mwm.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/exact_small.hpp"
#include "seq/greedy.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

using lps::testing::make_fig2;
using lps::testing::sweep_seeds;

// ----------------------------------------------------- gain machinery --

TEST(Gain, Fig2ArithmeticReproduced) {
  const auto fig = make_fig2();
  const Graph& g = fig.wg.graph;

  // w(M) = 14.
  EXPECT_DOUBLE_EQ(fig.m.weight(fig.wg), 14.0);

  // w_M gains: ab = 6-2 = 4, cd = 7-2 = 5, ef = 13-12 = 1; matched: 0.
  const auto gains = gain_weights(fig.wg, fig.m);
  EXPECT_DOUBLE_EQ(gains[g.find_edge(0, 1)], 4.0);
  EXPECT_DOUBLE_EQ(gains[g.find_edge(2, 3)], 5.0);
  EXPECT_DOUBLE_EQ(gains[g.find_edge(4, 5)], 1.0);
  EXPECT_DOUBLE_EQ(gains[g.find_edge(1, 2)], 0.0);
  EXPECT_DOUBLE_EQ(gains[g.find_edge(5, 6)], 0.0);

  // w_M(M') = 10.
  double wm_mprime = 0;
  for (EdgeId e : fig.m_prime) wm_mprime += gains[e];
  EXPECT_DOUBLE_EQ(wm_mprime, 10.0);

  // M'' = M ⊕ ∪ wrap(e): weight 26 >= 14 + 10 (strictly greater because
  // wraps of ab and cd share the matched edge bc).
  Matching m = fig.m;
  apply_wraps(g, m, fig.m_prime);
  EXPECT_DOUBLE_EQ(m.weight(fig.wg), 26.0);
  EXPECT_GE(m.weight(fig.wg), 14.0 + 10.0);
  EXPECT_EQ(m.size(), 3u);
}

TEST(Gain, WrapEdgesShapes) {
  const auto fig = make_fig2();
  const Graph& g = fig.wg.graph;
  // ab: wrap = {ab, bc}.
  auto w1 = wrap_edges(g, fig.m, g.find_edge(0, 1));
  EXPECT_EQ(w1.size(), 2u);
  // cd: wrap = {bc, cd} (d is free).
  auto w2 = wrap_edges(g, fig.m, g.find_edge(2, 3));
  EXPECT_EQ(w2.size(), 2u);
  // A wholly-free edge wraps to itself only.
  Matching empty(g.num_nodes());
  EXPECT_EQ(wrap_edges(g, empty, 0).size(), 1u);
  // Matched edges cannot be wrapped.
  EXPECT_THROW(wrap_edges(g, fig.m, g.find_edge(1, 2)),
               std::invalid_argument);
}

TEST(Gain, DistributedExchangeRoundIsAccounted) {
  const auto fig = make_fig2();
  NetStats stats;
  const auto gains = gain_weights(fig.wg, fig.m, &stats);
  EXPECT_EQ(stats.rounds, 2u);  // announce + deliver
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.max_message_bits, 64u);
  EXPECT_DOUBLE_EQ(gains[fig.wg.graph.find_edge(0, 1)], 4.0);
}

class Lemma41Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma41Sweep, WrapApplicationBeatsGainSum) {
  // Lemma 4.1: for disjoint matchings M, M',
  // w(M ⊕ ∪wrap(e)) >= w(M) + w_M(M'), and the result is a matching.
  Rng rng(GetParam());
  for (int t = 0; t < 12; ++t) {
    Graph g = erdos_renyi(30, 0.12, rng);
    if (g.num_edges() < 4) continue;
    auto w = uniform_weights(g.num_edges(), 1.0, 20.0, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const Graph& graph = wg.graph;
    // M: greedy. M': greedy matching on the *unmatched* edges, by gain.
    Matching m = greedy_mwm(wg);
    // Drop some edges from M to create slack.
    auto ids = m.edge_ids(graph);
    for (std::size_t i = 0; i < ids.size(); i += 3) m.remove(graph, ids[i]);
    const auto gains = gain_weights(wg, m);
    Matching m_prime(graph.num_nodes());
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (m.contains(graph, e) || gains[e] <= 0) continue;
      const Edge& ed = graph.edge(e);
      if (m_prime.is_free(ed.u) && m_prime.is_free(ed.v)) {
        m_prime.add(graph, e);
      }
    }
    double gain_sum = 0;
    for (EdgeId e : m_prime.edge_ids(graph)) gain_sum += gains[e];
    const double before = m.weight(wg);
    apply_wraps(graph, m, m_prime.edge_ids(graph));
    EXPECT_GE(m.weight(wg) + 1e-9, before + gain_sum);
    EXPECT_TRUE(is_valid_matching(graph, m.edge_ids(graph)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma41Sweep,
                         ::testing::Values(3u, 6u, 9u, 12u, 15u));

TEST(Gain, ApplyWrapsRejectsNonMatchingInput) {
  const auto fig = make_fig2();
  const Graph& g = fig.wg.graph;
  Matching m = fig.m;
  // ab and bc share vertex b... bc is matched; use ab twice instead.
  EXPECT_THROW(apply_wraps(g, m, {0, 0}), std::invalid_argument);
}

// ------------------------------------------------------ class_mwm -----

class ClassMwmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassMwmSweep, ValidAndConstantFactorOnSmall) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    Graph g = erdos_renyi(16, 0.25, rng);
    if (g.num_edges() == 0) continue;
    auto w = integer_weights(g.num_edges(), 64, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    ClassMwmOptions opts;
    opts.seed = GetParam() * 3 + t;
    const ClassMwmResult res = class_mwm(wg, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(is_valid_matching(wg.graph, res.matching.edge_ids(wg.graph)));
    const double opt = exact_mwm_small(wg).weight(wg);
    // Conservative constant-factor assertion: delta >= 1/5 (the value
    // the paper plugs into Algorithm 5; measured delta is ~0.55+).
    EXPECT_GE(res.matching.weight(wg) + 1e-9, 0.2 * opt);
  }
}

TEST_P(ClassMwmSweep, SurvivorsAreMutuallyConsistent) {
  Rng rng(GetParam() ^ 0x321);
  Graph g = erdos_renyi(60, 0.08, rng);
  if (g.num_edges() == 0) return;
  auto w = power_of_two_weights(g.num_edges(), 6, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  ClassMwmOptions opts;
  opts.seed = GetParam();
  const ClassMwmResult res = class_mwm(wg, opts);
  EXPECT_LE(res.num_classes, 6u);
  EXPECT_TRUE(is_valid_matching(wg.graph, res.matching.edge_ids(wg.graph)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassMwmSweep,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

TEST(ClassMwm, SingleClassEqualsMaximalMatchingWeightwise) {
  // All weights equal: one class; result is a maximal matching.
  Graph g = cycle_graph(10);
  std::vector<double> w(g.num_edges(), 3.0);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  const ClassMwmResult res = class_mwm(wg, {.seed = 4});
  EXPECT_EQ(res.num_classes, 1u);
  EXPECT_TRUE(is_maximal_matching(wg.graph, res.matching));
}

TEST(ClassMwm, EmptyGraph) {
  const WeightedGraph wg{Graph(3, {}), {}};
  const ClassMwmResult res = class_mwm(wg, {.seed = 1});
  EXPECT_EQ(res.matching.size(), 0u);
}

// -------------------------------------------- Algorithm 5 / Thm 4.5 ---

class WeightedMwmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedMwmSweep, HalfMinusEpsAgainstExactWithGreedyBox) {
  // With the sequential greedy black box (delta = 1/2) the reduction's
  // guarantee is purely Lemma 4.3: w(M) >= (1/2 - eps) w(M*).
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    Graph g = erdos_renyi(14, 0.3, rng);
    if (g.num_edges() == 0) continue;
    auto w = uniform_weights(g.num_edges(), 1.0, 30.0, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    WeightedMwmOptions opts;
    opts.eps = 0.05;
    opts.delta = 0.5;
    opts.seed = GetParam() + t;
    opts.black_box = greedy_black_box();
    const WeightedMwmResult res = weighted_mwm(wg, opts);
    const double opt = exact_mwm_small(wg).weight(wg);
    EXPECT_GE(res.matching.weight(wg) + 1e-9, (0.5 - 0.05) * opt);
  }
}

TEST_P(WeightedMwmSweep, HalfMinusEpsWithDistributedBox) {
  Rng rng(GetParam() ^ 0x888);
  for (int t = 0; t < 4; ++t) {
    Graph g = erdos_renyi(14, 0.3, rng);
    if (g.num_edges() == 0) continue;
    auto w = integer_weights(g.num_edges(), 40, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    WeightedMwmOptions opts;
    opts.eps = 0.05;
    opts.delta = 0.2;  // the paper's assumption for the [18] black box
    opts.seed = GetParam() * 7 + t;
    const WeightedMwmResult res = weighted_mwm(wg, opts);
    const double opt = exact_mwm_small(wg).weight(wg);
    EXPECT_GE(res.matching.weight(wg) + 1e-9, (0.5 - 0.05) * opt);
  }
}

TEST_P(WeightedMwmSweep, TrajectoryIsMonotoneNondecreasing) {
  Rng rng(GetParam() ^ 0x1111);
  Graph g = erdos_renyi(40, 0.1, rng);
  if (g.num_edges() == 0) return;
  auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  WeightedMwmOptions opts;
  opts.eps = 0.02;
  opts.seed = GetParam();
  const WeightedMwmResult res = weighted_mwm(wg, opts);
  for (std::size_t i = 1; i < res.weight_trajectory.size(); ++i) {
    EXPECT_GE(res.weight_trajectory[i] + 1e-9, res.weight_trajectory[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedMwmSweep,
                         ::testing::Values(61u, 62u, 63u, 64u));

TEST(WeightedMwm, GreedyTrapIsEscaped) {
  // Greedy alone gets ~1/2 on the trap; Algorithm 5's length-3
  // augmentations fix the gadgets to the optimum.
  const WeightedGraph wg = greedy_trap_path(8, 0.01);
  WeightedMwmOptions opts;
  opts.eps = 0.05;
  opts.seed = 3;
  const WeightedMwmResult res = weighted_mwm(wg, opts);
  // Optimum = 16 (both outer edges of each gadget).
  EXPECT_GE(res.matching.weight(wg), 0.45 * 16.0);
  // And strictly better than the pure-greedy 8.08 whp... assert above
  // the Lemma 4.3 floor for eps = .05:
  EXPECT_GE(res.matching.weight(wg) + 1e-9, (0.5 - 0.05) * 16.0);
}

TEST(WeightedMwm, ConvergedEarlyOnLocalOptimum) {
  // A single edge: one iteration matches it, the next finds no gain.
  const WeightedGraph wg = make_weighted(path_graph(2), {5.0});
  WeightedMwmOptions opts;
  opts.eps = 0.2;
  opts.seed = 1;
  const WeightedMwmResult res = weighted_mwm(wg, opts);
  EXPECT_TRUE(res.converged_early);
  EXPECT_DOUBLE_EQ(res.matching.weight(wg), 5.0);
}

TEST(WeightedMwm, RejectsBadParameters) {
  const WeightedGraph wg = make_weighted(path_graph(2), {1.0});
  WeightedMwmOptions opts;
  opts.eps = 0.0;
  EXPECT_THROW(weighted_mwm(wg, opts), std::invalid_argument);
  opts.eps = 0.1;
  opts.delta = 0.0;
  EXPECT_THROW(weighted_mwm(wg, opts), std::invalid_argument);
}

}  // namespace
}  // namespace lps
