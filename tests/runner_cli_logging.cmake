# CLI contract test for tools/runner's --log-level (PR 9 satellite):
# stdout carries exactly one JSON line at every level, the informational
# stderr notes appear at info and vanish at quiet, debug adds the
# resolved-spec echo, and an unknown level is rejected exit-2 with a
# one-line diagnostic. Script form for the same reason as
# runner_cli_rejection.cmake: the contract is exit code *and* stream
# shape, which PASS_REGULAR_EXPRESSION cannot pin.
#
#   cmake -DRUNNER=<path-to-runner-binary> -P runner_cli_logging.cmake
#
# Registered by the top-level CMakeLists as test `runner_cli_logging`.
if(NOT RUNNER)
  message(FATAL_ERROR "pass -DRUNNER=<path to the runner binary>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/runner_cli_logging_out")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

# Runs the runner at ${level} with a valid spec + --json-dir; checks
# exit 0 and that stdout is exactly one JSON object line. Leaves stderr
# in ${err_out} for the caller's level-specific checks.
function(run_level level err_out)
  execute_process(
    COMMAND "${RUNNER}" --generator path:n=8 --solver greedy_mcm
            --oracle none --ledger off --json-dir "${workdir}/${level}"
            --log-level ${level}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(SEND_ERROR
        "--log-level ${level}: expected exit 0, got '${code}'\nstderr: ${err}")
  endif()
  string(REGEX REPLACE "\n$" "" out_stripped "${out}")
  if(out_stripped MATCHES "\n")
    message(SEND_ERROR
        "--log-level ${level}: stdout is not one line:\n${out}")
  endif()
  if(NOT out_stripped MATCHES "^\\{.*\\}$")
    message(SEND_ERROR
        "--log-level ${level}: stdout is not a JSON object line:\n${out}")
  endif()
  set(${err_out} "${err}" PARENT_SCOPE)
endfunction()

# info (the default-equivalent level) keeps the file-written note.
run_level(info info_err)
if(NOT info_err MATCHES "wrote ")
  message(SEND_ERROR
      "--log-level info: missing 'wrote' note on stderr:\n${info_err}")
endif()

# quiet drops every informational note — stderr is empty on success.
run_level(quiet quiet_err)
if(quiet_err MATCHES "wrote ")
  message(SEND_ERROR
      "--log-level quiet: 'wrote' note leaked to stderr:\n${quiet_err}")
endif()

# debug adds the one-line resolved-spec echo (and keeps the notes).
run_level(debug debug_err)
if(NOT debug_err MATCHES "runner: spec: generator=path:n=8")
  message(SEND_ERROR
      "--log-level debug: missing spec echo on stderr:\n${debug_err}")
endif()
if(NOT debug_err MATCHES "wrote ")
  message(SEND_ERROR
      "--log-level debug: missing 'wrote' note on stderr:\n${debug_err}")
endif()

# Unknown level: exit 2, one-line `runner: invalid spec:` diagnostic,
# nothing on stdout.
execute_process(
  COMMAND "${RUNNER}" --generator path:n=8 --solver greedy_mcm
          --oracle none --log-level verbose
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 2)
  message(SEND_ERROR
      "unknown log level: expected exit 2, got '${code}'\nstderr: ${err}")
endif()
if(NOT err MATCHES "runner: invalid spec: unknown log level 'verbose'")
  message(SEND_ERROR "unknown log level: wrong diagnostic:\n${err}")
endif()
string(REGEX REPLACE "\n$" "" err_stripped "${err}")
if(err_stripped MATCHES "\n")
  message(SEND_ERROR "unknown log level: diagnostic is not one line:\n${err}")
endif()
if(NOT out STREQUAL "")
  message(SEND_ERROR "unknown log level: stdout not empty:\n${out}")
endif()
