// The unified solver registry: every src/core and src/seq algorithm is
// reachable by name, runs on shared instances through the uniform
// solve() interface, produces valid matchings, and meets its stated
// approximation guarantee against the exact src/seq oracles
// (hopcroft_karp / blossom / hungarian / exact_*_small). Also covers
// the config key validation, capability mismatch errors, and the
// data-driven runner (generator specs, oracle resolution, JSON).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/blossom.hpp"
#include "seq/exact_small.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

using api::Capabilities;
using api::Instance;
using api::MatchingSolver;
using api::SolveResult;
using api::SolverConfig;
using api::SolverRegistry;

Instance small_bipartite(std::uint64_t seed, bool weighted) {
  Rng rng(seed);
  // 30 nodes total: the exhaustive exact_*_small solvers cap at n <= 30.
  BipartiteGraph bg = random_bipartite(15, 15, 0.25, rng);
  if (!weighted) {
    Instance inst = Instance::unweighted(std::move(bg.graph));
    inst.with_side(std::move(bg.side));
    return inst;
  }
  auto w = uniform_weights(bg.graph.num_edges(), 1.0, 64.0, rng);
  Instance inst =
      Instance::weighted(make_weighted(std::move(bg.graph), std::move(w)));
  inst.with_side(std::move(bg.side));
  return inst;
}

Instance small_general(std::uint64_t seed, bool weighted) {
  Rng rng(seed);
  Graph g = erdos_renyi(16, 0.35, rng);
  if (!weighted) return Instance::unweighted(std::move(g));
  auto w = uniform_weights(g.num_edges(), 1.0, 64.0, rng);
  return Instance::weighted(make_weighted(std::move(g), std::move(w)));
}

/// Exact optimum of the instance's objective via the src/seq oracles.
double exact_optimum(const Instance& inst) {
  if (inst.has_weights()) {
    const auto side = inst.bipartition();
    const Matching opt = side ? hungarian_mwm(inst.weighted_graph(), *side)
                              : exact_mwm_small(inst.weighted_graph());
    return opt.weight(inst.weighted_graph());
  }
  const auto side = inst.bipartition();
  const Matching opt =
      side ? hopcroft_karp(inst.graph(), *side) : blossom_mcm(inst.graph());
  return static_cast<double>(opt.size());
}

double objective(const Instance& inst, const Matching& m) {
  return inst.has_weights() ? m.weight(inst.weighted_graph())
                            : static_cast<double>(m.size());
}

// ----------------------------------------------------------- registry --

TEST(Registry, EveryCoreAndSeqAlgorithmIsRegistered) {
  const std::set<std::string> expected = {
      // src/core
      "israeli_itai", "generic_mcm", "bipartite_mcm", "general_mcm",
      "hoepman_mwm", "class_mwm", "weighted_mwm", "pipelined_max",
      // src/seq
      "greedy_mcm", "greedy_mwm", "locally_heaviest_mwm", "hopcroft_karp",
      "blossom", "hungarian", "exact_mcm_small", "exact_mwm_small",
      // src/lca (the rank-greedy oracle's global companion)
      "rank_greedy_mcm"};
  const auto names = SolverRegistry::global().names();
  const std::set<std::string> actual(names.begin(), names.end());
  EXPECT_EQ(actual, expected);
  for (const std::string& name : names) {
    const MatchingSolver& s = SolverRegistry::global().at(name);
    EXPECT_EQ(s.name(), name);
    EXPECT_FALSE(s.description().empty()) << name;
    const Capabilities caps = s.capabilities();
    EXPECT_TRUE(caps.bipartite || caps.general) << name;
  }
}

TEST(Registry, UnknownSolverThrowsWithNameList) {
  try {
    SolverRegistry::global().at("no_such_solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bipartite_mcm"), std::string::npos);
  }
  EXPECT_EQ(SolverRegistry::global().find("no_such_solver"), nullptr);
}

TEST(Registry, DuplicateRegistrationThrows) {
  SolverRegistry local;
  api::register_builtin_solvers(local);
  EXPECT_EQ(local.size(), SolverRegistry::global().size());
  EXPECT_THROW(api::register_builtin_solvers(local), std::invalid_argument);
}

TEST(Registry, UnknownConfigKeyIsRejected) {
  const Instance inst = small_bipartite(1, false);
  const MatchingSolver& s = SolverRegistry::global().at("bipartite_mcm");
  EXPECT_THROW(s.solve(inst, SolverConfig::parse("kk=3")),
               std::invalid_argument);
  EXPECT_NO_THROW(s.solve(inst, SolverConfig::parse("k=3")));
}

TEST(Registry, WeightedSolverRequiresWeights) {
  const Instance inst = small_bipartite(2, false);
  EXPECT_THROW(
      SolverRegistry::global().at("hungarian").solve(inst, SolverConfig()),
      std::invalid_argument);
}

TEST(Registry, BipartiteOnlySolverRejectsOddCycle) {
  const Instance inst = Instance::unweighted(cycle_graph(9));
  EXPECT_THROW(
      SolverRegistry::global().at("bipartite_mcm").solve(inst, SolverConfig()),
      std::invalid_argument);
  EXPECT_THROW(
      SolverRegistry::global().at("hopcroft_karp").solve(inst, SolverConfig()),
      std::invalid_argument);
}

// --------------------------- every solver on shared small instances --

TEST(Registry, EverySolverSolvesBipartiteInstancesWithinGuarantee) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    for (const bool weighted : {false, true}) {
      const Instance inst = small_bipartite(seed, weighted);
      const double opt = exact_optimum(inst);
      for (const std::string& name : SolverRegistry::global().names()) {
        const MatchingSolver& s = SolverRegistry::global().at(name);
        const Capabilities caps = s.capabilities();
        if (caps.primitive) continue;           // pipelined_max: below
        if (caps.weighted != weighted) continue;
        SolverConfig cfg;
        cfg.seed(seed + 7);
        const SolveResult res = s.solve(inst, cfg);
        const auto ids = res.matching.edge_ids(inst.graph());
        EXPECT_TRUE(is_valid_matching(inst.graph(), ids)) << name;
        if (caps.maximal) {
          EXPECT_TRUE(is_maximal_matching(inst.graph(), res.matching))
              << name;
        }
        if (opt > 0) {
          const double ratio = objective(inst, res.matching) / opt;
          EXPECT_GE(ratio, s.guarantee(cfg) - 1e-9)
              << name << " seed " << seed;
          EXPECT_LE(ratio, 1.0 + 1e-9) << name << " seed " << seed;
          if (caps.exact) {
            EXPECT_NEAR(ratio, 1.0, 1e-9) << name << " seed " << seed;
          }
        }
        EXPECT_GE(res.wall_ms, 0.0) << name;
        if (caps.distributed) {
          EXPECT_GT(res.stats.rounds, 0u) << name;
        }
      }
    }
  }
}

TEST(Registry, EveryGeneralSolverSolvesGeneralInstancesWithinGuarantee) {
  for (const std::uint64_t seed : {5u, 23u}) {
    for (const bool weighted : {false, true}) {
      const Instance inst = small_general(seed, weighted);
      const double opt = exact_optimum(inst);
      for (const std::string& name : SolverRegistry::global().names()) {
        const MatchingSolver& s = SolverRegistry::global().at(name);
        const Capabilities caps = s.capabilities();
        if (caps.primitive || !caps.general) continue;
        if (caps.weighted != weighted) continue;
        SolverConfig cfg;
        cfg.seed(seed + 11);
        const SolveResult res = s.solve(inst, cfg);
        EXPECT_TRUE(is_valid_matching(inst.graph(),
                                      res.matching.edge_ids(inst.graph())))
            << name;
        if (opt > 0) {
          const double ratio = objective(inst, res.matching) / opt;
          EXPECT_GE(ratio, s.guarantee(cfg) - 1e-9)
              << name << " seed " << seed;
        }
      }
    }
  }
}

TEST(Registry, PipelinedMaxPrimitiveReportsTreeMaximum) {
  Rng rng(13);
  const Instance inst = Instance::unweighted(random_tree(40, rng));
  NodeId max_degree = 0;
  for (NodeId v = 0; v < inst.graph().num_nodes(); ++v) {
    max_degree = std::max(max_degree, inst.graph().degree(v));
  }
  const MatchingSolver& s = SolverRegistry::global().at("pipelined_max");
  const SolveResult res = s.solve(inst, SolverConfig::parse("chunk_bits=4"));
  EXPECT_EQ(res.matching.size(), 0u);
  ASSERT_TRUE(res.metrics.count("maximum"));
  EXPECT_DOUBLE_EQ(res.metrics.at("maximum"),
                   static_cast<double>(max_degree));
  EXPECT_GT(res.stats.rounds, 0u);
}

// ------------------------------------------------------ SolverConfig --

TEST(SolverConfigTest, ParseAndTypedAccess) {
  const SolverConfig cfg =
      SolverConfig::parse("k=3,eps=0.25,mode=paper,flag,seed=42");
  EXPECT_EQ(cfg.get_int("k", 0), 3);
  EXPECT_DOUBLE_EQ(cfg.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(cfg.get("mode", ""), "paper");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.seed(), 42u);
  EXPECT_FALSE(cfg.has("seed"));  // routed to the seed field, not the map
  EXPECT_EQ(cfg.get_int("absent", -1), -1);
}

TEST(SolverConfigTest, MalformedSpecsThrow) {
  EXPECT_THROW(SolverConfig::parse("=3"), std::invalid_argument);
  EXPECT_THROW(SolverConfig::parse("k=1,k=2"), std::invalid_argument);
  const SolverConfig cfg = SolverConfig::parse("k=abc");
  EXPECT_THROW(cfg.get_int("k", 0), std::invalid_argument);
}

TEST(SolverConfigTest, ToStringIsCanonical) {
  SolverConfig cfg = SolverConfig::parse("k=3,eps=0.5");
  cfg.seed(9);
  EXPECT_EQ(cfg.to_string(), "eps=0.5,k=3,seed=9");
}

// ------------------------------------------------------------ runner --

TEST(Runner, MakeInstanceParsesFamilies) {
  const Instance er = api::make_instance("er:n=32,deg=4", 1);
  EXPECT_EQ(er.graph().num_nodes(), 32u);
  EXPECT_FALSE(er.has_weights());

  const Instance bip =
      api::make_instance("bipartite:nx=8,ny=8,p=0.5,w=uniform,wlo=1,whi=9", 2);
  EXPECT_EQ(bip.graph().num_nodes(), 16u);
  EXPECT_TRUE(bip.has_weights());
  ASSERT_TRUE(bip.side().has_value());

  const Instance grid = api::make_instance("grid:rows=3,cols=4", 3);
  EXPECT_EQ(grid.graph().num_nodes(), 12u);
  // The generator attaches the parity side; it must properly 2-color.
  ASSERT_TRUE(grid.side().has_value());
  for (const Edge& e : grid.graph().edges()) {
    EXPECT_NE((*grid.side())[e.u], (*grid.side())[e.v]);
  }

  const Instance trap = api::make_instance("greedy_trap:gadgets=4", 4);
  EXPECT_TRUE(trap.has_weights());
  EXPECT_EQ(trap.graph().num_nodes(), 16u);

  // Same spec + same seed => identical instance.
  const Instance a = api::make_instance("er:n=20,p=0.3", 7);
  const Instance b = api::make_instance("er:n=20,p=0.3", 7);
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
}

TEST(Runner, MakeInstanceRejectsBadSpecs) {
  EXPECT_THROW(api::make_instance("warp:n=8", 1), std::invalid_argument);
  EXPECT_THROW(api::make_instance("er:deg=4", 1), std::invalid_argument);
  EXPECT_THROW(api::make_instance("er:n=8,bogus=1", 1),
               std::invalid_argument);
  EXPECT_THROW(api::make_instance("er:n=8,w=nope", 1), std::invalid_argument);
}

TEST(Runner, RunOneResolvesOracleAndAuditsResult) {
  api::RunSpec spec;
  spec.generator = "bipartite:nx=12,ny=12,p=0.3";
  spec.solver = "bipartite_mcm";
  spec.config = "k=3";
  spec.instance_seed = 5;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.spec.solver, "bipartite_mcm");
  EXPECT_EQ(res.oracle_solver, "hopcroft_karp");
  EXPECT_EQ(res.optimum_kind, "exact");
  EXPECT_TRUE(res.valid);
  EXPECT_GE(res.ratio, res.guarantee);
  EXPECT_LE(res.ratio, 1.0 + 1e-9);
  EXPECT_GT(res.net.rounds, 0u);
}

TEST(Runner, FeedOraclePassesOptimumThroughConfig) {
  api::RunSpec spec;
  spec.generator = "er:n=40,deg=4";
  spec.solver = "general_mcm";
  spec.config = "k=3";
  spec.instance_seed = 9;
  spec.feed_oracle = true;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.oracle_solver, "blossom");
  // The certified early exit stops as soon as the (1-1/k) target is met.
  ASSERT_TRUE(res.metrics.count("stopped_early"));
  EXPECT_GE(res.ratio, 1.0 - 1.0 / 3.0);
}

TEST(Runner, WeightedOracleFallsBackToCertifiedBound) {
  api::RunSpec spec;
  spec.generator = "er:n=60,deg=5,w=uniform,wlo=1,whi=10";
  spec.solver = "greedy_mwm";
  spec.instance_seed = 11;
  const api::RunResult res = api::run_one(spec);
  // Non-bipartite, n > 20: certified 2x-greedy upper bound.
  EXPECT_EQ(res.optimum_kind, "upper_bound");
  EXPECT_EQ(res.oracle_solver, "greedy_mwm");
  EXPECT_GE(res.ratio, 0.5 - 1e-9);  // greedy vs 2x itself is exactly 1/2
}

TEST(Runner, ExplicitApproximateOracleScalesByItsGuarantee) {
  api::RunSpec spec;
  spec.generator = "er:n=24,deg=4,w=uniform,wlo=1,whi=10";
  spec.solver = "greedy_mwm";
  spec.oracle = "hoepman_mwm";  // guarantee 1/2 -> bound = 2x its weight
  spec.instance_seed = 13;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.optimum_kind, "upper_bound");
  EXPECT_GT(res.optimum, 0.0);
  // A solver with no stated guarantee certifies nothing.
  spec.oracle = "class_mwm";
  const api::RunResult ref = api::run_one(spec);
  EXPECT_EQ(ref.optimum_kind, "reference");
  // An oracle in the wrong objective certifies nothing either: the
  // Hopcroft-Karp (cardinality) optimum is no weight bound.
  spec.oracle = "hopcroft_karp";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
  // Nor does a primitive, whose matching is always empty.
  spec.oracle = "pipelined_max";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
}

TEST(Runner, PrimitiveSolverSkipsOracleAndRatio) {
  api::RunSpec spec;
  spec.generator = "tree:n=25";
  spec.solver = "pipelined_max";
  spec.config = "chunk_bits=4";
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.oracle_solver, "");
  EXPECT_EQ(res.optimum_kind, "none");
  EXPECT_EQ(res.ratio, -1.0);
  EXPECT_TRUE(res.metrics.count("maximum"));
}

TEST(Runner, NegativeGeneratorSizesAreRejected) {
  EXPECT_THROW(api::make_instance("er:n=-5,deg=4", 1), std::invalid_argument);
  EXPECT_THROW(api::make_instance("grid:rows=3,cols=-1", 1),
               std::invalid_argument);
}

TEST(Runner, WeightBlindSolverIsMeasuredInCardinality) {
  api::RunSpec spec;
  spec.generator = "bipartite:nx=30,ny=30,deg=4,w=exp,wmean=8";
  spec.solver = "israeli_itai";  // weight-blind, guarantee 1/2
  spec.instance_seed = 2;
  const api::RunResult res = api::run_one(spec);
  // The oracle must be the cardinality optimum, not Hungarian: a
  // maximal matching is always >= 1/2 of |M*| but can be < 1/2 of
  // w(M*).
  EXPECT_EQ(res.oracle_solver, "hopcroft_karp");
  EXPECT_GE(res.ratio, res.guarantee - 1e-9);
}

TEST(Runner, FeedOracleOnWeightedInstanceUsesCardinalityOptimum) {
  api::RunSpec spec;
  spec.generator = "er:n=40,deg=4,w=uniform,wlo=1,whi=9";
  spec.solver = "general_mcm";  // weight-blind
  spec.config = "k=3";
  spec.instance_seed = 9;
  spec.feed_oracle = true;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.oracle_solver, "blossom");
  EXPECT_GE(res.ratio, 1.0 - 1.0 / 3.0);
}

TEST(Runner, ConflictingDensityKeysAreRejected) {
  EXPECT_THROW(api::make_instance("er:n=32,p=0.1,deg=4", 1),
               std::invalid_argument);
  EXPECT_THROW(api::make_instance("bipartite:nx=8,ny=8,p=0.1,deg=2", 1),
               std::invalid_argument);
}

TEST(Runner, ConfigSeedEntryWinsOverRunSpecDefault) {
  api::RunSpec spec;
  spec.generator = "bipartite:nx=10,ny=10,p=0.3";
  spec.solver = "israeli_itai";
  spec.config = "seed=42";
  spec.solver_seed = 7;  // must lose to the explicit config seed
  const api::RunResult with_config_seed = api::run_one(spec);
  spec.config = "";
  spec.solver_seed = 42;
  const api::RunResult with_spec_seed = api::run_one(spec);
  EXPECT_EQ(with_config_seed.matching_size, with_spec_seed.matching_size);
  EXPECT_EQ(with_config_seed.net.messages, with_spec_seed.net.messages);
}

TEST(Runner, ExactSolverIsItsOwnOracleWithoutASecondSolve) {
  api::RunSpec spec;
  spec.generator = "bipartite:nx=12,ny=12,p=0.3";
  spec.solver = "hopcroft_karp";
  spec.instance_seed = 4;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.oracle_solver, "hopcroft_karp");
  EXPECT_EQ(res.optimum_kind, "exact");
  EXPECT_DOUBLE_EQ(res.ratio, 1.0);
  EXPECT_EQ(res.optimum, static_cast<double>(res.matching_size));
}

TEST(Runner, WeightedSolverOnUnweightedInstanceFailsBeforeOracle) {
  api::RunSpec spec;
  spec.generator = "er:n=24,deg=4";
  spec.solver = "greedy_mwm";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
}

TEST(Runner, ZeroEdgeWeightedSpecStaysWeighted) {
  const Instance inst = api::make_instance("bipartite:nx=4,ny=4,p=0,w=uniform", 1);
  EXPECT_EQ(inst.graph().num_edges(), 0u);
  EXPECT_TRUE(inst.has_weights());
  // Weighted solvers must accept it and record the trivial result
  // instead of throwing "requires edge weights" mid-sweep.
  api::RunSpec spec;
  spec.generator = "bipartite:nx=4,ny=4,p=0,w=uniform";
  spec.solver = "greedy_mwm";
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.matching_size, 0u);
  EXPECT_TRUE(res.valid);
}

TEST(Registry, PipelinedMaxRejectsOutOfRangeRoot) {
  Rng rng(3);
  const Instance inst = Instance::unweighted(random_tree(25, rng));
  const MatchingSolver& s = SolverRegistry::global().at("pipelined_max");
  EXPECT_THROW(s.solve(inst, SolverConfig::parse("root=1000")),
               std::invalid_argument);
  EXPECT_THROW(s.solve(inst, SolverConfig::parse("root=-1")),
               std::invalid_argument);
  EXPECT_NO_THROW(s.solve(inst, SolverConfig::parse("root=24")));
}

TEST(Runner, JsonFileStemIncludesConfig) {
  api::RunSpec spec;
  spec.generator = "grid:rows=4,cols=4";
  spec.solver = "bipartite_mcm";
  spec.instance_seed = 3;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lps_stem_test").string();
  spec.config = "k=2";
  const std::string p2 = api::write_json(api::run_one(spec), dir);
  spec.config = "k=3";
  const std::string p3 = api::write_json(api::run_one(spec), dir);
  EXPECT_NE(p2, p3);
  EXPECT_TRUE(std::filesystem::exists(p2));
  EXPECT_TRUE(std::filesystem::exists(p3));
  std::filesystem::remove_all(dir);
}

TEST(Runner, JsonRecordRoundTripsKeyFields) {
  api::RunSpec spec;
  spec.generator = "grid:rows=4,cols=4";
  spec.solver = "israeli_itai";
  spec.instance_seed = 3;
  const api::RunResult res = api::run_one(spec);
  const std::string json = res.to_json();
  EXPECT_NE(json.find("\"solver\": \"israeli_itai\""), std::string::npos);
  EXPECT_NE(json.find("\"generator\": \"grid:rows=4,cols=4\""),
            std::string::npos);
  EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
  EXPECT_NE(json.find("\"rounds\": "), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lps_runner_test").string();
  const std::string path = api::write_json(res, dir);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lps
