// Tests for the Lemma 3.7 bit-pipelining primitive: MSB-first chunked
// maximum over a tree in depth + chunks rounds.
#include <gtest/gtest.h>

#include "core/pipelined_max.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

BigCounter big_random(Rng& rng, int limbs) {
  BigCounter x(rng());
  for (int i = 1; i < limbs; ++i) {
    x.shift_left(32);
    x.shift_left(32);
    x += BigCounter(rng());
  }
  return x;
}

TEST(PipelinedMax, SingleValueOnPath) {
  const Graph g = path_graph(6);
  std::vector<std::optional<BigCounter>> values(6);
  values[5] = BigCounter(12345);
  const auto res = pipelined_max(g, 0, values, 4);
  EXPECT_TRUE(res.any_value);
  EXPECT_EQ(res.maximum.to_u64(), 12345u);
  EXPECT_EQ(res.tree_depth, 5u);
}

TEST(PipelinedMax, MaxAtVariousPositions) {
  const Graph g = binary_tree(15);
  for (NodeId holder = 0; holder < 15; ++holder) {
    std::vector<std::optional<BigCounter>> values(15);
    for (NodeId v = 0; v < 15; ++v) values[v] = BigCounter(v + 1);
    values[holder] = BigCounter(1000 + holder);
    const auto res = pipelined_max(g, 0, values, 8);
    EXPECT_EQ(res.maximum.to_u64(), 1000u + holder) << holder;
  }
}

TEST(PipelinedMax, NoValuesAnywhere) {
  const Graph g = path_graph(4);
  std::vector<std::optional<BigCounter>> values(4);
  const auto res = pipelined_max(g, 2, values, 8);
  EXPECT_FALSE(res.any_value);
  EXPECT_TRUE(res.maximum.is_zero());
}

TEST(PipelinedMax, RejectsNonTrees) {
  std::vector<std::optional<BigCounter>> values(3);
  EXPECT_THROW(pipelined_max(cycle_graph(3), 0, values, 8),
               std::invalid_argument);
  // Forest (disconnected): n - 1 edges fails first; build 2 components
  // with n-1 edges is impossible, so test the disconnected check via a
  // graph with a self-contained cycle + isolated vertex is covered by
  // the edge-count check; size mismatch:
  EXPECT_THROW(pipelined_max(path_graph(4), 0, values, 8),
               std::invalid_argument);
  std::vector<std::optional<BigCounter>> ok(4);
  EXPECT_THROW(pipelined_max(path_graph(4), 0, ok, 0), std::invalid_argument);
}

TEST(PipelinedMax, RoundsArePipelinedNotMultiplied) {
  // Depth D path, j chunks: the primitive must finish in D + j + O(1)
  // rounds, far below the D * j of store-and-forward.
  const int depth = 40;
  const Graph g = path_graph(depth + 1);
  std::vector<std::optional<BigCounter>> values(depth + 1);
  Rng rng(3);
  values[depth] = big_random(rng, 4);  // ~256 bits
  const int chunk_bits = 4;            // j = 64 chunks
  const auto res = pipelined_max(g, 0, values, chunk_bits);
  EXPECT_EQ(res.maximum, *values[depth]);
  const std::uint64_t pipelined = res.tree_depth + res.chunk_count + 1;
  EXPECT_EQ(res.stats.rounds, pipelined);
  EXPECT_LT(res.stats.rounds,
            res.tree_depth * res.chunk_count / 2);  // << D*j
  EXPECT_EQ(res.stats.max_message_bits, static_cast<std::uint64_t>(chunk_bits));
}

class PipelinedMaxSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinedMaxSweep, AgreesWithDirectMaxOnRandomTrees) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = static_cast<NodeId>(5 + rng.below(40));
    const Graph g = random_tree(n, rng);
    std::vector<std::optional<BigCounter>> values(n);
    BigCounter direct_max;
    bool any = false;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.coin()) {
        values[v] = big_random(rng, 1 + static_cast<int>(rng.below(3)));
        if (!any || direct_max < *values[v]) direct_max = *values[v];
        any = true;
      }
    }
    const NodeId root = static_cast<NodeId>(rng.below(n));
    for (const int chunk_bits : {1, 7, 16, 32}) {
      const auto res = pipelined_max(g, root, values, chunk_bits);
      EXPECT_EQ(res.any_value, any);
      if (any) {
        EXPECT_EQ(res.maximum, direct_max)
            << "n=" << n << " root=" << root << " chunks=" << chunk_bits;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedMaxSweep,
                         ::testing::Values(11u, 13u, 17u, 19u, 23u));

}  // namespace
}  // namespace lps
