// Fault-injection subsystem tests (src/faults): plan parsing and
// rejection, injector determinism, bit-identical fault schedules across
// thread and shard counts, engine-client validity under every
// registered failure profile, crash/recover round trips through
// DynamicGraph, and the FaultSession recovery protocol.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "api/runner.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/matcher.hpp"
#include "dynamic/stream.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/recovery.hpp"
#include "faults/scenarios.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

/// The message-layer half of a plan (graph faults stripped), as a spec.
std::string message_half(const faults::FaultPlan& plan) {
  faults::FaultPlan msg = plan;
  msg.flap = 0.0;
  msg.adversarial = 0.0;
  msg.epochs = 0;
  return msg.to_spec();
}

// ---------------------------------------------------- plan parsing ----

TEST(FaultPlan, PresetsResolveAndRoundTrip) {
  for (const faults::FaultScenario& sc : faults::fault_scenarios()) {
    EXPECT_TRUE(faults::is_fault_preset(sc.name));
    const faults::FaultPlan plan = faults::make_fault_plan(sc.name);
    EXPECT_TRUE(plan.any()) << sc.name;
    // The canonical spec re-parses to the same plan.
    const faults::FaultPlan again = faults::make_fault_plan(plan.to_spec());
    EXPECT_DOUBLE_EQ(plan.drop, again.drop);
    EXPECT_DOUBLE_EQ(plan.dup, again.dup);
    EXPECT_DOUBLE_EQ(plan.delay_p, again.delay_p);
    EXPECT_EQ(plan.delay_rounds, again.delay_rounds);
    EXPECT_EQ(plan.reorder, again.reorder);
    EXPECT_DOUBLE_EQ(plan.flap, again.flap);
    EXPECT_EQ(plan.down_epochs, again.down_epochs);
    EXPECT_DOUBLE_EQ(plan.adversarial, again.adversarial);
    EXPECT_EQ(plan.epochs, again.epochs);
  }
  EXPECT_FALSE(faults::is_fault_preset("nosuchpreset"));
  EXPECT_FALSE(faults::make_fault_plan("").any());
}

TEST(FaultPlan, ExplicitPlanParses) {
  const faults::FaultPlan p = faults::parse_fault_plan(
      "x:drop=0.1,dup=0.05,delay=4,delay_p=0.2,reorder,flap=0.01,down=2,"
      "adversarial=0.02,epochs=3");
  EXPECT_EQ(p.name, "x");
  EXPECT_DOUBLE_EQ(p.drop, 0.1);
  EXPECT_DOUBLE_EQ(p.dup, 0.05);
  EXPECT_EQ(p.delay_rounds, 4u);
  EXPECT_DOUBLE_EQ(p.delay_p, 0.2);
  EXPECT_TRUE(p.reorder);
  EXPECT_DOUBLE_EQ(p.flap, 0.01);
  EXPECT_EQ(p.down_epochs, 2u);
  EXPECT_DOUBLE_EQ(p.adversarial, 0.02);
  EXPECT_EQ(p.epochs, 3u);
  EXPECT_TRUE(p.message_faults());
  EXPECT_TRUE(p.graph_faults());
}

TEST(FaultPlan, MalformedPlansAreRejected) {
  EXPECT_THROW(faults::make_fault_plan("nosuchpreset"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_plan("x:drop=1.5"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_plan("x:drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_plan("x:frobnicate=1"),
               std::invalid_argument);
  // The one-draw budget: drop + delay_p + dup must not exceed 1.
  EXPECT_THROW(faults::parse_fault_plan("x:drop=0.6,dup=0.6"),
               std::invalid_argument);
  // delay_p without a delay bound is meaningless.
  EXPECT_THROW(faults::parse_fault_plan("x:delay_p=0.5"),
               std::invalid_argument);
  // Graph faults need at least one epoch to act in.
  EXPECT_THROW(faults::parse_fault_plan("x:flap=0.01,epochs=0"),
               std::invalid_argument);
}

// ---------------------------------------------- injector determinism --

#if LPS_FAULTS
TEST(Injector, FatesArePureFunctionsOfSeedChannelRound) {
  const auto inj1 = faults::make_message_injector("chaosmsg:drop=0.2,dup=0.1",
                                                  42);
  const auto inj2 = faults::make_message_injector("chaosmsg:drop=0.2,dup=0.1",
                                                  42);
  const auto inj3 = faults::make_message_injector("chaosmsg:drop=0.2,dup=0.1",
                                                  43);
  ASSERT_NE(inj1, nullptr);
  bool seed_matters = false;
  for (EdgeId e = 0; e < 64; ++e) {
    for (std::uint64_t round = 0; round < 8; ++round) {
      const faults::MessageFate a = inj1->decide(e, e % 7, round);
      const faults::MessageFate b = inj2->decide(e, e % 7, round);
      EXPECT_EQ(a.drop, b.drop);
      EXPECT_EQ(a.dup, b.dup);
      EXPECT_EQ(a.delay, b.delay);
      const faults::MessageFate c = inj3->decide(e, e % 7, round);
      seed_matters = seed_matters || a.drop != c.drop || a.dup != c.dup;
    }
  }
  EXPECT_TRUE(seed_matters);
  // At most one fault per message, and the counters add up.
  const faults::InjectorCounters c = inj1->counters();
  EXPECT_EQ(c.decided, 64u * 8u);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_LE(c.dropped + c.duplicated + c.delayed, c.decided);
}
#else
TEST(Injector, FaultOffBuildsNeverBuildAnInjector) {
  // Spec still validated (see InertAndGraphOnlySpecsYieldNoInjector for
  // the rejection half), but injection is compiled out.
  EXPECT_EQ(faults::make_message_injector("chaosmsg:drop=0.2,dup=0.1", 42),
            nullptr);
}
#endif

TEST(Injector, InertAndGraphOnlySpecsYieldNoInjector) {
  EXPECT_EQ(faults::make_message_injector("", 1), nullptr);
  EXPECT_EQ(faults::make_message_injector("flap1", 1), nullptr);
  EXPECT_THROW(faults::make_message_injector("bogus:drop=2", 1),
               std::invalid_argument);
}

// ------------------------------------- engine clients under faults ----

constexpr const char* kMessageChaos =
    "mchaos:drop=0.1,dup=0.05,delay=4,delay_p=0.2,reorder";

TEST(EngineFaults, ScheduleBitIdenticalAcrossThreadsAndShards) {
  Rng rng(7);
  const Graph g = erdos_renyi(512, 6.0 / 512.0, rng);
  std::vector<EdgeId> reference;
  NetStats ref_stats;
  bool first = true;
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    for (const unsigned shards : {1u, 4u}) {
      IsraeliItaiOptions opts;
      opts.seed = 99;
      opts.faults = kMessageChaos;
      opts.pool = threads == 1 ? nullptr : &pool;
      opts.shards = shards;
      const DistMatchingResult res = israeli_itai(g, opts);
      EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
      if (first) {
        reference = res.matching.edge_ids(g);
        ref_stats = res.stats;
        first = false;
      } else {
        EXPECT_EQ(res.matching.edge_ids(g), reference)
            << "threads=" << threads << " shards=" << shards;
        EXPECT_EQ(res.stats.rounds, ref_stats.rounds);
        EXPECT_EQ(res.stats.messages, ref_stats.messages);
        EXPECT_EQ(res.stats.total_bits, ref_stats.total_bits);
      }
    }
  }
}

TEST(EngineFaults, EveryScenarioMessageHalfYieldsValidMatching) {
  Rng rng(11);
  const Graph g = erdos_renyi(256, 8.0 / 256.0, rng);
  for (const faults::FaultScenario& sc : faults::fault_scenarios()) {
    const faults::FaultPlan plan = faults::make_fault_plan(sc.name);
    if (!plan.message_faults()) continue;
    IsraeliItaiOptions opts;
    opts.seed = 5;
    opts.faults = message_half(plan);
    const DistMatchingResult res = israeli_itai(g, opts);
    EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g))) << sc.name;
    EXPECT_GT(res.matching.size(), 0u) << sc.name;
  }
}

TEST(EngineFaults, DelayOnlyPlanLosesNoProgress) {
  // Every message held back up to 3 rounds, none dropped: the protocol
  // must still converge to a valid (and, with resync, sizable) matching.
  Rng rng(13);
  const Graph g = erdos_renyi(256, 6.0 / 256.0, rng);
  IsraeliItaiOptions opts;
  opts.seed = 21;
  opts.faults = "alldelay:delay=3,delay_p=0.9";
  const DistMatchingResult res = israeli_itai(g, opts);
  EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
  EXPECT_GT(res.matching.size(), 0u);
}

TEST(EngineFaults, MisClientsStayIndependentUnderChaos) {
  Rng rng(17);
  const Graph g = erdos_renyi(256, 8.0 / 256.0, rng);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    MisOptions opts;
    opts.seed = seed;
    opts.faults = kMessageChaos;
    const MisResult luby = luby_mis(g, opts);
    EXPECT_TRUE(is_independent_set(g, luby.in_mis)) << "luby seed " << seed;
    const MisResult abi = abi_mis(g, opts);
    EXPECT_TRUE(is_independent_set(g, abi.in_mis)) << "abi seed " << seed;
  }
  // Fault-free runs are untouched by the seam: resyncs stay zero and
  // the result is a *maximal* independent set.
  MisOptions clean;
  clean.seed = 1;
  const MisResult res = luby_mis(g, clean);
  EXPECT_EQ(res.resyncs, 0u);
  EXPECT_TRUE(is_maximal_independent_set(g, res.in_mis));
}

// ------------------------------------- crash/recover via DynamicGraph --

TEST(Revive, RoundTripPreservesInvariants) {
  dynamic::DynamicGraph g(6);
  g.insert_edge(0, 1, 1.0);
  g.insert_edge(1, 2, 1.0);
  g.insert_edge(1, 3, 1.0);
  g.insert_edge(4, 5, 1.0);
  const EdgeId slots_before = g.edge_slots();

  g.remove_vertex(1);
  EXPECT_FALSE(g.node_alive(1));
  EXPECT_EQ(g.num_live_edges(), 1u);
  g.check_invariants();

  g.revive_vertex(1);
  EXPECT_TRUE(g.node_alive(1));
  EXPECT_EQ(g.degree(1), 0u);  // revived isolated; edges are re-inserted
  g.check_invariants();

  // Re-inserting the crashed incidence recycles the freed edge ids
  // rather than growing the id space.
  g.insert_edge(0, 1, 1.0);
  g.insert_edge(1, 2, 1.0);
  g.insert_edge(1, 3, 1.0);
  EXPECT_EQ(g.edge_slots(), slots_before);
  EXPECT_EQ(g.num_live_edges(), 4u);
  EXPECT_NE(g.find_edge(1, 2), kInvalidEdge);
  g.check_invariants();
}

TEST(Revive, RejectsLiveAndUnallocatedIds) {
  dynamic::DynamicGraph g(3);
  EXPECT_THROW(g.revive_vertex(0), std::invalid_argument);  // alive
  EXPECT_THROW(g.revive_vertex(7), std::invalid_argument);  // never allocated
  g.remove_vertex(0);
  g.revive_vertex(0);
  EXPECT_TRUE(g.node_alive(0));
}

TEST(Revive, ThousandRandomFlapsThroughMaintainers) {
  for (const char* name : {"greedy", "repair"}) {
    // Build a standing graph, then flap vertices at random through the
    // maintainer's update path, re-inserting each crashed incidence on
    // revival (link-flap semantics, same as FaultSession).
    const dynamic::StreamSpec stream = dynamic::make_update_stream(
        "churn:n=128,m0=512,updates=1000", 23);
    auto matcher = dynamic::make_matcher(
        name, dynamic::DynamicGraph(stream.initial_nodes), {});
    matcher->apply_trace(stream.trace);

    struct Parked {
      NodeId u, v;
      double w;
    };
    Rng rng(29);
    std::vector<NodeId> downed;
    std::vector<Parked> parked;
    for (int flap = 0; flap < 1000; ++flap) {
      const bool revive = !downed.empty() && rng.coin();
      if (revive) {
        const std::size_t pick = rng.below(downed.size());
        const NodeId v = downed[pick];
        downed.erase(downed.begin() + static_cast<std::ptrdiff_t>(pick));
        matcher->apply({dynamic::UpdateKind::kReviveVertex, v, kInvalidNode});
        // Restore every parked edge whose endpoints are both back.
        std::vector<Parked> keep;
        for (const Parked& pe : parked) {
          if (matcher->graph().node_alive(pe.u) &&
              matcher->graph().node_alive(pe.v) &&
              matcher->graph().find_edge(pe.u, pe.v) == kInvalidEdge) {
            matcher->apply(
                {dynamic::UpdateKind::kInsertEdge, pe.u, pe.v, pe.w});
          } else if (!matcher->graph().node_alive(pe.u) ||
                     !matcher->graph().node_alive(pe.v)) {
            keep.push_back(pe);
          }
        }
        parked.swap(keep);
      } else {
        // Crash a random live vertex.
        NodeId v = kInvalidNode;
        for (int tries = 0; tries < 64; ++tries) {
          const NodeId cand =
              static_cast<NodeId>(rng.below(matcher->graph().node_slots()));
          if (matcher->graph().node_alive(cand)) {
            v = cand;
            break;
          }
        }
        if (v == kInvalidNode) continue;
        const auto row = matcher->graph().neighbors(v);
        for (const auto& a : row) {
          parked.push_back({v, a.to, matcher->graph().weight(a.edge)});
        }
        matcher->apply({dynamic::UpdateKind::kRemoveVertex, v, kInvalidNode});
        downed.push_back(v);
      }
      if (flap % 100 == 0) {
        matcher->flush();
        matcher->graph().check_invariants();
        matcher->check_matching();
      }
    }
    matcher->flush();
    matcher->graph().check_invariants();
    matcher->check_matching();
  }
}

// -------------------------------------------- FaultSession recovery ----

TEST(FaultSession, EveryEpochEndsValidAndHealsBack) {
  for (const char* name : {"greedy", "repair"}) {
    const dynamic::StreamSpec stream = dynamic::make_update_stream(
        "churn:n=512,m0=1024,updates=2000", 31);
    auto matcher = dynamic::make_matcher(
        name, dynamic::DynamicGraph(stream.initial_nodes), {});
    matcher->apply_trace(stream.trace);
    matcher->flush();

    faults::FaultPlan plan =
        faults::parse_fault_plan("t:flap=0.02,adversarial=0.05,epochs=3");
    faults::FaultSession session(*matcher, plan, 47);
    const faults::SessionResult res = session.run();
    EXPECT_EQ(res.epochs.size(), 3u) << name;
    EXPECT_TRUE(res.all_valid) << name;
    EXPECT_TRUE(res.final_valid) << name;
    EXPECT_GT(res.min_ratio, 0.5) << name;
    EXPECT_GE(res.final_ratio, 0.9) << name;
    EXPECT_GT(res.crashed, 0u) << name;
    EXPECT_EQ(res.crashed, res.revived) << name;
    EXPECT_GT(res.adversarial, 0u) << name;
    for (const faults::EpochReport& ep : res.epochs) {
      EXPECT_TRUE(ep.valid) << name << " epoch " << ep.epoch;
    }
  }
}

TEST(FaultSession, ScheduleIsAPureFunctionOfTheSeed) {
  const auto run_session = [](std::uint64_t seed) {
    const dynamic::StreamSpec stream = dynamic::make_update_stream(
        "churn:n=256,m0=512,updates=1000", 53);
    auto matcher = dynamic::make_matcher(
        "greedy", dynamic::DynamicGraph(stream.initial_nodes), {});
    matcher->apply_trace(stream.trace);
    matcher->flush();
    faults::FaultPlan plan =
        faults::parse_fault_plan("t:flap=0.03,adversarial=0.04,epochs=4");
    return faults::FaultSession(*matcher, plan, seed).run();
  };
  const faults::SessionResult a = run_session(7);
  const faults::SessionResult b = run_session(7);
  const faults::SessionResult c = run_session(8);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].crashed, b.epochs[i].crashed);
    EXPECT_EQ(a.epochs[i].adversarial, b.epochs[i].adversarial);
    EXPECT_EQ(a.epochs[i].matching_size, b.epochs[i].matching_size);
    EXPECT_EQ(a.epochs[i].reinserted, b.epochs[i].reinserted);
  }
  // A different seed crashes a different schedule (sizes may tie, but
  // the whole trajectory matching would be a coincidence).
  bool differs = false;
  for (std::size_t i = 0; i < a.epochs.size() && i < c.epochs.size(); ++i) {
    differs = differs || a.epochs[i].matching_size != c.epochs[i].matching_size;
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------- runner integration --

#if LPS_FAULTS
TEST(RunnerFaults, FaultLegLandsInRunResult) {
  api::RunSpec spec;
  spec.generator = "path:n=2";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.dynamic = "repair";
  spec.dynamic_stream = "churn:n=512,m0=1024,updates=1000";
  spec.dynamic_checkpoints = 0;
  spec.faults = "flap1";
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.fault_epochs, 4u);
  EXPECT_TRUE(res.fault_all_valid);
  EXPECT_TRUE(res.fault_final_valid);
  EXPECT_GT(res.fault_baseline_size, 0u);
  EXPECT_GT(res.fault_crashed, 0u);
  EXPECT_GE(res.fault_final_ratio, 0.9);
  EXPECT_GT(res.fault_recovery_p50_ns, 0u);
  // The canonical plan echo and the JSON record carry the fields.
  EXPECT_FALSE(res.fault_plan.empty());
  EXPECT_NE(res.to_json().find("\"fault_min_ratio\""), std::string::npos);
}
#else
TEST(RunnerFaults, FaultOffBuildsRejectFaultedRuns) {
  // A fault-off binary must refuse a faulted spec loudly rather than
  // silently run it fault-free — run configs stay honest across builds.
  api::RunSpec spec;
  spec.generator = "er:n=64,deg=4";
  spec.solver = "israeli_itai";
  spec.faults = "drop10";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
}
#endif

TEST(RunnerFaults, MalformedAndMisdirectedSpecsThrowEagerly) {
  api::RunSpec spec;
  spec.generator = "path:n=8";
  spec.solver = "israeli_itai";
  spec.faults = "bogus:drop=2";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
#if LPS_FAULTS
  spec.faults = "flap1";  // graph faults need the dynamic leg
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
  spec.faults = "drop10";
  spec.solver = "greedy_mcm";  // no `faults` config key
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
#endif
}

}  // namespace
}  // namespace lps
