// Tests for the VOQ switch application: traffic admissibility, scheduler
// contract (matching over non-empty VOQs), and short closed-loop
// simulations with throughput sanity bounds.
#include <gtest/gtest.h>

#include "switch/schedulers.hpp"
#include "switch/traffic.hpp"
#include "switch/voq.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(Traffic, RowAndColumnSums) {
  for (const TrafficPattern p :
       {TrafficPattern::kUniform, TrafficPattern::kDiagonal,
        TrafficPattern::kLogDiagonal, TrafficPattern::kHotspot}) {
    const auto lambda = traffic_matrix(p, 8, 0.75);
    for (std::size_t i = 0; i < 8; ++i) {
      double row = 0;
      for (double x : lambda[i]) row += x;
      EXPECT_NEAR(row, 0.75, 1e-9) << to_string(p);
    }
    for (std::size_t j = 0; j < 8; ++j) {
      double col = 0;
      for (std::size_t i = 0; i < 8; ++i) col += lambda[i][j];
      EXPECT_NEAR(col, 0.75, 1e-9) << to_string(p);
    }
  }
  EXPECT_THROW(traffic_matrix(TrafficPattern::kUniform, 0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(traffic_matrix(TrafficPattern::kUniform, 4, 1.5),
               std::invalid_argument);
}

// Scheduler contract checks on a fixed queue matrix.
QueueMatrix demo_queues() {
  return {{3, 0, 1, 0},
          {0, 2, 0, 0},
          {0, 0, 0, 5},
          {1, 0, 0, 0}};
}

void expect_valid_assignment(const QueueMatrix& q,
                             const std::vector<int>& a) {
  std::vector<char> used(q.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(a[i]), q.size());
    EXPECT_FALSE(used[a[i]]) << "output matched twice";
    used[a[i]] = 1;
    EXPECT_GT(q[i][a[i]], 0u) << "matched an empty VOQ";
  }
}

TEST(Schedulers, AllRespectTheMatchingContract) {
  const QueueMatrix q = demo_queues();
  PimScheduler pim(4, 7);
  IslipScheduler islip(4);
  GreedyScheduler greedy;
  MaxSizeScheduler maxsize;
  MaxWeightScheduler maxweight;
  DistMcmScheduler dist(2, 5);
  for (Scheduler* s : std::initializer_list<Scheduler*>{
           &pim, &islip, &greedy, &maxsize, &maxweight, &dist}) {
    const auto a = s->schedule(q);
    expect_valid_assignment(q, a);
  }
}

TEST(Schedulers, OraclesFindThePerfectMatchingWhenItExists) {
  // demo_queues admits the size-4 matching 0->2? no: q[0] has outputs
  // {0, 2}; q[1] -> {1}; q[2] -> {3}; q[3] -> {0}. Perfect: 0->2, 1->1,
  // 2->3, 3->0.
  const QueueMatrix q = demo_queues();
  MaxSizeScheduler maxsize;
  const auto a = maxsize.schedule(q);
  int matched = 0;
  for (int x : a) matched += (x >= 0);
  EXPECT_EQ(matched, 4);
  DistMcmScheduler dist(3, 9);
  const auto b = dist.schedule(q);
  int matched_b = 0;
  for (int x : b) matched_b += (x >= 0);
  EXPECT_EQ(matched_b, 4);  // (1-1/(k+1)) of 4 with k=3 forces 4
}

TEST(Schedulers, MaxWeightPrefersLongQueues) {
  QueueMatrix q = {{9, 1}, {0, 1}};
  MaxWeightScheduler s;
  const auto a = s.schedule(q);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
}

TEST(Schedulers, IslipPointersDesynchronize) {
  // Under full demand, iSLIP reaches 100% of slots serving all ports
  // after the pointers desynchronize: run a few slots and check the
  // last one is a perfect matching.
  const std::size_t n = 4;
  QueueMatrix q(n, std::vector<std::uint32_t>(n, 5));
  IslipScheduler islip(4);
  std::vector<int> last;
  for (int t = 0; t < 8; ++t) last = islip.schedule(q);
  int matched = 0;
  for (int x : last) matched += (x >= 0);
  EXPECT_EQ(matched, 4);
}

TEST(Switch, RunRejectsBadConfig) {
  SwitchConfig cfg;
  cfg.slots = 10;
  cfg.warmup = 10;
  GreedyScheduler s;
  EXPECT_THROW(run_switch(cfg, s), std::invalid_argument);
}

class SwitchSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchSim, ModerateLoadIsStableForGoodSchedulers) {
  SwitchConfig cfg;
  cfg.ports = 8;
  cfg.slots = 4000;
  cfg.warmup = 500;
  cfg.load = 0.6;
  cfg.pattern = TrafficPattern::kUniform;
  cfg.seed = GetParam();
  MaxSizeScheduler maxsize;
  const SwitchMetrics oracle = run_switch(cfg, maxsize);
  EXPECT_GT(oracle.normalized_throughput, 0.95);
  EXPECT_LT(oracle.mean_delay, 20.0);

  PimScheduler pim(4, GetParam());
  const SwitchMetrics pim_m = run_switch(cfg, pim);
  EXPECT_GT(pim_m.normalized_throughput, 0.9);

  IslipScheduler islip(4);
  const SwitchMetrics islip_m = run_switch(cfg, islip);
  EXPECT_GT(islip_m.normalized_throughput, 0.9);
}

TEST_P(SwitchSim, DistMcmSchedulerIsCompetitive) {
  SwitchConfig cfg;
  cfg.ports = 6;
  cfg.slots = 1500;
  cfg.warmup = 300;
  cfg.load = 0.5;
  cfg.pattern = TrafficPattern::kUniform;
  cfg.seed = GetParam() + 100;
  DistMcmScheduler dist(2, GetParam());
  const SwitchMetrics m = run_switch(cfg, dist);
  EXPECT_GT(m.normalized_throughput, 0.9);
  EXPECT_LE(m.delivered, m.arrived);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchSim, ::testing::Values(1u, 2u));

}  // namespace
}  // namespace lps
