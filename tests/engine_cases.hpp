// Shared identity harness for the 8 engine-backed registry solvers:
// one representative instance per client plus the solve/compare
// helpers. Used by test_sharding.cpp (bit-identity across shard/thread
// plans) and test_telemetry.cpp (bit-identity with telemetry on vs
// off) — any knob that claims to be execution-neutral proves it against
// this matrix.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "api/registry.hpp"
#include "api/runner.hpp"  // make_instance
#include "runtime/thread_pool.hpp"

namespace lps::test_support {

struct ShardCase {
  const char* solver;
  const char* generator;  // api::make_instance spec
  const char* config;     // extra solver config ("" = defaults)
};

// One instance per engine-backed solver, sized so forced shard counts
// are genuinely different partitions (shard width is >= 1024: n = 4096
// gives up to 4 shards, n = 2048 two) while the whole matrix stays
// test-suite fast; requesting 8 everywhere also exercises the clamp.
// The multi-phase solvers (aug/conflict/black-box stacks) run hundreds
// of engine executions per solve, so they get the smaller instances —
// the engine code exercised per shard plan is identical.
inline constexpr ShardCase kEngineCases[] = {
    {"israeli_itai", "er:n=4096,deg=4", ""},
    {"bipartite_mcm", "bipartite:nx=1024,ny=1024,deg=3", "k=2"},
    {"general_mcm", "er:n=2048,deg=3", "k=3"},
    {"generic_mcm", "tree:n=2048", ""},
    {"hoepman_mwm", "er:n=2048,deg=4,w=uniform,wlo=1,whi=100", ""},
    {"class_mwm", "er:n=2048,deg=4,w=pow2,wlevels=5", ""},
    {"weighted_mwm", "er:n=2048,deg=4,w=uniform,wlo=1,whi=100", ""},
    {"pipelined_max", "tree:n=4096", ""},
};

inline api::SolveResult solve_with(const ShardCase& c, unsigned shards,
                                   ThreadPool* pool) {
  const api::Instance inst = api::make_instance(c.generator, /*seed=*/7);
  api::SolverConfig cfg = api::SolverConfig::parse(c.config);
  cfg.seed(11).shards(shards).pool(pool);
  return api::SolverRegistry::global().at(c.solver).solve(inst, cfg);
}

inline void expect_identical(const api::SolveResult& a,
                             const api::SolveResult& b,
                             const std::string& label) {
  EXPECT_EQ(a.matching, b.matching) << label;
  EXPECT_EQ(a.stats.rounds, b.stats.rounds) << label;
  EXPECT_EQ(a.stats.messages, b.stats.messages) << label;
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits) << label;
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits) << label;
  EXPECT_EQ(a.metrics, b.metrics) << label;
}

}  // namespace lps::test_support
