// Tests for src/dynamic: the DynamicGraph overlay (O(deg) updates,
// sorted-incidence invariant, id recycling, snapshots), the two
// matching maintainers (validity after every update, greedy
// 2-approximation against the exact oracle, repair augmentation and
// registry escalation), the update-stream generators, the switch
// traffic adapter, and the runner's dynamic leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/matcher.hpp"
#include "dynamic/stream.hpp"
#include "dynamic/switch_adapter.hpp"
#include "util/rng.hpp"

namespace lps::dynamic {
namespace {

std::size_t exact_mcm_size(const DynamicGraph& g) {
  const Snapshot snap = g.snapshot();
  const api::SolveResult solved = api::SolverRegistry::global().at("blossom").solve(
      api::Instance::unweighted(snap.graph), api::SolverConfig());
  return solved.matching.size();
}

/// No live edge may have both endpoints free (maximality).
void expect_maximal(const DynamicMatcher& m) {
  const DynamicGraph& g = m.graph();
  for (EdgeId e = 0; e < g.edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    const Edge ed = g.edge(e);
    EXPECT_FALSE(m.is_free(ed.u) && m.is_free(ed.v))
        << "edge " << e << " = (" << ed.u << ", " << ed.v << ") uncovered";
  }
}

// ------------------------------------------------------- DynamicGraph --

TEST(DynamicGraph, InsertDeleteFindAndInvariants) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_live_nodes(), 5u);
  const EdgeId e01 = g.insert_edge(0, 1);
  const EdgeId e31 = g.insert_edge(3, 1, 2.5);
  const EdgeId e24 = g.insert_edge(4, 2);  // normalized to (2, 4)
  g.check_invariants();
  EXPECT_EQ(g.num_live_edges(), 3u);
  EXPECT_EQ(g.find_edge(1, 0), e01);
  EXPECT_EQ(g.find_edge(1, 3), e31);
  EXPECT_EQ(g.edge(e24).u, 2u);
  EXPECT_EQ(g.edge(e24).v, 4u);
  EXPECT_DOUBLE_EQ(g.weight(e31), 2.5);
  EXPECT_EQ(g.degree(1), 2u);
  // Sorted incidence: node 1 sees 0 then 3.
  ASSERT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0u);
  EXPECT_EQ(g.neighbors(1)[1].to, 3u);

  EXPECT_THROW(g.insert_edge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.insert_edge(2, 2), std::invalid_argument);  // self-loop
  EXPECT_THROW(g.insert_edge(0, 9), std::invalid_argument);  // unknown
  EXPECT_THROW(g.insert_edge(0, 2, -1.0), std::invalid_argument);

  g.delete_edge(e01);
  g.check_invariants();
  EXPECT_EQ(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_THROW(g.delete_edge(e01), std::invalid_argument);  // already dead
  EXPECT_EQ(g.num_live_edges(), 2u);
}

TEST(DynamicGraph, EdgeIdRecyclingBoundsTheTable) {
  DynamicGraph g(4);
  const EdgeId first = g.insert_edge(0, 1);
  g.delete_edge(first);
  const EdgeId second = g.insert_edge(2, 3);
  EXPECT_EQ(second, first);  // recycled
  EXPECT_EQ(g.edge_slots(), 1u);
  for (int i = 0; i < 100; ++i) {
    const EdgeId e = g.insert_edge(0, 1);
    g.delete_edge(e);
  }
  EXPECT_LE(g.edge_slots(), 2u);
  g.check_invariants();
}

TEST(DynamicGraph, VertexAddRemove) {
  DynamicGraph g(3);
  const NodeId v = g.add_vertex();
  EXPECT_EQ(v, 3u);
  g.insert_edge(0, v);
  g.insert_edge(1, v);
  g.insert_edge(0, 1);
  g.remove_vertex(v);
  g.check_invariants();
  EXPECT_FALSE(g.node_alive(v));
  EXPECT_EQ(g.num_live_edges(), 1u);  // (0, 1) survives
  EXPECT_EQ(g.find_edge(0, v), kInvalidEdge);
  EXPECT_THROW(g.remove_vertex(v), std::invalid_argument);
  EXPECT_THROW(g.insert_edge(0, v), std::invalid_argument);
  // Vertex ids are not recycled.
  EXPECT_EQ(g.add_vertex(), 4u);
}

TEST(DynamicGraph, SnapshotCompactsAndMapsBack) {
  DynamicGraph g(4);
  g.insert_edge(0, 1, 2.0);
  const EdgeId e12 = g.insert_edge(1, 2, 3.0);
  g.insert_edge(2, 3, 4.0);
  g.remove_vertex(0);  // kills (0,1); snapshot must skip dead slot 0
  const Snapshot snap = g.snapshot();
  EXPECT_EQ(snap.graph.num_nodes(), 3u);
  EXPECT_EQ(snap.graph.num_edges(), 2u);
  ASSERT_EQ(snap.node_to_dynamic.size(), 3u);
  EXPECT_EQ(snap.node_to_dynamic[0], 1u);
  EXPECT_EQ(snap.dynamic_to_node[0], kInvalidNode);
  EXPECT_EQ(snap.edge_to_dynamic[0], e12);
  EXPECT_DOUBLE_EQ(snap.weights[0], 3.0);
  // Snapshot edges reference compacted ids and keep the invariant.
  const Graph& sg = snap.graph;
  for (NodeId v = 0; v < sg.num_nodes(); ++v) {
    const auto nbrs = sg.neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1].to, nbrs[i].to);
    }
  }
}

TEST(DynamicGraph, FromGraphPreservesIdsAndWeights) {
  const Graph g(5, {{0, 1}, {1, 2}, {3, 4}});
  const std::vector<double> w = {1.0, 2.0, 3.0};
  const DynamicGraph dg = DynamicGraph::from_graph(g, &w);
  dg.check_invariants();
  EXPECT_EQ(dg.num_live_edges(), 3u);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(dg.edge(e), g.edge(e));
    EXPECT_DOUBLE_EQ(dg.weight(e), w[e]);
  }
}

// ----------------------------------------------------------- streams --

TEST(UpdateStream, DeterministicForFixedSeed) {
  const char* specs[] = {
      "churn:n=64,m0=100,updates=400,vertex=0.05,reweight=0.1,wlo=1,whi=9",
      "window:n=64,updates=300,window=80",
      "pa:n0=8,updates=200,attach=2",
      "adversarial:n=48,m0=80,updates=300",
  };
  for (const char* spec : specs) {
    const StreamSpec a = make_update_stream(spec, 17);
    const StreamSpec b = make_update_stream(spec, 17);
    ASSERT_EQ(a.trace.size(), b.trace.size()) << spec;
    EXPECT_EQ(a.initial_nodes, b.initial_nodes) << spec;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].kind, b.trace[i].kind) << spec << " @" << i;
      EXPECT_EQ(a.trace[i].u, b.trace[i].u) << spec << " @" << i;
      EXPECT_EQ(a.trace[i].v, b.trace[i].v) << spec << " @" << i;
      EXPECT_DOUBLE_EQ(a.trace[i].weight, b.trace[i].weight) << spec;
    }
    // A different seed gives a different trace (overwhelmingly likely).
    const StreamSpec c = make_update_stream(spec, 18);
    bool differs = c.trace.size() != a.trace.size();
    for (std::size_t i = 0; !differs && i < a.trace.size(); ++i) {
      differs = a.trace[i].u != c.trace[i].u || a.trace[i].v != c.trace[i].v ||
                a.trace[i].kind != c.trace[i].kind;
    }
    EXPECT_TRUE(differs) << spec;
  }
}

TEST(UpdateStream, TracesApplyCleanly) {
  // Every generated trace must apply without throwing: inserts of
  // absent edges, deletes of live edges, removals of live vertices.
  for (const char* spec :
       {"churn:n=32,m0=60,updates=500,vertex=0.1,reweight=0.05",
        "window:n=32,updates=400,window=40", "pa:n0=4,updates=150,attach=3",
        "adversarial:n=32,m0=50,updates=400"}) {
    const StreamSpec stream = make_update_stream(spec, 5);
    DynamicGraph g(stream.initial_nodes);
    GreedyDynamicMatcher m{DynamicGraph(stream.initial_nodes)};
    EXPECT_NO_THROW(m.apply_trace(stream.trace)) << spec;
    (void)g;
  }
}

TEST(UpdateStream, WindowBoundsLiveEdges) {
  const StreamSpec stream = make_update_stream(
      "window:n=64,updates=500,window=50", 3);
  DynamicGraph g(stream.initial_nodes);
  GreedyDynamicMatcher m{std::move(g)};
  std::uint64_t max_live = 0;
  for (const Update& up : stream.trace) {
    m.apply(up);
    max_live = std::max<std::uint64_t>(max_live, m.graph().num_live_edges());
  }
  EXPECT_LE(max_live, 51u);  // insert lands before the FIFO eviction
  EXPECT_GE(max_live, 50u);
}

TEST(UpdateStream, PreferentialAttachmentGrows) {
  const StreamSpec stream = make_update_stream("pa:n0=8,updates=100,attach=2", 9);
  GreedyDynamicMatcher m{DynamicGraph(stream.initial_nodes)};
  m.apply_trace(stream.trace);
  EXPECT_EQ(m.graph().num_live_nodes(), 108u);
  EXPECT_GT(m.graph().num_live_edges(), 100u);  // ~2 per new vertex
}

TEST(UpdateStream, RejectsUnknownFamiliesAndKeys) {
  EXPECT_THROW(make_update_stream("nope:n=4", 1), std::invalid_argument);
  EXPECT_THROW(make_update_stream("churn:n=16,typo=3,updates=5", 1),
               std::invalid_argument);
  EXPECT_THROW(make_update_stream("churn:updates=5", 1), std::invalid_argument);
}

// --------------------------------------------------------- maintainers --

TEST(GreedyMatcher, MatchesOnInsertAndRematchesOnDelete) {
  GreedyDynamicMatcher m{DynamicGraph(6)};
  m.apply({UpdateKind::kInsertEdge, 0, 1});
  EXPECT_EQ(m.matching_size(), 1u);
  m.apply({UpdateKind::kInsertEdge, 1, 2});  // 1 taken: no match
  m.apply({UpdateKind::kInsertEdge, 2, 3});  // both free: match
  EXPECT_EQ(m.matching_size(), 2u);
  // Deleting matched (0,1) frees 0 and 1; 1 rematches to 2? 2 is
  // matched to 3 — no partner for either. Maximality still holds.
  m.apply({UpdateKind::kDeleteEdge, 0, 1});
  EXPECT_EQ(m.matching_size(), 1u);
  expect_maximal(m);
  // Now delete matched (2,3): 2 should rematch to free 1.
  m.apply({UpdateKind::kDeleteEdge, 2, 3});
  EXPECT_EQ(m.matching_size(), 1u);
  EXPECT_EQ(m.mate(1), 2u);
  expect_maximal(m);
  m.check_matching();
}

TEST(GreedyMatcher, VertexRemovalRematchesTheWidow) {
  GreedyDynamicMatcher m{DynamicGraph(4)};
  m.apply({UpdateKind::kInsertEdge, 0, 1});
  m.apply({UpdateKind::kInsertEdge, 1, 2});
  m.apply({UpdateKind::kRemoveVertex, 0});
  // 1 lost its mate 0 and must pick up 2.
  EXPECT_EQ(m.mate(1), 2u);
  expect_maximal(m);
  m.check_matching();
}

TEST(RepairMatcher, AugmentsThroughAlternatingPaths) {
  // Greedy would lock (1,2) and stay at size 1; the repair pass must
  // find the augmenting path 0 - 1 - 2 - 3 and reach the optimum 2.
  auto m = make_matcher("repair", DynamicGraph(4), {{"interval", "1"}});
  m->apply({UpdateKind::kInsertEdge, 1, 2});
  m->apply({UpdateKind::kInsertEdge, 0, 1});
  m->apply({UpdateKind::kInsertEdge, 2, 3});
  m->flush();
  EXPECT_EQ(m->matching_size(), 2u);
  EXPECT_GT(m->stats().augmentations, 0u);
  m->check_matching();
}

TEST(RepairMatcher, PathCapFollowsEps) {
  RepairDynamicMatcher tight{DynamicGraph(2), {0.5, 8, "", 0.25}};
  EXPECT_EQ(tight.path_cap(), 1);  // k = 1: only direct matches
  RepairDynamicMatcher loose{DynamicGraph(2), {0.1, 8, "", 0.25}};
  EXPECT_EQ(loose.path_cap(), 17);  // k = 9
  EXPECT_THROW((RepairDynamicMatcher{DynamicGraph(2), {0.0, 8, "", 0.25}}),
               std::invalid_argument);
  EXPECT_THROW((RepairDynamicMatcher{DynamicGraph(2), {0.2, 0, "", 0.25}}),
               std::invalid_argument);
}

TEST(RepairMatcher, EscalatesToRegistryRebuild) {
  auto m = make_matcher(
      "repair", DynamicGraph(32),
      {{"interval", "8"}, {"rebuild", "greedy_mcm"}, {"rebuild_frac", "0.0"}});
  const StreamSpec stream =
      make_update_stream("churn:n=32,m0=60,updates=200", 11);
  for (const Update& up : stream.trace) m->apply(up);
  m->flush();
  EXPECT_GT(m->stats().rebuilds, 0u);
  m->check_matching();
  m->graph().check_invariants();
}

TEST(ScratchMatcher, TracksTheRegistrySolveExactly) {
  auto m = make_matcher("scratch", DynamicGraph(16), {{"solver", "greedy_mcm"}});
  const StreamSpec stream =
      make_update_stream("churn:n=16,m0=20,updates=60", 23);
  for (const Update& up : stream.trace) {
    m->apply(up);
    m->check_matching();
    // After every update the scratch maintainer's matching must be the
    // one an independent registry solve of the same snapshot produces.
    const Snapshot snap = m->graph().snapshot();
    api::SolverConfig config;
    config.seed(1);  // the factory's default scratch seed
    const api::SolveResult solved =
        api::SolverRegistry::global().at("greedy_mcm").solve(
            api::Instance::unweighted(snap.graph), config);
    ASSERT_EQ(m->matching_size(), solved.matching.size());
  }
  EXPECT_EQ(m->stats().rebuilds, m->stats().updates + 1);  // +1: seeding solve
}

TEST(Matcher, RejectsBadUpdatesAndConfigs) {
  GreedyDynamicMatcher m{DynamicGraph(4)};
  EXPECT_THROW(m.apply({UpdateKind::kDeleteEdge, 0, 1}), std::invalid_argument);
  EXPECT_THROW(m.apply({UpdateKind::kRemoveVertex, 9}), std::invalid_argument);
  EXPECT_THROW(m.apply({UpdateKind::kSetWeight, 0, 1, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(make_matcher("nope", DynamicGraph(2)), std::invalid_argument);
  EXPECT_THROW(make_matcher("greedy", DynamicGraph(2), {{"eps", "0.1"}}),
               std::invalid_argument);
  EXPECT_THROW(make_matcher("repair", DynamicGraph(2), {{"typo", "1"}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- soak --

/// The acceptance soak: >= 10k mixed updates (inserts, deletes, vertex
/// add/remove, reweights), every structural and matching invariant
/// checked after every single update, and the greedy maintainer's
/// 2-approximation audited against the exact blossom oracle at regular
/// checkpoints. Runs for both maintainers.
TEST(DynamicSoak, MixedChurn10kInvariantCheckedEveryUpdate) {
  const StreamSpec stream = make_update_stream(
      "churn:n=96,m0=300,updates=10000,insert=0.55,vertex=0.04,reweight=0.02,"
      "wlo=1,whi=16",
      7);
  ASSERT_GE(stream.trace.size(), 10000u);
  for (const char* name : {"greedy", "repair"}) {
    auto m = make_matcher(
        name, DynamicGraph(stream.initial_nodes),
        name == std::string("repair")
            ? std::map<std::string, std::string>{{"interval", "16"},
                                                 {"eps", "0.25"}}
            : std::map<std::string, std::string>{});
    std::uint64_t i = 0;
    for (const Update& up : stream.trace) {
      ASSERT_NO_THROW(m->apply(up)) << name << " @" << i;
      // Structural + matching audit after *every* update: live edges
      // only, no shared endpoints, consistent tables.
      ASSERT_NO_THROW(m->graph().check_invariants()) << name << " @" << i;
      ASSERT_NO_THROW(m->check_matching()) << name << " @" << i;
      if (name == std::string("greedy") && i % 250 == 0) {
        // Maximality => vertex-cover guard => 2-approximation.
        expect_maximal(*m);
        const std::size_t opt = exact_mcm_size(m->graph());
        ASSERT_GE(2 * m->matching_size(), opt) << name << " @" << i;
      }
      ++i;
    }
    m->flush();
    m->check_matching();
    m->graph().check_invariants();
    const std::size_t opt = exact_mcm_size(m->graph());
    EXPECT_GE(2 * m->matching_size(), opt) << name;
    if (name == std::string("repair")) {
      // After the final repair pass the lazy maintainer must also be
      // within its bound (empirically far closer to opt).
      EXPECT_GE(4 * m->matching_size(), 3 * opt) << "repair quality";
    }
  }
}

TEST(DynamicSoak, AdversarialDeleteMatchedStaysValid) {
  const StreamSpec stream =
      make_update_stream("adversarial:n=64,m0=128,updates=3000", 13);
  auto m = make_matcher("greedy", DynamicGraph(stream.initial_nodes));
  std::uint64_t i = 0;
  for (const Update& up : stream.trace) {
    m->apply(up);
    ASSERT_NO_THROW(m->check_matching()) << i;
    ++i;
  }
  expect_maximal(*m);
  // The adversary really does hit matched edges: recourse per update
  // must be well above the uniform-churn baseline's.
  EXPECT_GT(static_cast<double>(m->stats().recourse) /
                static_cast<double>(m->stats().updates),
            0.5);
}

// ------------------------------------------------------ switch adapter --

TEST(SwitchAdapter, ServesTrafficAndStaysConsistent) {
  SwitchReplayConfig config;
  config.ports = 8;
  config.slots = 3000;
  config.load = 0.6;
  config.seed = 5;
  for (const char* name : {"greedy", "repair"}) {
    auto m = make_matcher(
        name, make_port_graph(config.ports),
        name == std::string("repair")
            ? std::map<std::string, std::string>{{"interval", "4"}}
            : std::map<std::string, std::string>{});
    const SwitchReplayMetrics metrics = replay_switch(*m, config);
    EXPECT_GT(metrics.arrived, 0u);
    // A maximal matching over 8 ports at load 0.6 keeps up with nearly
    // all traffic; anything below 0.9 means the adapter lost cells.
    EXPECT_GT(metrics.normalized_throughput, 0.9) << name;
    EXPECT_GT(metrics.updates, 0u);
    m->check_matching();
    m->graph().check_invariants();
  }
}

TEST(SwitchAdapter, DeterministicAndShapeChecked) {
  SwitchReplayConfig config;
  config.ports = 4;
  config.slots = 500;
  config.load = 0.5;
  auto a = make_matcher("greedy", make_port_graph(config.ports));
  auto b = make_matcher("greedy", make_port_graph(config.ports));
  const SwitchReplayMetrics ma = replay_switch(*a, config);
  const SwitchReplayMetrics mb = replay_switch(*b, config);
  EXPECT_EQ(ma.arrived, mb.arrived);
  EXPECT_EQ(ma.delivered, mb.delivered);
  EXPECT_EQ(ma.updates, mb.updates);
  EXPECT_EQ(ma.recourse, mb.recourse);

  auto wrong = make_matcher("greedy", DynamicGraph(3));
  EXPECT_THROW(replay_switch(*wrong, config), std::invalid_argument);
}

// --------------------------------------------------------- runner leg --

TEST(RunnerDynamicLeg, EmitsThroughputRecourseAndRatio) {
  api::RunSpec spec;
  spec.generator = "path:n=2";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.dynamic = "repair";
  spec.dynamic_stream = "churn:n=128,m0=256,updates=2000";
  spec.dynamic_config = "interval=16";
  spec.dynamic_checkpoints = 4;
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.dynamic_maintainer, "repair");
  // The m0 = 256 build inserts are warm-up; only the churn phase is
  // measured.
  EXPECT_EQ(res.dynamic_bootstrap_updates, 256u);
  EXPECT_EQ(res.dynamic_updates, 2000u);
  EXPECT_GT(res.dynamic_updates_per_sec, 0.0);
  EXPECT_TRUE(res.dynamic_valid);
  EXPECT_EQ(res.dynamic_baseline, "blossom");  // n <= 400: exact oracle
  EXPECT_GT(res.dynamic_ratio, 0.8);
  EXPECT_GT(res.dynamic_ratio_min, 0.5);
  EXPECT_LE(res.dynamic_ratio_min, res.dynamic_ratio + 1e-12);
  const std::string json = res.to_json();
  for (const char* key :
       {"\"dynamic_maintainer\"", "\"dynamic_updates_per_sec\"",
        "\"dynamic_recourse_per_update\"", "\"dynamic_ratio\"",
        "\"provenance\"", "\"git_sha\"", "\"build_type\"",
        "\"timestamp_utc\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(RunnerDynamicLeg, RequiresAStreamSpec) {
  api::RunSpec spec;
  spec.generator = "path:n=2";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.dynamic = "greedy";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
}

TEST(Provenance, StampedOnEveryRun) {
  api::RunSpec spec;
  spec.generator = "path:n=4";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  const api::RunResult res = api::run_one(spec);
  EXPECT_FALSE(res.prov_git_sha.empty());
  EXPECT_FALSE(res.prov_build_type.empty());
  EXPECT_EQ(res.prov_threads, 1u);
  // ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(res.prov_timestamp_utc.size(), 20u);
  EXPECT_EQ(res.prov_timestamp_utc[10], 'T');
  EXPECT_EQ(res.prov_timestamp_utc.back(), 'Z');
}

}  // namespace
}  // namespace lps::dynamic
