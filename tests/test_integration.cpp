// End-to-end integration tests: determinism of entire algorithm runs,
// cross-algorithm consistency on shared instances, IO round trips
// feeding the solvers, and the paper's headline comparisons
// (Israeli–Itai 1/2 vs the (1-eps) algorithms; greedy 1/2 vs Algorithm
// 5) on common workloads.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bipartite_mcm.hpp"
#include "core/general_mcm.hpp"
#include "core/generic_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "core/weighted_mwm.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(Integration, SameSeedSameResultEverywhere) {
  Rng rng(5);
  const Graph g = erdos_renyi(80, 0.06, rng);
  const auto run_ii = [&] {
    IsraeliItaiOptions opts;
    opts.seed = 42;
    return israeli_itai(g, opts);
  };
  const auto a = run_ii(), b = run_ii();
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);

  GenericMcmOptions gopts;
  gopts.eps = 0.5;
  gopts.seed = 43;
  EXPECT_EQ(generic_mcm(g, gopts).matching, generic_mcm(g, gopts).matching);

  Rng rng2(6);
  const auto bg = random_bipartite(30, 30, 0.1, rng2);
  BipartiteMcmOptions bopts;
  bopts.k = 2;
  bopts.seed = 44;
  EXPECT_EQ(bipartite_mcm(bg.graph, bg.side, bopts).matching,
            bipartite_mcm(bg.graph, bg.side, bopts).matching);
}

TEST(Integration, DifferentSeedsUsuallyDiffer) {
  Rng rng(7);
  const Graph g = erdos_renyi(100, 0.05, rng);
  IsraeliItaiOptions a, b;
  a.seed = 1;
  b.seed = 2;
  // Sizes may coincide, the matchings almost surely not.
  EXPECT_NE(israeli_itai(g, a).matching, israeli_itai(g, b).matching);
}

TEST(Integration, PaperHeadlineUnweighted) {
  // The paper's claim in one test: on the same graph, Algorithm 1
  // achieves a strictly better-than-1/2 guarantee while Israeli–Itai
  // only promises maximality. We verify the *guarantees*, not luck:
  // II >= opt/2 and generic >= (1-eps) opt.
  Rng rng(11);
  const Graph g = erdos_renyi(72, 0.07, rng);
  const std::size_t opt = blossom_mcm(g).size();

  IsraeliItaiOptions iopts;
  iopts.seed = 3;
  const auto ii = israeli_itai(g, iopts);
  EXPECT_GE(2 * ii.matching.size(), opt);

  GenericMcmOptions gopts;
  gopts.eps = 0.25;  // k = 4 -> guarantee 4/5
  gopts.seed = 4;
  const auto generic = generic_mcm(g, gopts);
  EXPECT_GE(5 * generic.matching.size(), 4 * opt);
  EXPECT_GE(generic.matching.size(), ii.matching.size());
}

TEST(Integration, PaperHeadlineWeighted) {
  // Greedy is 1/2; Algorithm 5 with eps = 0.05 must not be (much) worse
  // and on the trap instance is strictly better.
  const WeightedGraph trap = greedy_trap_path(12, 0.001);
  const double greedy_w = greedy_mwm(trap).weight(trap);
  WeightedMwmOptions wopts;
  wopts.eps = 0.05;
  wopts.seed = 5;
  const auto algo5 = weighted_mwm(trap, wopts);
  EXPECT_GT(algo5.matching.weight(trap), 1.5 * greedy_w);
}

TEST(Integration, IoRoundTripFeedsSolvers) {
  Rng rng(13);
  Graph g0 = erdos_renyi(40, 0.1, rng);
  auto w = integer_weights(g0.num_edges(), 9, rng);
  const WeightedGraph wg = make_weighted(std::move(g0), std::move(w));
  std::stringstream ss;
  write_edge_list(ss, wg);
  const ParsedGraph parsed = read_edge_list(ss);
  ASSERT_TRUE(parsed.weights.has_value());
  const WeightedGraph back =
      make_weighted(Graph(parsed.graph), *parsed.weights);
  EXPECT_DOUBLE_EQ(greedy_mwm(back).weight(back), greedy_mwm(wg).weight(wg));
  EXPECT_EQ(blossom_mcm(back.graph).size(), blossom_mcm(wg.graph).size());
}

TEST(Integration, AlgorithmsComposeOnTheSameGraph) {
  // Run Algorithm 4 starting from nothing, then verify a follow-up
  // Algorithm 1 pass cannot improve beyond the optimum and never breaks
  // validity (algorithms share the Matching representation).
  Rng rng(17);
  const Graph g = erdos_renyi(44, 0.1, rng);
  const std::size_t opt = blossom_mcm(g).size();
  GeneralMcmOptions o4;
  o4.k = 3;
  o4.seed = 6;
  o4.oracle_optimum_size = opt;
  const auto r4 = general_mcm(g, o4);
  EXPECT_LE(r4.matching.size(), opt);
  GenericMcmOptions o1;
  o1.eps = 0.34;
  o1.seed = 7;
  const auto r1 = generic_mcm(g, o1);
  EXPECT_LE(r1.matching.size(), opt);
}

TEST(Integration, RoundCountsScaleGentlyWithN) {
  // O(log n) scaling smoke test: quadrupling n must far less than
  // quadruple the round count of Israeli–Itai.
  std::uint64_t rounds_small = 0, rounds_large = 0;
  {
    Rng rng(19);
    const Graph g = erdos_renyi(256, 6.0 / 256, rng);
    IsraeliItaiOptions opts;
    opts.seed = 8;
    rounds_small = israeli_itai(g, opts).stats.rounds;
  }
  {
    Rng rng(23);
    const Graph g = erdos_renyi(4096, 6.0 / 4096, rng);
    IsraeliItaiOptions opts;
    opts.seed = 9;
    rounds_large = israeli_itai(g, opts).stats.rounds;
  }
  EXPECT_LT(rounds_large, 4 * rounds_small);
}

}  // namespace
}  // namespace lps
