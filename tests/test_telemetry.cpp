// The telemetry subsystem's contracts (DESIGN.md §12): log-scale
// histogram buckets quantize within 25%, concurrent per-slot recording
// merges deterministically, exported Chrome traces parse back
// losslessly, and — the load-bearing one — switching metrics + tracing
// on changes nothing about any engine client's execution (same identity
// matrix as test_sharding, via engine_cases.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "engine_cases.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_reader.hpp"

namespace lps {
namespace {

namespace tel = telemetry;

TEST(HistogramBuckets, LayoutTilesTheFullRange) {
  // Values 0..3 get exact buckets.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(tel::bucket_of(v), v);
    EXPECT_EQ(tel::bucket_lo(static_cast<unsigned>(v)), v);
  }
  // Buckets tile: each bucket's exclusive hi is the next bucket's lo.
  for (unsigned b = 0; b + 1 < tel::kHistBuckets; ++b) {
    EXPECT_EQ(tel::bucket_hi(b), tel::bucket_lo(b + 1)) << "bucket " << b;
    EXPECT_LT(tel::bucket_lo(b), tel::bucket_hi(b)) << "bucket " << b;
  }
  // Every value lands in the bucket whose [lo, hi) contains it, and
  // sub-octave splitting bounds the bucket width to 25% of its lo.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{3}, std::uint64_t{4},
        std::uint64_t{5}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{1000}, std::uint64_t{123456789},
        (std::uint64_t{1} << 40) + 17, ~std::uint64_t{0}}) {
    const unsigned b = tel::bucket_of(v);
    ASSERT_LT(b, tel::kHistBuckets) << v;
    EXPECT_GE(v, tel::bucket_lo(b)) << v;
    if (b + 1 < tel::kHistBuckets) {
      EXPECT_LT(v, tel::bucket_hi(b)) << v;
      if (v >= 4) {
        EXPECT_LE(tel::bucket_hi(b) - tel::bucket_lo(b),
                  tel::bucket_lo(b) / 4)
            << v;
      }
    }
  }
}

TEST(Histogram, PercentilesWithinQuantizationError) {
  tel::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = p * 10.0;  // uniform 1..1000
    const double got = s.percentile(p);
    EXPECT_GE(got, 0.75 * exact) << "p" << p;
    EXPECT_LE(got, 1.25 * exact + 1.0) << "p" << p;
  }
  // p100 clamps to the observed max, not the bucket's upper bound.
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 1000.0);
}

TEST(Histogram, SingleValueIsExactUnderClamp) {
  tel::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7);
  const tel::HistogramSnapshot s = h.snapshot();
  // Interpolation inside bucket [7, 7.75) would overshoot; the clamp to
  // max pins every percentile to the one recorded value.
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

TEST(Histogram, ConcurrentRecordingMergesDeterministically) {
  // Per-slot atomics: the merged snapshot must equal the sequential
  // recording of the same multiset regardless of which thread/slot
  // recorded which value.
  tel::Histogram sequential;
  for (std::uint64_t v = 0; v < 4096; ++v) sequential.record(v * 37 % 5000);

  tel::Histogram concurrent;
  ThreadPool pool(4);
  pool.parallel_for_workers(
      0, 4096, 64, [&](unsigned worker, std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) {
          concurrent.record(v * 37 % 5000, worker);
        }
      });

  const tel::HistogramSnapshot a = sequential.snapshot();
  const tel::HistogramSnapshot b = concurrent.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, SnapshotDeltaSubtracts) {
  tel::Histogram h;
  h.record(10);
  h.record(100);
  const tel::HistogramSnapshot before = h.snapshot();
  h.record(1000);
  h.record(1000);
  tel::HistogramSnapshot delta = h.snapshot();
  delta -= before;
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 2000u);
  EXPECT_GE(delta.percentile(50.0), 750.0);  // within bucket quantization
  EXPECT_LE(delta.percentile(50.0), 1000.0);
}

TEST(MetricsRegistry, InstrumentsAreStableNamedAndResettable) {
  tel::MetricsRegistry& reg = tel::MetricsRegistry::global();
  tel::Counter& c = reg.counter("test.telemetry.counter");
  EXPECT_EQ(&c, &reg.counter("test.telemetry.counter"));
  c.reset();
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  bool seen = false;
  for (const auto& [name, value] : reg.counters()) {
    if (name == "test.telemetry.counter") {
      seen = true;
      EXPECT_EQ(value, 12u);
    }
  }
  EXPECT_TRUE(seen);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(IndexedCounter, WatermarkAndOutOfRangeDrops) {
  tel::IndexedCounter ic;
  ic.add(3, 10);
  ic.add(0, 1);
  ic.add(3, 5);
  const std::vector<std::uint64_t> v = ic.values();
  ASSERT_EQ(v.size(), 4u);  // watermark = highest index + 1
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[1], 0u);
  EXPECT_EQ(v[3], 15u);
  EXPECT_EQ(ic.dropped(), 0u);
  ic.add(tel::kIndexedCapacity + 5, 1);
  EXPECT_EQ(ic.dropped(), 1u);
  EXPECT_EQ(ic.values().size(), 4u);
}

TEST(Series, BoundedWithDropAccounting) {
  tel::Series s(4);
  for (std::uint64_t i = 0; i < 10; ++i) s.push(i);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.dropped(), 6u);
  const std::vector<std::uint64_t> tail = s.values_from(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], 2u);
  EXPECT_EQ(tail[1], 3u);
  s.reset();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.dropped(), 0u);
}

TEST(Tracer, ChromeTraceRoundTrips) {
  tel::Tracer& tracer = tel::Tracer::global();
  tracer.reset();
  tracer.set_recording(true);
  if (!tracer.recording()) {
    GTEST_SKIP() << "telemetry compiled out (LPS_TELEMETRY=0)";
  }
  tracer.set_thread_label("gtest-main");
  tracer.emit("unit.span", "test", 1000, 500,
              {{"alpha", 1.0}, {"beta", 2.5}});
  tracer.emit(tracer.intern(std::string("unit.") + "interned"), "test", 2000,
              250);
  tracer.instant("unit.instant", "test", {{"k", 3.0}});
  tracer.set_recording(false);
  EXPECT_EQ(tracer.events(), 3u);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tel::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(tel::load_chrome_trace(os.str(), doc, &error)) << error;
  tracer.reset();

  ASSERT_EQ(doc.spans.size(), 3u);
  bool found_span = false, found_interned = false, found_instant = false;
  for (const tel::TraceSpan& s : doc.spans) {
    if (s.name == "unit.span") {
      found_span = true;
      EXPECT_EQ(s.ph, 'X');
      EXPECT_EQ(s.cat, "test");
      EXPECT_DOUBLE_EQ(s.dur_us, 0.5);  // 500 ns
      ASSERT_EQ(s.args.count("alpha"), 1u);
      EXPECT_DOUBLE_EQ(s.args.at("alpha"), 1.0);
      EXPECT_DOUBLE_EQ(s.args.at("beta"), 2.5);
    } else if (s.name == "unit.interned") {
      found_interned = true;
      // Rebase: earliest event (ts 1000 ns) maps to 0, so this one
      // lands at 1 us.
      EXPECT_DOUBLE_EQ(s.ts_us, 1.0);
    } else if (s.name == "unit.instant") {
      found_instant = true;
      EXPECT_EQ(s.ph, 'i');
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_interned);
  EXPECT_TRUE(found_instant);
  bool labeled = false;
  for (const auto& [tid, name] : doc.thread_names) {
    if (name == "gtest-main") labeled = true;
  }
  EXPECT_TRUE(labeled);
}

TEST(TraceReader, RejectsMalformedDocuments) {
  tel::TraceDoc doc;
  std::string error;
  EXPECT_FALSE(tel::load_chrome_trace("{", doc, &error));
  EXPECT_FALSE(tel::load_chrome_trace("[]", doc, &error));  // root: object
  EXPECT_FALSE(tel::load_chrome_trace("{\"traceEvents\": 3}", doc, &error));
  EXPECT_FALSE(tel::load_chrome_trace(
      "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 0, \"dur\": 1}]}", doc,
      &error));  // missing name
  EXPECT_FALSE(tel::load_chrome_trace("{\"traceEvents\": []} trailing", doc,
                                      &error));
  EXPECT_TRUE(tel::load_chrome_trace("{\"traceEvents\": []}", doc, &error))
      << error;
  EXPECT_TRUE(doc.spans.empty());
}

TEST(Telemetry, EngineClientsBitIdenticalWithTelemetryOn) {
  // The acceptance-critical contract: metrics + span recording change
  // nothing about any engine client's execution. Compiled out
  // (LPS_TELEMETRY=0) the switches are no-ops and this degenerates to
  // solving twice — still a valid determinism check.
  tel::Tracer& tracer = tel::Tracer::global();
  const bool prev_enabled = tel::enabled();
  for (const test_support::ShardCase& c : test_support::kEngineCases) {
    const api::SolveResult base = test_support::solve_with(c, 0, nullptr);
    tel::set_enabled(true);
    tracer.reset();
    tracer.set_recording(true);
    const api::SolveResult traced = test_support::solve_with(c, 0, nullptr);
    tracer.set_recording(false);
    tel::set_enabled(prev_enabled);
    test_support::expect_identical(
        base, traced, std::string(c.solver) + " telemetry on vs off");
#if LPS_TELEMETRY
    EXPECT_GT(tracer.events(), 0u)
        << c.solver << " recorded no spans with tracing on";
#endif
  }
  tracer.reset();
}

}  // namespace
}  // namespace lps
