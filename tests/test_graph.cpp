// Tests for src/graph: Graph/CSR integrity, bipartition, components,
// subgraphs, generators (parameterized sweeps), weights, IO.
#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <numeric>
#include <set>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/matching.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

// -------------------------------------------------------------- Graph --

TEST(Graph, BasicConstructionAndAdjacency) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  // Every incidence is symmetric and consistent.
  for (NodeId v = 0; v < 4; ++v) {
    for (const auto& inc : g.neighbors(v)) {
      EXPECT_EQ(g.other_endpoint(inc.edge, v), inc.to);
      bool found = false;
      for (const auto& back : g.neighbors(inc.to)) {
        found |= (back.to == v && back.edge == inc.edge);
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Graph, NormalizesEndpointOrder) {
  Graph g(3, {{2, 0}});
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 2u);
}

TEST(Graph, RejectsBadInput) {
  EXPECT_THROW(Graph(2, {{0, 0}}), std::invalid_argument);   // self-loop
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);   // range
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), std::invalid_argument);  // dup
}

TEST(Graph, FindEdge) {
  Graph g(5, {{0, 1}, {1, 2}, {0, 4}});
  EXPECT_EQ(g.find_edge(1, 0), 0u);
  EXPECT_EQ(g.find_edge(4, 0), 2u);
  EXPECT_EQ(g.find_edge(2, 3), kInvalidEdge);
}

TEST(Graph, IncidenceListsSortedByNeighborRegardlessOfEdgeOrder) {
  // Deliberately scrambled edge input: the CSR construction must still
  // deliver each incidence list sorted by neighbor id (the documented
  // invariant behind binary-search find_edge and canonical inbox order).
  Graph g(6, {{4, 2}, {0, 5}, {3, 0}, {2, 0}, {5, 2}, {1, 0}});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1].to, nbrs[i].to) << "vertex " << v;
    }
  }
  // Binary-search find_edge agrees with a linear scan on every pair.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EdgeId expect = kInvalidEdge;
      for (const auto& inc : g.neighbors(u)) {
        if (inc.to == v) expect = inc.edge;
      }
      EXPECT_EQ(g.find_edge(u, v), expect) << u << "-" << v;
    }
  }
}

TEST(Graph, FindEdgeFuzzAgainstLinearScan) {
  Rng rng(41);
  const Graph g = erdos_renyi(60, 0.15, rng);
  for (int trial = 0; trial < 500; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.below(60));
    const NodeId v = static_cast<NodeId>(rng.below(60));
    EdgeId expect = kInvalidEdge;
    for (const auto& inc : g.neighbors(u)) {
      if (inc.to == v) expect = inc.edge;
    }
    EXPECT_EQ(g.find_edge(u, v), expect);
  }
}

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.bipartition().has_value());
}

TEST(Graph, BipartitionEvenCycleYesOddCycleNo) {
  EXPECT_TRUE(cycle_graph(8).bipartition().has_value());
  EXPECT_FALSE(cycle_graph(9).bipartition().has_value());
  const auto side = cycle_graph(8).bipartition();
  const Graph g = cycle_graph(8);
  for (const Edge& e : g.edges()) {
    EXPECT_NE((*side)[e.u], (*side)[e.v]);
  }
}

TEST(Graph, ComponentsCountsIslands) {
  // Two triangles and an isolated vertex.
  Graph g(7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
}

TEST(Graph, InducedSubgraphMapsBack) {
  Graph g = complete_graph(5);
  std::vector<char> keep_node(5, 1);
  keep_node[2] = 0;
  Subgraph s = induced_subgraph(g, keep_node, {});
  EXPECT_EQ(s.graph.num_nodes(), 4u);
  EXPECT_EQ(s.graph.num_edges(), 6u);  // K4
  for (EdgeId e = 0; e < s.graph.num_edges(); ++e) {
    const Edge& sub = s.graph.edge(e);
    const Edge& parent = g.edge(s.edge_to_parent[e]);
    EXPECT_EQ(s.node_to_parent[sub.u], parent.u);
    EXPECT_EQ(s.node_to_parent[sub.v], parent.v);
  }
  EXPECT_EQ(s.parent_to_node[2], kInvalidNode);
}

TEST(Graph, InducedSubgraphEdgeMask) {
  Graph g = path_graph(4);  // edges 0-1,1-2,2-3
  std::vector<char> keep_edge(3, 0);
  keep_edge[1] = 1;
  Subgraph s = induced_subgraph(g, {}, keep_edge);
  EXPECT_EQ(s.graph.num_nodes(), 4u);
  EXPECT_EQ(s.graph.num_edges(), 1u);
  EXPECT_EQ(s.edge_to_parent[0], 1u);
}

TEST(WeightedGraph, MakeWeightedValidates) {
  Graph g = path_graph(3);
  EXPECT_THROW(make_weighted(g, {1.0}), std::invalid_argument);
  EXPECT_THROW(make_weighted(g, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(make_weighted(g, {1.0, -2.0}), std::invalid_argument);
  auto wg = make_weighted(g, {1.0, 2.5});
  EXPECT_DOUBLE_EQ(wg.weight(1), 2.5);
}

// --------------------------------------------------- fixed generators --

TEST(Generators, FixedTopologies) {
  EXPECT_EQ(path_graph(6).num_edges(), 5u);
  EXPECT_EQ(cycle_graph(6).num_edges(), 6u);
  EXPECT_EQ(complete_graph(7).num_edges(), 21u);
  EXPECT_EQ(star_graph(9).num_edges(), 8u);
  EXPECT_EQ(star_graph(9).max_degree(), 8u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(binary_tree(15).num_edges(), 14u);
  EXPECT_EQ(complete_bipartite(3, 4).num_edges(), 12u);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Generators, CompleteBipartiteIsBipartiteWithSides) {
  const Graph g = complete_bipartite(4, 5);
  const auto side = g.bipartition();
  ASSERT_TRUE(side.has_value());
  for (const Edge& e : g.edges()) EXPECT_NE((*side)[e.u], (*side)[e.v]);
}

// ------------------------------------------- parameterized generators --

class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, ErdosRenyiEdgeCountConcentration) {
  Rng rng(GetParam());
  const NodeId n = 200;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.num_edges(), expected, 5 * std::sqrt(expected) + 10);
  // Validity is enforced by the Graph constructor (no dups/loops).
}

TEST_P(GeneratorSweep, ErdosRenyiExtremes) {
  Rng rng(GetParam());
  EXPECT_EQ(erdos_renyi(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).num_edges(), 190u);
}

TEST_P(GeneratorSweep, RandomBipartiteRespectsSides) {
  Rng rng(GetParam());
  const auto bg = random_bipartite(30, 40, 0.1, rng);
  EXPECT_EQ(bg.graph.num_nodes(), 70u);
  for (const Edge& e : bg.graph.edges()) {
    EXPECT_LT(e.u, 30u);
    EXPECT_GE(e.v, 30u);
    EXPECT_NE(bg.side[e.u], bg.side[e.v]);
  }
  const double expected = 0.1 * 30 * 40;
  EXPECT_NEAR(bg.graph.num_edges(), expected, 5 * std::sqrt(expected) + 10);
}

TEST_P(GeneratorSweep, RandomBipartiteRegularLeftDegrees) {
  Rng rng(GetParam());
  const auto bg = random_bipartite_regular_left(20, 30, 5, rng);
  for (NodeId x = 0; x < 20; ++x) EXPECT_EQ(bg.graph.degree(x), 5u);
  EXPECT_EQ(bg.graph.num_edges(), 100u);
}

TEST_P(GeneratorSweep, RandomTreeIsTree) {
  Rng rng(GetParam());
  for (NodeId n : {2u, 3u, 10u, 97u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_edges(), n - 1);
    const auto comp = g.components();
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(comp[v], 0u);  // connected
  }
}

TEST_P(GeneratorSweep, RandomRegularDegrees) {
  Rng rng(GetParam());
  const Graph g = random_regular(40, 4, rng);
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);  // odd nd
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);  // d >= n
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Generators, TightBipartiteChainStructure) {
  for (const int k : {1, 2, 4}) {
    const TightChain chain = tight_bipartite_chain(k, 3);
    const NodeId stride = static_cast<NodeId>(2 * k + 2);
    EXPECT_EQ(chain.graph.num_nodes(), 3 * stride);
    EXPECT_EQ(chain.graph.num_edges(), 3u * (stride - 1));
    EXPECT_EQ(chain.matched.size(), 3u * k);
    // The pre-matching is valid, leaves exactly the copy endpoints
    // free, and the shortest augmenting path has length exactly 2k+1.
    const Matching m = Matching::from_edges(chain.graph, chain.matched);
    for (NodeId c = 0; c < 3; ++c) {
      EXPECT_TRUE(m.is_free(c * stride));
      EXPECT_TRUE(m.is_free(c * stride + stride - 1));
    }
    EXPECT_EQ(shortest_augmenting_path_length(chain.graph, m, 2 * k + 1),
              2 * k + 1);
    EXPECT_FALSE(has_augmenting_path_leq(chain.graph, m, 2 * k - 1));
    // Side labels 2-color every edge.
    for (const Edge& e : chain.graph.edges()) {
      EXPECT_NE(chain.side[e.u], chain.side[e.v]);
    }
  }
  EXPECT_THROW(tight_bipartite_chain(0, 2), std::invalid_argument);
}

// ------------------------------------------------------------ weights --

TEST(Weights, UniformBoundsAndValidation) {
  Rng rng(51);
  const auto w = uniform_weights(1000, 2.0, 5.0, rng);
  for (double x : w) {
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 5.0);
  }
  EXPECT_THROW(uniform_weights(10, 0.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(uniform_weights(10, 3.0, 2.0, rng), std::invalid_argument);
}

TEST(Weights, IntegerRange) {
  Rng rng(53);
  const auto w = integer_weights(2000, 7, rng);
  std::set<double> seen(w.begin(), w.end());
  for (double x : w) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 7.0);
    EXPECT_EQ(x, std::floor(x));
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit with 2000 draws
}

TEST(Weights, PowerOfTwoLevels) {
  Rng rng(57);
  const auto w = power_of_two_weights(500, 4, rng);
  for (double x : w) {
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 4.0 || x == 8.0) << x;
  }
}

TEST(Weights, GreedyTrapStructure) {
  const WeightedGraph wg = greedy_trap_path(3, 0.01);
  EXPECT_EQ(wg.graph.num_nodes(), 12u);
  EXPECT_EQ(wg.graph.num_edges(), 9u);
  double total = 0;
  for (double x : wg.weights) total += x;
  EXPECT_NEAR(total, 3 * (2 + 1.01), 1e-12);
}

TEST(Weights, IncreasingPath) {
  const WeightedGraph wg = increasing_path(5);
  EXPECT_EQ(wg.weights, (std::vector<double>{1, 2, 3, 4}));
}

// ----------------------------------------------------------------- IO --

TEST(Io, UnweightedRoundTrip) {
  Rng rng(59);
  const Graph g = erdos_renyi(40, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const ParsedGraph back = read_edge_list(ss);
  EXPECT_EQ(back.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.graph.num_edges(), g.num_edges());
  EXPECT_FALSE(back.weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.graph.edge(e), g.edge(e));
  }
}

TEST(Io, WeightedRoundTripBitExact) {
  Rng rng(61);
  Graph g = erdos_renyi(30, 0.15, rng);
  auto w = uniform_weights(g.num_edges(), 0.001, 1000.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  std::stringstream ss;
  write_edge_list(ss, wg);
  const ParsedGraph back = read_edge_list(ss);
  ASSERT_TRUE(back.weights.has_value());
  EXPECT_EQ(*back.weights, wg.weights);
}

// The writer must produce a faithful serialization no matter what
// formatting state the caller's stream carries: a stream left in
// std::fixed used to collapse small weights to "0.000...0" (the read
// then threw on the non-positive weight), and hexfloat produced output
// operator>> cannot parse at all.
TEST(Io, WeightedRoundTripIgnoresStreamFormattingState) {
  const WeightedGraph wg =
      make_weighted(Graph(4, {{2, 1}, {0, 3}, {0, 1}}), {1e-20, 0.1, 5e-324});
  for (const auto* mode : {"fixed", "scientific", "hexfloat", "precision2"}) {
    std::stringstream ss;
    if (std::string(mode) == "fixed") ss << std::fixed;
    if (std::string(mode) == "scientific") ss << std::scientific;
    if (std::string(mode) == "hexfloat") ss << std::hexfloat;
    if (std::string(mode) == "precision2") ss << std::setprecision(2);
    const auto flags_before = ss.flags();
    const auto precision_before = ss.precision();
    write_edge_list(ss, wg);
    // The writer restores whatever state it changed.
    EXPECT_EQ(ss.flags(), flags_before) << mode;
    EXPECT_EQ(ss.precision(), precision_before) << mode;
    const ParsedGraph back = read_edge_list(ss);
    ASSERT_TRUE(back.weights.has_value()) << mode;
    EXPECT_EQ(*back.weights, wg.weights) << mode;
    // Reading re-establishes the sorted-incidence invariant.
    for (NodeId v = 0; v < back.graph.num_nodes(); ++v) {
      const auto nbrs = back.graph.neighbors(v);
      for (std::size_t i = 1; i < nbrs.size(); ++i) {
        EXPECT_LT(nbrs[i - 1].to, nbrs[i].to) << mode;
      }
    }
    for (EdgeId e = 0; e < wg.graph.num_edges(); ++e) {
      EXPECT_EQ(back.graph.edge(e), wg.graph.edge(e)) << mode;
    }
  }
}

TEST(Io, MalformedInputThrows) {
  std::stringstream empty;
  EXPECT_THROW(read_edge_list(empty), std::invalid_argument);
  std::stringstream truncated("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(truncated), std::invalid_argument);
  std::stringstream missing_weight("2 1 w\n0 1\n");
  EXPECT_THROW(read_edge_list(missing_weight), std::invalid_argument);
}

}  // namespace
}  // namespace lps
