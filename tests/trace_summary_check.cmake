# CLI contract test for tools/trace_summary's exit codes (PR 9
# satellite): `--check` returns 0 on a valid trace, 1 on a truncated or
# non-JSON input, and usage errors return 2; `--check --events`
# additionally enforces the event-log invariants (closed vocabulary,
# sorted ns stamps, crash/revive pairing).
#
#   cmake -DRUNNER=<runner> -DTRACE_SUMMARY=<trace_summary>
#         -P trace_summary_check.cmake
#
# Registered by the top-level CMakeLists as test `trace_summary_check`.
if(NOT RUNNER OR NOT TRACE_SUMMARY)
  message(FATAL_ERROR
      "pass -DRUNNER=... and -DTRACE_SUMMARY=... binary paths")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/trace_summary_check_out")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

function(expect_code expected)
  execute_process(
    COMMAND "${TRACE_SUMMARY}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL ${expected})
    message(SEND_ERROR
        "expected exit ${expected}, got '${code}' for: ${ARGN}\n"
        "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# A real trace from a real run (works in -DLPS_TELEMETRY=OFF builds too:
# the tracer still writes a valid empty document).
execute_process(
  COMMAND "${RUNNER}" --generator er:n=64,deg=3 --solver israeli_itai
          --oracle none --ledger off --log-level quiet
          --trace "${workdir}/run.trace.json"
  RESULT_VARIABLE code
  OUTPUT_QUIET
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "runner failed to produce a trace: ${err}")
endif()

# Valid trace: --check passes, the report mode also exits 0.
expect_code(0 --check "${workdir}/run.trace.json")
expect_code(0 "${workdir}/run.trace.json")

# Truncated trace: cut the document in half — no longer valid JSON.
file(READ "${workdir}/run.trace.json" trace_text)
string(LENGTH "${trace_text}" trace_len)
math(EXPR half "${trace_len} / 2")
string(SUBSTRING "${trace_text}" 0 ${half} truncated)
file(WRITE "${workdir}/truncated.json" "${truncated}")
expect_code(1 --check "${workdir}/truncated.json")

# Non-JSON input.
file(WRITE "${workdir}/garbage.json" "this is not a trace\n")
expect_code(1 --check "${workdir}/garbage.json")

# Well-formed JSON that is not a trace document.
file(WRITE "${workdir}/nottrace.json" "{\"spans\": []}\n")
expect_code(1 --check "${workdir}/nottrace.json")

# Missing file -> 1 (I/O failure), usage errors -> 2.
expect_code(1 --check "${workdir}/does_not_exist.json")
expect_code(2)
expect_code(2 --frobnicate "${workdir}/run.trace.json")
expect_code(2 "${workdir}/run.trace.json" "${workdir}/garbage.json")

# ------------------------------------------------- event-log fixtures --
# Valid log: sorted ns, known kinds, every crash revived (including a
# flapping vertex that crashes twice).
file(WRITE "${workdir}/events_ok.jsonl"
"{\"ev\":\"round\",\"round\":1,\"ns\":100,\"delivered\":4,\"sent\":4,\"stepped\":2}
{\"ev\":\"crash\",\"round\":1,\"ns\":150,\"vertex\":7,\"epoch\":1}
{\"ev\":\"revive\",\"round\":2,\"ns\":200,\"vertex\":7,\"epoch\":2}
{\"ev\":\"crash\",\"round\":3,\"ns\":250,\"vertex\":7,\"epoch\":3}
{\"ev\":\"revive\",\"round\":4,\"ns\":300,\"vertex\":7,\"epoch\":4}
")
expect_code(0 --check --events "${workdir}/events_ok.jsonl")
expect_code(0 --events "${workdir}/events_ok.jsonl")

# Unpaired crash: vertex 9 never revives.
file(WRITE "${workdir}/events_unpaired.jsonl"
"{\"ev\":\"crash\",\"round\":1,\"ns\":100,\"vertex\":9,\"epoch\":1}
")
expect_code(1 --check --events "${workdir}/events_unpaired.jsonl")

# Revive without a preceding crash.
file(WRITE "${workdir}/events_orphan_revive.jsonl"
"{\"ev\":\"revive\",\"round\":1,\"ns\":100,\"vertex\":3,\"epoch\":1}
")
expect_code(1 --check --events "${workdir}/events_orphan_revive.jsonl")

# Unknown event kind (outside the closed vocabulary).
file(WRITE "${workdir}/events_unknown.jsonl"
"{\"ev\":\"frobnicate\",\"round\":1,\"ns\":100}
")
expect_code(1 --check --events "${workdir}/events_unknown.jsonl")

# Unsorted ns stamps.
file(WRITE "${workdir}/events_unsorted.jsonl"
"{\"ev\":\"round\",\"round\":1,\"ns\":200,\"delivered\":1,\"sent\":1,\"stepped\":1}
{\"ev\":\"round\",\"round\":2,\"ns\":100,\"delivered\":1,\"sent\":1,\"stepped\":1}
")
expect_code(1 --check --events "${workdir}/events_unsorted.jsonl")

# Non-JSON line.
file(WRITE "${workdir}/events_garbage.jsonl" "not json\n")
expect_code(1 --check --events "${workdir}/events_garbage.jsonl")
