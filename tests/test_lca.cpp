// The LCA oracle subsystem: per-query answers must be *exactly* the
// matching of one virtual global execution — for a fixed seed the union
// of all per-edge oracle answers equals the matching the corresponding
// registered global solver produces (the ISSUE's consistency criterion)
// — plus the probe meter, the bounded LRU memo (eviction safety), the
// batch engine, and the runner integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "lca/batch.hpp"
#include "lca/graph_access.hpp"
#include "lca/israeli_itai_oracle.hpp"
#include "lca/lru_cache.hpp"
#include "lca/oracle.hpp"
#include "lca/rank_greedy.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

using api::Instance;
using api::SolverConfig;
using api::SolverRegistry;

/// Workload mix shared by both consistency sweeps: sparse/dense random,
/// bipartite, odd cycle (non-bipartite), star (hub contention), path.
const char* const kWorkloads[] = {
    "er:n=64,deg=4",  "er:n=120,p=0.08",          "bipartite:nx=40,ny=40,deg=3",
    "cycle:n=33",     "star:n=30",                "path:n=41",
    "complete:n=18",  "grid:rows=7,cols=9",
};

/// Every edge and every node of `g`, answered purely through `oracle`,
/// must reproduce `global` exactly.
void expect_oracle_equals_global(const Graph& g, const Matching& global,
                                 lca::MatchingOracle& oracle,
                                 const std::string& label) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(oracle.in_matching(e), global.contains(g, e))
        << label << " edge " << e;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId expected =
        global.is_free(v) ? kInvalidNode : global.mate(g, v);
    EXPECT_EQ(oracle.matched_to(v), expected) << label << " node " << v;
  }
}

//
// -------------------------------------------------------------- LRU --

TEST(LruCache, EvictsLeastRecentlyUsedAndCountsHits) {
  lca::LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_EQ(cache.get(1).value(), 10);  // 1 is now most recent
  cache.put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 10);
  EXPECT_EQ(cache.get(3).value(), 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, OverwriteKeepsSizeAndPromotes) {
  lca::LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite promotes 1
  cache.put(3, 30);  // evicts 2, not 1
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCache, ZeroCapacityNeverStores) {
  lca::LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------ GraphAccess --

TEST(GraphAccess, MetersProbesPerIncidenceEntry) {
  const Graph g = star_graph(5);  // hub 0, degree 4
  lca::GraphAccess access(g);
  EXPECT_EQ(access.probes(), 0u);
  access.neighbors(0);
  EXPECT_EQ(access.probes(), 4u);  // one probe per incidence entry
  access.edge(0);
  EXPECT_EQ(access.probes(), 5u);
  access.degree(3);
  EXPECT_EQ(access.probes(), 6u);
  access.neighbors(1);  // leaf: degree 1
  EXPECT_EQ(access.probes(), 7u);
}

// ------------------------------------------------------ rank greedy --

TEST(RankGreedy, GlobalMatchingIsValidMaximalAndSeedDeterministic) {
  Rng rng(3);
  const Graph g = erdos_renyi(80, 0.06, rng);
  const Matching a = lca::rank_greedy_matching(g, 7);
  const Matching b = lca::rank_greedy_matching(g, 7);
  const Matching c = lca::rank_greedy_matching(g, 8);
  EXPECT_TRUE(is_valid_matching(g, a.edge_ids(g)));
  EXPECT_TRUE(is_maximal_matching(g, a));
  EXPECT_EQ(a, b);
  // Different seed, different order: almost surely a different matching
  // on a graph this size (equality would indicate the seed is ignored).
  EXPECT_NE(a.edge_ids(g), c.edge_ids(g));
}

TEST(RankGreedyOracle, EveryAnswerMatchesTheGlobalExecution) {
  for (const char* spec : kWorkloads) {
    const Instance inst = api::make_instance(spec, 11);
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      lca::OracleOptions opts;
      opts.seed = seed;
      lca::RankGreedyOracle oracle(inst.graph(), opts);
      const Matching global = lca::rank_greedy_matching(inst.graph(), seed);
      expect_oracle_equals_global(
          inst.graph(), global, oracle,
          std::string(spec) + " seed " + std::to_string(seed));
    }
  }
}

TEST(RankGreedyOracle, TinyCacheStillAnswersExactly) {
  // Eviction safety: with a 4-entry memo the oracle recomputes most
  // dependency chains from scratch and must still agree everywhere.
  const Instance inst = api::make_instance("er:n=60,deg=5", 5);
  lca::OracleOptions opts;
  opts.seed = 9;
  opts.cache_capacity = 4;
  lca::RankGreedyOracle oracle(inst.graph(), opts);
  const Matching global = lca::rank_greedy_matching(inst.graph(), 9);
  expect_oracle_equals_global(inst.graph(), global, oracle, "tiny cache");
}

TEST(RankGreedyOracle, RepeatedQueriesAmortizeThroughTheMemo) {
  const Instance inst = api::make_instance("er:n=200,deg=6", 3);
  lca::OracleOptions opts;
  opts.seed = 4;
  lca::RankGreedyOracle oracle(inst.graph(), opts);
  oracle.in_matching(0);
  const std::uint64_t cold = oracle.stats().probes;
  oracle.in_matching(0);
  // The repeat answers from the memo root hit: no new graph probes.
  EXPECT_EQ(oracle.stats().probes, cold);
  EXPECT_GT(oracle.stats().cache_hits, 0u);
}

TEST(RankGreedyOracle, RejectsConfigKeys) {
  const Instance inst = api::make_instance("path:n=4", 1);
  lca::OracleOptions opts;
  opts.config["max_phases"] = "3";
  EXPECT_THROW(lca::RankGreedyOracle(inst.graph(), opts),
               std::invalid_argument);
}

// ---------------------------------------------------- israeli--itai --

TEST(IsraeliItaiOracle, EveryAnswerMatchesTheGlobalSolver) {
  const api::MatchingSolver& solver =
      SolverRegistry::global().at("israeli_itai");
  for (const char* spec : kWorkloads) {
    const Instance inst = api::make_instance(spec, 23);
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      SolverConfig cfg;
      cfg.seed(seed);
      const Matching global = solver.solve(inst, cfg).matching;
      lca::OracleOptions opts;
      opts.seed = seed;
      lca::IsraeliItaiOracle oracle(inst.graph(), opts);
      expect_oracle_equals_global(
          inst.graph(), global, oracle,
          std::string(spec) + " seed " + std::to_string(seed));
    }
  }
}

TEST(IsraeliItaiOracle, HonorsAnExplicitPhaseCap) {
  // A truncating cap changes the matching; the oracle must track the
  // capped execution, not the converged one.
  const Instance inst = api::make_instance("er:n=80,deg=5", 2);
  const api::MatchingSolver& solver =
      SolverRegistry::global().at("israeli_itai");
  for (const std::uint64_t cap : {1ull, 2ull}) {
    SolverConfig cfg = SolverConfig::parse("max_phases=" +
                                           std::to_string(cap));
    cfg.seed(6);
    const Matching global = solver.solve(inst, cfg).matching;
    lca::OracleOptions opts;
    opts.seed = 6;
    opts.config["max_phases"] = std::to_string(cap);
    lca::IsraeliItaiOracle oracle(inst.graph(), opts);
    expect_oracle_equals_global(inst.graph(), global, oracle,
                                "cap " + std::to_string(cap));
  }
}

TEST(IsraeliItaiOracle, TinyCacheStillAnswersExactly) {
  const Instance inst = api::make_instance("er:n=48,deg=4", 8);
  const api::MatchingSolver& solver =
      SolverRegistry::global().at("israeli_itai");
  SolverConfig cfg;
  cfg.seed(3);
  const Matching global = solver.solve(inst, cfg).matching;
  lca::OracleOptions opts;
  opts.seed = 3;
  opts.cache_capacity = 16;
  lca::IsraeliItaiOracle oracle(inst.graph(), opts);
  expect_oracle_equals_global(inst.graph(), global, oracle, "tiny cache");
}

TEST(IsraeliItaiOracle, RejectsUnknownConfigKeys) {
  const Instance inst = api::make_instance("path:n=4", 1);
  lca::OracleOptions opts;
  opts.config["eps"] = "0.5";
  EXPECT_THROW(lca::IsraeliItaiOracle(inst.graph(), opts),
               std::invalid_argument);
}

TEST(IsraeliItaiOracle, PhaseBudgetMatchesTheSolverDefault) {
  // 40 + 12 * ceil(log2(n + 1)) — one definition, exported by core and
  // consumed by the oracle, so solver and simulation cannot diverge.
  EXPECT_EQ(israeli_itai_default_max_phases(1), 52u);
  EXPECT_EQ(israeli_itai_default_max_phases(127), 124u);
  EXPECT_EQ(israeli_itai_default_max_phases(128), 136u);
}

// ----------------------------------------------------- make_oracle --

TEST(OracleRegistry, NamesAndUnknownName) {
  EXPECT_EQ(lca::oracle_names(),
            (std::vector<std::string>{"israeli_itai", "rank_greedy_mcm"}));
  EXPECT_TRUE(lca::has_oracle("israeli_itai"));
  EXPECT_FALSE(lca::has_oracle("blossom"));
  const Graph g = path_graph(4);
  EXPECT_THROW(lca::make_oracle("blossom", g), std::invalid_argument);
  // Every advertised oracle name must be a registered solver name, or
  // the runner's auto pairing breaks.
  for (const std::string& name : lca::oracle_names()) {
    EXPECT_TRUE(SolverRegistry::global().contains(name)) << name;
    const auto oracle = lca::make_oracle(name, g);
    EXPECT_EQ(oracle->name(), name);
  }
}

// ----------------------------------------------------- batch engine --

TEST(BatchEngine, ParallelAnswersEqualSequentialAnswers) {
  const Instance inst = api::make_instance("er:n=150,deg=5", 17);
  const Graph& g = inst.graph();
  const auto factory = [&] {
    lca::OracleOptions opts;
    opts.seed = 5;
    return lca::make_oracle("rank_greedy_mcm", g, opts);
  };
  std::vector<EdgeId> queries;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    queries.push_back(static_cast<EdgeId>(rng.below(g.num_edges())));
  }
  ThreadPool pool(4);
  lca::BatchEngine parallel_engine(factory, &pool);
  lca::BatchEngine sequential_engine(factory, nullptr);
  EXPECT_EQ(parallel_engine.num_oracles(), 4u);
  EXPECT_EQ(sequential_engine.num_oracles(), 1u);
  const auto par = parallel_engine.query_edges(queries);
  const auto seq = sequential_engine.query_edges(queries);
  EXPECT_EQ(par.in_matching, seq.in_matching);
  EXPECT_EQ(par.stats.oracle.queries, queries.size());
  EXPECT_EQ(seq.stats.oracle.queries, queries.size());
  EXPECT_GT(par.stats.oracle.probes, 0u);

  // Node batches too, against the global execution.
  const Matching global = lca::rank_greedy_matching(g, 5);
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes[v] = v;
  const auto node_batch = parallel_engine.query_nodes(nodes);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId expected =
        global.is_free(v) ? kInvalidNode : global.mate(g, v);
    EXPECT_EQ(node_batch.matched_to[v], expected) << v;
  }
}

TEST(BatchEngine, StatsAccumulateAcrossBatches) {
  const Instance inst = api::make_instance("er:n=60,deg=4", 2);
  const Graph& g = inst.graph();
  lca::BatchEngine engine(
      [&] {
        lca::OracleOptions opts;
        opts.seed = 1;
        return lca::make_oracle("israeli_itai", g, opts);
      },
      nullptr);
  std::vector<EdgeId> queries = {0, 1, 2};
  const auto first = engine.query_edges(queries);
  const auto second = engine.query_edges(queries);
  EXPECT_EQ(first.stats.oracle.queries, 3u);
  EXPECT_EQ(second.stats.oracle.queries, 3u);
  // The second pass answers from the node memo; the only probes left
  // are the per-query edge-endpoint lookups.
  EXPECT_LE(second.stats.oracle.probes, queries.size());
  EXPECT_LT(second.stats.oracle.probes, first.stats.oracle.probes);
  EXPECT_EQ(engine.total_stats().queries, 6u);
}

// ----------------------------------------------------------- runner --

TEST(RunnerLca, AutoPairedOracleAgreesAndFillsJsonFields) {
  for (const char* solver : {"israeli_itai", "rank_greedy_mcm"}) {
    api::RunSpec spec;
    spec.generator = "er:n=100,deg=4";
    spec.solver = solver;
    spec.instance_seed = 3;
    spec.solver_seed = 9;
    spec.lca = "auto";
    const api::RunResult res = api::run_one(spec);
    EXPECT_EQ(res.lca_oracle, solver);
    EXPECT_EQ(res.lca_agree, 1) << solver;
    EXPECT_EQ(res.lca_queries, static_cast<std::uint64_t>(res.m));
    EXPECT_GT(res.lca_probes_per_query, 0.0);
    EXPECT_GE(res.lca_cache_hit_rate, 0.0);
    const std::string json = res.to_json();
    EXPECT_NE(json.find("\"lca_oracle\": \"" + std::string(solver) + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"lca_probes_per_query\": "), std::string::npos);
    EXPECT_NE(json.find("\"lca_queries_per_sec\": "), std::string::npos);
    EXPECT_NE(json.find("\"lca_cache_hit_rate\": "), std::string::npos);
    EXPECT_NE(json.find("\"lca_agree\": 1"), std::string::npos);
  }
}

TEST(RunnerLca, SampledQueriesAndThreadsStayConsistent) {
  api::RunSpec spec;
  spec.generator = "er:n=300,deg=5";
  spec.solver = "rank_greedy_mcm";
  spec.instance_seed = 5;
  spec.solver_seed = 2;
  spec.threads = 4;
  spec.lca = "auto";
  spec.lca_queries = 500;  // sampled with replacement
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.lca_queries, 500u);
  EXPECT_EQ(res.lca_agree, 1);
}

TEST(RunnerLca, UnpairedOracleMeasuresWithoutAudit) {
  api::RunSpec spec;
  spec.generator = "er:n=40,deg=4";
  spec.solver = "greedy_mcm";       // no LCA oracle of its own
  spec.lca = "rank_greedy_mcm";     // explicit, different execution
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.lca_oracle, "rank_greedy_mcm");
  EXPECT_EQ(res.lca_agree, -1);  // not audited
  EXPECT_GT(res.lca_probes_per_query, 0.0);
}

TEST(RunnerLca, AutoWithoutAnOracleThrows) {
  api::RunSpec spec;
  spec.generator = "er:n=20,deg=3";
  spec.solver = "greedy_mcm";
  spec.lca = "auto";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
  spec.lca = "no_such_oracle";
  EXPECT_THROW(api::run_one(spec), std::invalid_argument);
}

TEST(RunnerLca, SkippedByDefaultAndOnZeroEdgeInstances) {
  api::RunSpec spec;
  spec.generator = "er:n=20,deg=3";
  spec.solver = "israeli_itai";
  const api::RunResult res = api::run_one(spec);
  EXPECT_EQ(res.lca_oracle, "");
  EXPECT_EQ(res.lca_agree, -1);

  spec.generator = "bipartite:nx=4,ny=4,p=0";
  spec.lca = "auto";
  const api::RunResult empty = api::run_one(spec);
  EXPECT_EQ(empty.lca_oracle, "israeli_itai");
  EXPECT_EQ(empty.lca_queries, 0u);
  EXPECT_EQ(empty.lca_agree, -1);
}

}  // namespace
}  // namespace lps
