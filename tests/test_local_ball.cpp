// Dedicated coverage for Algorithm 2's neighborhood exchange
// (core/local_ball): radius-0/1/k view contents against a BFS
// reference, matched-edge labeling, and pool-vs-sequential
// bit-identical views and stats. Previously only covered indirectly
// through the solvers that consume it.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "core/local_ball.hpp"
#include "graph/generators.hpp"
#include "seq/greedy.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<NodeId> queue;
  dist[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      if (dist[inc.to] == -1) {
        dist[inc.to] = dist[v] + 1;
        queue.push(inc.to);
      }
    }
  }
  return dist;
}

using LabeledSet = std::set<std::tuple<NodeId, NodeId, bool>>;

LabeledSet as_set(const std::vector<LabeledEdge>& view) {
  LabeledSet out;
  for (const LabeledEdge& le : view) out.insert({le.u, le.v, le.matched});
  return out;
}

/// The contract from local_ball.hpp: after `radius` rounds, v's view is
/// every edge with an endpoint within distance `radius` of v, labeled
/// with its matched status.
LabeledSet expected_view(const Graph& g, const Matching& m, NodeId v,
                         int radius) {
  const std::vector<int> dist = bfs_distances(g, v);
  LabeledSet out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const int du = dist[ed.u];
    const int dv = dist[ed.v];
    if ((du != -1 && du <= radius) || (dv != -1 && dv <= radius)) {
      out.insert({ed.u, ed.v, m.contains(g, e)});
    }
  }
  return out;
}

void expect_views_match_reference(const Graph& g, const Matching& m,
                                  int radius) {
  const BallViews views = collect_balls(g, m, radius);
  ASSERT_EQ(views.view.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // No duplicates in a view: the delta gossip dedups on arrival.
    EXPECT_EQ(as_set(views.view[v]).size(), views.view[v].size())
        << "radius " << radius << " node " << v;
    EXPECT_EQ(as_set(views.view[v]), expected_view(g, m, v, radius))
        << "radius " << radius << " node " << v;
  }
}

TEST(CollectBalls, RadiusZeroIsTheIncidentEdgeSetWithNoRounds) {
  Rng rng(5);
  const Graph g = erdos_renyi(30, 0.12, rng);
  const Matching m = greedy_mcm(g);
  const BallViews views = collect_balls(g, m, 0);
  EXPECT_EQ(views.stats.rounds, 0u);
  EXPECT_EQ(views.stats.messages, 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    LabeledSet incident;
    for (const Graph::Incidence& inc : g.neighbors(v)) {
      const Edge& ed = g.edge(inc.edge);
      incident.insert({ed.u, ed.v, m.contains(g, inc.edge)});
    }
    EXPECT_EQ(as_set(views.view[v]), incident) << v;
  }
}

TEST(CollectBalls, RadiusOneAndKMatchTheBfsReference) {
  Rng rng(7);
  const Graph g = erdos_renyi(40, 0.08, rng);
  const Matching m = greedy_mcm(g);
  for (const int radius : {1, 2, 3}) {
    expect_views_match_reference(g, m, radius);
  }
}

TEST(CollectBalls, PathEndpointSeesExactlyItsPrefix) {
  // On a path the ball content is easy to state exactly: the endpoint's
  // radius-r view is the first r+1 edges.
  const Graph g = path_graph(12);
  const Matching empty(12);
  for (const int radius : {0, 1, 4}) {
    const BallViews views = collect_balls(g, empty, radius);
    EXPECT_EQ(views.view[0].size(),
              std::min<std::size_t>(radius + 1, g.num_edges()))
        << radius;
  }
}

TEST(CollectBalls, DiameterRadiusCoversTheWholeComponent) {
  const Graph g = cycle_graph(12);  // diameter 6
  const Matching m = greedy_mcm(g);
  const BallViews views = collect_balls(g, m, 6);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(views.view[v].size(), g.num_edges()) << v;
  }
}

TEST(CollectBalls, MatchedLabelsReflectTheCollectionTimeMatching) {
  Rng rng(11);
  const Graph g = erdos_renyi(24, 0.2, rng);
  const Matching m = greedy_mcm(g);
  const BallViews views = collect_balls(g, m, 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const LabeledEdge& le : views.view[v]) {
      const EdgeId e = g.find_edge(le.u, le.v);
      ASSERT_NE(e, kInvalidEdge);
      EXPECT_EQ(le.matched, m.contains(g, e));
    }
  }
}

TEST(CollectBalls, PoolAndSequentialAreBitIdentical) {
  Rng rng(13);
  const Graph g = erdos_renyi(60, 0.07, rng);
  const Matching m = greedy_mcm(g);
  ThreadPool pool(4);
  for (const int radius : {1, 3}) {
    const BallViews seq = collect_balls(g, m, radius, nullptr);
    const BallViews par = collect_balls(g, m, radius, &pool);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(seq.view[v].size(), par.view[v].size()) << v;
      for (std::size_t i = 0; i < seq.view[v].size(); ++i) {
        EXPECT_EQ(seq.view[v][i].u, par.view[v][i].u);
        EXPECT_EQ(seq.view[v][i].v, par.view[v][i].v);
        EXPECT_EQ(seq.view[v][i].matched, par.view[v][i].matched);
      }
    }
    EXPECT_EQ(seq.stats.rounds, par.stats.rounds) << radius;
    EXPECT_EQ(seq.stats.messages, par.stats.messages) << radius;
    EXPECT_EQ(seq.stats.total_bits, par.stats.total_bits) << radius;
    EXPECT_EQ(seq.stats.max_message_bits, par.stats.max_message_bits)
        << radius;
  }
}

}  // namespace
}  // namespace lps
