// Tests for the Section 4 Remark machinery: beta-augmentation
// enumeration and the local_mwm fixed-point algorithm, whose convergence
// certificate w(M) >= beta/(beta+1) w(M*) follows from the paper's own
// Lemma 4.2.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/beta_augment.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/exact_small.hpp"
#include "seq/greedy.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

TEST(BetaAugment, FindsTheTrapGadgetFix) {
  // Gadget a-b-c-d with weights 1, 1+eps, 1 and M = {bc}: the improving
  // 2-augmentation is {+ab, -bc, +cd} with gain 1 - eps.
  const WeightedGraph wg = greedy_trap_path(1, 0.25);
  Matching m(4);
  m.add(wg.graph, 1);  // the middle edge
  const auto augs1 = enumerate_beta_augmentations(wg, m, 1, 1000);
  EXPECT_TRUE(augs1.empty());  // wraps alone cannot improve
  const auto augs2 = enumerate_beta_augmentations(wg, m, 2, 1000);
  ASSERT_EQ(augs2.size(), 1u);
  EXPECT_EQ(augs2[0].edges.size(), 3u);
  EXPECT_FALSE(augs2[0].is_cycle);
  EXPECT_NEAR(augs2[0].gain, 2.0 - 1.25, 1e-12);
}

TEST(BetaAugment, FindsImprovingCycles) {
  // 4-cycle with matched light pair and unmatched heavy pair: swapping
  // needs an alternating cycle with 2 unmatched edges.
  Graph g = cycle_graph(4);  // edges 0:0-1, 1:1-2, 2:2-3, 3:0-3
  const WeightedGraph wg = make_weighted(std::move(g), {1, 10, 1, 10});
  Matching m(4);
  m.add(wg.graph, 0);
  m.add(wg.graph, 2);
  const auto augs1 = enumerate_beta_augmentations(wg, m, 1, 1000);
  for (const auto& a : augs1) EXPECT_FALSE(a.is_cycle);
  const auto augs2 = enumerate_beta_augmentations(wg, m, 2, 1000);
  bool found_cycle = false;
  for (const auto& a : augs2) {
    if (a.is_cycle) {
      found_cycle = true;
      EXPECT_EQ(a.edges.size(), 4u);
      EXPECT_NEAR(a.gain, 18.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_cycle);
}

TEST(BetaAugment, RotationsAreEnumerated) {
  // Path a-b-c with M={ab}, w(ab)=1, w(bc)=5: the improving augmentation
  // removes ab and adds bc (a "rotation": one endpoint just goes free).
  const WeightedGraph wg = make_weighted(path_graph(3), {1, 5});
  Matching m(3);
  m.add(wg.graph, 0);
  const auto augs = enumerate_beta_augmentations(wg, m, 1, 1000);
  ASSERT_FALSE(augs.empty());
  double best = 0;
  for (const auto& a : augs) best = std::max(best, a.gain);
  EXPECT_NEAR(best, 4.0, 1e-12);
}

class BetaEnumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetaEnumSweep, EveryAugmentationIsValidAndGainExact) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    Graph g = erdos_renyi(14, 0.3, rng);
    if (g.num_edges() == 0) continue;
    auto w = uniform_weights(g.num_edges(), 1.0, 20.0, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    Matching m = greedy_mwm(wg);
    auto ids = m.edge_ids(wg.graph);
    for (std::size_t i = 0; i < ids.size(); i += 2) m.remove(wg.graph, ids[i]);
    for (const int beta : {1, 2, 3}) {
      const auto augs =
          enumerate_beta_augmentations(wg, m, beta, 1u << 18);
      std::set<std::vector<EdgeId>> seen;
      for (const auto& a : augs) {
        EXPECT_GT(a.gain, 0.0);
        // Unmatched-edge budget.
        int unmatched = 0;
        for (EdgeId e : a.edges) unmatched += !m.contains(wg.graph, e);
        EXPECT_LE(unmatched, beta);
        // Dedup by edge set.
        auto key = a.edges;
        std::sort(key.begin(), key.end());
        EXPECT_TRUE(seen.insert(key).second);
        // Flip validity + exact gain.
        Matching flipped = m;
        const double before = flipped.weight(wg);
        ASSERT_NO_THROW(flipped.symmetric_difference(wg.graph, a.edges));
        EXPECT_NEAR(flipped.weight(wg) - before, a.gain, 1e-9);
      }
      // Monotonicity in beta: a larger budget can only add augmentations.
      if (beta > 1) {
        const auto smaller =
            enumerate_beta_augmentations(wg, m, beta - 1, 1u << 18);
        EXPECT_GE(augs.size(), smaller.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetaEnumSweep,
                         ::testing::Values(41u, 43u, 47u, 53u));

class LocalMwmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalMwmSweep, FixedPointCertifiesBetaOverBetaPlusOne) {
  Rng rng(GetParam());
  for (int t = 0; t < 5; ++t) {
    Graph g = erdos_renyi(13, 0.3, rng);
    if (g.num_edges() == 0) continue;
    auto w = integer_weights(g.num_edges(), 25, rng);
    const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
    const double opt = exact_mwm_small(wg).weight(wg);
    for (const int beta : {1, 2, 3}) {
      LocalMwmOptions opts;
      opts.beta = beta;
      const LocalMwmResult res = local_mwm(wg, opts);
      EXPECT_TRUE(res.converged);
      EXPECT_GE(res.matching.weight(wg) + 1e-9,
                static_cast<double>(beta) / (beta + 1) * opt)
          << "beta=" << beta;
      // Monotone trajectory.
      for (std::size_t i = 1; i < res.weight_trajectory.size(); ++i) {
        EXPECT_GE(res.weight_trajectory[i] + 1e-9,
                  res.weight_trajectory[i - 1]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalMwmSweep,
                         ::testing::Values(61u, 67u, 71u));

TEST(LocalMwm, SolvesTheTrapExactly) {
  const WeightedGraph wg = greedy_trap_path(6, 0.2);
  LocalMwmOptions opts;
  opts.beta = 2;
  const LocalMwmResult res = local_mwm(wg, opts);
  EXPECT_TRUE(res.converged);
  // beta = 2 fixes every gadget: optimum 2 per gadget.
  EXPECT_NEAR(res.matching.weight(wg), 12.0, 1e-9);
}

TEST(LocalMwm, DeterministicAndAccountsRounds) {
  Rng rng(9);
  Graph g = erdos_renyi(24, 0.2, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 9.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  LocalMwmOptions opts;
  opts.beta = 2;
  const LocalMwmResult a = local_mwm(wg, opts);
  const LocalMwmResult b = local_mwm(wg, opts);
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_GT(a.stats.rounds, 0u);
  EXPECT_GT(a.stats.max_message_bits, 0u);
}

TEST(LocalMwm, RejectsBadBeta) {
  const WeightedGraph wg = make_weighted(path_graph(2), {1.0});
  LocalMwmOptions opts;
  opts.beta = 0;
  EXPECT_THROW(local_mwm(wg, opts), std::invalid_argument);
}

}  // namespace
}  // namespace lps
