// Unit and property tests for src/util: RNG, BigCounter, statistics,
// tables, CLI options.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "util/bigint.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lps {
namespace {

// ---------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.below(10);
    ASSERT_LT(x, 10u);
    ++buckets[x];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(Rng, BelowPowerOfTwo) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(64), 64u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.uniform01_open();
    EXPECT_GT(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SubstreamIndependentOfCallOrder) {
  const Rng a = Rng::substream(9, 4u, 7u);
  const Rng b = Rng::substream(9, 4u, 7u);
  Rng c = a, d = b;
  EXPECT_EQ(c(), d());
  // Different salts give different streams.
  Rng e = Rng::substream(9, 4u, 8u);
  Rng f = a;
  EXPECT_NE(e(), f());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// --------------------------------------------------------- BigCounter --

TEST(BigCounter, ZeroProperties) {
  BigCounter z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_size(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.to_u64(), 0u);
  EXPECT_EQ(z.to_double(), 0.0);
  EXPECT_TRUE(std::isinf(z.log2()));
}

TEST(BigCounter, SmallArithmeticMatchesU64) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() >> 2, b = rng() >> 2;
    BigCounter x(a), y(b);
    EXPECT_EQ((x + y).to_string(), std::to_string(a + b));
    if (a >= b) {
      EXPECT_EQ((x - y).to_u64(), a - b);
    } else {
      EXPECT_THROW(x - y, std::invalid_argument);
    }
    EXPECT_EQ(x < y, a < b);
    EXPECT_EQ(x == y, a == b);
  }
}

TEST(BigCounter, CarryChains) {
  BigCounter x(~0ULL);
  BigCounter one(1);
  BigCounter sum = x + one;  // 2^64
  EXPECT_EQ(sum.bit_size(), 65u);
  EXPECT_EQ(sum.to_string(), "18446744073709551616");
  EXPECT_EQ((sum - one).to_u64(), ~0ULL);
}

TEST(BigCounter, LargeAdditionAgainstInt128) {
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a_lo = rng(), b_lo = rng();
    const std::uint64_t a_hi = rng() >> 33, b_hi = rng() >> 33;
    unsigned __int128 a = (static_cast<unsigned __int128>(a_hi) << 64) | a_lo;
    unsigned __int128 b = (static_cast<unsigned __int128>(b_hi) << 64) | b_lo;
    BigCounter x(a_lo);
    BigCounter hi_part(a_hi);
    for (int s = 0; s < 64; s += 32) hi_part.shift_left(32);
    x += hi_part;
    BigCounter y(b_lo);
    BigCounter hi_b(b_hi);
    for (int s = 0; s < 64; s += 32) hi_b.shift_left(32);
    y += hi_b;
    const unsigned __int128 sum = a + b;
    BigCounter z = x + y;
    // Compare via chunked decomposition.
    const auto chunks = z.to_chunks(32, 5);
    unsigned __int128 recon = 0;
    bool overflow_past_128 = false;
    for (std::uint32_t c : chunks) {
      if (recon >> 96 != 0) overflow_past_128 = true;
      recon = (recon << 32) | c;
    }
    ASSERT_FALSE(overflow_past_128);
    EXPECT_TRUE(recon == sum);
  }
}

TEST(BigCounter, ChunksRoundTrip) {
  Rng rng(31);
  for (int bits : {1, 3, 8, 16, 31, 32}) {
    for (int i = 0; i < 200; ++i) {
      BigCounter x(rng());
      x.shift_left(static_cast<int>(rng.below(40)));
      x += BigCounter(rng());
      const std::size_t chunks_needed =
          (x.bit_size() + bits - 1) / static_cast<std::size_t>(bits) + 1;
      const auto chunks = x.to_chunks(bits, chunks_needed);
      EXPECT_EQ(BigCounter::from_chunks(chunks, bits), x)
          << "bits=" << bits;
    }
  }
}

TEST(BigCounter, ChunksTooFewThrows) {
  BigCounter x(255);
  EXPECT_THROW(x.to_chunks(4, 1), std::invalid_argument);
  EXPECT_NO_THROW(x.to_chunks(4, 2));
}

TEST(BigCounter, ChunksMostSignificantFirst) {
  BigCounter x(0xABCD);
  const auto chunks = x.to_chunks(4, 4);
  EXPECT_EQ(chunks, (std::vector<std::uint32_t>{0xA, 0xB, 0xC, 0xD}));
}

TEST(BigCounter, Log2Accuracy) {
  BigCounter x(1);
  EXPECT_DOUBLE_EQ(x.log2(), 0.0);
  BigCounter y(1024);
  EXPECT_DOUBLE_EQ(y.log2(), 10.0);
  // 2^200.
  BigCounter big(1);
  for (int i = 0; i < 200; i += 50) {
    BigCounter tmp = big;
    for (int s = 0; s < 50; s += 25) tmp.shift_left(25);
    big = tmp;
  }
  EXPECT_NEAR(big.log2(), 200.0, 1e-9);
}

TEST(BigCounter, ToDoubleMatchesForExactRange) {
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng() >> 12;  // < 2^52: exactly representable
    EXPECT_EQ(BigCounter(v).to_double(), static_cast<double>(v));
  }
}

TEST(BigCounter, SampleBelowInRangeAndCoversSmallCases) {
  Rng rng(41);
  BigCounter bound(6);
  std::map<std::uint64_t, int> hist;
  for (int i = 0; i < 6000; ++i) {
    BigCounter s = BigCounter::sample_below(bound, rng);
    ASSERT_TRUE(s < bound);
    ++hist[s.to_u64()];
  }
  for (std::uint64_t v = 0; v < 6; ++v) {
    EXPECT_GT(hist[v], 700) << v;  // roughly uniform (expected 1000)
  }
}

TEST(BigCounter, SampleBelowHuge) {
  Rng rng(43);
  BigCounter bound(1);
  for (int s = 0; s < 150; s += 30) bound.shift_left(30);  // 2^150
  for (int i = 0; i < 50; ++i) {
    BigCounter s = BigCounter::sample_below(bound, rng);
    EXPECT_TRUE(s < bound);
  }
  EXPECT_THROW(BigCounter::sample_below(BigCounter{}, rng),
               std::invalid_argument);
}

TEST(BigCounter, DecimalStringKnownValues) {
  EXPECT_EQ(BigCounter(123456789).to_string(), "123456789");
  BigCounter x(10);
  // 10 * 2^64 + 5
  x.shift_left(32);
  x.shift_left(32);
  x += BigCounter(5);
  EXPECT_EQ(x.to_string(), "184467440737095516165");
}

// -------------------------------------------------------------- Stats --

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Rng rng(47);
  StreamingStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Samples, QuantilesAndExtremes) {
  Samples s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_NEAR(s.mean(), 5.5, 1e-12);
  EXPECT_THROW(s.quantile(1.5), std::invalid_argument);
  Samples empty;
  EXPECT_THROW(empty.quantile(0.5), std::logic_error);
}

// -------------------------------------------------------------- Table --

TEST(Table, MarkdownLayout) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("b").cell(std::size_t{42});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string expect =
      "| name  | value |\n"
      "|-------|-------|\n"
      "| alpha | 1.5   |\n"
      "| b     | 42    |\n";
  EXPECT_EQ(os.str(), expect);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("quote\"inside");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"quote\"\"inside\"\n");
}

TEST(Table, IncompleteRowThrows) {
  Table t({"a", "b"});
  t.row().cell("only-one");
  EXPECT_THROW(t.row(), std::logic_error);
  Table t2({"a"});
  EXPECT_THROW(t2.cell("no-row"), std::logic_error);
}

// ------------------------------------------------------------ Options --

TEST(Options, ParsesAllForms) {
  // Note: a bare `--flag` followed by a non-dashed token would consume
  // it as the flag's value, so positionals go before valueless flags.
  const char* argv[] = {"prog", "positional", "--alpha=3", "--beta", "7",
                        "--gamma=x y", "--flag"};
  Options opts(7, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_EQ(opts.get_int("beta", 0), 7);
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_EQ(opts.get("gamma", ""), "x y");
  EXPECT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "positional");
  EXPECT_EQ(opts.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 2.5), 2.5);
}

TEST(Options, BadBoolThrows) {
  const char* argv[] = {"prog", "--flag=maybe"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_THROW(opts.get_bool("flag", false), std::invalid_argument);
}

}  // namespace
}  // namespace lps
