// The PR 9 observability contracts (DESIGN.md §14): the EventLog's
// closed vocabulary and JSONL shape, empty-histogram percentiles,
// per-run JSON omission of unmeasured percentile blocks, write_json
// collision ordinals, run-ledger appends, the stall watchdog's dump +
// distinct exit code, crash/revive pairing in the event log, and — the
// load-bearing one — that recording events + sampling the progress
// board changes nothing about any engine client's execution (same
// identity matrix as test_sharding/test_telemetry).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/ledger.hpp"
#include "api/runner.hpp"
#include "engine_cases.hpp"
#include "graph/generators.hpp"
#include "runtime/engine.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_reader.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

namespace tel = telemetry;

// Runtime probe for the compile-time kill switch: under
// -DLPS_TELEMETRY=0 set_recording is a no-op and recording() is
// constexpr false, so the recording-path tests skip.
bool telemetry_compiled_in() {
  tel::EventLog& e = tel::EventLog::global();
  e.set_recording(true);
  const bool on = e.recording();
  e.set_recording(false);
  return on;
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / ("lps_obs_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(EventVocabulary, NamesAreClosedAndUnique) {
  std::set<std::string> names;
  for (unsigned k = 0; k < tel::kEventKinds; ++k) {
    const auto kind = static_cast<tel::EventKind>(k);
    const char* name = tel::event_kind_name(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << name;
    // Slot names pack to the front: a nullptr slot is never followed by
    // a named one (the JSONL writer stops naming at the first gap).
    const auto args = tel::event_arg_names(kind);
    for (int i = 1; i < 3; ++i) {
      if (args[i] != nullptr) EXPECT_NE(args[i - 1], nullptr) << name;
    }
  }
  EXPECT_EQ(names.size(), tel::kEventKinds);
  EXPECT_EQ(names.count("round"), 1u);
  EXPECT_EQ(names.count("crash"), 1u);
  EXPECT_EQ(names.count("revive"), 1u);
  EXPECT_EQ(names.count("watchdog"), 1u);
}

TEST(Histogram, EmptyPercentilesAreZero) {
  // Satellite (a): percentile on a never-recorded histogram is 0, not
  // garbage from an empty bucket walk.
  tel::Histogram h;
  const tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.percentile(90), 0.0);
  EXPECT_EQ(s.percentile(99), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(EventLog, RecordsMergesAndSerializes) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  tel::EventLog& elog = tel::EventLog::global();
  elog.reset();
  elog.set_recording(true);
  elog.emit(tel::EventKind::kRound, 1, 10, 12, 3);
  elog.emit(tel::EventKind::kCrash, 2, 17, 2);
  // A second thread's events land in its own buffer and still merge
  // into one (ns-sorted) timeline.
  std::thread other([&] { elog.emit(tel::EventKind::kRevive, 3, 17, 3); });
  other.join();
  elog.set_recording(false);
  EXPECT_EQ(elog.events(), 3u);
  EXPECT_EQ(elog.dropped(), 0u);

  const std::vector<tel::Event> merged = elog.snapshot();
  ASSERT_EQ(merged.size(), 3u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].ns, merged[i].ns);
  }
  const std::vector<tel::Event> last2 = elog.tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].ns, merged[1].ns);

  // JSONL: every line parses, carries ev/round/ns, and names the
  // per-kind payload slots.
  std::ostringstream os;
  elog.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    tel::JsonValue v;
    std::string error;
    ASSERT_TRUE(tel::parse_json(line, v, &error)) << line << ": " << error;
    ASSERT_TRUE(v.is_object());
    ASSERT_NE(v.find("ev"), nullptr);
    ASSERT_NE(v.find("round"), nullptr);
    ASSERT_NE(v.find("ns"), nullptr);
  }
  EXPECT_EQ(lines, 3u);

  const tel::Event crash{tel::EventKind::kCrash, 4, 99, 17, 4, 0};
  const std::string j = tel::EventLog::to_json_line(crash);
  EXPECT_NE(j.find("\"ev\":\"crash\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"vertex\":17"), std::string::npos) << j;
  EXPECT_NE(j.find("\"epoch\":4"), std::string::npos) << j;
  elog.reset();
}

TEST(EventLog, CapacityCapCountsDrops) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  tel::EventLog& elog = tel::EventLog::global();
  elog.reset();
  elog.set_capacity(4);
  elog.set_recording(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    elog.emit(tel::EventKind::kRound, i, i);
  }
  elog.set_recording(false);
  EXPECT_EQ(elog.events(), 4u);
  EXPECT_EQ(elog.dropped(), 6u);
  EXPECT_EQ(elog.snapshot().size(), 4u);
  elog.set_capacity(std::size_t{1} << 20);
  elog.reset();
}

TEST(RunJson, OmitsPercentileBlocksWithoutRounds) {
  // Satellite (a), JSON half: a run with zero engine rounds (sequential
  // solver) reports no round/phase blocks — absent beats zeros that
  // read as measurements.
  api::RunSpec spec;
  spec.generator = "path:n=8";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.ledger = "off";
  const api::RunResult r = api::run_one(spec);
  if (!r.telemetry.enabled) GTEST_SKIP() << "telemetry compiled out";
  EXPECT_EQ(r.telemetry.rounds, 0u);
  const std::string json = r.to_json();
  EXPECT_EQ(json.find("\"p99_ns\""), std::string::npos) << json;
  EXPECT_EQ(json.find("phase_mean_per_round"), std::string::npos);

  // And the blocks appear as soon as rounds were measured.
  api::RunResult synthetic = r;
  synthetic.telemetry.rounds = 3;
  synthetic.telemetry.round_ns_p99 = 5.0;
  const std::string with = synthetic.to_json();
  EXPECT_NE(with.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(with.find("phase_mean_per_round"), std::string::npos);
}

TEST(WriteJson, CollidingSpecsGetOrdinalSuffixes) {
  // Satellite (f): identical specs never overwrite each other's record.
  api::RunSpec spec;
  spec.generator = "path:n=8";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.ledger = "off";
  const api::RunResult r = api::run_one(spec);
  const std::filesystem::path dir = fresh_dir("write_json");
  const std::string p1 = api::write_json(r, dir.string());
  const std::string p2 = api::write_json(r, dir.string());
  const std::string p3 = api::write_json(r, dir.string());
  EXPECT_NE(p1, p2);
  EXPECT_NE(p2, p3);
  EXPECT_TRUE(std::filesystem::exists(p1));
  EXPECT_TRUE(std::filesystem::exists(p2));
  EXPECT_TRUE(std::filesystem::exists(p3));
  EXPECT_NE(p2.find("__r2.json"), std::string::npos) << p2;
  EXPECT_NE(p3.find("__r3.json"), std::string::npos) << p3;
}

TEST(Ledger, RunOneAppendsOneRecordPerRun) {
  const std::filesystem::path dir = fresh_dir("ledger");
  const std::filesystem::path ledger = dir / "ledger.jsonl";
  api::RunSpec spec;
  spec.generator = "path:n=8";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.ledger = ledger.string();
  api::run_one(spec);
  api::run_one(spec);
  const std::vector<std::string> lines = read_lines(ledger);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    tel::JsonValue v;
    std::string error;
    ASSERT_TRUE(tel::parse_json(line, v, &error)) << error;
    const tel::JsonValue* kind = v.find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->string, "run");
    const tel::JsonValue* config = v.find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_NE(config->string.find("greedy_mcm"), std::string::npos);
    EXPECT_NE(v.find("metric"), nullptr);
    EXPECT_NE(v.find("value"), nullptr);
    EXPECT_NE(v.find("higher_is_better"), nullptr);
    EXPECT_NE(v.find("git_sha"), nullptr);
  }
}

TEST(Ledger, PathResolutionHonorsDisableTokens) {
  EXPECT_EQ(api::resolve_ledger_path("off"), "");
  EXPECT_EQ(api::resolve_ledger_path("0"), "");
  EXPECT_EQ(api::resolve_ledger_path("x/y.jsonl"), "x/y.jsonl");
  EXPECT_FALSE(api::append_ledger_line("", "{}"));  // disabled = no-op
}

TEST(Monitor, WatchdogDumpsTailAndCountersThenLatches) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  tel::EventLog& elog = tel::EventLog::global();
  elog.reset();
  elog.set_recording(true);
  elog.emit(tel::EventKind::kRound, 7, 1, 1, 1);

  std::ostringstream sink;
  tel::MonitorOptions mo;
  mo.interval_ms = 10;
  mo.stall_timeout_ms = 60;
  mo.abort_on_stall = false;
  mo.out = &sink;
  tel::ProgressBoard::global().publish(7, 100, 5, tel::now_ns());
  tel::Monitor monitor(mo);
  // Nothing publishes after construction -> the deadline passes.
  for (int i = 0; i < 200 && !monitor.stalled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.stop();
  elog.set_recording(false);
  EXPECT_TRUE(monitor.stalled());
  const std::string dump = sink.str();
  EXPECT_NE(dump.find("watchdog: stall detected"), std::string::npos) << dump;
  EXPECT_NE(dump.find("watchdog: event-log tail"), std::string::npos);
  EXPECT_NE(dump.find("\"ev\":\"round\""), std::string::npos);
  EXPECT_NE(dump.find("watchdog: shard_exchange_ns"), std::string::npos);
  EXPECT_NE(dump.find("watchdog: worker_busy_ns"), std::string::npos);
  EXPECT_NE(dump.find("watchdog: engine totals"), std::string::npos);
  // The dump itself lands in the event log (kWatchdog).
  bool saw_watchdog = false;
  for (const tel::Event& e : elog.snapshot()) {
    if (e.kind == tel::EventKind::kWatchdog) saw_watchdog = true;
  }
  EXPECT_TRUE(saw_watchdog);
  elog.reset();
}

// A genuinely stalled *engine*: rounds advance (the board heartbeats),
// then the step function wedges mid-run. The watchdog must dump and
// abort the process with its distinct exit code.
struct StallMsg {
  std::uint32_t x;
};
using StallNet = SyncNetwork<StallMsg, DefaultBitMeter<StallMsg>>;

TEST(MonitorDeathTest, StalledEngineAbortsWithDistinctExitCode) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        Rng rng(3);
        const Graph g = erdos_renyi(256, 4.0 / 256, rng);
        StallNet net(g, 1, {});
        tel::EventLog::global().reset();
        tel::EventLog::global().set_recording(true);
        tel::MonitorOptions mo;
        mo.interval_ms = 10;
        mo.stall_timeout_ms = 80;
        mo.abort_on_stall = true;
        mo.out = nullptr;  // dump goes to stderr for the EXPECT_EXIT regex
        tel::Monitor monitor(mo);
        for (int r = 0;; ++r) {
          net.run_round([](StallNet::Ctx& ctx) {
            if ((ctx.id() & 7u) == 0) {
              ctx.keep_active();
              for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
                ctx.send(inc.edge, StallMsg{ctx.id()});
                break;
              }
            }
          });
          if (r == 3) {  // wedge: no further rounds complete
            std::this_thread::sleep_for(std::chrono::seconds(30));
          }
        }
      },
      testing::ExitedWithCode(tel::kWatchdogExitCode),
      "watchdog: stall detected");
}

TEST(FaultEvents, EveryCrashHasAMatchingRevive) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const std::filesystem::path dir = fresh_dir("fault_events");
  api::RunSpec spec;
  spec.generator = "er:n=256,deg=4";
  spec.solver = "greedy_mcm";
  spec.oracle = "none";
  spec.dynamic = "greedy";
  spec.dynamic_stream = "churn:n=256,m0=512,updates=256";
  spec.dynamic_checkpoints = 0;
  spec.faults = "flap1";
  spec.events = (dir / "events.jsonl").string();
  spec.ledger = "off";
  api::RunResult r;
  try {
    r = api::run_one(spec);
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "faults compiled out (LPS_FAULTS=0)";
  }
  ASSERT_EQ(r.events_path, spec.events);
  ASSERT_GT(r.fault_crashed, 0u);
  EXPECT_EQ(r.fault_crashed, r.fault_revived);

  std::map<std::uint64_t, std::int64_t> down;
  std::uint64_t crashes = 0;
  for (const std::string& line : read_lines(spec.events)) {
    tel::JsonValue v;
    std::string error;
    ASSERT_TRUE(tel::parse_json(line, v, &error)) << error;
    const tel::JsonValue* ev = v.find("ev");
    ASSERT_NE(ev, nullptr);
    if (ev->string != "crash" && ev->string != "revive") continue;
    const tel::JsonValue* vert = v.find("vertex");
    ASSERT_NE(vert, nullptr) << line;
    const auto vid = static_cast<std::uint64_t>(vert->number);
    down[vid] += ev->string == "crash" ? 1 : -1;
    EXPECT_GE(down[vid], 0) << "revive before crash for vertex " << vid;
    if (ev->string == "crash") ++crashes;
  }
  EXPECT_EQ(crashes, r.fault_crashed);
  for (const auto& [vid, outstanding] : down) {
    EXPECT_EQ(outstanding, 0) << "vertex " << vid << " still down";
  }
}

TEST(ObservabilityIdentity, EventLogAndMonitorChangeNoExecution) {
  if (!telemetry_compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  tel::EventLog& elog = tel::EventLog::global();
  for (const auto& c : test_support::kEngineCases) {
    const api::SolveResult base = test_support::solve_with(c, 0, nullptr);

    elog.reset();
    elog.set_recording(true);
    std::size_t events = 0;
    {
      tel::MonitorOptions mo;
      mo.interval_ms = 20;
      mo.out = nullptr;  // silent sampling; no watchdog
      tel::Monitor monitor(mo);
      const api::SolveResult observed = test_support::solve_with(c, 0, nullptr);
      monitor.stop();
      test_support::expect_identical(base, observed,
                                     std::string("observed ") + c.solver);
    }
    elog.set_recording(false);
    events = elog.events();
    EXPECT_GT(events, 0u) << c.solver;
    elog.reset();
  }
}

}  // namespace
}  // namespace lps
