// Satellite coverage for graph::generators through the runner's
// generator-spec front door: fixed-seed determinism (including across
// runner thread counts — instance construction must never depend on
// the pool), and per-family shape sanity (edge counts, degrees, sides).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/runner.hpp"

namespace lps {
namespace {

const std::vector<std::string>& all_specs() {
  static const std::vector<std::string> specs = {
      "path:n=17",
      "cycle:n=12",
      "complete:n=9",
      "star:n=10",
      "binary_tree:n=15",
      "tree:n=40",
      "grid:rows=5,cols=7",
      "complete_bipartite:a=4,b=6",
      "er:n=100,p=0.1",
      "er:n=100,deg=4",
      "bipartite:nx=30,ny=40,deg=3",
      "bipartite_regular:nx=20,ny=30,d=4",
      "regular:n=24,d=4",
      "tight_chain:k=2,copies=3",
      "greedy_trap:gadgets=4",
      "increasing_path:n=9",
      "er:n=64,deg=4,w=uniform,wlo=1,whi=9",
      "regular:n=16,d=3,w=pow2,wlevels=5",
  };
  return specs;
}

void expect_same_instance(const api::Instance& a, const api::Instance& b,
                          const std::string& spec) {
  ASSERT_EQ(a.graph().num_nodes(), b.graph().num_nodes()) << spec;
  ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges()) << spec;
  for (EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    ASSERT_EQ(a.graph().edge(e), b.graph().edge(e)) << spec << " edge " << e;
  }
  ASSERT_EQ(a.has_weights(), b.has_weights()) << spec;
  if (a.has_weights()) {
    ASSERT_EQ(a.weighted_graph().weights, b.weighted_graph().weights) << spec;
  }
  ASSERT_EQ(a.side().has_value(), b.side().has_value()) << spec;
  if (a.side().has_value()) ASSERT_EQ(*a.side(), *b.side()) << spec;
}

TEST(Generators, DeterministicForFixedSeed) {
  for (const std::string& spec : all_specs()) {
    for (const std::uint64_t seed : {1ull, 42ull, 977ull}) {
      expect_same_instance(api::make_instance(spec, seed),
                           api::make_instance(spec, seed), spec);
    }
  }
}

TEST(Generators, SeedActuallyMatters) {
  // Randomized families must differ across seeds (deterministic
  // families like path/grid legitimately do not).
  for (const std::string& spec :
       {std::string("er:n=100,p=0.1"), std::string("tree:n=40"),
        std::string("bipartite:nx=30,ny=40,deg=3"),
        std::string("regular:n=24,d=4")}) {
    const api::Instance a = api::make_instance(spec, 1);
    const api::Instance b = api::make_instance(spec, 2);
    bool differs = a.graph().num_edges() != b.graph().num_edges();
    for (EdgeId e = 0; !differs && e < a.graph().num_edges(); ++e) {
      differs = !(a.graph().edge(e) == b.graph().edge(e));
    }
    EXPECT_TRUE(differs) << spec;
  }
}

/// The runner's thread knob parallelizes the solve, never the instance:
/// the same spec+seed must produce identical instances and identical
/// deterministic-solver results at any thread count.
TEST(Generators, InstanceIndependentOfThreadCount) {
  for (const std::string& spec :
       {std::string("er:n=128,deg=4"), std::string("regular:n=64,d=4")}) {
    api::RunSpec one;
    one.generator = spec;
    one.solver = "greedy_mcm";
    one.oracle = "none";
    one.instance_seed = 31;
    one.threads = 1;
    api::RunSpec four = one;
    four.threads = 4;
    const api::RunResult r1 = api::run_one(one);
    const api::RunResult r4 = api::run_one(four);
    EXPECT_EQ(r1.n, r4.n) << spec;
    EXPECT_EQ(r1.m, r4.m) << spec;
    EXPECT_EQ(r1.max_degree, r4.max_degree) << spec;
    EXPECT_EQ(r1.matching_size, r4.matching_size) << spec;
  }
}

TEST(Generators, ShapeSanityPerFamily) {
  const auto inst = [](const std::string& spec) {
    return api::make_instance(spec, 7);
  };
  // Closed-form families.
  EXPECT_EQ(inst("path:n=17").graph().num_edges(), 16u);
  EXPECT_EQ(inst("cycle:n=12").graph().num_edges(), 12u);
  EXPECT_EQ(inst("complete:n=9").graph().num_edges(), 36u);
  EXPECT_EQ(inst("star:n=10").graph().num_edges(), 9u);
  EXPECT_EQ(inst("star:n=10").graph().max_degree(), 9u);
  EXPECT_EQ(inst("binary_tree:n=15").graph().num_edges(), 14u);
  // grid rows=5, cols=7: 5*6 horizontal + 4*7 vertical.
  EXPECT_EQ(inst("grid:rows=5,cols=7").graph().num_edges(), 58u);
  EXPECT_EQ(inst("complete_bipartite:a=4,b=6").graph().num_edges(), 24u);
  EXPECT_EQ(inst("increasing_path:n=9").graph().num_edges(), 8u);

  // Random tree: n-1 edges, single component.
  {
    const api::Instance t = inst("tree:n=40");
    EXPECT_EQ(t.graph().num_edges(), 39u);
    const auto comp = t.graph().components();
    for (const NodeId c : comp) EXPECT_EQ(c, 0u);
  }
  // Exact regularity.
  {
    const api::Instance r = inst("regular:n=24,d=4");
    for (NodeId v = 0; v < r.graph().num_nodes(); ++v) {
      EXPECT_EQ(r.graph().degree(v), 4u) << "vertex " << v;
    }
  }
  // Left-regular bipartite: left degree exactly d, side attached.
  {
    const api::Instance b = inst("bipartite_regular:nx=20,ny=30,d=4");
    ASSERT_TRUE(b.side().has_value());
    EXPECT_EQ(b.graph().num_edges(), 80u);
    for (NodeId v = 0; v < 20; ++v) {
      EXPECT_EQ((*b.side())[v], 0u);
      EXPECT_EQ(b.graph().degree(v), 4u);
    }
  }
  // er edge-count concentration: E[m] = deg * n / 2 = 200 for n=100,
  // deg=4; a 3-sigma-ish band is [120, 280].
  {
    const api::Instance e = inst("er:n=100,deg=4");
    EXPECT_GE(e.graph().num_edges(), 120u);
    EXPECT_LE(e.graph().num_edges(), 280u);
  }
  // Bipartite er: every edge crosses the side.
  {
    const api::Instance b = inst("bipartite:nx=30,ny=40,deg=3");
    ASSERT_TRUE(b.side().has_value());
    for (const Edge& e : b.graph().edges()) {
      EXPECT_NE((*b.side())[e.u], (*b.side())[e.v]);
    }
  }
  // Weight models: in-range, positive.
  {
    const api::Instance w = inst("er:n=64,deg=4,w=uniform,wlo=1,whi=9");
    ASSERT_TRUE(w.has_weights());
    for (const double x : w.weighted_graph().weights) {
      EXPECT_GE(x, 1.0);
      EXPECT_LE(x, 9.0);
    }
  }
}

}  // namespace
}  // namespace lps
