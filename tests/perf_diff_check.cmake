# CLI contract test for tools/perf_diff (PR 9 tentpole): a synthetic
# 25% throughput regression in a fixture ledger must exit 1 and name
# the offending config; a steady ledger passes; a baseline pin catches
# a drift the history window misses; parse/IO/usage errors exit 2.
#
#   cmake -DPERF_DIFF=<path-to-perf_diff-binary> -P perf_diff_check.cmake
#
# Registered by the top-level CMakeLists as test `perf_diff_check`.
if(NOT PERF_DIFF)
  message(FATAL_ERROR "pass -DPERF_DIFF=<path to the perf_diff binary>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/perf_diff_check_out")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

function(expect_code expected)
  execute_process(
    COMMAND "${PERF_DIFF}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL ${expected})
    message(SEND_ERROR
        "expected exit ${expected}, got '${code}' for: ${ARGN}\n"
        "stdout: ${out}\nstderr: ${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
  set(last_err "${err}" PARENT_SCOPE)
endfunction()

macro(ledger_row config value)
  string(APPEND ledger
      "{\"kind\":\"bench\",\"config\":\"${config}\","
      "\"metric\":\"rounds_per_sec\",\"value\":${value},"
      "\"higher_is_better\":true,\"git_sha\":\"test\","
      "\"build_type\":\"Release\",\"threads\":1,"
      "\"timestamp_utc\":\"2026-01-01T00:00:00Z\"}\n")
endmacro()

# Steady history: latest within noise of the prior median -> exit 0.
set(ledger "")
ledger_row("engine:n=1024,deg=4" 100.0)
ledger_row("engine:n=1024,deg=4" 101.0)
ledger_row("engine:n=1024,deg=4" 99.0)
ledger_row("engine:n=1024,deg=4" 98.5)
file(WRITE "${workdir}/steady.jsonl" "${ledger}")
expect_code(0 --check --ledger "${workdir}/steady.jsonl")

# Synthetic 25% regression: 100,101,99 then 75 (median 100 -> 25% worse
# on a higher-is-better metric, over the default 20% threshold).
set(ledger "")
ledger_row("engine:n=1024,deg=4" 100.0)
ledger_row("engine:n=1024,deg=4" 101.0)
ledger_row("engine:n=1024,deg=4" 99.0)
ledger_row("engine:n=1024,deg=4" 75.0)
file(WRITE "${workdir}/regressed.jsonl" "${ledger}")
expect_code(1 --check --ledger "${workdir}/regressed.jsonl")
if(NOT last_err MATCHES "perf_diff: regression: engine:n=1024,deg=4")
  message(SEND_ERROR
      "regression verdict does not name the config:\n${last_err}")
endif()

# The same drop stays under a 30% threshold -> exit 0.
expect_code(0 --check --ledger "${workdir}/regressed.jsonl" --threshold 30)

# Single-record configs have no history and pass.
set(ledger "")
ledger_row("engine:n=4096,deg=16" 50.0)
file(WRITE "${workdir}/single.jsonl" "${ledger}")
expect_code(0 --check --ledger "${workdir}/single.jsonl")

# A lower-is-better metric regresses upward.
file(WRITE "${workdir}/latency.jsonl"
"{\"kind\":\"run\",\"config\":\"israeli_itai|er:n=64,deg=3|t1\",\"metric\":\"wall_ms\",\"value\":10.0,\"higher_is_better\":false}
{\"kind\":\"run\",\"config\":\"israeli_itai|er:n=64,deg=3|t1\",\"metric\":\"wall_ms\",\"value\":10.5,\"higher_is_better\":false}
{\"kind\":\"run\",\"config\":\"israeli_itai|er:n=64,deg=3|t1\",\"metric\":\"wall_ms\",\"value\":9.5,\"higher_is_better\":false}
{\"kind\":\"run\",\"config\":\"israeli_itai|er:n=64,deg=3|t1\",\"metric\":\"wall_ms\",\"value\":14.0,\"higher_is_better\":false}
")
expect_code(1 --check --ledger "${workdir}/latency.jsonl")

# Baseline pin: the steady ledger sits at ~100 but the checked-in
# baseline row says 150 -> >20% below the pin even though the history
# window is flat.
file(WRITE "${workdir}/baseline.json"
"{\"schema\": \"lps-bench-engine-v2\", \"results\": [
  {\"n\": 1024, \"avg_deg\": 4, \"rounds_per_sec\": 150.0}
]}
")
expect_code(1 --check --ledger "${workdir}/steady.jsonl"
            --baseline "${workdir}/baseline.json")
# And a baseline that matches the ledger passes.
file(WRITE "${workdir}/baseline_ok.json"
"{\"schema\": \"lps-bench-engine-v2\", \"results\": [
  {\"n\": 1024, \"avg_deg\": 4, \"rounds_per_sec\": 101.0}
]}
")
expect_code(0 --check --ledger "${workdir}/steady.jsonl"
            --baseline "${workdir}/baseline_ok.json")

# Schema v3 pins are per metric: a ns_per_msg series (lower is better)
# must compare against the baseline's ns_per_delivered_message column,
# not the rounds/sec one — under config-only keying this drift would be
# invisible (51 "ns" looks great next to a 100 rounds/sec pin).
macro(ns_row value)
  string(APPEND ledger
      "{\"kind\":\"bench\",\"config\":\"engine:n=1024,deg=4\","
      "\"metric\":\"ns_per_msg\",\"value\":${value},"
      "\"higher_is_better\":false}\n")
endmacro()
file(WRITE "${workdir}/baseline_v3.json"
"{\"schema\": \"lps-bench-engine-v3\", \"results\": [
  {\"n\": 1024, \"avg_deg\": 4, \"rounds_per_sec\": 100.0,
   \"ns_per_delivered_message\": 40.0}
]}
")
set(ledger "")
ns_row(50.0)
ns_row(51.0)
file(WRITE "${workdir}/ns_drift.jsonl" "${ledger}")
expect_code(1 --check --ledger "${workdir}/ns_drift.jsonl"
            --baseline "${workdir}/baseline_v3.json")
if(NOT last_err MATCHES "engine:n=1024,deg=4 :: ns_per_msg")
  message(SEND_ERROR
      "ns/msg baseline drift not named per metric:\n${last_err}")
endif()
# Within the ns pin -> exit 0 (the rounds/sec pin must not cross-fire).
set(ledger "")
ns_row(41.0)
ns_row(42.0)
file(WRITE "${workdir}/ns_ok.jsonl" "${ledger}")
expect_code(0 --check --ledger "${workdir}/ns_ok.jsonl"
            --baseline "${workdir}/baseline_v3.json")

# Parse / IO / usage errors -> exit 2.
file(WRITE "${workdir}/corrupt.jsonl" "{\"kind\":\"bench\"\n")
expect_code(2 --check --ledger "${workdir}/corrupt.jsonl")
file(WRITE "${workdir}/missing_fields.jsonl" "{\"kind\":\"bench\"}\n")
expect_code(2 --check --ledger "${workdir}/missing_fields.jsonl")
expect_code(2 --check --ledger "${workdir}/does_not_exist.jsonl")
expect_code(2 --check --ledger "${workdir}/steady.jsonl"
            --baseline "${workdir}/does_not_exist.json")
expect_code(2 --frobnicate)
expect_code(2 --ledger)

# An empty ledger is not an error: nothing to compare.
file(WRITE "${workdir}/empty.jsonl" "")
expect_code(0 --check --ledger "${workdir}/empty.jsonl")
