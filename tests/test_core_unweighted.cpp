// Tests for the unweighted distributed algorithms: Israeli–Itai
// baseline, Luby MIS, Algorithm 2's ball collection, the conflict graph
// (Definition 3.1), and Algorithm 1 (generic (1-eps)-MCM, Theorem 3.1).
#include <gtest/gtest.h>

#include <set>

#include "core/conflict_graph.hpp"
#include "core/generic_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "core/local_ball.hpp"
#include "core/luby_mis.hpp"
#include "graph/generators.hpp"
#include "seq/blossom.hpp"
#include "seq/hopcroft_karp.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

// ------------------------------------------------------ Israeli–Itai --

class IiSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IiSweep, ProducesMaximalMatchingOnEr) {
  Rng rng(GetParam());
  Graph g = erdos_renyi(150, 0.04, rng);
  IsraeliItaiOptions opts;
  opts.seed = GetParam() * 31 + 1;
  const DistMatchingResult res = israeli_itai(g, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(is_maximal_matching(g, res.matching));
  // Maximal => 1/2-approximation.
  const std::size_t opt = blossom_mcm(g).size();
  EXPECT_GE(2 * res.matching.size(), opt);
}

TEST_P(IiSweep, WorksOnStarAndCompleteAndPath) {
  IsraeliItaiOptions opts;
  opts.seed = GetParam();
  for (const Graph& g :
       {star_graph(40), complete_graph(24), path_graph(60)}) {
    const DistMatchingResult res = israeli_itai(g, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(is_maximal_matching(g, res.matching));
  }
}

TEST_P(IiSweep, RespectsActiveEdgeMask) {
  Rng rng(GetParam() ^ 0x55);
  Graph g = erdos_renyi(60, 0.1, rng);
  // Only even-id edges are active.
  std::vector<char> mask(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) mask[e] = 1;
  IsraeliItaiOptions opts;
  opts.seed = GetParam();
  opts.active_edges = mask;
  const DistMatchingResult res = israeli_itai(g, opts);
  EXPECT_TRUE(res.converged);
  for (EdgeId e : res.matching.edge_ids(g)) EXPECT_TRUE(mask[e]);
  // Maximal w.r.t. the active subgraph.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!mask[e]) continue;
    const Edge& ed = g.edge(e);
    EXPECT_FALSE(res.matching.is_free(ed.u) && res.matching.is_free(ed.v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IiSweep,
                         ::testing::Values(1u, 4u, 9u, 16u, 25u, 36u));

TEST(IsraeliItai, EmptyAndTrivialGraphs) {
  EXPECT_EQ(israeli_itai(Graph(0, {})).matching.size(), 0u);
  EXPECT_EQ(israeli_itai(Graph(5, {})).matching.size(), 0u);
  const Graph two = path_graph(2);
  IsraeliItaiOptions two_opts;
  two_opts.seed = 3;
  const DistMatchingResult res = israeli_itai(two, two_opts);
  EXPECT_EQ(res.matching.size(), 1u);
}

TEST(IsraeliItai, InitialMatchingIsExtendedNotDestroyed) {
  Graph g = path_graph(6);
  Matching init = Matching::from_edges(g, {2});  // edge 2-3
  IsraeliItaiOptions opts;
  opts.seed = 11;
  opts.initial = init;
  const DistMatchingResult res = israeli_itai(g, opts);
  EXPECT_TRUE(res.matching.contains(g, 2));
  EXPECT_TRUE(is_maximal_matching(g, res.matching));
}

TEST(IsraeliItai, RoundsGrowLogarithmically) {
  // O(log n) w.h.p.: the round count for n=4096 should be well under
  // c * log2(n) for a generous c — and far from linear.
  Rng rng(77);
  Graph g = erdos_renyi(4096, 3.0 / 4096.0, rng);
  IsraeliItaiOptions opts;
  opts.seed = 7;
  const DistMatchingResult res = israeli_itai(g, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.stats.rounds, 40 * 12u + 123u);  // phase cap * 3 + slack
  EXPECT_LT(res.stats.rounds, 400u);
}

// --------------------------------------------------------------- Luby --

class LubySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubySweep, MaximalIndependentSets) {
  Rng rng(GetParam());
  for (const Graph& g :
       {erdos_renyi(120, 0.05, rng), star_graph(30), complete_graph(15),
        cycle_graph(31), grid_graph(8, 8)}) {
    MisOptions opts;
    opts.seed = GetParam() + 17;
    const MisResult res = luby_mis(g, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(is_maximal_independent_set(g, res.in_mis));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubySweep,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u));

TEST(Luby, IsolatedVerticesAllSelected) {
  const MisResult res = luby_mis(Graph(7, {}), {.seed = 1});
  for (char c : res.in_mis) EXPECT_TRUE(c);
}

TEST(Luby, CompleteGraphSelectsExactlyOne) {
  const MisResult res = luby_mis(complete_graph(20), {.seed = 9});
  int count = 0;
  for (char c : res.in_mis) count += c;
  EXPECT_EQ(count, 1);
}

class AbiSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbiSweep, MaximalIndependentSets) {
  Rng rng(GetParam());
  for (const Graph& g :
       {erdos_renyi(120, 0.05, rng), star_graph(30), complete_graph(15),
        cycle_graph(31), grid_graph(8, 8), Graph(9, {})}) {
    MisOptions opts;
    opts.seed = GetParam() + 23;
    const MisResult res = abi_mis(g, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(is_maximal_independent_set(g, res.in_mis));
  }
}

TEST_P(AbiSweep, GenericMcmWorksWithEitherMis) {
  Rng rng(GetParam() ^ 0x777);
  const Graph g = erdos_renyi(40, 0.1, rng);
  const std::size_t opt = blossom_mcm(g).size();
  for (const bool use_abi : {false, true}) {
    GenericMcmOptions opts;
    opts.eps = 0.5;  // k = 2 -> guarantee 2/3
    opts.seed = GetParam();
    opts.use_abi_mis = use_abi;
    opts.check_invariants = true;
    const GenericMcmResult res = generic_mcm(g, opts);
    EXPECT_GE(3 * res.matching.size(), 2 * opt) << "abi=" << use_abi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbiSweep,
                         ::testing::Values(6u, 10u, 15u, 21u));

TEST(Luby, VerifierRejectsBadSets) {
  Graph g = path_graph(4);
  EXPECT_FALSE(is_independent_set(g, {1, 1, 0, 0}));
  EXPECT_TRUE(is_independent_set(g, {1, 0, 1, 0}));
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 0, 0}));  // 2,3 free
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
}

// -------------------------------------------------- Algorithm 2 balls --

TEST(LocalBall, ViewMatchesDistanceOracle) {
  Rng rng(91);
  Graph g = erdos_renyi(40, 0.08, rng);
  Matching m = Matching(g.num_nodes());
  const int radius = 3;
  const BallViews views = collect_balls(g, m, radius);
  // BFS distance oracle.
  auto distances_from = [&](NodeId src) {
    std::vector<int> dist(g.num_nodes(), -1);
    std::vector<NodeId> q{src};
    dist[src] = 0;
    for (std::size_t h = 0; h < q.size(); ++h) {
      for (const auto& inc : g.neighbors(q[h])) {
        if (dist[inc.to] == -1) {
          dist[inc.to] = dist[q[h]] + 1;
          q.push_back(inc.to);
        }
      }
    }
    return dist;
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = distances_from(v);
    std::set<std::pair<NodeId, NodeId>> in_view;
    for (const LabeledEdge& le : views.view[v]) {
      in_view.insert({le.u, le.v});
    }
    for (const Edge& e : g.edges()) {
      const bool should_know =
          (dist[e.u] != -1 && dist[e.u] <= radius) ||
          (dist[e.v] != -1 && dist[e.v] <= radius);
      EXPECT_EQ(in_view.count({e.u, e.v}) > 0, should_know)
          << "v=" << v << " edge " << e.u << "-" << e.v;
    }
  }
  EXPECT_EQ(views.stats.rounds, static_cast<std::uint64_t>(radius) + 1);
}

TEST(LocalBall, CarriesMatchedFlags) {
  Graph g = path_graph(5);
  Matching m = Matching::from_edges(g, {1, 3});
  const BallViews views = collect_balls(g, m, 4);
  for (const LabeledEdge& le : views.view[0]) {
    const EdgeId e = g.find_edge(le.u, le.v);
    EXPECT_EQ(le.matched, m.contains(g, e));
  }
  EXPECT_EQ(views.view[0].size(), 4u);  // whole path visible
}

// ------------------------------------------------- conflict graph -----

TEST(ConflictGraph, EnumerationMatchesDefinitionOnPath) {
  // Path of 6, M = {2-3}: augmenting paths of length <= 3:
  //   0-1 (len 1), 1-2-3-4 (len 3), 4-5 (len 1), ... enumerate by hand:
  // free: 0,1,4,5. Edges: 0:0-1,1:1-2,2:2-3,3:3-4,4:4-5.
  // len-1 paths: 0-1, 4-5.
  // len-3 paths: 1-2-3-4.
  Graph g = path_graph(6);
  Matching m = Matching::from_edges(g, {2});
  const BallViews views = collect_balls(g, m, 6);
  const ConflictGraphResult cg = build_conflict_graph(g, m, views, 3, 1000);
  ASSERT_EQ(cg.paths.size(), 3u);
  // Conflicts: 0-1 vs 1-2-3-4 (share node 1), 1-2-3-4 vs 4-5 (share 4).
  EXPECT_EQ(cg.conflict.num_edges(), 2u);
  // Leaders are the smaller endpoints.
  for (const AugPath& p : cg.paths) {
    EXPECT_LT(p.nodes.front(), p.nodes.back());
  }
}

TEST(ConflictGraph, LeaderDeduplicationCountsEachPathOnce) {
  Rng rng(93);
  for (int t = 0; t < 10; ++t) {
    Graph g = erdos_renyi(18, 0.2, rng);
    Matching m(g.num_nodes());
    // Build a partial matching greedily on half the edges.
    for (EdgeId e = 0; e < g.num_edges(); e += 2) {
      const Edge& ed = g.edge(e);
      if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(g, e);
    }
    const int l = 3;
    const BallViews views = collect_balls(g, m, 2 * l);
    const ConflictGraphResult cg =
        build_conflict_graph(g, m, views, l, 1u << 20);
    // Each enumerated path must be a valid augmenting path, and the set
    // must be duplicate-free.
    std::set<std::vector<NodeId>> seen;
    for (const AugPath& p : cg.paths) {
      EXPECT_EQ(p.edges.size() % 2, 1u);
      EXPECT_LE(p.edges.size(), static_cast<std::size_t>(l));
      EXPECT_TRUE(m.is_free(p.nodes.front()));
      EXPECT_TRUE(m.is_free(p.nodes.back()));
      for (std::size_t i = 0; i < p.edges.size(); ++i) {
        EXPECT_EQ(m.contains(g, p.edges[i]), i % 2 == 1);
      }
      EXPECT_TRUE(seen.insert(p.nodes).second);
    }
    // Cross-check total against an independent enumeration: count via
    // the bounded DFS oracle on each free pair is overkill; instead
    // verify that a path exists iff cg found at least one.
    EXPECT_EQ(!cg.paths.empty(), has_augmenting_path_leq(g, m, l));
  }
}

// --------------------------------------- Algorithm 1 (Theorem 3.1) ----

class GenericMcmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GenericMcmSweep, ReachesApproximationWithInvariants) {
  Rng rng(GetParam());
  Graph g = erdos_renyi(48, 0.09, rng);
  GenericMcmOptions opts;
  opts.eps = 0.34;  // k = 3
  opts.seed = GetParam() ^ 0xfeed;
  opts.check_invariants = true;  // asserts Lemma 3.4 after each phase
  const GenericMcmResult res = generic_mcm(g, opts);
  const std::size_t opt = blossom_mcm(g).size();
  // k = 3: guarantee (1 - 1/(k+1)) = 3/4.
  EXPECT_GE(4 * res.matching.size(), 3 * opt);
  EXPECT_EQ(res.phases.size(), 3u);  // l = 1, 3, 5
  EXPECT_EQ(res.phases[0].l, 1);
  EXPECT_EQ(res.phases[2].l, 5);
}

TEST_P(GenericMcmSweep, BipartiteInstancesToo) {
  Rng rng(GetParam() ^ 0xabc);
  const auto bg = random_bipartite(30, 30, 0.08, rng);
  GenericMcmOptions opts;
  opts.eps = 0.5;  // k = 2
  opts.seed = GetParam();
  opts.check_invariants = true;
  const GenericMcmResult res = generic_mcm(bg.graph, opts);
  const std::size_t opt = hopcroft_karp(bg.graph, bg.side).size();
  EXPECT_GE(3 * res.matching.size(), 2 * opt);  // 1 - 1/(k+1) = 2/3
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenericMcmSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(GenericMcm, PerfectMatchingOnEvenPathAndCycle) {
  GenericMcmOptions opts;
  opts.eps = 0.2;  // k = 5, l up to 9
  opts.seed = 5;
  opts.check_invariants = true;
  // Path of 10: unique perfect matching reachable with l <= 9.
  const GenericMcmResult res = generic_mcm(path_graph(10), opts);
  EXPECT_EQ(res.matching.size(), 5u);
}

TEST(GenericMcm, MessageSizesAreLocalNotCongest) {
  // The generic algorithm ships neighborhoods: message sizes must be
  // allowed to exceed O(log n) (that is exactly why Section 3.2 exists).
  Rng rng(123);
  Graph g = erdos_renyi(64, 0.1, rng);
  GenericMcmOptions opts;
  opts.eps = 0.34;
  opts.seed = 9;
  const GenericMcmResult res = generic_mcm(g, opts);
  EXPECT_GT(res.stats.max_message_bits,
            64u);  // far beyond one id: linear-size views
  EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
}

TEST(GenericMcm, RejectsBadEps) {
  Graph g = path_graph(4);
  GenericMcmOptions opts;
  opts.eps = 0.0;
  EXPECT_THROW(generic_mcm(g, opts), std::invalid_argument);
  opts.eps = 1.5;
  EXPECT_THROW(generic_mcm(g, opts), std::invalid_argument);
}

}  // namespace
}  // namespace lps
