// Tests for the synchronous message-passing runtime: delivery semantics
// (the model of the paper's Section 2), channel exclusivity, bit
// metering, determinism, thread-pool equivalence, and the epoch-stamped
// mailbox / active-set scheduler introduced in DESIGN.md §9.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "runtime/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

struct IntMsg {
  int value;
};

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, 100, 9, [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int counter = 0;
  pool.parallel_for(0, 10, 3, [&](std::size_t b, std::size_t e) {
    counter += static_cast<int>(e - b);
  });
  EXPECT_EQ(counter, 10);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(SyncNetwork, OneRoundDeliveryDelay) {
  Graph g = path_graph(2);
  SyncNetwork<IntMsg> net(g, 1);
  std::vector<int> received_at_round(2, -1);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.round() == 0 && ctx.id() == 0) {
      ctx.send(0, IntMsg{42});
    }
    for (const auto& in : ctx.inbox()) {
      EXPECT_EQ(in.payload->value, 42);
      EXPECT_EQ(in.from, 0u);
      received_at_round[ctx.id()] = static_cast<int>(ctx.round());
    }
  };
  net.run_round(step);
  EXPECT_EQ(received_at_round[1], -1);  // not yet delivered
  net.run_round(step);
  EXPECT_EQ(received_at_round[1], 1);  // delivered exactly one round later
  EXPECT_EQ(received_at_round[0], -1);  // sender got nothing
}

TEST(SyncNetwork, DoubleSendOnChannelThrows) {
  Graph g = path_graph(2);
  SyncNetwork<IntMsg> net(g, 1);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.id() == 0) {
      ctx.send(0, IntMsg{1});
      EXPECT_THROW(ctx.send(0, IntMsg{2}), std::logic_error);
    }
  };
  net.run_round(step);
}

TEST(SyncNetwork, NonEndpointSendThrows) {
  Graph g = path_graph(3);  // edges 0:0-1, 1:1-2
  SyncNetwork<IntMsg> net(g, 1);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.id() == 0) {
      EXPECT_THROW(ctx.send(1, IntMsg{1}), std::logic_error);
    }
  };
  net.run_round(step);
}

TEST(SyncNetwork, OppositeDirectionsShareEdgeFine) {
  Graph g = path_graph(2);
  SyncNetwork<IntMsg> net(g, 1);
  int delivered = 0;
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.round() == 0) ctx.send(0, IntMsg{static_cast<int>(ctx.id())});
    for (const auto& in : ctx.inbox()) {
      ++delivered;
      EXPECT_EQ(in.payload->value, static_cast<int>(in.from));
    }
  };
  net.run_round(step);
  net.run_round(step);
  EXPECT_EQ(delivered, 2);
}

TEST(SyncNetwork, BitMeteringAndStats) {
  Graph g = star_graph(5);
  auto meter = [](const IntMsg& m) {
    return static_cast<std::uint64_t>(m.value);
  };
  SyncNetwork<IntMsg> net(g, 1, meter);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.round() == 0 && ctx.id() == 0) {
      int bits = 10;
      for (const auto& inc : ctx.graph().neighbors(0)) {
        ctx.send(inc.edge, IntMsg{bits});
        bits += 10;
      }
    }
  };
  net.run_round(step);
  EXPECT_EQ(net.stats().rounds, 1u);
  EXPECT_EQ(net.stats().messages, 4u);
  EXPECT_EQ(net.stats().total_bits, 10u + 20 + 30 + 40);
  EXPECT_EQ(net.stats().max_message_bits, 40u);
}

TEST(SyncNetwork, RunStopsWhenSilent) {
  Graph g = path_graph(4);
  SyncNetwork<IntMsg> net(g, 1);
  // A wave: node 0 sends once; everyone forwards right, then silence.
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    if (ctx.round() == 0 && ctx.id() == 0) {
      ctx.send(0, IntMsg{1});
      return;
    }
    for (const auto& in : ctx.inbox()) {
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        if (inc.to > ctx.id()) ctx.send(inc.edge, IntMsg{in.payload->value});
      }
    }
  };
  const std::uint64_t rounds = net.run(100, /*stop_when_silent=*/true, step);
  // Wave takes 3 hops (0->1,1->2,2->3), then one silent round detection.
  EXPECT_LE(rounds, 5u);
  EXPECT_GE(rounds, 3u);
}

TEST(SyncNetwork, RngSubstreamsIndependentOfExecutionOrder) {
  // The per-(node, round) substream must not depend on which nodes ran
  // first; we capture draws across two runs and compare.
  Graph g = complete_graph(6);
  std::vector<std::uint64_t> draws_a(6), draws_b(6);
  {
    SyncNetwork<IntMsg> net(g, 99);
    net.run_round([&](SyncNetwork<IntMsg>::Ctx& ctx) {
      draws_a[ctx.id()] = ctx.rng()();
    });
  }
  {
    SyncNetwork<IntMsg> net(g, 99);
    net.run_round([&](SyncNetwork<IntMsg>::Ctx& ctx) {
      draws_b[ctx.id()] = ctx.rng()();
    });
  }
  EXPECT_EQ(draws_a, draws_b);
  // Different rounds give different draws.
  SyncNetwork<IntMsg> net(g, 99);
  std::vector<std::uint64_t> round0(6), round1(6);
  net.run_round([&](SyncNetwork<IntMsg>::Ctx& ctx) {
    round0[ctx.id()] = ctx.rng()();
  });
  net.run_round([&](SyncNetwork<IntMsg>::Ctx& ctx) {
    round1[ctx.id()] = ctx.rng()();
  });
  EXPECT_NE(round0, round1);
}

TEST(SyncNetwork, ParallelEqualsSequential) {
  // A small gossip protocol; node states must match across thread counts.
  Rng rng(17);
  Graph g = erdos_renyi(120, 0.05, rng);
  auto run_with = [&](ThreadPool* pool) {
    std::vector<std::uint64_t> state(g.num_nodes(), 0);
    SyncNetwork<IntMsg> net(g, 5);
    net.set_thread_pool(pool);
    auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
      const NodeId v = ctx.id();
      for (const auto& in : ctx.inbox()) {
        state[v] = state[v] * 31 + static_cast<std::uint64_t>(
                                       in.payload->value);
      }
      const int draw = static_cast<int>(ctx.rng().below(1000));
      state[v] += static_cast<std::uint64_t>(draw);
      if (ctx.round() < 6) {
        for (const auto& inc : ctx.graph().neighbors(v)) {
          if ((draw + inc.to) % 3 == 0) ctx.send(inc.edge, IntMsg{draw});
        }
      }
    };
    for (int r = 0; r < 8; ++r) net.run_round(step);
    return std::make_pair(state, net.stats());
  };
  const auto [seq_state, seq_stats] = run_with(nullptr);
  ThreadPool pool(4);
  const auto [par_state, par_stats] = run_with(&pool);
  EXPECT_EQ(seq_state, par_state);
  EXPECT_EQ(seq_stats.messages, par_stats.messages);
  EXPECT_EQ(seq_stats.total_bits, par_stats.total_bits);
  EXPECT_EQ(seq_stats.max_message_bits, par_stats.max_message_bits);
}

TEST(SyncNetwork, InFlightMessagesSurviveSilentSenders) {
  // stop_when_silent must not cut off messages already in flight: the
  // engine stops only after a round in which nothing was sent, by which
  // time everything previously sent has been delivered.
  Graph g = path_graph(5);
  SyncNetwork<IntMsg> net(g, 1);
  std::vector<int> got(5, -1);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    for (const auto& in : ctx.inbox()) {
      got[ctx.id()] = in.payload->value;
      // Forward right with the hop count; the original sender stays
      // silent from round 1 on, so there is always exactly one message
      // in flight until the wave hits node 4.
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        if (inc.to > ctx.id()) {
          ctx.send(inc.edge, IntMsg{in.payload->value + 1});
        }
      }
    }
    if (ctx.round() == 0 && ctx.id() == 0) ctx.send(0, IntMsg{1});
  };
  const std::uint64_t rounds = net.run(100, /*stop_when_silent=*/true, step);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 2);
  EXPECT_EQ(got[3], 3);
  EXPECT_EQ(got[4], 4);  // the last in-flight hop was delivered, not dropped
  EXPECT_EQ(rounds, 5u);  // 4 forwarding rounds + 1 silent detection round
  EXPECT_EQ(net.stats().messages, 4u);
}

TEST(SyncNetwork, InboxIsInIncidenceOrder) {
  // The mailbox's counting-sort delivery must present each inbox in the
  // receiver's incidence order — the invariant protocols and the lca
  // re-executor rely on for RNG-draw determinism.
  Rng rng(3);
  Graph g = erdos_renyi(40, 0.3, rng);
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    SyncNetwork<IntMsg> net(g, 1);
    net.set_thread_pool(p);
    auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
      if (ctx.round() == 0) {
        ctx.send_all(IntMsg{static_cast<int>(ctx.id())});
        return;
      }
      const auto nbrs = ctx.graph().neighbors(ctx.id());
      ASSERT_EQ(ctx.inbox().size(), nbrs.size());
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_EQ(ctx.inbox()[i].from, nbrs[i].to);
        EXPECT_EQ(ctx.inbox()[i].edge, nbrs[i].edge);
      }
    };
    net.run_round(step);
    net.run_round(step);
  }
}

TEST(SyncNetwork, ActiveSetStepsOnlyReceiversKeepersAndActivated) {
  Graph g = path_graph(6);
  SyncNetwork<IntMsg> net(g, 1);
  net.restrict_initial_active();
  net.activate(2);
  std::vector<int> steps(6, 0);
  auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
    ++steps[ctx.id()];
    if (ctx.round() == 0) {
      // Node 2 messages its right neighbor and keeps itself alive.
      ctx.send(ctx.graph().find_edge(2, 3), IntMsg{7});
      ctx.keep_active();
    }
  };
  net.run_round(step);
  EXPECT_EQ(net.last_round_stepped(), 1u);  // only the activated node
  EXPECT_EQ(steps, (std::vector<int>{0, 0, 1, 0, 0, 0}));
  net.run_round(step);
  // Round 1: receiver (3) plus the keep_active caller (2), nobody else.
  EXPECT_EQ(net.last_round_stepped(), 2u);
  EXPECT_EQ(steps, (std::vector<int>{0, 0, 2, 1, 0, 0}));
  net.run_round(step);
  EXPECT_EQ(net.last_round_stepped(), 0u);  // everyone went dormant
}

TEST(SyncNetwork, StepAllNodesRestoresFullSweep) {
  Graph g = path_graph(6);
  SyncNetwork<IntMsg> net(g, 1);
  net.step_all_nodes();
  int stepped = 0;
  auto step = [&](SyncNetwork<IntMsg>::Ctx&) { ++stepped; };
  net.run_round(step);
  net.run_round(step);
  EXPECT_EQ(stepped, 12);
  EXPECT_EQ(net.last_round_stepped(), 6u);
}

TEST(SyncNetwork, ActiveSetMatchesStepAllOnIsraeliItai) {
  // The migrated israeli_itai keeps every node alive that could act
  // spontaneously, so active-set scheduling must reproduce the
  // step-everything execution bit for bit: same matching, same rounds,
  // same message/bit meters.
  Rng rng(21);
  const Graph g = erdos_renyi(400, 8.0 / 400, rng);
  IsraeliItaiOptions active;
  active.seed = 5;
  IsraeliItaiOptions all = active;
  all.step_all_nodes = true;
  const DistMatchingResult ra = israeli_itai(g, active);
  const DistMatchingResult rb = israeli_itai(g, all);
  EXPECT_EQ(ra.converged, rb.converged);
  EXPECT_EQ(ra.stats.rounds, rb.stats.rounds);
  EXPECT_EQ(ra.stats.messages, rb.stats.messages);
  EXPECT_EQ(ra.stats.total_bits, rb.stats.total_bits);
  EXPECT_EQ(ra.stats.max_message_bits, rb.stats.max_message_bits);
  ASSERT_EQ(ra.matching.num_nodes(), rb.matching.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(ra.matching.matched_edge(v), rb.matching.matched_edge(v)) << v;
  }
}

TEST(SyncNetwork, PoolBitIdenticalToSequentialAt8Threads) {
  // Active-set execution with per-worker send lists and stat slots must
  // stay a pure function of the seed across thread counts.
  Rng rng(31);
  Graph g = erdos_renyi(500, 0.02, rng);
  auto run_with = [&](ThreadPool* pool) {
    std::vector<std::uint64_t> state(g.num_nodes(), 0);
    SyncNetwork<IntMsg> net(g, 12);
    net.set_thread_pool(pool);
    auto step = [&](SyncNetwork<IntMsg>::Ctx& ctx) {
      const NodeId v = ctx.id();
      for (const auto& in : ctx.inbox()) {
        state[v] = state[v] * 31 +
                   static_cast<std::uint64_t>(in.payload->value);
      }
      const int draw = static_cast<int>(ctx.rng().below(1000));
      state[v] += static_cast<std::uint64_t>(draw);
      if (ctx.round() < 10 && draw % 4 != 0) {
        ctx.keep_active();
        for (const auto& inc : ctx.graph().neighbors(v)) {
          if ((draw + inc.to) % 3 == 0) ctx.send(inc.edge, IntMsg{draw});
        }
      }
    };
    for (int r = 0; r < 12; ++r) net.run_round(step);
    return std::make_pair(state, net.stats());
  };
  const auto [seq_state, seq_stats] = run_with(nullptr);
  ThreadPool pool(8);
  const auto [par_state, par_stats] = run_with(&pool);
  EXPECT_EQ(seq_state, par_state);
  EXPECT_EQ(seq_stats.rounds, par_stats.rounds);
  EXPECT_EQ(seq_stats.messages, par_stats.messages);
  EXPECT_EQ(seq_stats.total_bits, par_stats.total_bits);
  EXPECT_EQ(seq_stats.max_message_bits, par_stats.max_message_bits);
}

TEST(NetStats, MergeAndScaledMerge) {
  NetStats a;
  a.rounds = 10;
  a.note_message(100);
  NetStats b;
  b.rounds = 4;
  b.note_message(50);
  b.note_message(30);
  NetStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.rounds, 14u);
  EXPECT_EQ(merged.messages, 3u);
  EXPECT_EQ(merged.total_bits, 180u);
  EXPECT_EQ(merged.max_message_bits, 100u);
  NetStats scaled = a;
  scaled.merge_scaled_rounds(b, 5);
  EXPECT_EQ(scaled.rounds, 10u + 20u);
}

}  // namespace
}  // namespace lps
