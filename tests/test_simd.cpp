// Two guarantees for runtime/simd.hpp (DESIGN.md §15):
//
//  1. Kernel identity: every helper, at whatever level the host
//     dispatches to, matches a naive scalar reference bit-for-bit on
//     the boundary lengths (0, 1, width-1, width, width+1 for every
//     vector width in play) and on unaligned slices — the cases where
//     head/tail handling and masked lanes go wrong.
//  2. Execution identity: all 8 engine-backed solvers produce
//     bit-identical results scalar-forced vs auto-dispatched, across
//     shard counts {1, 4, auto}. SIMD is an implementation detail of
//     the solvers, never an observable one.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine_cases.hpp"
#include "runtime/simd.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

using test_support::expect_identical;
using test_support::kEngineCases;
using test_support::solve_with;

/// Pin or unpin the scalar path for one scope; always restores auto.
struct ScopedScalar {
  explicit ScopedScalar(bool on) { simd::force_scalar(on); }
  ~ScopedScalar() { simd::force_scalar(false); }
};

// The widest vector path processes 32 bytes (AVX2) per step and the f64
// kernels 4 lanes; cover every boundary around both, a zero, a one, and
// lengths long enough to span several blocks.
const std::vector<std::size_t> kLengths = {0,  1,  3,  4,  5,  7,  8,
                                           15, 16, 17, 31, 32, 33, 63,
                                           64, 65, 255, 256, 1027};

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng,
                                       std::uint8_t values) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(values));
  return out;
}

// ---- naive references ----

bool ref_any_eq(const std::uint8_t* p, std::size_t n, std::uint8_t v) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == v) return true;
  }
  return false;
}

std::size_t ref_count_eq(const std::uint8_t* p, std::size_t n,
                         std::uint8_t v) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += p[i] == v ? 1 : 0;
  return c;
}

std::size_t ref_argmax(const double* w, const std::uint32_t* id,
                       const std::uint8_t* alive, std::size_t n) {
  std::size_t best = simd::npos;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    if (best == simd::npos || w[i] > w[best] ||
        (w[i] == w[best] && id[i] < id[best])) {
      best = i;
    }
  }
  return best;
}

TEST(SimdTest, LevelReporting) {
  EXPECT_GE(static_cast<int>(simd::detected_level()),
            static_cast<int>(simd::Level::kScalar));
  {
    ScopedScalar scalar(true);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), simd::detected_level());
  EXPECT_NE(std::string(simd::level_name(simd::active_level())), "");
  // Block size: clamped, line-aligned, usable as a loop granule.
  EXPECT_GE(simd::block_bytes(), std::size_t{4} << 10);
  EXPECT_LE(simd::block_bytes(), std::size_t{1} << 20);
  EXPECT_EQ(simd::block_bytes() % 64, 0u);
}

TEST(SimdTest, ByteKernelsMatchReference) {
  Rng rng(2024);
  for (const std::size_t n : kLengths) {
    // Margin of 3 so the same buffer serves unaligned slices p+1..p+3.
    std::vector<std::uint8_t> buf = random_bytes(n + 3, rng, 3);
    for (std::size_t shift = 0; shift < 3; ++shift) {
      const std::uint8_t* p = buf.data() + shift;
      for (std::uint8_t v = 0; v < 3; ++v) {
        const bool any = ref_any_eq(p, n, v);
        const std::size_t cnt = ref_count_eq(p, n, v);
        for (const bool scalar : {false, true}) {
          ScopedScalar pin(scalar);
          const std::string label = "n=" + std::to_string(n) +
                                    " shift=" + std::to_string(shift) +
                                    " v=" + std::to_string(v) +
                                    (scalar ? " scalar" : " auto");
          EXPECT_EQ(simd::any_eq_u8(p, n, v), any) << label;
          // any_ne(v) == exists a byte != v.
          EXPECT_EQ(simd::any_ne_u8(p, n, v), cnt != n) << label;
          EXPECT_EQ(simd::count_eq_u8(p, n, v), cnt) << label;
          std::vector<std::uint8_t> mask(n + 1, 0xee);
          simd::mask_eq_u8(p, n, v, mask.data());
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(mask[i], p[i] == v ? 1 : 0) << label << " i=" << i;
          }
          EXPECT_EQ(mask[n], 0xee) << label << " (overwrote past end)";
        }
      }
    }
  }
}

TEST(SimdTest, CountSaturationSafe) {
  // The SSE2/AVX2 counters accumulate per-byte sums that must be
  // flushed before 255 vectors; an all-match megabyte catches a missed
  // flush as a wrong count.
  std::vector<std::uint8_t> ones(1 << 20, 7);
  for (const bool scalar : {false, true}) {
    ScopedScalar pin(scalar);
    EXPECT_EQ(simd::count_eq_u8(ones.data(), ones.size(), 7), ones.size());
    EXPECT_EQ(simd::count_eq_u8(ones.data(), ones.size(), 8), 0u);
  }
}

TEST(SimdTest, MaskPositiveMatchesReference) {
  Rng rng(77);
  for (const std::size_t n : kLengths) {
    std::vector<double> x(n + 2);
    for (auto& d : x) {
      // Mix of signs, exact zeros, and negative zero.
      const std::uint64_t r = rng.below(6);
      d = r == 0 ? 0.0
          : r == 1 ? -0.0
                   : (rng.uniform01() - 0.5);
    }
    for (std::size_t shift = 0; shift < 2; ++shift) {
      const double* p = x.data() + shift;
      std::size_t ref_cnt = 0;
      std::vector<std::uint8_t> ref_mask(n);
      for (std::size_t i = 0; i < n; ++i) {
        ref_mask[i] = p[i] > 0.0 ? 1 : 0;
        ref_cnt += ref_mask[i];
      }
      for (const bool scalar : {false, true}) {
        ScopedScalar pin(scalar);
        std::vector<std::uint8_t> mask(n + 1, 0xee);
        EXPECT_EQ(simd::mask_positive_f64(p, n, mask.data()), ref_cnt);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(mask[i], ref_mask[i]) << "n=" << n << " i=" << i;
        }
        EXPECT_EQ(mask[n], 0xee);
      }
    }
  }
}

TEST(SimdTest, ArgmaxMatchesReference) {
  Rng rng(99);
  for (const std::size_t n : kLengths) {
    std::vector<double> w(n + 2);
    std::vector<std::uint32_t> id(n + 2);
    std::vector<std::uint8_t> alive(n + 2);
    // Duplicate weights on purpose (drawn from 8 values) so the id
    // tiebreak is exercised; ids distinct as the contract requires.
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = static_cast<double>(rng.below(8)) * 0.25 - 1.0;
      id[i] = static_cast<std::uint32_t>(i * 2 + 1);
      alive[i] = rng.coin() ? 1 : 0;
    }
    for (std::size_t shift = 0; shift < 2; ++shift) {
      const std::size_t ref =
          ref_argmax(w.data() + shift, id.data() + shift,
                     alive.data() + shift, n);
      for (const bool scalar : {false, true}) {
        ScopedScalar pin(scalar);
        EXPECT_EQ(simd::argmax_masked_f64(w.data() + shift, id.data() + shift,
                                          alive.data() + shift, n),
                  ref)
            << "n=" << n << " shift=" << shift << " scalar=" << scalar;
      }
    }
    // All-dead mask => npos on every path.
    std::vector<std::uint8_t> dead(n, 0);
    for (const bool scalar : {false, true}) {
      ScopedScalar pin(scalar);
      EXPECT_EQ(
          simd::argmax_masked_f64(w.data(), id.data(), dead.data(), n),
          simd::npos);
    }
  }
}

TEST(SimdTest, Sub2GatherBitIdentical) {
  Rng rng(123);
  const std::size_t table = 97;
  std::vector<double> sub(table);
  for (auto& d : sub) d = rng.uniform01() * 10.0 - 5.0;
  sub[0] = 0.0;  // the "free vertex" identity operand
  for (const std::size_t n : kLengths) {
    std::vector<double> w(n + 2);
    std::vector<std::uint32_t> eu(n + 2);
    std::vector<std::uint32_t> ev(n + 2);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = rng.uniform01() * 100.0;
      eu[i] = static_cast<std::uint32_t>(rng.below(table));
      ev[i] = static_cast<std::uint32_t>(rng.below(table));
    }
    for (std::size_t shift = 0; shift < 2; ++shift) {
      std::vector<double> ref(n);
      for (std::size_t i = 0; i < n; ++i) {
        ref[i] = w[shift + i] - sub[eu[shift + i]] - sub[ev[shift + i]];
      }
      for (const bool scalar : {false, true}) {
        ScopedScalar pin(scalar);
        std::vector<double> out(n + 1, -777.0);
        simd::sub2_gather_f64(w.data() + shift, sub.data(),
                              eu.data() + shift, ev.data() + shift,
                              out.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          // Bit comparison, not tolerance: the contract is exactness.
          ASSERT_EQ(out[i], ref[i]) << "n=" << n << " i=" << i;
        }
        EXPECT_EQ(out[n], -777.0);
      }
    }
  }
}

// ---- execution identity: scalar-forced vs auto across the client set ----

class SimdEngineIdentityTest
    : public ::testing::TestWithParam<test_support::ShardCase> {};

TEST_P(SimdEngineIdentityTest, ScalarVsVectorizedAcrossShards) {
  const test_support::ShardCase& c = GetParam();
  for (const unsigned shards : {1u, 4u, 0u}) {
    api::SolveResult vec = [&] {
      ScopedScalar pin(false);
      return solve_with(c, shards, nullptr);
    }();
    api::SolveResult sca = [&] {
      ScopedScalar pin(true);
      return solve_with(c, shards, nullptr);
    }();
    expect_identical(vec, sca,
                     std::string(c.solver) + " shards=" +
                         std::to_string(shards) + " scalar-vs-simd");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClients, SimdEngineIdentityTest, ::testing::ValuesIn(kEngineCases),
    [](const ::testing::TestParamInfo<test_support::ShardCase>& info) {
      return std::string(info.param.solver);
    });

}  // namespace
}  // namespace lps
