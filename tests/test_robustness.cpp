// Failure-injection and robustness tests: wrong-sized masks, degenerate
// inputs, hostile black boxes, exception propagation through the
// runtime, and fuzzed Matching mutation sequences checked against a
// reference implementation.
#include <gtest/gtest.h>

#include <set>

#include <cmath>

#include "core/bipartite_counting.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/class_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "core/weighted_mwm.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "runtime/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

// ------------------------------------------------ bad-input rejection --

TEST(Robustness, WrongSizedMasksAreRejected) {
  Rng rng(1);
  const Graph g = erdos_renyi(20, 0.2, rng);
  IsraeliItaiOptions opts;
  opts.active_edges.assign(g.num_edges() + 1, 1);
  EXPECT_THROW(israeli_itai(g, opts), std::invalid_argument);

  IsraeliItaiOptions bad_init;
  bad_init.initial = Matching(5);  // wrong node count
  EXPECT_THROW(israeli_itai(g, bad_init), std::invalid_argument);
}

TEST(Robustness, DegenerateGraphsEverywhere) {
  const Graph empty(0, {});
  const Graph isolated(6, {});
  // Every top-level algorithm must handle vertex-only graphs.
  EXPECT_EQ(israeli_itai(isolated).matching.size(), 0u);
  {
    BipartiteMcmOptions o;
    std::vector<std::uint8_t> side(6, 0);
    EXPECT_EQ(bipartite_mcm(isolated, side, o).matching.size(), 0u);
  }
  {
    const WeightedGraph wg{isolated, {}};
    WeightedMwmOptions o;
    EXPECT_EQ(weighted_mwm(wg, o).matching.size(), 0u);
    EXPECT_EQ(class_mwm(wg).matching.size(), 0u);
  }
  EXPECT_EQ(israeli_itai(empty).matching.size(), 0u);
}

TEST(Robustness, HostileBlackBoxStillYieldsValidMatching) {
  // A black box that returns the empty matching: Algorithm 5 makes no
  // progress but must stay valid and terminate at its budget.
  Rng rng(3);
  Graph g = erdos_renyi(20, 0.2, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 9.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  WeightedMwmOptions opts;
  opts.eps = 0.1;
  opts.black_box = [](const WeightedGraph& sub, std::uint64_t,
                      NetStats*) { return Matching(sub.graph.num_nodes()); };
  const WeightedMwmResult res = weighted_mwm(wg, opts);
  EXPECT_EQ(res.matching.size(), 0u);
  EXPECT_TRUE(is_valid_matching(wg.graph, res.matching.edge_ids(wg.graph)));
  EXPECT_FALSE(res.converged_early);
}

TEST(Robustness, AdversarialBlackBoxCannotCorruptTheMatching) {
  // A black box that returns single arbitrary positive-gain edges: the
  // reduction's wrap application must keep the global matching valid.
  Rng rng(5);
  Graph g = erdos_renyi(24, 0.2, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 9.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  WeightedMwmOptions opts;
  opts.eps = 0.1;
  opts.black_box = [](const WeightedGraph& sub, std::uint64_t seed,
                      NetStats*) {
    Matching m(sub.graph.num_nodes());
    if (sub.graph.num_edges() > 0) {
      m.add(sub.graph, static_cast<EdgeId>(seed % sub.graph.num_edges()));
    }
    return m;
  };
  const WeightedMwmResult res = weighted_mwm(wg, opts);
  EXPECT_TRUE(is_valid_matching(wg.graph, res.matching.edge_ids(wg.graph)));
  // Single positive-gain wraps strictly increase weight each iteration.
  for (std::size_t i = 1; i < res.weight_trajectory.size(); ++i) {
    EXPECT_GE(res.weight_trajectory[i] + 1e-9, res.weight_trajectory[i - 1]);
  }
}

TEST(Robustness, CountingRejectsInconsistentSides) {
  // A side labeling that leaves a *matched* edge monochromatic routes a
  // count through it and trips the structural parity check: node 1
  // (labeled Y) forwards to its mate node 2 (also labeled Y), which is
  // then first-reached at an even round.
  Graph g = path_graph(3);  // 0-1-2: node 2 is only reachable via 1
  Matching m(3);
  m.add(g, 1);  // matched edge 1-2, labeled monochromatic below
  EXPECT_THROW(count_augmenting_paths(g, {0, 1, 1}, m, 3, {}),
               std::logic_error);
}

// -------------------------------------------- runtime failure paths ----

struct ThrowMsg {
  int x;
};

TEST(Robustness, ExceptionsInStepPropagate) {
  const Graph g = path_graph(4);
  SyncNetwork<ThrowMsg> net(g, 1);
  EXPECT_THROW(net.run_round([&](SyncNetwork<ThrowMsg>::Ctx& ctx) {
    if (ctx.id() == 2) throw std::runtime_error("injected");
  }),
               std::runtime_error);
}

TEST(Robustness, EngineSurvivesZeroNodeGraph) {
  const Graph g(0, {});
  SyncNetwork<ThrowMsg> net(g, 1);
  std::uint64_t rounds =
      net.run(5, true, [&](SyncNetwork<ThrowMsg>::Ctx&) { FAIL(); });
  EXPECT_EQ(rounds, 1u);  // one silent round, then stop
}

// ------------------------------------------------ fuzzed Matching ------

TEST(Robustness, MatchingFuzzAgainstReferenceModel) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = erdos_renyi(16, 0.3, rng);
    if (g.num_edges() == 0) continue;
    Matching m(g.num_nodes());
    std::set<EdgeId> reference;
    for (int op = 0; op < 200; ++op) {
      const EdgeId e = static_cast<EdgeId>(rng.below(g.num_edges()));
      const Edge& ed = g.edge(e);
      const bool in_ref = reference.count(e) > 0;
      EXPECT_EQ(m.contains(g, e), in_ref);
      if (in_ref) {
        if (rng.coin()) {
          m.remove(g, e);
          reference.erase(e);
        }
        continue;
      }
      // Insert if endpoints free in the reference.
      bool endpoint_taken = false;
      for (EdgeId other : reference) {
        const Edge& oe = g.edge(other);
        if (oe.u == ed.u || oe.u == ed.v || oe.v == ed.u || oe.v == ed.v) {
          endpoint_taken = true;
          break;
        }
      }
      if (endpoint_taken) {
        EXPECT_THROW(m.add(g, e), std::invalid_argument);
      } else {
        m.add(g, e);
        reference.insert(e);
      }
      EXPECT_EQ(m.size(), reference.size());
    }
    // Final cross-check of the full edge set.
    std::vector<EdgeId> ids = m.edge_ids(g);
    EXPECT_EQ(std::set<EdgeId>(ids.begin(), ids.end()), reference);
  }
}

// ----------------------------------- delivery-order perturbation -------
//
// The engine sorts every inbox into a canonical order; the `reorder`
// fault profile deterministically shuffles each receiver's inbox every
// round. A randomized protocol whose correctness leans on delivery
// order would break here; one whose *distribution* is order-invariant
// must produce valid results of statistically indistinguishable size.

struct SizeStats {
  double mean = 0.0;
  double stderr_mean = 0.0;
};

template <typename RunFn>
SizeStats size_distribution(RunFn&& run, int seeds) {
  std::vector<double> sizes;
  for (int s = 1; s <= seeds; ++s) {
    sizes.push_back(static_cast<double>(run(static_cast<std::uint64_t>(s))));
  }
  SizeStats st;
  for (const double x : sizes) st.mean += x;
  st.mean /= static_cast<double>(sizes.size());
  double var = 0.0;
  for (const double x : sizes) var += (x - st.mean) * (x - st.mean);
  var /= static_cast<double>(sizes.size() - 1);
  st.stderr_mean = std::sqrt(var / static_cast<double>(sizes.size()));
  return st;
}

/// Means are "indistinguishable" when they differ by less than four
/// pooled standard errors (plus an absolute floor for near-zero
/// variance cases) — loose enough to be seed-stable, tight enough to
/// catch any systematic order dependence.
void expect_indistinguishable(const SizeStats& a, const SizeStats& b) {
  const double tol = std::max(
      1.0, 4.0 * std::sqrt(a.stderr_mean * a.stderr_mean +
                           b.stderr_mean * b.stderr_mean));
  EXPECT_NEAR(a.mean, b.mean, tol);
}

TEST(Robustness, IsraeliItaiIndifferentToDeliveryOrder) {
  Rng rng(41);
  const Graph g = erdos_renyi(512, 8.0 / 512.0, rng);
  constexpr int kSeeds = 20;
  const auto run = [&](const std::string& faults) {
    return size_distribution(
        [&](std::uint64_t seed) {
          IsraeliItaiOptions opts;
          opts.seed = seed;
          opts.faults = faults;
          const DistMatchingResult res = israeli_itai(g, opts);
          EXPECT_TRUE(is_valid_matching(g, res.matching.edge_ids(g)));
          return res.matching.size();
        },
        kSeeds);
  };
  expect_indistinguishable(run(""), run("reorder"));
}

TEST(Robustness, LubyIndifferentToDeliveryOrder) {
  Rng rng(43);
  const Graph g = erdos_renyi(512, 8.0 / 512.0, rng);
  constexpr int kSeeds = 20;
  const auto run = [&](const std::string& faults) {
    return size_distribution(
        [&](std::uint64_t seed) {
          MisOptions opts;
          opts.seed = seed;
          opts.faults = faults;
          const MisResult res = luby_mis(g, opts);
          EXPECT_TRUE(is_independent_set(g, res.in_mis));
          std::size_t size = 0;
          for (const char c : res.in_mis) size += c != 0;
          return size;
        },
        kSeeds);
  };
  expect_indistinguishable(run(""), run("reorder"));
}

TEST(Robustness, ReorderedInboxesStayBitIdenticalAcrossThreads) {
  // The shuffle derives from (receiver, round), not from which worker
  // or shard sorts the inbox — so even the *perturbed* execution is
  // reproducible across thread counts.
  Rng rng(47);
  const Graph g = erdos_renyi(512, 8.0 / 512.0, rng);
  IsraeliItaiOptions opts;
  opts.seed = 3;
  opts.faults = "reorder";
  const DistMatchingResult inline_run = israeli_itai(g, opts);
  ThreadPool pool(4);
  opts.pool = &pool;
  opts.shards = 4;
  const DistMatchingResult pooled_run = israeli_itai(g, opts);
  EXPECT_EQ(inline_run.matching.edge_ids(g), pooled_run.matching.edge_ids(g));
  EXPECT_EQ(inline_run.stats.messages, pooled_run.stats.messages);
}

// ----------------------------------------- seed-sensitivity sweeps -----

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, AlgorithmsNeverProduceInvalidOutput) {
  // Whatever the seed, outputs must be valid matchings within bounds.
  Rng rng(GetParam());
  const Graph g = erdos_renyi(40, 0.12, rng);
  auto w = uniform_weights(std::max<EdgeId>(g.num_edges(), 1), 1.0, 99.0,
                           rng);
  w.resize(g.num_edges());
  IsraeliItaiOptions io;
  io.seed = GetParam();
  const auto ii = israeli_itai(g, io);
  EXPECT_TRUE(is_valid_matching(g, ii.matching.edge_ids(g)));
  if (g.num_edges() > 0) {
    const WeightedGraph wg = make_weighted(Graph(g), std::move(w));
    ClassMwmOptions co;
    co.seed = GetParam();
    const auto cm = class_mwm(wg, co);
    EXPECT_TRUE(is_valid_matching(g, cm.matching.edge_ids(g)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(0u, 1u, 0xffffffffffffffffULL,
                                           0x8000000000000000ULL, 12345u));

}  // namespace
}  // namespace lps
