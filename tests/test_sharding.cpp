// Sharded execution is a pure locality optimization: for every engine
// client, every shard count, and every thread count, the execution must
// be bit-identical — same matching, same message/bit/round counts, same
// metrics (DESIGN.md §11). This suite enforces that via the registry
// for all 8 engine-backed solvers (case matrix + helpers shared with
// test_telemetry via engine_cases.hpp), and checks that the LCA oracles
// (which never see the engine) still agree with sharded global runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "engine_cases.hpp"
#include "lca/oracle.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"

namespace lps {
namespace {

using api::Instance;
using api::SolveResult;
using api::SolverConfig;
using api::SolverRegistry;
using test_support::ShardCase;
using test_support::expect_identical;
using test_support::kEngineCases;
using test_support::solve_with;

const auto& kCases = kEngineCases;

TEST(Sharding, AllEngineClientsBitIdenticalAcrossShardCounts) {
  for (const ShardCase& c : kCases) {
    const SolveResult base = solve_with(c, /*shards=*/1, nullptr);
    for (unsigned shards : {0u, 2u, 4u, 8u}) {
      const SolveResult r = solve_with(c, shards, nullptr);
      expect_identical(base, r,
                       std::string(c.solver) + " shards=" +
                           std::to_string(shards) + " vs 1");
    }
  }
}

TEST(Sharding, ShardsAndThreadsComposeBitIdentically) {
  ThreadPool pool(4);
  for (const ShardCase& c : kCases) {
    const SolveResult base = solve_with(c, /*shards=*/1, nullptr);
    for (unsigned shards : {2u, 4u}) {
      const SolveResult r = solve_with(c, shards, &pool);
      expect_identical(base, r,
                       std::string(c.solver) + " shards=" +
                           std::to_string(shards) + " threads=4 vs 1/seq");
    }
  }
}

TEST(Sharding, LcaOracleAgreesWithShardedGlobalRun) {
  // The oracle simulates the virtual global execution per query and
  // never touches the engine; its answers must match a sharded global
  // solve edge for edge (same consistency contract as test_lca.cpp,
  // now with a nontrivial shard plan on the global side).
  const Instance inst = api::make_instance("er:n=4096,deg=4", /*seed=*/7);
  for (const std::string& name : lca::oracle_names()) {
    SolverConfig cfg;
    cfg.seed(11).shards(4);
    const SolveResult global =
        SolverRegistry::global().at(name).solve(inst, cfg);
    lca::OracleOptions opts;
    opts.seed = 11;
    const auto oracle = lca::make_oracle(name, inst.graph(), opts);
    for (EdgeId e = 0; e < inst.graph().num_edges(); ++e) {
      ASSERT_EQ(oracle->in_matching(e),
                global.matching.contains(inst.graph(), e))
          << name << " disagrees at edge " << e;
    }
  }
}

TEST(Sharding, RunnerRecordsShardsInProvenance) {
  api::RunSpec spec;
  spec.generator = "er:n=2048,deg=4";
  spec.solver = "israeli_itai";
  spec.shards = 2;
  const api::RunResult r = api::run_one(spec);
  EXPECT_TRUE(r.valid);
  EXPECT_NE(r.to_json().find("\"shards\": 2"), std::string::npos);
  // And a config-string override wins over the RunSpec field.
  api::RunSpec spec1 = spec;
  spec1.config = "shards=4";
  const api::RunResult r1 = api::run_one(spec1);
  EXPECT_EQ(r.matching_size, r1.matching_size);
}

TEST(ShardPlan, WidthAndCoverage) {
  // Forced counts: power-of-two width >= 1024 covering [0, n).
  for (NodeId n : {0u, 1u, 1023u, 1024u, 4096u, 100000u}) {
    for (unsigned req : {0u, 1u, 2u, 8u, 4096u}) {
      const ShardPlan plan = plan_shards(n, req);
      ASSERT_GE(plan.count, 1u);
      ASSERT_LE(plan.count, 4096u);
      if (req >= 1) {
        ASSERT_LE(plan.count, std::max(req, 1u));
      }
      ASSERT_GE(std::uint64_t{1} << plan.shift, 1024u);
      // Every vertex maps to a shard, ranges tile [0, n) exactly.
      NodeId covered = 0;
      for (unsigned s = 0; s < plan.count; ++s) {
        ASSERT_EQ(plan.shard_begin(s), covered);
        ASSERT_LE(plan.shard_begin(s), plan.shard_end(s));
        for (NodeId v = plan.shard_begin(s); v < plan.shard_end(s);
             v = (plan.shard_end(s) - v > 500 ? v + 499 : v + 1)) {
          ASSERT_EQ(plan.shard_of(v), s);
        }
        covered = plan.shard_end(s);
      }
      ASSERT_EQ(covered, n);
    }
  }
}

TEST(CacheDetect, FallbackWhenSysfsAbsent) {
  // No sysfs (containers, non-Linux): every field keeps its conservative
  // default — 32 KiB L1d with 64-byte lines is the floor the SIMD block
  // sizing assumes.
  const CacheInfo info = detect_cache_at("/nonexistent/lps-cache-test");
  EXPECT_EQ(info.l1d_bytes, std::size_t{32} << 10);
  EXPECT_EQ(info.line_bytes, std::size_t{64});
  EXPECT_EQ(info.l2_bytes, std::size_t{1} << 20);
  EXPECT_EQ(info.l3_bytes, std::size_t{8} << 20);
}

TEST(CacheDetect, ReadsSyntheticSysfs) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "lps_cache_sysfs";
  fs::remove_all(root);
  auto write = [&](const std::string& index, const std::string& file,
                   const std::string& content) {
    fs::create_directories(root / index);
    std::ofstream(root / index / file) << content << "\n";
  };
  // index0: L1 Instruction — must be skipped for l1d sizing.
  write("index0", "level", "1");
  write("index0", "type", "Instruction");
  write("index0", "size", "64K");
  write("index0", "coherency_line_size", "128");
  // index1: L1 Data 48K, 64-byte lines.
  write("index1", "level", "1");
  write("index1", "type", "Data");
  write("index1", "size", "48K");
  write("index1", "coherency_line_size", "64");
  // index2/index3: L2/L3.
  write("index2", "level", "2");
  write("index2", "type", "Unified");
  write("index2", "size", "2048K");
  write("index3", "level", "3");
  write("index3", "type", "Unified");
  write("index3", "size", "16M");

  const CacheInfo info = detect_cache_at(root.string());
  EXPECT_EQ(info.l1d_bytes, std::size_t{48} << 10);
  EXPECT_EQ(info.line_bytes, std::size_t{64});
  EXPECT_EQ(info.l2_bytes, std::size_t{2048} << 10);
  EXPECT_EQ(info.l3_bytes, std::size_t{16} << 20);
  fs::remove_all(root);
}

TEST(ShardPlan, AutoPlanTracksDetectedCache) {
  const CacheInfo& cache = detect_cache();
  ASSERT_GT(cache.l2_bytes, 0u);
  ASSERT_GT(cache.l3_bytes, 0u);
  // The auto plan targets ~half of L2 per shard: shard width (in
  // engine bytes) must be within a power-of-two rounding of it.
  const NodeId n = 1u << 22;
  const ShardPlan plan = plan_shards(n, 0);
  const std::uint64_t width = std::uint64_t{1} << plan.shift;
  const std::uint64_t bytes = width * kEngineBytesPerVertex;
  const std::uint64_t target =
      std::max<std::uint64_t>(cache.l2_bytes / 2, 64u << 10);
  EXPECT_LT(bytes, 4 * target);
  EXPECT_GT(bytes * 4, target);
}

}  // namespace
}  // namespace lps
