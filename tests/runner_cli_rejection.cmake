# CLI contract test for tools/runner's input rejection: every malformed
# spec string — generator, solver, solver config, fault plan, dynamic
# stream — must exit 2 with exactly one `runner: invalid spec:` line on
# stderr, never a stack trace, a zero exit, or a leg-dependent format.
# CTest-unfriendly to express with PASS_REGULAR_EXPRESSION (which
# overrides the exit-code check entirely), so it runs as a script:
#
#   cmake -DRUNNER=<path-to-runner-binary> -P runner_cli_rejection.cmake
#
# Registered by the top-level CMakeLists as test `runner_cli_rejection`.
if(NOT RUNNER)
  message(FATAL_ERROR "pass -DRUNNER=<path to the runner binary>")
endif()

# Runs the runner with ${ARGN}, expecting exit 2 and a one-line
# `runner: invalid spec:` diagnostic on stderr.
function(expect_reject)
  execute_process(
    COMMAND "${RUNNER}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 2)
    message(SEND_ERROR
        "expected exit 2, got '${code}' for: ${ARGN}\nstderr: ${err}")
    return()
  endif()
  if(NOT err MATCHES "runner: invalid spec: ")
    message(SEND_ERROR
        "missing 'runner: invalid spec:' diagnostic for: ${ARGN}\n"
        "stderr: ${err}")
    return()
  endif()
  string(REGEX REPLACE "\n$" "" err_stripped "${err}")
  if(err_stripped MATCHES "\n")
    message(SEND_ERROR
        "diagnostic is not one line for: ${ARGN}\nstderr: ${err}")
  endif()
endfunction()

# Runs the runner with ${ARGN}, expecting success (exit 0).
function(expect_accept)
  execute_process(
    COMMAND "${RUNNER}" ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(SEND_ERROR
        "expected exit 0, got '${code}' for: ${ARGN}\nstderr: ${err}")
  endif()
endfunction()

# Missing required flags print usage and exit 2 (no diagnostic line —
# the usage text is the diagnostic).
execute_process(COMMAND "${RUNNER}" --generator path:n=8
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(SEND_ERROR "expected exit 2 without --solver, got '${code}'")
endif()

# Malformed generator spec.
expect_reject(--generator er:n=bogus --solver greedy_mcm)
expect_reject(--generator nosuchfamily:n=8 --solver greedy_mcm)
# Unknown solver.
expect_reject(--generator path:n=8 --solver nosuchsolver)
# Config key the solver does not understand.
expect_reject(--generator path:n=8 --solver israeli_itai --config bogus=1)
# Fault specs: unknown preset, out-of-range probability, unknown key,
# and budget violation (drop + delay_p + dup > 1).
expect_reject(--generator path:n=8 --solver israeli_itai --faults nosuchpreset)
expect_reject(--generator path:n=8 --solver israeli_itai
              --faults bad:drop=1.5)
expect_reject(--generator path:n=8 --solver israeli_itai
              --faults bad:frobnicate=1)
expect_reject(--generator path:n=8 --solver israeli_itai
              --faults bad:drop=0.6,dup=0.6)
# Graph-layer faults require the dynamic leg.
expect_reject(--generator path:n=8 --solver israeli_itai --faults flap1)
# Message-layer faults require a solver with a `faults` config key.
expect_reject(--generator path:n=8 --solver greedy_mcm --faults drop10)
# Dynamic leg: missing stream, malformed stream, unknown maintainer.
expect_reject(--generator path:n=8 --solver greedy_mcm --dynamic greedy)
expect_reject(--generator path:n=8 --solver greedy_mcm --dynamic greedy
              --dynamic-stream churn:bogus=1)
expect_reject(--generator path:n=8 --solver greedy_mcm
              --dynamic nosuchmaintainer
              --dynamic-stream churn:n=64,m0=64,updates=16)

# And the contract's other half: well-formed specs still run.
expect_accept(--generator path:n=8 --solver greedy_mcm --oracle none
              --no-telemetry)
expect_accept(--generator er:n=64,deg=3 --solver israeli_itai --oracle none
              --faults drop10 --no-telemetry)
