// Tests for the Section 3.2 bipartite CONGEST engine: Algorithm 3
// counting (against the Figure 1 instance and brute-force oracles,
// including the Lemma 3.6 bound), the token selection of Lemma 3.7, the
// Aug subroutine's maximality, and the Theorem 3.8 driver.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bipartite_counting.hpp"
#include "core/bipartite_mcm.hpp"
#include "graph/generators.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

using lps::testing::make_fig1;
using lps::testing::sweep_seeds;

// ------------------------------------------- Algorithm 3 counting -----

TEST(BipartiteCounting, Fig1InstanceExactCounts) {
  const auto fig = make_fig1();
  const CountingResult res =
      count_augmenting_paths(fig.graph, fig.side, fig.matching, 3, {});

  // Depths: free X at 0; first Y layer at 1; matched X at 2; free Y at 3.
  const std::vector<std::uint32_t> expect_depth = {0, 0, 1, 1, 1, 2, 2, 3, 3};
  EXPECT_EQ(res.depth, expect_depth);

  // Totals (hand-computed layer by layer, as in the paper's Figure 1).
  EXPECT_EQ(res.total[2].to_u64(), 1u);  // y0 <- x0
  EXPECT_EQ(res.total[3].to_u64(), 2u);  // y1 <- x0, x1
  EXPECT_EQ(res.total[4].to_u64(), 1u);  // y2 <- x1 (length-1 path!)
  EXPECT_EQ(res.total[5].to_u64(), 1u);  // x2 <- mate y0
  EXPECT_EQ(res.total[6].to_u64(), 2u);  // x3 <- mate y1
  EXPECT_EQ(res.total[7].to_u64(), 3u);  // y3 <- x2 (1) + x3 (2)
  EXPECT_EQ(res.total[8].to_u64(), 2u);  // y4 <- x3 (2)

  // Free-Y endpoints are exactly y2, y3, y4.
  EXPECT_TRUE(res.is_path_endpoint(4));
  EXPECT_TRUE(res.is_path_endpoint(7));
  EXPECT_TRUE(res.is_path_endpoint(8));
  EXPECT_FALSE(res.is_path_endpoint(2));  // matched

  // Cross-check against the brute-force path enumerator.
  EXPECT_EQ(count_paths_oracle(fig.graph, fig.side, fig.matching, 7, 3, {}),
            3u);
  EXPECT_EQ(count_paths_oracle(fig.graph, fig.side, fig.matching, 8, 3, {}),
            2u);
  EXPECT_EQ(count_paths_oracle(fig.graph, fig.side, fig.matching, 4, 1, {}),
            1u);
}

TEST(BipartiteCounting, MessageBitsStayLogarithmicInDelta) {
  // CONGEST claim: counting messages are O(l log Delta) bits.
  Rng rng(7);
  const auto bg = random_bipartite(60, 60, 0.08, rng);
  Matching m(bg.graph.num_nodes());
  const CountingResult res =
      count_augmenting_paths(bg.graph, bg.side, m, 5, {});
  const double log_delta = std::log2(bg.graph.max_degree() + 1.0);
  EXPECT_LE(res.stats.max_message_bits,
            static_cast<std::uint64_t>(8 * (5 * log_delta + 8)));
}

TEST(BipartiteCounting, Lemma36UpperBound) {
  // n_v <= Delta^{ceil(d(v)/2)}.
  Rng rng(11);
  for (std::uint64_t seed : sweep_seeds(6, 100)) {
    Rng local(seed);
    const auto bg = random_bipartite(25, 25, 0.15, local);
    // A partial matching (greedy over half the edges).
    Matching m(bg.graph.num_nodes());
    for (EdgeId e = 0; e < bg.graph.num_edges(); e += 2) {
      const Edge& ed = bg.graph.edge(e);
      if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(bg.graph, e);
    }
    const CountingResult res =
        count_augmenting_paths(bg.graph, bg.side, m, 7, {});
    const double delta = bg.graph.max_degree();
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      if (res.depth[v] == kUnreached || res.total[v].is_zero()) continue;
      const double bound =
          std::pow(delta, std::ceil(res.depth[v] / 2.0)) + 0.5;
      EXPECT_LE(res.total[v].to_double(), bound)
          << "v=" << v << " d=" << res.depth[v];
    }
  }
  (void)rng;
}

TEST(BipartiteCounting, CountsMatchOracleAtShortestDepth) {
  // Lemma 3.6 equality holds for endpoints at the globally shortest
  // augmenting-path length (see the lemma's no-shorter-paths premise).
  for (std::uint64_t seed : sweep_seeds(8, 777)) {
    Rng rng(seed);
    const auto bg = random_bipartite(20, 20, 0.12, rng);
    Matching m = greedy_mcm(bg.graph);
    // Drop one matched edge to create augmenting paths of length >= 3
    // sometimes.
    auto ids = m.edge_ids(bg.graph);
    if (ids.size() >= 2) m.remove(bg.graph, ids[ids.size() / 2]);
    const int cap = 7;
    const CountingResult res =
        count_augmenting_paths(bg.graph, bg.side, m, cap, {});
    // Find the shortest endpoint depth.
    std::uint32_t shortest = kUnreached;
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      if (bg.side[v] == 1 && m.is_free(v) && res.depth[v] != kUnreached &&
          !res.total[v].is_zero()) {
        shortest = std::min(shortest, res.depth[v]);
      }
    }
    if (shortest == kUnreached) continue;
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      if (bg.side[v] != 1 || !m.is_free(v) || res.depth[v] != shortest) {
        continue;
      }
      const std::uint64_t oracle = count_paths_oracle(
          bg.graph, bg.side, m, v, static_cast<int>(shortest), {});
      EXPECT_EQ(res.total[v].to_u64(), oracle) << "v=" << v;
    }
  }
}

TEST(BipartiteCounting, RespectsActiveEdgeMask) {
  const auto fig = make_fig1();
  // Deactivate the edge x3-y3 (6,7): y3's count drops to 1.
  std::vector<char> mask(fig.graph.num_edges(), 1);
  mask[fig.graph.find_edge(6, 7)] = 0;
  const CountingResult res =
      count_augmenting_paths(fig.graph, fig.side, fig.matching, 3, mask);
  EXPECT_EQ(res.total[7].to_u64(), 1u);
  EXPECT_EQ(res.total[8].to_u64(), 2u);
}

TEST(BipartiteCounting, RejectsBadArguments) {
  const auto fig = make_fig1();
  EXPECT_THROW(
      count_augmenting_paths(fig.graph, fig.side, fig.matching, 2, {}),
      std::invalid_argument);
  EXPECT_THROW(count_augmenting_paths(fig.graph, {0, 1}, fig.matching, 3, {}),
               std::invalid_argument);
}

// --------------------------------------------- Aug (Lemma 3.7 etc.) ---

class AugSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AugSweep, ProducesMaximalSetOfShortPaths) {
  Rng rng(GetParam());
  const auto bg = random_bipartite(30, 30, 0.1, rng);
  Matching m(bg.graph.num_nodes());
  for (const int l : {1, 3, 5}) {
    AugOptions opts;
    opts.seed = GetParam() * 7 + l;
    const AugResult res = bipartite_aug(bg.graph, bg.side, m, l, {}, opts);
    EXPECT_TRUE(res.converged);
    // Maximality: no augmenting path of length <= l remains.
    EXPECT_FALSE(has_augmenting_path_leq(bg.graph, m, l)) << "l=" << l;
    EXPECT_TRUE(is_valid_matching(bg.graph, m.edge_ids(bg.graph)));
  }
}

TEST_P(AugSweep, IterationCountStaysLogarithmic) {
  Rng rng(GetParam() ^ 0xbeef);
  const auto bg = random_bipartite(100, 100, 0.04, rng);
  Matching m(bg.graph.num_nodes());
  AugOptions opts;
  opts.seed = GetParam();
  const AugResult res = bipartite_aug(bg.graph, bg.side, m, 3, {}, opts);
  EXPECT_TRUE(res.converged);
  // W.h.p. O(log N); the auto cap is 64 + 16 log N, assert well within.
  EXPECT_LE(res.iterations, 120u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugSweep,
                         ::testing::Values(31u, 37u, 41u, 43u, 47u));

TEST(BipartiteAug, LengthOneEqualsMaximalMatchingOnFreePairs) {
  const Graph g = complete_bipartite(6, 6);
  std::vector<std::uint8_t> side(12, 0);
  for (NodeId v = 6; v < 12; ++v) side[v] = 1;
  Matching m(12);
  AugOptions opts;
  opts.seed = 3;
  const AugResult res = bipartite_aug(g, side, m, 1, {}, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(m.size(), 6u);  // maximal on K_{6,6} = perfect
}

TEST(BipartiteAug, AppliedPathsAreCountedAndDisjoint) {
  const auto fig = make_fig1();
  Matching m = fig.matching;
  AugOptions opts;
  opts.seed = 5;
  const AugResult res = bipartite_aug(fig.graph, fig.side, m, 3, {}, opts);
  EXPECT_TRUE(res.converged);
  // The instance supports at most 2 disjoint augmenting paths of length
  // <= 3 (x2,x3 are shared bottlenecks); final matching size is 4:
  // the two original matched edges rewired plus both free X matched.
  EXPECT_EQ(m.size(), 4u);
  EXPECT_GE(res.paths_applied, 2u);
  EXPECT_FALSE(has_augmenting_path_leq(fig.graph, m, 3));
}

// ----------------------------------------- Theorem 3.8 driver ---------

class BipartiteMcmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BipartiteMcmSweep, ApproximationGuarantee) {
  Rng rng(GetParam());
  const auto bg = random_bipartite(50, 50, 0.07, rng);
  BipartiteMcmOptions opts;
  opts.k = 3;
  opts.seed = GetParam() + 1;
  const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, opts);
  EXPECT_TRUE(res.converged);
  const std::size_t opt = hopcroft_karp(bg.graph, bg.side).size();
  // After phases l = 1,3,5: no augmenting path <= 5 => >= (1 - 1/4) opt
  // (Lemma 3.5 with shortest path >= 7 => k = 3 ... 1-1/(k+1) = 3/4).
  EXPECT_GE(4 * res.matching.size(), 3 * opt);
  EXPECT_FALSE(has_augmenting_path_leq(bg.graph, res.matching, 5));
}

TEST_P(BipartiteMcmSweep, CongestMessageBound) {
  Rng rng(GetParam() ^ 0x99);
  const auto bg = random_bipartite(40, 40, 0.1, rng);
  BipartiteMcmOptions opts;
  opts.k = 2;
  opts.seed = GetParam();
  const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, opts);
  // Messages: counts of O(l log Delta) bits + token values (64) + ids.
  const double log_delta = std::log2(bg.graph.max_degree() + 1.0);
  const double bound = 8 * (3 * log_delta + 64 + 16);
  EXPECT_LE(res.stats.max_message_bits, static_cast<std::uint64_t>(bound));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartiteMcmSweep,
                         ::testing::Values(51u, 53u, 59u, 61u));

TEST(BipartiteMcm, PerfectOnCompleteBipartite) {
  const Graph g = complete_bipartite(8, 8);
  std::vector<std::uint8_t> side(16, 0);
  for (NodeId v = 8; v < 16; ++v) side[v] = 1;
  BipartiteMcmOptions opts;
  opts.k = 2;
  opts.seed = 77;
  const BipartiteMcmResult res = bipartite_mcm(g, side, opts);
  // K_{8,8} has no augmenting path longer than 1 at a maximal matching
  // short of perfect; phases to l=3 suffice for perfection.
  EXPECT_EQ(res.matching.size(), 8u);
}

TEST(BipartiteMcm, EmptyGraph) {
  const BipartiteMcmResult res = bipartite_mcm(Graph(4, {}), {0, 0, 1, 1});
  EXPECT_EQ(res.matching.size(), 0u);
  EXPECT_TRUE(res.converged);
}

TEST(BipartiteMcm, LargeKGivesExactOptimum) {
  // With k large enough that 2k-1 exceeds every augmenting-path length,
  // the phase ladder terminates with NO augmenting path at all — i.e.,
  // the exact maximum matching (Berge). Strong end-to-end check.
  for (const std::uint64_t seed : {3u, 5u, 8u}) {
    Rng rng(seed);
    const auto bg = random_bipartite(18, 18, 0.15, rng);
    BipartiteMcmOptions opts;
    opts.k = 10;  // paths up to length 19 > any in a 36-node graph here
    opts.seed = seed;
    const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.matching.size(), hopcroft_karp(bg.graph, bg.side).size());
  }
}

TEST(BipartiteAug, TightnessLadderIsExact) {
  // On the tight chain, an engine capped at 2k-1 is stuck at exactly
  // k/(k+1) of the optimum; the cap 2k+1 solves the instance. This is
  // the Lemma 3.5 boundary realized as an input.
  for (const int k : {2, 3}) {
    const TightChain chain = tight_bipartite_chain(k, 8);
    Matching stuck = Matching::from_edges(chain.graph, chain.matched);
    AugOptions o;
    o.seed = 3;
    for (int l = 1; l <= 2 * k - 1; l += 2) {
      const AugResult res =
          bipartite_aug(chain.graph, chain.side, stuck, l, {}, o);
      EXPECT_TRUE(res.converged);
      EXPECT_EQ(res.paths_applied, 0u);  // nothing visible below 2k+1
    }
    EXPECT_EQ(stuck.size(), 8u * k);
    Matching solved = Matching::from_edges(chain.graph, chain.matched);
    const AugResult res =
        bipartite_aug(chain.graph, chain.side, solved, 2 * k + 1, {}, o);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(solved.size(), 8u * (k + 1));  // perfect
  }
}

}  // namespace
}  // namespace lps
