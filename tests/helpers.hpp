// Shared fixtures for the test suite, including the paper's two worked
// figures (reconstructed; see EXPERIMENTS.md for the OCR caveat).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace lps::testing {

/// A layered bipartite instance in the style of the paper's Figure 1,
/// with hand-computed Algorithm 3 path counts.
///
///   free X: x0=0, x1=1          (depth 0)
///   Y:      y0=2, y1=3, y2=4    (depth 1; y2 free => length-1 path)
///   X:      x2=5, x3=6          (depth 2; matched to y0, y1)
///   free Y: y3=7, y4=8          (depth 3)
///
/// Expected totals n_v: y0=1, y1=2, y2=1, x2=1, x3=2, y3=3, y4=2.
struct Fig1Instance {
  Graph graph;
  std::vector<std::uint8_t> side;
  Matching matching;
};

inline Fig1Instance make_fig1() {
  std::vector<Edge> edges = {
      {0, 2}, {0, 3}, {1, 3}, {1, 4},  // depth 0 -> 1 (unmatched)
      {2, 5}, {3, 6},                  // matched
      {5, 7}, {6, 7}, {6, 8},          // depth 2 -> 3 (unmatched)
  };
  Fig1Instance out{Graph(9, std::move(edges)),
                   {0, 0, 1, 1, 1, 0, 0, 1, 1},
                   Matching(9)};
  out.matching.add(out.graph, out.graph.find_edge(2, 5));
  out.matching.add(out.graph, out.graph.find_edge(3, 6));
  return out;
}

/// A weighted instance mirroring Figure 2's arithmetic exactly:
/// w(M) = 14, w_M(M') = 10, and w(M'') = 26 >= w(M) + w_M(M') = 24
/// (strict because two wraps share a matched edge).
///
///   path a=0, b=1, c=2, d=3 with w(ab)=6, w(bc)=2, w(cd)=7
///   path e=4, f=5, g=6 with w(ef)=13, w(fg)=12
///   M  = { bc, fg }  (weight 14)
///   M' = { ab, cd, ef }  (w_M gains 4 + 5 + 1 = 10)
///   M''= { ab, cd, ef }  (weight 26)
struct Fig2Instance {
  WeightedGraph wg;
  Matching m;
  std::vector<EdgeId> m_prime;
};

inline Fig2Instance make_fig2() {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}};
  std::vector<double> weights = {6, 2, 7, 13, 12};
  Fig2Instance out{make_weighted(Graph(7, std::move(edges)),
                                 std::move(weights)),
                   Matching(7),
                   {}};
  const Graph& g = out.wg.graph;
  out.m.add(g, g.find_edge(1, 2));
  out.m.add(g, g.find_edge(5, 6));
  out.m_prime = {g.find_edge(0, 1), g.find_edge(2, 3), g.find_edge(4, 5)};
  return out;
}

/// Seeds used by parameterized sweeps.
inline std::vector<std::uint64_t> sweep_seeds(int count, std::uint64_t base) {
  std::vector<std::uint64_t> out;
  for (int i = 0; i < count; ++i) out.push_back(base + 977u * i);
  return out;
}

}  // namespace lps::testing
