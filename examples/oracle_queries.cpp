// Serve a stream of edge queries against a large random graph through
// the LCA matching oracle — the "millions of users" workload: many
// cheap, consistent point queries instead of one monolithic solve.
//
//   ./oracle_queries [--n 20000] [--deg 8] [--solver rank_greedy_mcm]
//                    [--queries 2000] [--seed 1] [--threads 0]
//
// Prints probes/query, queries/sec, and cache hit rate for the oracle
// batch, then audits every answer against the global solver's matching
// (the consistency contract: same seed => same virtual execution).
#include <cstdio>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "lca/batch.hpp"
#include "lca/oracle.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  const long n = opts.get_int("n", 20000);
  const long deg = opts.get_int("deg", 8);
  const std::string solver_name = opts.get("solver", "rank_greedy_mcm");
  const long num_queries = opts.get_int("queries", 2000);
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const unsigned threads = static_cast<unsigned>(opts.get_int("threads", 0));

  if (!lca::has_oracle(solver_name)) {
    std::fprintf(stderr, "oracle_queries: no LCA oracle for solver '%s'",
                 solver_name.c_str());
    for (const std::string& name : lca::oracle_names()) {
      std::fprintf(stderr, " (try %s)", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  const api::Instance inst = api::make_instance(
      "er:n=" + std::to_string(n) + ",deg=" + std::to_string(deg), seed);
  const Graph& g = inst.graph();
  std::printf("instance: er n=%u m=%u, solver %s, seed %llu\n",
              g.num_nodes(), g.num_edges(), solver_name.c_str(),
              static_cast<unsigned long long>(seed));
  if (g.num_edges() == 0) {
    std::printf("no edges, nothing to query\n");
    return 0;
  }

  // A skewed query stream: half the stream hammers a small hot set (the
  // cache-locality scenario the LRU memo amortizes), half is uniform.
  Rng rng(seed + 1);
  const EdgeId hot_span =
      std::max<EdgeId>(1, g.num_edges() / 100);  // hottest 1% of edges
  std::vector<EdgeId> queries;
  queries.reserve(num_queries);
  for (long i = 0; i < num_queries; ++i) {
    queries.push_back(static_cast<EdgeId>(
        rng.coin() ? rng.below(hot_span) : rng.below(g.num_edges())));
  }

  ThreadPool pool(threads);
  lca::BatchEngine engine(
      [&] {
        lca::OracleOptions oopts;
        oopts.seed = seed;
        return lca::make_oracle(solver_name, g, oopts);
      },
      &pool);
  const lca::EdgeBatchResult batch = engine.query_edges(queries);
  std::printf(
      "oracle batch: %llu queries over %zu worker oracle(s) in %.2f ms\n",
      static_cast<unsigned long long>(batch.stats.oracle.queries),
      engine.num_oracles(), batch.stats.wall_ms);
  std::printf("  probes/query   %.2f   (n = %u: sublinear means << n)\n",
              batch.stats.oracle.probes_per_query(), g.num_nodes());
  std::printf("  queries/sec    %.0f\n", batch.stats.queries_per_sec());
  std::printf("  cache hit rate %.4f\n",
              batch.stats.oracle.cache_hit_rate());

  // The audit: the same seed through the registry's global solver must
  // produce exactly the answers the oracle just served.
  const api::MatchingSolver& solver =
      api::SolverRegistry::global().at(solver_name);
  api::SolverConfig cfg;
  cfg.seed(seed);
  const api::SolveResult global = solver.solve(inst, cfg);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if ((batch.in_matching[i] != 0) !=
        global.matching.contains(g, queries[i])) {
      ++disagreements;
    }
  }
  std::printf("global solve: %.2f ms, |M| = %zu\n", global.wall_ms,
              global.matching.size());
  std::printf("agreement: %zu/%zu answers match the global matching\n",
              queries.size() - disagreements, queries.size());
  return disagreements == 0 ? 0 : 1;
}
