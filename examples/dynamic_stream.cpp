// Example: replay switch VOQ traffic through the dynamic matching
// engine. Instead of re-scheduling the crossbar from scratch every
// timeslot (what examples/switch_scheduling.cpp does), the request
// graph lives in a DynamicMatcher: arrivals insert edges, drained VOQs
// delete them, and each slot serves the *maintained* matching — the
// previous slot's schedule locally repaired. Prints throughput and
// recourse per maintainer, plus a plain churn-trace replay for scale.
//
//   ./dynamic_stream [--ports 16] [--slots 20000] [--load 0.85]
#include <iostream>

#include "dynamic/matcher.hpp"
#include "dynamic/stream.hpp"
#include "dynamic/switch_adapter.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  dynamic::SwitchReplayConfig config;
  config.ports = static_cast<std::size_t>(opts.get_int("ports", 16));
  config.slots = static_cast<std::uint64_t>(opts.get_int("slots", 20000));
  config.load = opts.get_double("load", 0.85);
  config.pattern = TrafficPattern::kUniform;
  config.seed = 7;

  std::cout << "## Switch traffic as an update stream (" << config.ports
            << " ports, load " << config.load << ", " << config.slots
            << " slots)\n\n";
  Table t({"maintainer", "throughput", "mean matching", "updates/slot",
           "recourse/update", "updates total"});
  for (const char* name : {"greedy", "repair"}) {
    auto matcher = dynamic::make_matcher(
        name, dynamic::make_port_graph(config.ports),
        name == std::string("repair")
            ? std::map<std::string, std::string>{{"interval", "4"}}
            : std::map<std::string, std::string>{});
    const dynamic::SwitchReplayMetrics m =
        dynamic::replay_switch(*matcher, config);
    t.row();
    t.cell(name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", m.normalized_throughput);
    t.cell(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", m.mean_matching);
    t.cell(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", m.updates_per_slot);
    t.cell(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", m.recourse_per_update);
    t.cell(buf);
    t.cell(static_cast<std::size_t>(m.updates));
  }
  t.print_markdown(std::cout);

  // And a generated churn trace, the update-stream front door.
  std::cout << "\n## Uniform churn trace through the greedy maintainer\n\n";
  const dynamic::StreamSpec stream = dynamic::make_update_stream(
      "churn:n=4096,m0=8192,updates=20000,vertex=0.01", 42);
  auto matcher =
      dynamic::make_matcher("greedy", dynamic::DynamicGraph(stream.initial_nodes));
  matcher->apply_trace(stream.trace);
  matcher->flush();
  std::cout << "applied " << matcher->stats().updates << " updates, matching "
            << matcher->matching_size() << " over "
            << matcher->graph().num_live_edges() << " live edges, recourse/update "
            << static_cast<double>(matcher->stats().recourse) /
                   static_cast<double>(matcher->stats().updates)
            << "\n";
  return 0;
}
