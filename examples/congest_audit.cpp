// CONGEST audit: the runtime meters every message in bits, so the
// paper's model claims are checkable numbers. This example prints, for
// growing n, the rounds and message-size profile of the Section 3.2
// engine (O(log Delta)-bit messages) next to the Section 3.1 generic
// algorithm (O(|V|+|E|)-bit messages) on the same graphs.
//
//   ./congest_audit [--kmax 3] [--seed 1]
#include <cstdio>

#include "core/bipartite_mcm.hpp"
#include "core/generic_mcm.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  const int k = static_cast<int>(opts.get_int("kmax", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  std::printf("%8s %8s | %10s %14s | %10s %14s\n", "n", "m",
              "congest:R", "congest:maxbit", "local:R", "local:maxbit");
  for (const NodeId half : {32u, 64u, 128u, 256u, 512u}) {
    Rng rng(seed + half);
    const BipartiteGraph bg = random_bipartite(half, half, 4.0 / half, rng);

    BipartiteMcmOptions bo;
    bo.k = k;
    bo.seed = seed;
    const BipartiteMcmResult congest = bipartite_mcm(bg.graph, bg.side, bo);

    GenericMcmOptions go;
    go.eps = 1.0 / k;
    go.seed = seed;
    const GenericMcmResult local = generic_mcm(bg.graph, go);

    std::printf("%8u %8u | %10llu %14llu | %10llu %14llu\n",
                bg.graph.num_nodes(), bg.graph.num_edges(),
                static_cast<unsigned long long>(congest.stats.rounds),
                static_cast<unsigned long long>(
                    congest.stats.max_message_bits),
                static_cast<unsigned long long>(local.stats.rounds),
                static_cast<unsigned long long>(local.stats.max_message_bits));
  }
  std::printf("\nReading: the CONGEST engine's max message width stays flat "
              "(~ k log Delta + log n + token bits) while the LOCAL generic "
              "algorithm ships whole neighborhoods whose size grows with "
              "the graph — exactly the contrast Sections 3.1 vs 3.2 draw.\n");
  return 0;
}
