// Weighted-matching scenario: assigning jobs to workers where edge
// weights are utilities. Runs the paper's Algorithm 5 ((1/2-eps)-MWM,
// Theorem 4.5) against the sequential greedy 1/2-MWM and the exact
// Hungarian optimum — all three resolved by name from the solver
// registry and compared through the uniform solve() interface.
//
//   ./weighted_assignment [--jobs 64] [--workers 64] [--degree 6]
//                         [--eps 0.05] [--seed 1]
#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  const long jobs = opts.get_int("jobs", 64);
  const long workers = opts.get_int("workers", 64);
  const long degree = opts.get_int("degree", 6);
  if (jobs < 1 || workers < 1 || degree < 1) {
    std::fprintf(stderr,
                 "weighted_assignment: --jobs, --workers, and --degree "
                 "must all be at least 1\n");
    return 1;
  }
  const double eps = opts.get_double("eps", 0.05);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 1));

  // Each job can run on `degree` random workers with a utility in
  // [1, 100] (say, expected revenue).
  const std::string generator =
      "bipartite_regular:nx=" + std::to_string(jobs) +
      ",ny=" + std::to_string(workers) + ",d=" + std::to_string(degree) +
      ",w=uniform,wlo=1,whi=100";
  const api::Instance market = api::make_instance(generator, seed);
  std::printf("assignment market: %ld jobs x %ld workers, %ld offers/job\n",
              jobs, workers, degree);

  const api::SolverRegistry& registry = api::SolverRegistry::global();
  const auto weight_of = [&](const api::SolveResult& r) {
    return r.matching.weight(market.weighted_graph());
  };

  api::SolverConfig base;
  base.seed(seed);
  const double exact = weight_of(registry.at("hungarian").solve(market, base));
  const double greedy =
      weight_of(registry.at("greedy_mwm").solve(market, base));

  // %.17g, not std::to_string: the latter truncates to 6 decimals,
  // turning a valid tiny eps into an out-of-range 0.
  char eps_str[32];
  std::snprintf(eps_str, sizeof(eps_str), "%.17g", eps);
  api::SolverConfig algo5 =
      api::SolverConfig::parse(std::string("eps=") + eps_str);
  algo5.seed(seed);
  const api::SolveResult res =
      registry.at("weighted_mwm").solve(market, algo5);
  const double achieved = weight_of(res);

  std::printf("  exact optimum (Hungarian):     %10.2f\n", exact);
  std::printf("  greedy 1/2-MWM (sequential):   %10.2f  (ratio %.4f)\n",
              greedy, greedy / exact);
  std::printf("  Algorithm 5 (1/2-eps, eps=%.2f): %8.2f  (ratio %.4f, "
              "guarantee %.4f)\n",
              eps, achieved, achieved / exact,
              registry.at("weighted_mwm").guarantee(algo5));
  std::printf("  distributed cost: %llu rounds, %llu messages, max %llu "
              "bits/message, %llu Algorithm 5 iterations\n",
              static_cast<unsigned long long>(res.stats.rounds),
              static_cast<unsigned long long>(res.stats.messages),
              static_cast<unsigned long long>(res.stats.max_message_bits),
              static_cast<unsigned long long>(
                  res.metrics.count("iterations")
                      ? static_cast<std::uint64_t>(res.metrics.at("iterations"))
                      : 0));
  return 0;
}
