// Weighted-matching scenario: assigning jobs to workers where edge
// weights are utilities. Runs the paper's Algorithm 5 ((1/2-eps)-MWM,
// Theorem 4.5) against the sequential greedy 1/2-MWM and the exact
// Hungarian optimum, and prints the convergence trajectory of Lemma 4.3.
//
//   ./weighted_assignment [--jobs 64] [--workers 64] [--degree 6]
//                         [--eps 0.05] [--seed 1]
#include <cstdio>

#include "core/weighted_mwm.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "seq/greedy.hpp"
#include "seq/hungarian.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  const NodeId jobs = static_cast<NodeId>(opts.get_int("jobs", 64));
  const NodeId workers = static_cast<NodeId>(opts.get_int("workers", 64));
  const NodeId degree = static_cast<NodeId>(opts.get_int("degree", 6));
  const double eps = opts.get_double("eps", 0.05);
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  // Each job can run on `degree` random workers with a utility in
  // [1, 100] (say, expected revenue).
  Rng rng(seed);
  BipartiteGraph bg = random_bipartite_regular_left(jobs, workers, degree, rng);
  auto utilities = uniform_weights(bg.graph.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg =
      make_weighted(std::move(bg.graph), std::move(utilities));

  std::printf("assignment market: %u jobs x %u workers, %u offers/job\n",
              jobs, workers, degree);

  const double exact = hungarian_mwm(wg, bg.side).weight(wg);
  const double greedy = greedy_mwm(wg).weight(wg);

  WeightedMwmOptions algo;
  algo.eps = eps;
  algo.seed = seed;
  const WeightedMwmResult res = weighted_mwm(wg, algo);
  const double algo5 = res.matching.weight(wg);

  std::printf("  exact optimum (Hungarian):     %10.2f\n", exact);
  std::printf("  greedy 1/2-MWM (sequential):   %10.2f  (ratio %.4f)\n",
              greedy, greedy / exact);
  std::printf("  Algorithm 5 (1/2-eps, eps=%.2f): %8.2f  (ratio %.4f)\n",
              eps, algo5, algo5 / exact);
  std::printf("  distributed cost: %llu rounds, %llu messages, max %llu "
              "bits/message\n",
              static_cast<unsigned long long>(res.stats.rounds),
              static_cast<unsigned long long>(res.stats.messages),
              static_cast<unsigned long long>(res.stats.max_message_bits));
  std::printf("  Lemma 4.3 trajectory (w(M_i)/OPT):");
  for (double w : res.weight_trajectory) std::printf(" %.3f", w / exact);
  std::printf("\n");
  return 0;
}
