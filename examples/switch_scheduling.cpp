// The paper's motivating application, runnable: an input-queued switch
// whose crossbar is driven by a choice of matching scheduler — including
// this paper's distributed (1-1/(k+1))-MCM engine.
//
//   ./switch_scheduling [--ports 16] [--load 0.9] [--slots 20000]
//                       [--pattern uniform|diagonal|logdiagonal|hotspot]
//                       [--scheduler pim|islip|greedy|distmcm|maxsize|maxweight]
#include <cstdio>
#include <memory>
#include <string>

#include "switch/voq.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  SwitchConfig cfg;
  cfg.ports = static_cast<std::size_t>(opts.get_int("ports", 16));
  cfg.load = opts.get_double("load", 0.9);
  cfg.slots = static_cast<std::uint64_t>(opts.get_int("slots", 20000));
  cfg.warmup = cfg.slots / 10;
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  const std::string pattern = opts.get("pattern", "uniform");
  if (pattern == "uniform") cfg.pattern = TrafficPattern::kUniform;
  else if (pattern == "diagonal") cfg.pattern = TrafficPattern::kDiagonal;
  else if (pattern == "logdiagonal") cfg.pattern = TrafficPattern::kLogDiagonal;
  else if (pattern == "hotspot") cfg.pattern = TrafficPattern::kHotspot;
  else {
    std::fprintf(stderr, "unknown pattern: %s\n", pattern.c_str());
    return 1;
  }

  const std::string name = opts.get("scheduler", "distmcm");
  std::unique_ptr<Scheduler> scheduler;
  if (name == "pim") scheduler = std::make_unique<PimScheduler>(4, cfg.seed);
  else if (name == "islip") scheduler = std::make_unique<IslipScheduler>(4);
  else if (name == "greedy") scheduler = std::make_unique<GreedyScheduler>();
  else if (name == "distmcm")
    scheduler = std::make_unique<DistMcmScheduler>(2, cfg.seed);
  else if (name == "maxsize") scheduler = std::make_unique<MaxSizeScheduler>();
  else if (name == "maxweight")
    scheduler = std::make_unique<MaxWeightScheduler>();
  else {
    std::fprintf(stderr, "unknown scheduler: %s\n", name.c_str());
    return 1;
  }

  std::printf("switch: %zu ports, load %.2f, pattern %s, scheduler %s, "
              "%llu slots\n",
              cfg.ports, cfg.load, to_string(cfg.pattern).c_str(),
              scheduler->name().c_str(),
              static_cast<unsigned long long>(cfg.slots));
  const SwitchMetrics m = run_switch(cfg, *scheduler);
  std::printf("  arrived %llu cells, delivered %llu\n",
              static_cast<unsigned long long>(m.arrived),
              static_cast<unsigned long long>(m.delivered));
  std::printf("  normalized throughput: %.4f\n", m.normalized_throughput);
  std::printf("  mean delay: %.2f slots   p99 delay: %.2f slots\n",
              m.mean_delay, m.p99_delay);
  std::printf("  mean queue occupancy: %.1f cells\n", m.mean_queue);
  return 0;
}
