// Quickstart: compute a near-maximum matching of a random bipartite
// graph with the paper's CONGEST engine (Theorem 3.8) and compare it to
// the exact Hopcroft–Karp optimum.
//
//   ./quickstart [--n 256] [--p 0.05] [--k 3] [--seed 1]
//
// Demonstrates the three-line public API:
//   auto bg  = random_bipartite(...);
//   auto res = bipartite_mcm(bg.graph, bg.side, {.k = 3, .seed = 1});
//   res.matching / res.stats
#include <cstdio>

#include "core/bipartite_mcm.hpp"
#include "graph/generators.hpp"
#include "seq/hopcroft_karp.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);
  const NodeId half = static_cast<NodeId>(opts.get_int("n", 256) / 2);
  const double p = opts.get_double("p", 8.0 / (2.0 * half));
  const int k = static_cast<int>(opts.get_int("k", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  Rng rng(seed);
  const BipartiteGraph bg = random_bipartite(half, half, p, rng);
  std::printf("graph: n=%u m=%u max_degree=%u\n", bg.graph.num_nodes(),
              bg.graph.num_edges(), bg.graph.max_degree());

  BipartiteMcmOptions algo;
  algo.k = k;
  algo.seed = seed;
  const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, algo);

  const Matching optimum = hopcroft_karp(bg.graph, bg.side);
  std::printf("matching: |M| = %zu   exact |M*| = %zu   ratio = %.4f "
              "(guarantee %.4f)\n",
              res.matching.size(), optimum.size(),
              optimum.size()
                  ? static_cast<double>(res.matching.size()) / optimum.size()
                  : 1.0,
              1.0 - 1.0 / (k + 1));
  std::printf("cost: %llu synchronous rounds, %llu messages, "
              "max message = %llu bits (CONGEST)\n",
              static_cast<unsigned long long>(res.stats.rounds),
              static_cast<unsigned long long>(res.stats.messages),
              static_cast<unsigned long long>(res.stats.max_message_bits));
  for (const auto& phase : res.phases) {
    std::printf("  phase l=%d: %llu Aug iterations, %zu paths applied\n",
                phase.l, static_cast<unsigned long long>(phase.iterations),
                phase.paths_applied);
  }
  return 0;
}
