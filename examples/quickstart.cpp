// Quickstart: compute a near-maximum matching of a random bipartite
// graph with the paper's CONGEST engine (Theorem 3.8) through the
// unified solver registry, and compare it to the exact Hopcroft-Karp
// optimum resolved through the same registry.
//
//   ./quickstart [--n 256] [--p 0.05] [--solver bipartite_mcm]
//                [--config k=3] [--seed 1] [--list]
//
// Demonstrates the registry-driven public API:
//   auto inst   = api::make_instance("bipartite:nx=128,ny=128,p=0.05", seed);
//   auto& s     = api::SolverRegistry::global().at("bipartite_mcm");
//   auto result = s.solve(inst, api::SolverConfig::parse("k=3"));
#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);

  if (opts.get_bool("list", false)) {
    std::printf("registered solvers:\n");
    for (const std::string& name : api::SolverRegistry::global().names()) {
      const api::MatchingSolver& s = api::SolverRegistry::global().at(name);
      std::printf("  %-22s %s\n", name.c_str(), s.description().c_str());
    }
    return 0;
  }

  // Odd --n rounds down to an even node count; p's default tracks the
  // actual instance size, not the requested one.
  const long half = opts.get_int("n", 256) / 2;
  const long n = 2 * half;
  if (n < 2) {
    std::fprintf(stderr, "quickstart: --n must be at least 2\n");
    return 1;
  }
  const double p = opts.get_double("p", 8.0 / static_cast<double>(n));
  const std::string solver_name = opts.get("solver", "bipartite_mcm");
  // Empty config = every solver's own defaults (bipartite_mcm: k=3), so
  // --solver works for any registered name without a matching --config.
  const std::string config = opts.get("config", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 1));

  // %.17g, not std::to_string: the latter truncates to 6 decimals and
  // rounds small probabilities (p = 8/n for large n) down to zero.
  char p_str[32];
  std::snprintf(p_str, sizeof(p_str), "%.17g", p);
  const std::string generator = "bipartite:nx=" + std::to_string(half) +
                                ",ny=" + std::to_string(half) +
                                ",p=" + p_str;
  const api::Instance inst = api::make_instance(generator, seed);
  std::printf("graph: %s -> n=%u m=%u max_degree=%u\n", generator.c_str(),
              inst.graph().num_nodes(), inst.graph().num_edges(),
              inst.graph().max_degree());

  const api::MatchingSolver& solver =
      api::SolverRegistry::global().at(solver_name);
  api::SolverConfig cfg = api::SolverConfig::parse(config);
  // The pre-registry interface took --k directly; keep honoring it (a
  // solver without a 'k' key will reject it loudly).
  if (opts.has("k")) cfg.set("k", opts.get("k", ""));
  // A seed= entry inside --config wins over the --seed flag.
  if (!cfg.seed_was_set()) cfg.seed(seed);
  const api::SolveResult res = solver.solve(inst, cfg);

  const api::MatchingSolver& oracle =
      api::SolverRegistry::global().at("hopcroft_karp");
  const std::size_t optimum =
      oracle.solve(inst, api::SolverConfig()).matching.size();

  std::printf("matching: |M| = %zu   exact |M*| = %zu   ratio = %.4f "
              "(guarantee %.4f)\n",
              res.matching.size(), optimum,
              optimum ? static_cast<double>(res.matching.size()) /
                            static_cast<double>(optimum)
                      : 1.0,
              solver.guarantee(cfg));
  std::printf("cost: %llu synchronous rounds, %llu messages, "
              "max message = %llu bits (CONGEST), %.2f ms wall\n",
              static_cast<unsigned long long>(res.stats.rounds),
              static_cast<unsigned long long>(res.stats.messages),
              static_cast<unsigned long long>(res.stats.max_message_bits),
              res.wall_ms);
  for (const auto& [key, value] : res.metrics) {
    std::printf("  %s = %g\n", key.c_str(), value);
  }
  return 0;
}
